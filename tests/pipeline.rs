//! Cross-crate integration tests: the full trace → cache → HMA → AVF → SER
//! pipeline, policy-ordering invariants, and determinism.

use std::collections::HashSet;

use ramp::core::config::SystemConfig;
use ramp::core::migration::MigrationScheme;
use ramp::core::placement::PlacementPolicy;
use ramp::core::runner::{profile_workload, run_annotated, run_migration, run_static};
use ramp::trace::{Benchmark, MixId, Workload};

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::table1_scaled();
    cfg.insts_per_core = 250_000;
    cfg
}

#[test]
fn perf_placement_beats_ddr_only_and_costs_reliability() {
    let cfg = cfg();
    let wl = Workload::Homogeneous(Benchmark::Libquantum);
    let ddr = profile_workload(&cfg, &wl);
    let perf = run_static(&cfg, &wl, PlacementPolicy::PerfFocused, &ddr.table);
    assert!(perf.ipc > ddr.ipc * 1.2, "perf placement must boost IPC");
    assert!(
        perf.ser_vs_ddr_only() > 10.0,
        "hot pages in HBM must raise SER substantially (got {:.1}x)",
        perf.ser_vs_ddr_only()
    );
}

#[test]
fn policy_reliability_ordering_holds() {
    // SER: perf-focused >= wr2 >= balanced-ish >= rel-focused (the paper's
    // Figure 7-11 ordering, allowing wr2/balanced to tie).
    let cfg = cfg();
    let wl = Workload::Mix(MixId::Mix1);
    let ddr = profile_workload(&cfg, &wl);
    let perf = run_static(&cfg, &wl, PlacementPolicy::PerfFocused, &ddr.table);
    let wr2 = run_static(&cfg, &wl, PlacementPolicy::Wr2Ratio, &ddr.table);
    let rel = run_static(&cfg, &wl, PlacementPolicy::RelFocused, &ddr.table);

    assert!(perf.ser_fit >= wr2.ser_fit, "wr2 must not exceed perf SER");
    assert!(
        wr2.ser_fit >= rel.ser_fit,
        "rel-focused must have lowest SER"
    );
    assert!(
        perf.ipc >= rel.ipc,
        "rel-focused must not beat perf-focused IPC"
    );
}

#[test]
fn wr2_outperforms_wr_in_ipc() {
    // The Wr2 ratio's extra hotness weighting is the whole point of
    // Section 5.4.2.
    let cfg = cfg();
    let wl = Workload::Homogeneous(Benchmark::Mcf);
    let ddr = profile_workload(&cfg, &wl);
    let wr = run_static(&cfg, &wl, PlacementPolicy::WrRatio, &ddr.table);
    let wr2 = run_static(&cfg, &wl, PlacementPolicy::Wr2Ratio, &ddr.table);
    assert!(
        wr2.ipc >= wr.ipc * 0.95,
        "wr2 ({}) should be at least on par with wr ({})",
        wr2.ipc,
        wr.ipc
    );
}

#[test]
fn runs_are_deterministic() {
    let cfg = cfg();
    let wl = Workload::Homogeneous(Benchmark::Astar);
    let a = profile_workload(&cfg, &wl);
    let b = profile_workload(&cfg, &wl);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert!((a.ser_fit - b.ser_fit).abs() < 1e-18);
    assert_eq!(a.table.pages().len(), b.table.pages().len());
}

#[test]
fn migration_schemes_run_and_reduce_ser_vs_perf_migration() {
    let mut cfg = cfg();
    cfg.insts_per_core = 400_000;
    let wl = Workload::Homogeneous(Benchmark::Milc);
    let ddr = profile_workload(&cfg, &wl);
    let perf = run_migration(&cfg, &wl, MigrationScheme::PerfFc, &ddr.table);
    let rel = run_migration(&cfg, &wl, MigrationScheme::RelFc, &ddr.table);
    let cc = run_migration(&cfg, &wl, MigrationScheme::CrossCounter, &ddr.table);
    assert!(
        rel.ser_fit <= perf.ser_fit,
        "rel-FC must cut SER vs perf-FC"
    );
    assert!(cc.ser_fit <= perf.ser_fit, "CC must cut SER vs perf-FC");
    assert!(cc.migrations > 0, "cross counters must migrate");
}

#[test]
fn annotations_pin_structures_and_cut_ser() {
    let cfg = cfg();
    let wl = Workload::Homogeneous(Benchmark::CactusADM);
    let ddr = profile_workload(&cfg, &wl);
    let perf = run_static(&cfg, &wl, PlacementPolicy::PerfFocused, &ddr.table);
    let (run, set) = run_annotated(&cfg, &wl, &ddr.table);
    assert!(set.count() >= 1, "at least one annotation");
    assert!(
        set.count() <= 60,
        "annotation counts stay in Figure 17's range"
    );
    assert!(
        run.ser_fit <= perf.ser_fit * 1.05,
        "annotations must not raise SER"
    );
}

#[test]
fn footprint_is_fully_accounted() {
    let cfg = cfg();
    let wl = Workload::Homogeneous(Benchmark::Gcc);
    let r = profile_workload(&cfg, &wl);
    // The stats table covers the entire footprint (untouched pages with
    // zero stats), so Figure 2/4 denominators match the paper's.
    assert_eq!(r.table.pages().len() as u64, wl.footprint_pages());
    let untouched = r.table.pages().iter().filter(|s| s.hotness() == 0).count();
    assert!(
        untouched > 0,
        "some pages should be untouched in a short run"
    );
}

#[test]
fn mixes_follow_table2() {
    for mix in MixId::ALL {
        let wl = Workload::Mix(mix);
        assert_eq!(wl.assignments().len(), 16);
    }
    // Spot-check mix5 (the only one with bwaves).
    let counts = MixId::Mix5.assignments();
    assert_eq!(
        counts.iter().filter(|&&b| b == Benchmark::Bwaves).count(),
        1
    );
    assert_eq!(
        counts
            .iter()
            .filter(|&&b| b == Benchmark::CactusADM)
            .count(),
        5
    );
}

#[test]
fn ddr_only_never_touches_hbm() {
    let cfg = cfg();
    let wl = Workload::Homogeneous(Benchmark::Bzip);
    let r = profile_workload(&cfg, &wl);
    assert_eq!(r.hbm_accesses, 0);
    assert!(r.ddr_accesses > 0);
    assert!((r.ser_vs_ddr_only() - 1.0).abs() < 1e-9);
}

#[test]
fn placement_respects_hbm_capacity() {
    let cfg = cfg();
    let wl = Workload::Mix(MixId::Mix2);
    let ddr = profile_workload(&cfg, &wl);
    for policy in [
        PlacementPolicy::PerfFocused,
        PlacementPolicy::RelFocused,
        PlacementPolicy::Balanced,
        PlacementPolicy::WrRatio,
        PlacementPolicy::Wr2Ratio,
    ] {
        let sel: HashSet<_> = policy.select(&ddr.table, cfg.hbm_capacity_pages as usize);
        assert!(
            sel.len() as u64 <= cfg.hbm_capacity_pages,
            "{policy} exceeded capacity"
        );
    }
}
