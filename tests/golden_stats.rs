//! Golden-snapshot regression tests for the telemetry subsystem.
//!
//! Two tiny deterministic workloads (a 4-core homogeneous libquantum run
//! with perf-FC migration, and the Mix 1 profile) are simulated and
//! their telemetry rendered with `render_runs_json`. The output must be
//! **byte-identical**
//!
//! 1. to the committed golden file `tests/golden/smoke_stats.json`, and
//! 2. across worker-thread counts (`-j1` vs `-j4`) — the snapshot payload
//!    excludes volatile executor stats precisely so this holds.
//!
//! Regenerating the golden file after an intentional schema or counter
//! change:
//!
//! ```text
//! RAMP_BLESS=1 cargo test --test golden_stats
//! ```
//!
//! then commit the updated `tests/golden/smoke_stats.json` and call out
//! the schema change in the PR description.

use ramp::core::config::SystemConfig;
use ramp::core::migration::MigrationScheme;
use ramp::core::runner::{profile_workload, run_migration};
use ramp::sim::exec::{default_threads, parallel_map};
use ramp::sim::telemetry::{render_runs_json, Snapshot};
use ramp::trace::{Benchmark, MixId, Workload};

const GOLDEN_PATH: &str = "tests/golden/smoke_stats.json";

/// The two-workload experiment matrix, sharded over `threads` workers.
fn collect_runs(threads: usize) -> Vec<(String, Snapshot)> {
    let cfg = SystemConfig::smoke_test();
    let lib = Workload::Homogeneous(Benchmark::Libquantum);
    let mix = Workload::Mix(MixId::Mix1);
    let tasks: Vec<(Workload, bool)> = vec![(lib, false), (lib, true), (mix, false)];
    parallel_map(threads, tasks, |_, (wl, migrate)| {
        let profile = profile_workload(&cfg, wl);
        if *migrate {
            let r = run_migration(&cfg, wl, MigrationScheme::PerfFc, &profile.table);
            (
                format!("migration/{}/{}", wl.name(), MigrationScheme::PerfFc),
                r.telemetry,
            )
        } else {
            (format!("profile/{}", wl.name()), profile.telemetry)
        }
    })
}

fn golden_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn telemetry_json_is_byte_identical_across_thread_counts() {
    let one = render_runs_json(&collect_runs(1));
    let four = render_runs_json(&collect_runs(4));
    assert_eq!(one, four, "thread count leaked into the telemetry payload");
    let auto = render_runs_json(&collect_runs(default_threads()));
    assert_eq!(one, auto, "RAMP_THREADS/auto leaked into the payload");
}

#[test]
fn telemetry_json_matches_committed_golden_snapshot() {
    let rendered = render_runs_json(&collect_runs(default_threads()));
    let path = golden_file();
    if std::env::var("RAMP_BLESS").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with RAMP_BLESS=1 cargo test --test golden_stats",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "telemetry snapshot drifted from {}; if the change is intentional, \
         regenerate with RAMP_BLESS=1 cargo test --test golden_stats",
        GOLDEN_PATH
    );
}

#[test]
fn golden_snapshot_covers_required_scopes() {
    // The acceptance criteria name DRAM, cache, migration and core
    // scopes; pin their presence independently of byte equality so a
    // bless can never silently drop a subsystem.
    let runs = collect_runs(1);
    let (label, mig) = runs
        .iter()
        .find(|(l, _)| l.starts_with("migration/"))
        .expect("migration run present");
    for (scope, name) in [
        ("dram.hbm.ch0", "row_hits"),
        ("dram.ddr.ch0", "row_hits"),
        ("dram.hbm", "accesses"),
        ("cache.l2", "misses"),
        ("cache.l1.core00", "hits"),
        ("migration", "migrations"),
        ("core.c00", "instructions"),
        ("system", "ipc"),
        ("avf", "ser_fit"),
    ] {
        assert!(
            mig.get(scope, name).is_some(),
            "{label} snapshot missing {scope}/{name}"
        );
    }
}
