//! Property-based tests over the core data structures and invariants
//! (in-tree `ramp::sim::check` harness): ECC algebra, AVF bounds,
//! page-map consistency, MEA's frequent-element guarantee,
//! trace-generator containment and telemetry invariants (histogram
//! conservation, epoch monotonicity, merge/sequential equivalence).
//!
//! Each property runs 256 deterministic cases; on failure the harness
//! prints the case's seed so `RAMP_PROP_SEED=<seed>` replays it alone.

use ramp::avf::AvfTracker;
use ramp::core::{MeaTracker, PageMap};
use ramp::dram::MemoryKind;
use ramp::faultsim::ecc::chipkill::TOTAL_SYMBOLS;
use ramp::faultsim::{ChipKill, ErrorClass, Hsiao7264};
use ramp::sim::check::check;
use ramp::sim::units::{AccessKind, Cycle, PageId, LINES_PER_PAGE};
use ramp::trace::{Benchmark, InstanceGen};

/// Hsiao (72,64): encode/decode round-trips for arbitrary data words.
#[test]
fn hsiao_round_trip() {
    check("hsiao_round_trip", |g| {
        let data = g.u64();
        let code = Hsiao7264::new();
        let check = code.encode(data);
        let (outcome, decoded) = code.decode(data, check);
        assert_eq!(outcome, ramp::faultsim::ecc::hsiao::DecodeOutcome::Clean);
        assert_eq!(decoded, data);
    });
}

/// Hsiao: any single flipped bit of any codeword is corrected back to
/// the original data.
#[test]
fn hsiao_corrects_any_single_bit() {
    check("hsiao_corrects_any_single_bit", |g| {
        let data = g.u64();
        let bit = g.usize_in(0, 72);
        let code = Hsiao7264::new();
        let check = code.encode(data);
        let (rd, rc) = if bit < 64 {
            (data ^ (1u64 << bit), check)
        } else {
            (data, check ^ (1u8 << (bit - 64)))
        };
        let (_, decoded) = code.decode(rd, rc);
        assert_eq!(decoded, data, "flipped bit {bit}");
    });
}

/// Hsiao: any double-bit error is detected, never silently accepted.
#[test]
fn hsiao_detects_any_double_bit() {
    check("hsiao_detects_any_double_bit", |g| {
        let a = g.usize_in(0, 72);
        let b = g.usize_in(0, 72);
        if a == b {
            return; // not a double-bit error
        }
        let code = Hsiao7264::new();
        let err = (1u128 << a) | (1u128 << b);
        assert_eq!(
            code.classify_error(err),
            ErrorClass::DetectedUncorrectable,
            "bits {a},{b}"
        );
    });
}

/// ChipKill: any single-symbol (whole chip) error of any value is
/// corrected; any double-symbol error is never corrected or silent.
#[test]
fn chipkill_symbol_guarantees() {
    check("chipkill_symbol_guarantees", |g| {
        let chip_a = g.usize_in(0, TOTAL_SYMBOLS);
        let chip_b = g.usize_in(0, TOTAL_SYMBOLS);
        let val_a = g.u8_in_inclusive(1, 255);
        let val_b = g.u8_in_inclusive(1, 255);
        let ck = ChipKill::new();
        assert_eq!(
            ck.classify_chip_failure(chip_a, val_a),
            ErrorClass::Corrected
        );
        if chip_a != chip_b {
            let mut err = [0u8; TOTAL_SYMBOLS];
            err[chip_a] = val_a;
            err[chip_b] = val_b;
            assert_eq!(ck.classify_error(&err), ErrorClass::DetectedUncorrectable);
        }
    });
}

/// AVF is always within [0, 1] and ACE time is conserved across the
/// two memories for arbitrary access sequences.
#[test]
fn avf_bounded_and_additive() {
    check("avf_bounded_and_additive", |g| {
        let accesses = g.vec(1, 200, |g| {
            (
                g.usize_in(0, LINES_PER_PAGE),
                g.bool(),
                g.bool(),
                g.u64_in(1, 10_000),
            )
        });
        let mut t = AvfTracker::new(Cycle(0));
        let mut now = 0u64;
        let page = PageId(42);
        for (line, is_write, in_hbm, dt) in accesses {
            now += dt;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let mem = if in_hbm {
                MemoryKind::Hbm
            } else {
                MemoryKind::Ddr
            };
            t.on_access(page, line, kind, Cycle(now), mem);
        }
        let table = t.finish(Cycle(now));
        let s = table.get(page).expect("touched");
        assert!(s.avf >= 0.0 && s.avf <= 1.0 + 1e-12, "avf {}", s.avf);
        let total = table.total_cycles();
        let split = s.avf_in(MemoryKind::Hbm, total) + s.avf_in(MemoryKind::Ddr, total);
        assert!((split - s.avf).abs() < 1e-12, "ACE split must sum to AVF");
    });
}

/// PageMap: after an arbitrary sequence of placements and migrations,
/// every page has exactly one frame, frames within a memory are unique,
/// and HBM occupancy never exceeds capacity.
#[test]
fn pagemap_consistency() {
    check("pagemap_consistency", |g| {
        let ops = g.vec(1, 300, |g| (g.u64_below(64), g.bool()));
        let capacity = 16u64;
        let mut pm = PageMap::new(capacity);
        for (page, to_hbm) in ops {
            let to = if to_hbm {
                MemoryKind::Hbm
            } else {
                MemoryKind::Ddr
            };
            let _ = pm.migrate(PageId(page), to); // HbmFull is a legal outcome
        }
        assert!(pm.hbm_used() <= capacity);
        // Frames unique per memory.
        let mut seen_hbm = std::collections::HashSet::new();
        let mut seen_ddr = std::collections::HashSet::new();
        for page in 0..64u64 {
            if let Some((kind, frame)) = pm.lookup(PageId(page)) {
                let fresh = match kind {
                    MemoryKind::Hbm => seen_hbm.insert(frame),
                    MemoryKind::Ddr => seen_ddr.insert(frame),
                };
                assert!(fresh, "duplicate frame {frame} in {kind}");
            }
        }
    });
}

/// MEA (Misra-Gries): any element with more than n/(k+1) occurrences
/// in a stream of n accesses survives in a k-entry tracker.
#[test]
fn mea_frequent_element_guarantee() {
    check("mea_frequent_element_guarantee", |g| {
        let noise = g.vec(0, 120, |g| g.u64_in(100, 10_000));
        let heavy_count = g.usize_in(40, 80);
        let k = 8;
        let mut stream: Vec<PageId> = noise.into_iter().map(PageId).collect();
        for _ in 0..heavy_count {
            stream.push(PageId(7));
        }
        let n = stream.len();
        if heavy_count <= n / (k + 1) {
            return; // below the frequency threshold: no guarantee applies
        }
        // Deterministic interleave.
        stream.sort_by_key(|p| p.0.wrapping_mul(0x9e3779b9) % 251);
        let mut mea = MeaTracker::new(k);
        for p in stream {
            mea.record(p);
        }
        assert!(mea.hot_pages().contains(&PageId(7)));
    });
}

/// Trace generators only emit addresses inside their declared
/// footprint, for every benchmark and seed.
#[test]
fn traces_stay_in_footprint() {
    check("traces_stay_in_footprint", |g| {
        let seed = g.u64();
        let bench = *g.pick(&Benchmark::ALL);
        let mut gen = InstanceGen::new(bench.profile(), 3, seed, 1_000_000);
        let base = gen.base_page().index();
        let fp = gen.footprint_pages();
        for _ in 0..2_000 {
            let rec = gen.next().unwrap();
            let p = rec.addr.page().index();
            assert!(p >= base && p < base + fp, "{bench:?} escaped footprint");
        }
    });
}

/// Telemetry: a histogram's bin counts always sum to its observation
/// total, for arbitrary geometry and arbitrary (even out-of-range)
/// observations.
#[test]
fn telemetry_histogram_counts_sum_to_total() {
    use ramp::sim::telemetry::BinHistogram;
    check("telemetry_histogram_counts_sum_to_total", |g| {
        let lo = g.f64_in(-1e3, 1e3);
        let width = g.f64_in(0.5, 1e3);
        let bins = g.usize_in(1, 64);
        let mut h = BinHistogram::new(lo, lo + width, bins);
        let xs = g.vec(0, 200, |g| g.f64_in(-2e3, 2e3));
        let n = xs.len() as u64;
        for x in xs {
            h.observe(x);
        }
        assert_eq!(h.total(), n);
        assert_eq!(h.counts().iter().sum::<u64>(), n, "clamping lost a sample");
    });
}

/// Telemetry: counter values are monotone non-decreasing across epoch
/// snapshots, for arbitrary interleavings of adds and epoch marks.
#[test]
fn telemetry_counters_monotone_across_epochs() {
    use ramp::sim::telemetry::StatRegistry;
    check("telemetry_counters_monotone_across_epochs", |g| {
        let mut reg = StatRegistry::new();
        let ops = g.vec(1, 100, |g| (g.bool(), g.u64_below(1000)));
        for (i, (mark, delta)) in ops.into_iter().enumerate() {
            reg.counter_add("s", "events", delta);
            if mark {
                reg.mark_epoch(format!("e{i}"));
            }
        }
        reg.mark_epoch("final");
        let mut prev = 0u64;
        for (label, snap) in reg.epochs() {
            let v = snap.get("s", "events").unwrap().as_counter().unwrap();
            assert!(v >= prev, "epoch {label}: counter went backwards");
            prev = v;
        }
    });
}

/// Telemetry: merging per-shard registries equals accumulating every
/// event sequentially into one registry, regardless of how events are
/// split across shards.
#[test]
fn telemetry_merge_equals_sequential_accumulation() {
    use ramp::sim::telemetry::StatRegistry;
    check("telemetry_merge_equals_sequential_accumulation", |g| {
        let shards = g.usize_in(1, 5);
        let events = g.vec(0, 150, |g| {
            (
                g.usize_in(0, 5), // shard the event lands on
                g.u64_below(3),   // stat selector
                g.u64_below(100), // payload
            )
        });
        let mut seq = StatRegistry::new();
        let mut parts: Vec<StatRegistry> = (0..shards).map(|_| StatRegistry::new()).collect();
        for (shard, which, v) in events {
            let part = &mut parts[shard % shards];
            match which {
                0 => {
                    part.counter_add("scope", "c", v);
                    seq.counter_add("scope", "c", v);
                }
                1 => {
                    part.ratio_add("scope", "r", v, v + 1);
                    seq.ratio_add("scope", "r", v, v + 1);
                }
                _ => {
                    part.observe("scope", "h", 0.0, 100.0, 10, v as f64);
                    seq.observe("scope", "h", 0.0, 100.0, 10, v as f64);
                }
            }
        }
        let mut merged = StatRegistry::new();
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged.snapshot(), seq.snapshot());
        assert_eq!(merged.snapshot().to_json(), seq.snapshot().to_json());
    });
}

/// Statistics: Pearson correlation is symmetric and within [-1, 1].
#[test]
fn pearson_properties() {
    check("pearson_properties", |g| {
        let pairs = g.vec(3, 50, |g| (g.f64_in(-1e6, 1e6), g.f64_in(-1e6, 1e6)));
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = ramp::sim::stats::pearson(&xs, &ys) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "rho {}", r);
            let r2 = ramp::sim::stats::pearson(&ys, &xs).unwrap();
            assert!((r - r2).abs() < 1e-9);
        }
    });
}
