//! Differential tests gating the hot-path optimizations (ISSUE 7).
//!
//! Every optimized fast path in the stack is pinned here against a naive
//! reference implementation kept *in this file*, so a future change to the
//! optimized code cannot silently drift:
//!
//! 1. The flat two-level page table (`ramp::core::PageMap`) against a
//!    plain `HashMap` page map with identical LIFO frame recycling —
//!    seeded property streams of grow (first touch), evict (migrate to
//!    DDR), and migrate ops, including remap-during-migration edge cases.
//! 2. Batched DRAM event advancement (`MemorySystem::advance` over whole
//!    chunks, with the controller's idle/wake fast paths) against a naive
//!    walker that advances one cycle at a time — identical completions,
//!    telemetry, and `save_state` wire bytes.
//! 3. End-to-end `RunResult` wire encoding and telemetry JSON across a
//!    seeded config matrix at 1 and 4 executor threads — the executor may
//!    never leak into results.
//!
//! On failure the property harness prints the case's seed;
//! `RAMP_PROP_SEED=<seed>` replays it alone.

use std::collections::HashMap;

use ramp::core::config::SystemConfig;
use ramp::core::migration::MigrationScheme;
use ramp::core::placement::PlacementPolicy;
use ramp::core::runner::{profile_workload, run_migration, run_static};
use ramp::core::PageMap;
use ramp::dram::request::MemRequest;
use ramp::dram::{MemoryKind, MemorySystem};
use ramp::serve::wire::encode_run;
use ramp::sim::check::{check, check_n};
use ramp::sim::codec::ByteWriter;
use ramp::sim::telemetry::{render_runs_json, StatRegistry};
use ramp::sim::units::{AccessKind, Cycle, LineAddr, PageId, LINES_PER_PAGE};
use ramp::trace::{Benchmark, Workload};

// ---------------------------------------------------------------------
// 1. Reference page map: the pre-optimization HashMap implementation.
// ---------------------------------------------------------------------

/// The naive page map the flat table replaced: a `HashMap` binding plus
/// the same LIFO free lists and high-watermark allocators. Every public
/// operation mirrors `PageMap`'s contract exactly; the differential tests
/// drive both with identical op streams and demand identical results.
struct RefPageMap {
    map: HashMap<PageId, (MemoryKind, u64)>,
    free_hbm: Vec<u64>,
    next_hbm: u64,
    hbm_capacity: u64,
    free_ddr: Vec<u64>,
    next_ddr: u64,
}

impl RefPageMap {
    fn new(hbm_capacity_pages: u64) -> Self {
        RefPageMap {
            map: HashMap::new(),
            free_hbm: Vec::new(),
            next_hbm: 0,
            hbm_capacity: hbm_capacity_pages,
            free_ddr: Vec::new(),
            next_ddr: 0,
        }
    }

    fn alloc_hbm(&mut self) -> Option<u64> {
        self.free_hbm.pop().or_else(|| {
            (self.next_hbm < self.hbm_capacity).then(|| {
                let f = self.next_hbm;
                self.next_hbm += 1;
                f
            })
        })
    }

    fn alloc_ddr(&mut self) -> u64 {
        self.free_ddr.pop().unwrap_or_else(|| {
            let f = self.next_ddr;
            self.next_ddr += 1;
            f
        })
    }

    fn resolve(&mut self, page: PageId) -> (MemoryKind, u64) {
        if let Some(&bound) = self.map.get(&page) {
            return bound;
        }
        let frame = self.alloc_ddr();
        self.map.insert(page, (MemoryKind::Ddr, frame));
        (MemoryKind::Ddr, frame)
    }

    fn lookup(&self, page: PageId) -> Option<(MemoryKind, u64)> {
        self.map.get(&page).copied()
    }

    fn frame_line(&mut self, page: PageId, line_in_page: usize) -> (MemoryKind, LineAddr) {
        let (kind, frame) = self.resolve(page);
        (
            kind,
            LineAddr(frame * LINES_PER_PAGE as u64 + line_in_page as u64),
        )
    }

    fn place_in_hbm(&mut self, page: PageId) -> Result<(), ()> {
        let old = self.map.get(&page).copied();
        if let Some((MemoryKind::Hbm, _)) = old {
            return Ok(());
        }
        let frame = self.alloc_hbm().ok_or(())?;
        if let Some((MemoryKind::Ddr, ddr_frame)) = old {
            self.free_ddr.push(ddr_frame);
        }
        self.map.insert(page, (MemoryKind::Hbm, frame));
        Ok(())
    }

    fn migrate(&mut self, page: PageId, to: MemoryKind) -> Result<(), ()> {
        let (kind, frame) = self.resolve(page);
        if kind == to {
            return Ok(());
        }
        match to {
            MemoryKind::Hbm => {
                let new = self.alloc_hbm().ok_or(())?;
                self.map.insert(page, (MemoryKind::Hbm, new));
                self.free_ddr.push(frame);
            }
            MemoryKind::Ddr => {
                let new = self.alloc_ddr();
                self.map.insert(page, (MemoryKind::Ddr, new));
                self.free_hbm.push(frame);
            }
        }
        Ok(())
    }

    fn hbm_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .map
            .iter()
            .filter(|&(_, &(k, _))| k == MemoryKind::Hbm)
            .map(|(&p, _)| p)
            .collect();
        pages.sort();
        pages
    }

    fn hbm_used(&self) -> u64 {
        self.map
            .values()
            .filter(|&&(k, _)| k == MemoryKind::Hbm)
            .count() as u64
    }
}

/// One random op applied to both maps; results must agree exactly.
fn apply_op(pm: &mut PageMap, rf: &mut RefPageMap, op: u64, page: PageId, line: usize) {
    match op {
        0 => assert_eq!(pm.resolve(page), rf.resolve(page), "resolve {page:?}"),
        1 => assert_eq!(pm.lookup(page), rf.lookup(page), "lookup {page:?}"),
        2 => assert_eq!(
            pm.frame_line(page, line),
            rf.frame_line(page, line),
            "frame_line {page:?}/{line}"
        ),
        3 => assert_eq!(
            pm.place_in_hbm(page).is_ok(),
            rf.place_in_hbm(page).is_ok(),
            "place_in_hbm {page:?}"
        ),
        4 => assert_eq!(
            pm.migrate(page, MemoryKind::Hbm).is_ok(),
            rf.migrate(page, MemoryKind::Hbm).is_ok(),
            "migrate->HBM {page:?}"
        ),
        _ => assert_eq!(
            pm.migrate(page, MemoryKind::Ddr).is_ok(),
            rf.migrate(page, MemoryKind::Ddr).is_ok(),
            "migrate->DDR {page:?}"
        ),
    }
}

/// Flat table vs reference map: identical bindings, allocations and
/// HBM occupancy under arbitrary op streams. Page ids mix dense per-core
/// ranges (the trace layer's layout), the 22-bit chunk boundary, and
/// far-outside ids that exercise the flat table's spill path.
#[test]
fn flat_pagemap_matches_reference_hashmap() {
    check("flat_pagemap_matches_reference_hashmap", |g| {
        let capacity = g.u64_in(1, 24);
        let mut pm = PageMap::new(capacity);
        let mut rf = RefPageMap::new(capacity);
        let ops = g.vec(1, 300, |g| {
            let page = match g.u64_below(4) {
                0 => g.u64_below(48),                   // dense low range
                1 => (1 << 22) | g.u64_below(48),       // second core's chunk
                2 => (3 << 22) | g.u64_below(48),       // sparse outer index
                _ => (4096u64 << 22) + g.u64_below(16), // beyond outer range: spill
            };
            (g.u64_below(6), PageId(page), g.usize_in(0, LINES_PER_PAGE))
        });
        let mut touched: Vec<PageId> = ops.iter().map(|&(_, p, _)| p).collect();
        for (op, page, line) in ops {
            apply_op(&mut pm, &mut rf, op, page, line);
        }
        // Aggregate state agrees, and so does every touched binding.
        assert_eq!(pm.hbm_used(), rf.hbm_used());
        assert_eq!(pm.hbm_free(), capacity - rf.hbm_used());
        assert_eq!(pm.hbm_pages(), rf.hbm_pages());
        assert_eq!(pm.len(), rf.map.len());
        touched.sort();
        touched.dedup();
        for p in touched {
            assert_eq!(pm.lookup(p), rf.lookup(p), "final binding {p:?}");
        }
    });
}

/// Pages at the very top of a chunk force the inner table to grow to its
/// full extent; bindings on both sides of the chunk boundary must still
/// match the reference (a single directed case — the growth memsets tens
/// of megabytes, so the seeded stream above sticks to dense offsets).
#[test]
fn pagemap_chunk_boundary_growth_parity() {
    let mut pm = PageMap::new(8);
    let mut rf = RefPageMap::new(8);
    for k in 0..48u64 {
        let page = PageId((1 << 22) - 24 + k); // straddles chunks 0 and 1
        apply_op(&mut pm, &mut rf, k % 6, page, 0);
        assert_eq!(pm.lookup(page), rf.lookup(page));
    }
    assert_eq!(pm.hbm_pages(), rf.hbm_pages());
    assert_eq!(pm.len(), rf.map.len());
}

/// Remap-during-migration edge cases: pages re-placed while HBM churns at
/// capacity, so freed frames recycle into concurrent first-touch streams.
/// The flat table must recycle in exactly the reference's LIFO order.
#[test]
fn pagemap_remap_during_migration_parity() {
    check("pagemap_remap_during_migration_parity", |g| {
        let capacity = g.u64_in(1, 4);
        let mut pm = PageMap::new(capacity);
        let mut rf = RefPageMap::new(capacity);
        // Fill HBM to capacity, then interleave evictions of resident
        // pages with promotions and first-touches of fresh ones: every
        // promotion must reuse the frame the paired eviction just freed.
        for p in 0..capacity {
            assert_eq!(
                pm.place_in_hbm(PageId(p)).is_ok(),
                rf.place_in_hbm(PageId(p)).is_ok()
            );
        }
        for i in 0..g.u64_in(10, 60) {
            let resident = *g.pick(&pm.hbm_pages());
            // Evict a resident to DDR, first-touch a newcomer in DDR, then
            // promote it into the freed frame: the re-placed page went back
            // to a recycled DDR frame and the newcomer took over the
            // recycled HBM frame — byte-for-byte.
            apply_op(&mut pm, &mut rf, 5, resident, 0);
            let newcomer = PageId(100 + i);
            apply_op(&mut pm, &mut rf, 0, newcomer, 0);
            apply_op(&mut pm, &mut rf, 4, newcomer, 0);
            assert_eq!(pm.lookup(resident), rf.lookup(resident));
            assert_eq!(pm.lookup(newcomer), rf.lookup(newcomer));
            assert_eq!(pm.hbm_used(), capacity);
        }
        assert_eq!(pm.hbm_pages(), rf.hbm_pages());
    });
}

// ---------------------------------------------------------------------
// 2. Naive bank-state walker vs batched chunk advancement.
// ---------------------------------------------------------------------

fn save_bytes(mem: &MemorySystem) -> Vec<u8> {
    let mut w = ByteWriter::new();
    mem.save_state(&mut w);
    w.into_bytes()
}

fn telemetry_json(mem: &MemorySystem) -> String {
    let mut reg = StatRegistry::new();
    mem.export_telemetry(&mut reg, "dram");
    reg.snapshot().to_json()
}

/// The controller's batched advancement (whole-chunk jumps, idle and
/// wake fast paths, fused pick scan) against a walker that advances one
/// cycle at a time: same requests at the same instants must yield the
/// same completions, the same telemetry, and byte-identical state.
#[test]
fn batched_bank_advance_matches_percycle_walker() {
    check_n("batched_bank_advance_matches_percycle_walker", 64, |g| {
        let (mut fast, mut slow) = if g.bool() {
            (MemorySystem::hbm(), MemorySystem::hbm())
        } else {
            (MemorySystem::ddr3(), MemorySystem::ddr3())
        };
        // A bursty schedule: gaps up to 400 cycles leave banks idle long
        // enough to cross refresh intervals through both code paths.
        let mut at = 0u64;
        let schedule: Vec<(u64, MemRequest)> = g
            .vec(1, 120, |g| {
                at += g.u64_in(1, 400);
                let req = MemRequest {
                    id: at, // unique: `at` strictly increases
                    line: LineAddr(g.u64_below(1 << 20)),
                    kind: if g.u64_below(10) < 3 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    core: 0,
                    arrive: Cycle(at),
                };
                (at, req)
            })
            .into_iter()
            .collect();
        let horizon = at + 3_000;

        // Fast path: jump straight to each enqueue instant, then drain.
        let mut fast_done = Vec::new();
        let mut fast_accepted = Vec::new();
        for &(t, req) in &schedule {
            fast.advance(Cycle(t), &mut fast_done);
            let ok = fast.can_accept(&req);
            fast_accepted.push(ok);
            if ok {
                fast.enqueue(req).unwrap();
            }
        }
        fast.advance(Cycle(horizon), &mut fast_done);

        // Naive walker: one cycle at a time, same enqueue instants. Its
        // accept decisions must match the fast path's at every step.
        let mut slow_done = Vec::new();
        let mut next = 0usize;
        for t in 0..=horizon {
            slow.advance(Cycle(t), &mut slow_done);
            while next < schedule.len() && schedule[next].0 == t {
                let req = schedule[next].1;
                let ok = slow.can_accept(&req);
                assert_eq!(
                    ok, fast_accepted[next],
                    "backpressure decision diverged at request {next}"
                );
                if ok {
                    slow.enqueue(req).unwrap();
                }
                next += 1;
            }
        }

        // Completions may interleave differently across channels between
        // the two schedules-of-advance, but per-request results and final
        // state may not.
        let key =
            |c: &ramp::dram::Completion| (c.id, c.kind.is_write(), c.finish, c.latency, c.core);
        let mut fa: Vec<_> = fast_done.iter().map(key).collect();
        let mut sl: Vec<_> = slow_done.iter().map(key).collect();
        fa.sort();
        sl.sort();
        assert_eq!(fa, sl, "completion sets diverged");
        assert_eq!(
            telemetry_json(&fast),
            telemetry_json(&slow),
            "telemetry diverged"
        );
        assert_eq!(
            save_bytes(&fast),
            save_bytes(&slow),
            "serialized bank state diverged"
        );
        assert!(fast.is_idle() && slow.is_idle(), "requests left in flight");
    });
}

// ---------------------------------------------------------------------
// 3. End-to-end wire encoding across executor thread counts.
// ---------------------------------------------------------------------

/// The seeded config matrix: the smoke config plus variants that move the
/// knobs the optimized paths care about (seed, HBM capacity, budget).
fn config_matrix() -> Vec<SystemConfig> {
    // Smoke scale, shrunk further so the matrix stays fast in dev builds
    // but still spans several FC/MEA intervals (migrations do happen).
    let mut base = SystemConfig::smoke_test();
    base.insts_per_core = 60_000;
    base.fc_interval_cycles = 20_000;
    base.mea_interval_cycles = 2_000;
    let mut seeded = base.clone();
    seeded.seed = 0xD1FF;
    let mut tight = base.clone();
    tight.hbm_capacity_pages /= 2;
    tight.insts_per_core = 40_000;
    vec![base, seeded, tight]
}

fn matrix_wire_bytes(threads: usize) -> Vec<Vec<u8>> {
    let wl = Workload::Homogeneous(Benchmark::Lbm);
    let tasks: Vec<(SystemConfig, u8)> = config_matrix()
        .into_iter()
        .flat_map(|cfg| [(cfg.clone(), 0u8), (cfg, 1u8)])
        .collect();
    ramp::sim::exec::parallel_map(threads, tasks, |_, (cfg, mode)| {
        let profile = profile_workload(cfg, &wl);
        let run = match *mode {
            0 => run_static(cfg, &wl, PlacementPolicy::PerfFocused, &profile.table),
            _ => run_migration(cfg, &wl, MigrationScheme::PerfFc, &profile.table),
        };
        let mut bytes = encode_run(&profile);
        bytes.extend_from_slice(&encode_run(&run));
        bytes.extend_from_slice(
            render_runs_json(&[("m".to_string(), run.telemetry.clone())]).as_bytes(),
        );
        bytes
    })
}

/// `RunResult` wire encoding and telemetry JSON are byte-identical at 1
/// and 4 executor threads for every config in the matrix: the executor
/// can shard work but never influence results.
#[test]
fn run_results_byte_identical_across_thread_counts() {
    let one = matrix_wire_bytes(1);
    let four = matrix_wire_bytes(4);
    assert_eq!(one.len(), four.len());
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a, b, "task {i}: thread count leaked into the wire bytes");
    }
}
