//! Determinism regression: sharding simulation runs across worker
//! threads must not change a single bit of any result. Every stochastic
//! decision flows from an explicit per-task seed and `exec::parallel_map`
//! returns results in input order, so the thread count is invisible.

use ramp::core::config::SystemConfig;
use ramp::core::migration::MigrationScheme;
use ramp::core::placement::PlacementPolicy;
use ramp::core::runner::{profile_workload, run_migration, run_static};
use ramp::sim::exec::parallel_map;
use ramp::trace::{Benchmark, MixId, Workload};

/// Exact bit-level fingerprint of one run (IPC, SER, AVF and raw counts).
fn fingerprint(r: &ramp::core::system::RunResult) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.ipc.to_bits(),
        r.ser_fit.to_bits(),
        r.ser_ddr_only_fit.to_bits(),
        r.table.mean_avf().to_bits(),
        r.cycles,
        r.instructions,
        r.hbm_accesses,
    )
}

fn run_all(threads: usize) -> Vec<(u64, u64, u64, u64, u64, u64, u64)> {
    let cfg = SystemConfig::smoke_test();
    let tasks: Vec<(Workload, Option<PlacementPolicy>)> = vec![
        (Workload::Mix(MixId::Mix1), None),
        (
            Workload::Mix(MixId::Mix1),
            Some(PlacementPolicy::PerfFocused),
        ),
        (Workload::Mix(MixId::Mix1), Some(PlacementPolicy::Balanced)),
        (
            Workload::Homogeneous(Benchmark::Astar),
            Some(PlacementPolicy::Wr2Ratio),
        ),
    ];
    parallel_map(threads, tasks, |_, (wl, policy)| {
        let profile = profile_workload(&cfg, wl);
        let r = match policy {
            None => profile,
            Some(p) => run_static(&cfg, wl, *p, &profile.table),
        };
        fingerprint(&r)
    })
}

#[test]
fn static_runs_identical_at_any_thread_count() {
    let sequential = run_all(1);
    let sharded = run_all(4);
    assert_eq!(sequential, sharded, "thread count leaked into results");
}

#[test]
fn migration_runs_identical_at_any_thread_count() {
    let cfg = SystemConfig::smoke_test();
    let wl = Workload::Mix(MixId::Mix2);
    let profile = profile_workload(&cfg, &wl);
    let run = |threads: usize| {
        parallel_map(
            threads,
            vec![MigrationScheme::PerfFc, MigrationScheme::CrossCounter],
            |_, scheme| fingerprint(&run_migration(&cfg, &wl, *scheme, &profile.table)),
        )
    };
    assert_eq!(run(1), run(4), "thread count leaked into migration results");
}
