//! Reliability deep-dive: exercise the ECC decoders and the FaultSim-style
//! Monte Carlo directly — what a memory-RAS engineer would do to compare
//! protection schemes before committing to a memory configuration.
//!
//! Run with: `cargo run --release --example fault_analysis`

use ramp::faultsim::ecc::chipkill::TOTAL_SYMBOLS;
use ramp::faultsim::{run_monte_carlo, ChipKill, ErrorClass, Hsiao7264, RasConfig};
use ramp::sim::SimRng;

fn main() {
    // 1. Bit-exact code behaviour.
    let hsiao = Hsiao7264::new();
    let single = hsiao.classify_error(1u128 << 17);
    let double = hsiao.classify_error((1u128 << 17) | (1u128 << 40));
    let burst = hsiao.classify_error(0xffu128 << 8); // an 8-bit device burst
    println!("Hsiao(72,64): single-bit {single:?}, double-bit {double:?}, byte-burst {burst:?}");

    let ck = ChipKill::new();
    let chip_fail = ck.classify_chip_failure(11, 0xff);
    println!("ChipKill RS(36,32): whole-chip failure {chip_fail:?} ({TOTAL_SYMBOLS} symbols/word)");
    assert_eq!(chip_fail, ErrorClass::Corrected);

    // 2. Monte-Carlo uncorrected-error rates (scaled-down trial counts; the
    //    faultsim_calibration binary runs the paper's 100K/1M trials).
    let mut rng = SimRng::from_seed(42);
    let hbm = run_monte_carlo(&RasConfig::hbm_secded(), 300_000, &mut rng);
    let ddr = run_monte_carlo(&RasConfig::ddr_chipkill(), 150_000, &mut rng);
    println!(
        "\nHBM/SEC-DED : {} faults -> {} DUE, {} SDC, {:.2} uncorrected FIT/GB",
        hbm.faults,
        hbm.detected_ue,
        hbm.silent_ue,
        hbm.fit_uncorrected_per_gb()
    );
    println!(
        "DDR/ChipKill: {} faults -> {} DUE, {} SDC, {:.5} uncorrected FIT/GB",
        ddr.faults,
        ddr.detected_ue,
        ddr.silent_ue,
        ddr.fit_uncorrected_per_gb()
    );
    println!("\nthe gap between those two rates is why placement must be reliability-aware.");
}
