//! Serving stack demo: start an in-process experiment server, drive it
//! with the programmatic client, and show the warm-cache effect of the
//! persistent run store.
//!
//! Run with: `cargo run --release --example serve_client`
//!
//! The same flow works across processes: start `ramp-served` in one
//! terminal and use `ramp-client` (or this crate's `Client`) from
//! another — the store under `target/ramp-store/` is shared, so any
//! result simulated here is a cache hit for every later experiment
//! binary with the same configuration.

use std::time::Instant;

use ramp::core::config::SystemConfig;
use ramp::serve::client::Client;
use ramp::serve::server::{Server, ServerConfig};
use ramp::serve::store::RunStore;

fn main() {
    // A small system so the demo finishes in seconds; drop the override
    // to serve full Table 1 runs instead.
    let sim = SystemConfig {
        insts_per_core: 150_000,
        ..SystemConfig::smoke_test()
    };
    let store = RunStore::open("target/ramp-store-example").expect("store dir");

    // Bind an ephemeral port and serve from a background thread.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            store: Some(store),
            ..ServerConfig::new(sim)
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    println!("server on {addr}");

    let client = Client::new(addr.to_string());
    println!("health: {}", client.health().expect("health").body);

    // Cold: submit a run, poll until done, fetch it by content key.
    let started = Instant::now();
    let submit = client
        .submit("lbm", "static", "rel-focused")
        .expect("submit");
    let done = match submit.job {
        Some(job) => client.wait_done(job, 300_000).expect("wait"),
        None => submit.response.clone(), // already cached from a prior run
    };
    println!(
        "cold run: ipc={} ser_vs_ddr_only={} in {:.2?}",
        done.fields["ipc"],
        done.fields["ser_vs_ddr_only"],
        started.elapsed()
    );
    let key = &done.fields["key"];
    let fetched = client.run_summary(key).expect("fetch");
    println!("fetched {key}: {}", fetched.body);

    // Warm: the identical submit is answered from the store.
    let started = Instant::now();
    let again = client
        .submit("lbm", "static", "rel-focused")
        .expect("resubmit");
    println!(
        "warm run: cached={} in {:.2?}",
        again.cached,
        started.elapsed()
    );

    println!("stats: {}", client.stats().expect("stats"));
    let drained = client.shutdown().expect("shutdown");
    println!("shutdown: {}", drained.body);
    handle.join().expect("server thread");
}
