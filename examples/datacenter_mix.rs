//! Datacenter scenario: the paper's mix1 workload (Table 2) under dynamic
//! reliability-aware migration with Cross Counters — the low-cost
//! mechanism a cloud operator would deploy when job mixes are unknown
//! ahead of time.
//!
//! Run with: `cargo run --release --example datacenter_mix`

use ramp::core::config::SystemConfig;
use ramp::core::hwcost;
use ramp::core::migration::MigrationScheme;
use ramp::core::runner::{profile_workload, run_migration};
use ramp::trace::{MixId, Workload};

fn main() {
    let mut cfg = SystemConfig::table1_scaled();
    cfg.insts_per_core = 500_000;

    let workload = Workload::Mix(MixId::Mix1);
    println!("profiling {workload} (9 SPEC benchmarks on 16 cores)...");
    let profile = profile_workload(&cfg, &workload);

    for scheme in [
        MigrationScheme::PerfFc,
        MigrationScheme::RelFc,
        MigrationScheme::CrossCounter,
    ] {
        let run = run_migration(&cfg, &workload, scheme, &profile.table);
        println!(
            "{:<14} IPC {:.2} ({:.2}x DDR-only)  SER {:>7.1}x DDR-only  {} migrations",
            scheme.name(),
            run.ipc,
            run.ipc / profile.ipc,
            run.ser_vs_ddr_only(),
            run.migrations,
        );
    }

    println!(
        "\nhardware cost at full scale: FC {} vs Cross Counters {}",
        hwcost::human_bytes(hwcost::reliability_fc_bytes()),
        hwcost::human_bytes(hwcost::cross_counter_total_bytes()),
    );
}
