//! HPC scenario: a DoE proxy application (LULESH) using program
//! annotations — the zero-hardware-cost mechanism of Section 7. The
//! example shows the profile-guided annotation selection, which structures
//! get pinned, and the resulting performance/reliability point.
//!
//! Run with: `cargo run --release --example hpc_annotations`

use ramp::core::config::SystemConfig;
use ramp::core::placement::PlacementPolicy;
use ramp::core::runner::{profile_workload, run_annotated, run_static};
use ramp::trace::{Benchmark, Workload};

fn main() {
    let mut cfg = SystemConfig::table1_scaled();
    cfg.insts_per_core = 500_000;

    let workload = Workload::Homogeneous(Benchmark::Lulesh);
    println!("profiling {workload}...");
    let profile = profile_workload(&cfg, &workload);
    let perf = run_static(
        &cfg,
        &workload,
        PlacementPolicy::PerfFocused,
        &profile.table,
    );

    let (run, annotations) = run_annotated(&cfg, &workload, &profile.table);
    println!("annotated structures ({} total):", annotations.count());
    for (bench, name) in &annotations.structures {
        println!("  #[hbm] {bench}::{name}");
    }
    println!(
        "\nannotations: IPC {:.2} ({:.1}% vs perf-focused), SER reduced {:.2}x",
        run.ipc,
        (1.0 - run.ipc / perf.ipc) * 100.0,
        perf.ser_fit / run.ser_fit.max(f64::MIN_POSITIVE),
    );
    println!("pinned pages: {}", annotations.pinned.len());
}
