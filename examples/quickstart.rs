//! Quickstart: profile a workload, compare placement policies, print the
//! performance/reliability trade-off.
//!
//! Run with: `cargo run --release --example quickstart`

use ramp::core::config::SystemConfig;
use ramp::core::placement::PlacementPolicy;
use ramp::core::runner::{profile_workload, run_static};
use ramp::trace::{Benchmark, Workload};

fn main() {
    // A reduced instruction budget so the example finishes in about a
    // minute; the default (SystemConfig::table1_scaled()) runs 5M
    // instructions per core for sharper statistics.
    let mut cfg = SystemConfig::table1_scaled();
    cfg.insts_per_core = 1_500_000;

    let workload = Workload::Homogeneous(Benchmark::Soplex);
    println!("profiling {workload} on a DDR-only system...");
    let profile = profile_workload(&cfg, &workload);
    println!(
        "  DDR-only: IPC {:.2}, MPKI {:.1}, mean page AVF {:.2}%, {} pages\n",
        profile.ipc,
        profile.mpki,
        profile.table.mean_avf() * 100.0,
        profile.table.pages().len(),
    );

    println!(
        "{:<14} {:>8} {:>12} {:>16}",
        "policy", "IPC", "vs DDR-only", "SER vs DDR-only"
    );
    for policy in [
        PlacementPolicy::PerfFocused,
        PlacementPolicy::RelFocused,
        PlacementPolicy::Balanced,
        PlacementPolicy::WrRatio,
        PlacementPolicy::Wr2Ratio,
    ] {
        let run = run_static(&cfg, &workload, policy, &profile.table);
        println!(
            "{:<14} {:>8.2} {:>11.2}x {:>15.1}x",
            policy.name(),
            run.ipc,
            run.ipc / profile.ipc,
            run.ser_vs_ddr_only(),
        );
    }
    println!("\nThe Wr2 heuristic should sit near perf-focused IPC at a fraction of its SER.");
}
