//! # RAMP — Reliability-Aware Memory Placement
//!
//! A from-scratch Rust reproduction of *"Reliability-Aware Data Placement
//! for Heterogeneous Memory Architecture"* (Gupta et al., HPCA 2018),
//! including every substrate the paper's evaluation depends on: a
//! cycle-level DRAM timing simulator (Ramulator substitute), a multicore
//! cache hierarchy (Moola substitute), a fault/ECC Monte-Carlo simulator
//! with bit-exact SEC-DED and ChipKill decoders (FaultSim substitute),
//! synthetic SPEC-like workload generation (PinPlay substitute), page-level
//! AVF tracking, and the paper's placement, migration and annotation
//! mechanisms.
//!
//! This facade crate re-exports the workspace's public API; see the README
//! for the architecture overview and `ramp-bench` for the per-figure
//! experiment harness.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ramp::core::config::SystemConfig;
//! use ramp::core::placement::PlacementPolicy;
//! use ramp::core::runner::{profile_workload, run_static};
//! use ramp::trace::{Benchmark, Workload};
//!
//! // Profile a 16-copy astar workload on a DDR-only system...
//! let cfg = SystemConfig::smoke_test();
//! let wl = Workload::Homogeneous(Benchmark::Astar);
//! let profile = profile_workload(&cfg, &wl);
//!
//! // ...then place hot & low-risk pages in HBM with the Wr2 heuristic.
//! let run = run_static(&cfg, &wl, PlacementPolicy::Wr2Ratio, &profile.table);
//! println!(
//!     "IPC {:.2} ({}x DDR-only), SER {:.1}x DDR-only",
//!     run.ipc,
//!     run.ipc / profile.ipc,
//!     run.ser_vs_ddr_only()
//! );
//! ```

#![warn(missing_docs)]

/// Shared simulation infrastructure: units, statistics, events, RNG.
pub use ramp_sim as sim;

/// Synthetic workloads: benchmark profiles, Table 2 mixes, trace streams.
pub use ramp_trace as trace;

/// The multicore cache hierarchy (Moola substitute).
pub use ramp_cache as cache;

/// Cycle-level DRAM timing models for DDR3 and HBM (Ramulator substitute).
pub use ramp_dram as dram;

/// DRAM fault injection and ECC evaluation (FaultSim substitute).
pub use ramp_faultsim as faultsim;

/// AVF tracking, quadrant analysis and the SER model.
pub use ramp_avf as avf;

/// The paper's contribution: placement policies, migration engines,
/// annotations, and the full-system simulator.
pub use ramp_core as core;

/// The serving stack: persistent content-addressed run store and the
/// std-only experiment server/client.
pub use ramp_serve as serve;

/// Declarative design-space sweeps with Pareto-frontier search over the
/// policy×workload×config space.
pub use ramp_sweep as sweep;
