//! End-to-end experiment benchmarks: one tiny representative of each
//! experiment class (profiling, static placement, dynamic migration), so
//! `cargo bench` exercises the whole pipeline. The full per-figure
//! harnesses are the `ramp-bench` binaries (see DESIGN.md's index).

use ramp_bench::microbench::{bench, black_box};
use ramp_core::config::SystemConfig;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_core::runner::{profile_workload, run_migration, run_static};
use ramp_trace::{Benchmark, Workload};

fn tiny_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::table1_scaled();
    cfg.cores = 4;
    cfg.insts_per_core = 60_000;
    cfg.hbm_capacity_pages = 512;
    cfg.fc_interval_cycles = 60_000;
    cfg.mea_interval_cycles = 6_000;
    cfg
}

fn main() {
    let cfg = tiny_cfg();
    let wl = Workload::Homogeneous(Benchmark::Soplex);
    let profile = profile_workload(&cfg, &wl);

    bench("experiments/profile_ddr_only", || {
        black_box(profile_workload(&cfg, &wl));
    });
    bench("experiments/static_wr2", || {
        black_box(run_static(
            &cfg,
            &wl,
            PlacementPolicy::Wr2Ratio,
            &profile.table,
        ));
    });
    bench("experiments/migration_cross_counter", || {
        black_box(run_migration(
            &cfg,
            &wl,
            MigrationScheme::CrossCounter,
            &profile.table,
        ));
    });
}
