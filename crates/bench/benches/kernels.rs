//! Micro-benchmarks over the simulator's hot kernels and the design
//! choices DESIGN.md calls out (ablations). Std-only: driven by
//! `ramp_bench::microbench` (`harness = false`), no criterion.

use ramp_bench::microbench::{bench, bench_with_setup, black_box};
use ramp_cache::{Hierarchy, HierarchyConfig};
use ramp_core::{FullCounters, MeaTracker, PageMap};
use ramp_dram::{Interleave, MemRequest, MemorySystem, Organization, TimingParams};
use ramp_faultsim::{run_monte_carlo, ChipKill, Hsiao7264, RasConfig};
use ramp_sim::rng::{SimRng, Zipf};
use ramp_sim::units::{AccessKind, Cycle, LineAddr, PageId};
use ramp_trace::{Benchmark, InstanceGen};

fn bench_trace_gen() {
    bench_with_setup(
        "trace_gen/mix_member_10k_records",
        || InstanceGen::new(Benchmark::Mcf.profile(), 0, 1, 10_000_000),
        |mut gen| {
            for _ in 0..10_000 {
                black_box(gen.next());
            }
        },
    );
}

fn bench_cache() {
    let zipf = Zipf::new(4096, 0.8);
    bench_with_setup(
        "cache/hierarchy_10k_zipf_accesses",
        || {
            (
                Hierarchy::new(HierarchyConfig::table1_scaled()),
                SimRng::from_seed(3),
            )
        },
        |(mut h, mut rng)| {
            let mut out = Vec::new();
            for i in 0..10_000u64 {
                let line = LineAddr(zipf.sample(&mut rng) as u64 * 64 + i % 64);
                h.access(
                    (i % 16) as usize,
                    line,
                    if i % 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    &mut out,
                );
                out.clear();
            }
        },
    );
}

fn bench_dram() {
    // Ablation: event-driven channels (DESIGN.md) — throughput of the
    // FR-FCFS scheduler under a saturating random-read stream.
    bench_with_setup(
        "dram/hbm_2k_random_reads",
        || (MemorySystem::hbm(), SimRng::from_seed(5)),
        |(mut mem, mut rng)| {
            let mut done = Vec::new();
            let mut t = 0u64;
            let mut issued = 0u64;
            while issued < 2_000 {
                t += 40;
                let req = MemRequest {
                    id: issued,
                    line: LineAddr(rng.below(1 << 20)),
                    kind: AccessKind::Read,
                    core: 0,
                    arrive: Cycle(t),
                };
                if mem.can_accept(&req) {
                    mem.enqueue(req).unwrap();
                    issued += 1;
                }
                mem.advance(Cycle(t), &mut done);
            }
            black_box(done.len());
        },
    );
}

fn bench_mapping_ablation() {
    // Ablation (DESIGN.md): channel-first vs bank-first interleaving under
    // a sequential stream — the bench tracks scheduler overhead per policy.
    for (name, il) in [
        ("dram/stream_channel_first", Interleave::ChannelFirst),
        ("dram/stream_bank_first", Interleave::BankFirst),
    ] {
        bench_with_setup(
            name,
            move || {
                MemorySystem::with_mapping(
                    ramp_dram::MemoryKind::Hbm,
                    TimingParams::hbm_1000(),
                    Organization::hbm(),
                    il,
                )
            },
            |mut mem| {
                let mut done = Vec::new();
                let mut t = 0u64;
                let mut issued = 0u64;
                while issued < 2_000 {
                    t += 20;
                    let req = MemRequest {
                        id: issued,
                        line: LineAddr(issued),
                        kind: AccessKind::Read,
                        core: 0,
                        arrive: Cycle(t),
                    };
                    if mem.can_accept(&req) {
                        mem.enqueue(req).unwrap();
                        issued += 1;
                    }
                    mem.advance(Cycle(t), &mut done);
                }
                mem.advance(Cycle(t + 100_000), &mut done);
                black_box(done.len());
            },
        );
    }
}

fn bench_ecc() {
    let hsiao = Hsiao7264::new();
    let check = hsiao.encode(0xdead_beef_1234_5678);
    bench("ecc/hsiao_decode", || {
        black_box(hsiao.decode(black_box(0xdead_beef_1234_5678 ^ 0x40), check));
    });
    let ck = ChipKill::new();
    bench("ecc/chipkill_classify_chip_failure", || {
        black_box(ck.classify_chip_failure(black_box(17), 0xa5));
    });
}

fn bench_faultsim() {
    bench_with_setup(
        "faultsim/hbm_1k_trials",
        || SimRng::from_seed(7),
        |mut rng| {
            black_box(run_monte_carlo(&RasConfig::hbm_secded(), 1_000, &mut rng));
        },
    );
}

fn bench_trackers() {
    // Ablation: MEA decrement-all vs full counters for hotness tracking.
    let zipf = Zipf::new(10_000, 1.0);
    bench_with_setup(
        "tracking/mea_32_10k_accesses",
        || (MeaTracker::mempod(), SimRng::from_seed(9)),
        |(mut mea, mut rng)| {
            for _ in 0..10_000 {
                mea.record(PageId(zipf.sample(&mut rng) as u64));
            }
            black_box(mea.drain());
        },
    );
    let zipf2 = Zipf::new(10_000, 1.0);
    bench_with_setup(
        "tracking/full_counters_10k_accesses",
        || (FullCounters::fc_8bit(), SimRng::from_seed(9)),
        |(mut fc, mut rng)| {
            for _ in 0..10_000 {
                fc.record(PageId(zipf2.sample(&mut rng) as u64), AccessKind::Read);
            }
            black_box(fc.mean_hotness());
        },
    );
}

fn bench_pagemap() {
    bench_with_setup(
        "pagemap/migrate_churn_1k",
        || {
            let mut pm = PageMap::new(512);
            for p in 0..512u64 {
                pm.place_in_hbm(PageId(p)).unwrap();
            }
            pm
        },
        |mut pm| {
            for p in 0..1_000u64 {
                let _ = pm.migrate(PageId(p % 512), ramp_dram::MemoryKind::Ddr);
                let _ = pm.migrate(PageId(p % 512 + 1000), ramp_dram::MemoryKind::Hbm);
            }
            black_box(pm.hbm_used());
        },
    );
}

fn main() {
    bench_trace_gen();
    bench_cache();
    bench_dram();
    bench_mapping_ablation();
    bench_ecc();
    bench_faultsim();
    bench_trackers();
    bench_pagemap();
}
