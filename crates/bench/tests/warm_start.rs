//! Warm-start contract of the harness + run store: a second harness
//! pointed at the same store directory must serve every run from disk —
//! zero simulations, bit-identical results — and a config change must
//! miss rather than serve a stale entry.

use std::sync::atomic::Ordering;

use ramp_bench::Harness;
use ramp_core::config::SystemConfig;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_serve::store::RunStore;
use ramp_trace::{Benchmark, Workload};

fn tiny() -> SystemConfig {
    SystemConfig {
        insts_per_core: 20_000,
        ..SystemConfig::smoke_test()
    }
}

/// A harness over a scratch store directory with a fast config; no
/// environment mutation, so tests stay parallel-safe.
fn harness(dir: &std::path::Path) -> Harness {
    let mut h = Harness::with_store(Some(RunStore::open(dir).unwrap()));
    h.cfg = tiny();
    h.threads = 2;
    h
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ramp-warm-start-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counters(h: &Harness) -> (u64, u64, u64) {
    let m = h.store().unwrap().metrics();
    (
        m.hits.load(Ordering::Relaxed),
        m.misses.load(Ordering::Relaxed),
        m.writes.load(Ordering::Relaxed),
    )
}

#[test]
fn warm_harness_performs_zero_simulations() {
    let dir = scratch("zero-sim");
    let wl = Workload::Homogeneous(Benchmark::Lbm);

    // Cold: simulate a profile + static + migration and persist them.
    let mut cold = harness(&dir);
    cold.prewarm_static(&[wl], &[PlacementPolicy::PerfFocused]);
    let cold_static = cold.static_run(&wl, PlacementPolicy::PerfFocused);
    let cold_mig = cold.migration_run(&wl, MigrationScheme::RelFc);
    let (hits, _, writes) = counters(&cold);
    assert_eq!(hits, 0, "cold harness found a pre-existing entry");
    assert_eq!(writes, 3, "profile + static + migration persisted");

    // Warm: a fresh harness over the same directory must not simulate.
    let mut warm = harness(&dir);
    warm.prewarm_static(&[wl], &[PlacementPolicy::PerfFocused]);
    let warm_static = warm.static_run(&wl, PlacementPolicy::PerfFocused);
    let warm_mig = warm.migration_run(&wl, MigrationScheme::RelFc);
    let warm_profile = warm.profile(&wl);
    let (hits, misses, writes) = counters(&warm);
    assert_eq!(misses, 0, "warm harness had a store miss (simulated!)");
    assert_eq!(writes, 0, "warm harness wrote (simulated!)");
    assert_eq!(hits, 3, "static + migration + profile all from disk");
    // Executor never ran: the parallel prewarm stages were skipped.
    assert_eq!(warm.metrics.total.load(Ordering::Relaxed), 0);

    // Served results are bit-identical to the simulated ones.
    assert_eq!(warm_static.ipc.to_bits(), cold_static.ipc.to_bits());
    assert_eq!(warm_static.ser_fit.to_bits(), cold_static.ser_fit.to_bits());
    assert_eq!(warm_static.telemetry, cold_static.telemetry);
    assert_eq!(warm_mig.migrations, cold_mig.migrations);
    assert_eq!(warm_mig.telemetry, cold_mig.telemetry);
    assert!(warm_profile.ipc > 0.0);
}

#[test]
fn annotated_runs_round_trip_through_the_store() {
    let dir = scratch("annotated");
    let wl = Workload::Homogeneous(Benchmark::Mcf);

    let mut cold = harness(&dir);
    let (cold_run, cold_set) = cold.annotated_run(&wl);

    let mut warm = harness(&dir);
    warm.prewarm_annotated(&[wl]);
    let (warm_run, warm_set) = warm.annotated_run(&wl);
    let (hits, misses, _) = counters(&warm);
    assert_eq!((hits, misses), (1, 0));
    assert_eq!(warm_run.ipc.to_bits(), cold_run.ipc.to_bits());
    assert_eq!(warm_set.structures, cold_set.structures);
    assert_eq!(warm_set.pinned, cold_set.pinned);
}

#[test]
fn config_changes_miss_instead_of_serving_stale_results() {
    let dir = scratch("config-miss");
    let wl = Workload::Homogeneous(Benchmark::Lbm);

    let mut cold = harness(&dir);
    cold.profile(&wl);

    // Same store, different instruction budget: must resimulate.
    let mut other = harness(&dir);
    other.cfg.insts_per_core += 10_000;
    other.profile(&wl);
    let (hits, misses, writes) = counters(&other);
    assert_eq!(hits, 0, "config change served a stale entry");
    assert_eq!((misses, writes), (1, 1));
}

#[test]
fn store_disabled_harness_still_works() {
    let mut h = Harness::with_store(None);
    h.cfg = tiny();
    h.threads = 2;
    assert!(h.store().is_none());
    let wl = Workload::Homogeneous(Benchmark::Lbm);
    let run = h.static_run(&wl, PlacementPolicy::PerfFocused);
    assert!(run.ipc > 0.0);
}
