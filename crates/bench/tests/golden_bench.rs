//! Golden-snapshot test pinning the `BENCH_*.json` scorecard schema.
//!
//! A synthetic scorecard with fixed values ([`Scorecard::example`]) is
//! rendered and compared byte-for-byte against the committed golden file
//! `tests/golden/scorecard_example.json`; any layout change (key order,
//! number formatting, new or dropped fields) fails here first. After an
//! intentional schema change:
//!
//! ```text
//! RAMP_BLESS=1 cargo test -p ramp-bench --test golden_bench
//! ```
//!
//! then re-bless the committed `BENCH_0007.json` with `scorecard update`
//! and bump [`scorecard::SCHEMA`] if the layout changed shape.
//!
//! The committed repo-root `BENCH_0007.json` is itself structurally
//! checked: schema version, required metadata, the pinned kernel set and
//! probe/baseline/speedup sections must all be present, so scorecards
//! stay comparable across PRs.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ramp_bench::scorecard::{self, baseline_of, Scorecard, REQUIRED_META, SCHEMA};
use ramp_serve::json::parse_flat;

const GOLDEN_PATH: &str = "tests/golden/scorecard_example.json";

/// The eight pinned kernels; `check` treats a name-set change as drift.
const KERNELS: &[&str] = &[
    "trace_gen",
    "zipf_sample",
    "cache_hierarchy",
    "dram_channel",
    "dram_mapping",
    "pagemap_frame_line",
    "store_append_replay_files",
    "store_append_replay_wal",
];

fn golden_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

fn committed_scorecard() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_0007.json")
}

#[test]
fn example_render_matches_golden_snapshot() {
    let rendered = Scorecard::example().render(&BTreeMap::new());
    let path = golden_file();
    if std::env::var("RAMP_BLESS").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with RAMP_BLESS=1 cargo test -p ramp-bench --test golden_bench",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "scorecard layout drifted from {GOLDEN_PATH}; if intentional, \
         re-bless and update the committed BENCH_0007.json in the same PR"
    );
}

#[test]
fn render_is_deterministic_and_preserves_baseline() {
    let card = Scorecard::example();
    assert_eq!(
        card.render(&BTreeMap::new()),
        card.render(&BTreeMap::new()),
        "render must be a pure function of its inputs"
    );
    // A second render against the first's baseline keeps every
    // baseline.* key verbatim while the current sections move.
    let first = parse_flat(card.render(&BTreeMap::new()).trim()).unwrap();
    let mut faster = Scorecard::example();
    for p in &mut faster.probes {
        p.1 /= 2.0;
    }
    let second = parse_flat(faster.render(&baseline_of(&first)).trim()).unwrap();
    for (k, v) in first.iter().filter(|(k, _)| k.starts_with("baseline.")) {
        assert_eq!(second.get(k), Some(v), "baseline key {k} not preserved");
    }
    assert_eq!(second["speedup.all_experiments_cold"], "2");
}

#[test]
fn committed_scorecard_has_required_schema() {
    let fields = scorecard::parse_file(&committed_scorecard())
        .expect("committed BENCH_0007.json parses as a flat JSON object");
    assert_eq!(
        fields.get("schema").map(String::as_str),
        Some(SCHEMA),
        "committed scorecard schema version"
    );
    for key in REQUIRED_META {
        assert!(fields.contains_key(*key), "missing metadata {key}");
    }
    // Metadata values carry their context: threads is a count, profile
    // one of the two cargo profiles, fast a bool.
    assert!(fields["meta.threads"].parse::<u64>().is_ok());
    assert!(matches!(
        fields["meta.profile"].as_str(),
        "release" | "debug"
    ));
    assert!(matches!(fields["meta.fast"].as_str(), "true" | "false"));
    for kernel in KERNELS {
        for suffix in ["median_ns", "mean_ns", "samples"] {
            let key = format!("bench.{kernel}.{suffix}");
            let v = fields.get(&key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(v.parse::<f64>().is_ok(), "{key} not numeric: {v}");
        }
        let base = format!("baseline.bench.{kernel}.median_ns");
        assert!(fields.contains_key(&base), "missing {base}");
    }
    for probe in ["all_experiments_cold_ms", "all_experiments_warm_ms"] {
        for section in ["probe", "baseline.probe"] {
            let key = format!("{section}.{probe}");
            let v = fields.get(&key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(v.parse::<f64>().unwrap() > 0.0, "{key} must be positive");
        }
        let speedup = format!("speedup.{}", probe.trim_end_matches("_ms"));
        assert!(fields.contains_key(&speedup), "missing {speedup}");
    }
}
