//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for paper-vs-measured numbers).
//!
//! Each figure has its own binary (`cargo run --release -p ramp-bench
//! --bin fig05_perf_static`); `all_experiments` runs the whole suite,
//! sharing profiling passes and baseline runs through [`Harness`].
//!
//! Simulation runs are independent `(workload, policy, config)` tasks, so
//! the harness shards them across cores with [`ramp_sim::exec`]: the
//! `prewarm_*` methods fill the caches in parallel (`-j N`, `--threads N`
//! or `RAMP_THREADS`; default: all cores), after which the figure code
//! reads cached results and formats them sequentially — stdout is
//! byte-identical at every thread count.
//!
//! The harness is also backed by the persistent `ramp_serve` run store
//! (`target/ramp-store/` by default; `RAMP_STORE=off` disables,
//! `RAMP_STORE_DIR` relocates): every `prewarm_*` method resolves store
//! hits before simulating and persists what it simulated, so a second
//! invocation of any experiment binary performs **zero** simulations and
//! prints byte-identical stdout. Store hit/miss counters are volatile
//! process observability and surface only in the `RAMP_STATS=table`
//! epilogue, never in the deterministic `json` document.

pub mod microbench;
pub mod scorecard;

use std::collections::HashMap;

use ramp_core::annotate::AnnotationSet;
use ramp_core::config::SystemConfig;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_core::runner::{
    build_annotated_sim, build_migration_sim, build_profile_sim, build_static_sim,
};
use ramp_core::system::RunResult;
use ramp_serve::spec::{run_with_recovery, ANNOTATED_POLICY, PROFILE_POLICY};
use ramp_serve::store::{run_key, RunKind, RunStore};
use ramp_sim::chaos;
use ramp_sim::exec::{try_parallel_map_metrics, ExecMetrics, StageTimer, TaskOptions};
use ramp_sim::telemetry::{render_runs_json, render_runs_table, Snapshot, StatRegistry};
use ramp_trace::Workload;

/// Process-wide memo of finished runs keyed by [`run_key`] (which hashes
/// the full config, so distinct sweep points never collide). Multi-figure
/// drivers construct fresh [`Harness`] instances per config sweep, and
/// several sweeps include the default config point — with the persistent
/// store disabled (`RAMP_STORE=off`, the scorecard's cold probe) those
/// would re-simulate identical runs. Disabled by default so tests and the
/// serving stack (whose recovery paths deliberately re-execute runs) are
/// unaffected; `all_experiments` opts in at startup.
static RUN_MEMO: std::sync::Mutex<Option<HashMap<String, RunResult>>> = std::sync::Mutex::new(None);

/// Enables the process-wide run memo (see [`RUN_MEMO`]). Idempotent.
pub fn enable_run_memo() {
    let mut memo = RUN_MEMO.lock().expect("memo lock");
    if memo.is_none() {
        *memo = Some(HashMap::new());
    }
}

fn memo_get(key: &str) -> Option<RunResult> {
    RUN_MEMO
        .lock()
        .expect("memo lock")
        .as_ref()
        .and_then(|m| m.get(key).cloned())
}

fn memo_put(key: &str, r: &RunResult) {
    if let Some(m) = RUN_MEMO.lock().expect("memo lock").as_mut() {
        m.insert(key.to_string(), r.clone());
    }
}

/// Memo-aware variant of [`ramp_core::runner::run_migration`] for sweep
/// sections that vary the config per task: a sweep point whose config
/// coincides with an already-simulated run — e.g. the default column of a
/// parameter sweep — reuses that result instead of re-simulating. Safe to
/// call from worker threads; with the memo disabled it is a plain run.
pub fn run_migration_memo(
    cfg: &SystemConfig,
    wl: &Workload,
    scheme: MigrationScheme,
    profile: &ramp_avf::StatsTable,
) -> RunResult {
    let key = run_key(cfg, RunKind::Migration, wl.name(), scheme.name());
    if let Some(r) = memo_get(&key) {
        return r;
    }
    let r = build_migration_sim(cfg, wl, scheme, profile).run();
    memo_put(&key, &r);
    r
}

/// Environment variable overriding the per-core instruction budget.
pub const ENV_INSTS: &str = "RAMP_INSTS";
/// Environment variable overriding the workload list (comma-separated).
pub const ENV_WORKLOADS: &str = "RAMP_WORKLOADS";
/// Environment variable overriding the worker-thread count.
pub const ENV_THREADS: &str = "RAMP_THREADS";
/// Environment variable selecting the telemetry dump appended to a
/// binary's output: `json` (deterministic machine-readable snapshot) or
/// `table` (human-readable, includes volatile executor stats).
pub const ENV_STATS: &str = "RAMP_STATS";

/// Worker threads for the experiment binaries: `-j N` / `-jN` /
/// `--threads N` on the command line, else `RAMP_THREADS`, else all
/// available cores.
pub fn threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "-j" || a == "--threads" {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(rest) = a.strip_prefix("-j") {
            if let Ok(n) = rest.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    ramp_sim::exec::default_threads()
}

/// The experiment configuration: Table 1 scaled, with env overrides.
pub fn experiment_config() -> SystemConfig {
    let mut cfg = SystemConfig::table1_scaled();
    if let Ok(v) = std::env::var(ENV_INSTS) {
        if let Ok(n) = v.parse::<u64>() {
            cfg.insts_per_core = n.max(10_000);
        }
    }
    cfg
}

/// The evaluated workloads (14 by default; `RAMP_WORKLOADS=mix1,lbm` to
/// restrict).
pub fn workloads() -> Vec<Workload> {
    if let Ok(list) = std::env::var(ENV_WORKLOADS) {
        let picked: Vec<Workload> = list
            .split(',')
            .filter_map(|n| Workload::from_name(n.trim()))
            .collect();
        if !picked.is_empty() {
            return picked;
        }
    }
    Workload::all()
}

/// Caches profiling passes, static runs, migration runs and annotation
/// runs so that multi-figure drivers execute each simulation exactly once
/// — and, via the `prewarm_*` methods, execute the missing ones in
/// parallel.
#[derive(Debug)]
pub struct Harness {
    /// The system configuration used by every run.
    pub cfg: SystemConfig,
    /// Worker threads used by the `prewarm_*` methods.
    pub threads: usize,
    /// Executor counters accumulated across every `prewarm_*` stage
    /// (steal counts, busy time; volatile — table mode only).
    pub metrics: ExecMetrics,
    store: Option<RunStore>,
    failures: Vec<String>,
    profiles: HashMap<&'static str, RunResult>,
    statics: HashMap<(&'static str, String), RunResult>,
    migrations: HashMap<(&'static str, &'static str), RunResult>,
    annotated: HashMap<&'static str, (RunResult, AnnotationSet)>,
}

impl Harness {
    /// Creates a harness around the (env-adjusted) experiment config,
    /// backed by the environment-configured persistent run store.
    pub fn new() -> Self {
        Self::with_store(RunStore::from_env())
    }

    /// Creates a harness with an explicit store (or none): tests use this
    /// to point at a scratch directory without touching the environment.
    pub fn with_store(store: Option<RunStore>) -> Self {
        Harness {
            cfg: experiment_config(),
            threads: threads(),
            metrics: ExecMetrics::new(),
            store,
            failures: Vec::new(),
            profiles: HashMap::new(),
            statics: HashMap::new(),
            migrations: HashMap::new(),
            annotated: HashMap::new(),
        }
    }

    /// The persistent run store backing this harness, if any.
    pub fn store(&self) -> Option<&RunStore> {
        self.store.as_ref()
    }

    /// Runs that failed (panicked past the retry budget) during a
    /// `prewarm_*` stage, plus runs skipped because a dependency failed.
    /// Empty unless `RAMP_CHAOS` (or a simulator bug) is in play — the
    /// harness isolates such failures per task, reports them in
    /// [`finish`]'s epilogue and keeps going with the runs that survived.
    pub fn failures(&self) -> &[String] {
        &self.failures
    }

    /// Fills the profile cache for `wls` in parallel (missing entries
    /// only, store hits resolved from disk first). Every other run kind
    /// consumes a profile, so call this (or a `prewarm_*` method that
    /// does) before fanning out further stages.
    pub fn prewarm_profiles(&mut self, wls: &[Workload]) {
        let mut missing: Vec<Workload> = wls
            .iter()
            .filter(|wl| !self.profiles.contains_key(wl.name()))
            .copied()
            .collect();
        missing.retain(|wl| {
            let key = run_key(&self.cfg, RunKind::Profile, wl.name(), PROFILE_POLICY);
            match memo_get(&key) {
                Some(r) => {
                    self.profiles.insert(wl.name(), r);
                    false
                }
                None => true,
            }
        });
        if let Some(store) = &self.store {
            missing.retain(|wl| {
                let key = run_key(&self.cfg, RunKind::Profile, wl.name(), PROFILE_POLICY);
                match store.load_run(&key) {
                    Some(r) => {
                        self.profiles.insert(wl.name(), r);
                        false
                    }
                    None => true,
                }
            });
        }
        if missing.is_empty() {
            return;
        }
        let timer = StageTimer::new(format!(
            "profile x{} (threads={})",
            missing.len(),
            self.threads
        ));
        let cfg = &self.cfg;
        let store = self.store.as_ref();
        let names: Vec<&'static str> = missing.iter().map(|wl| wl.name()).collect();
        let results = try_parallel_map_metrics(
            self.threads,
            missing,
            &self.metrics,
            None,
            &TaskOptions::from_env(),
            |_, wl| {
                eprintln!("  [profile] {}", wl.name());
                let key = run_key(cfg, RunKind::Profile, wl.name(), PROFILE_POLICY);
                let label = format!("{}/{PROFILE_POLICY}", wl.name());
                let (r, _) =
                    run_with_recovery(|| build_profile_sim(cfg, wl), &key, &label, store, None);
                (wl.name(), r)
            },
        );
        for result in results {
            match result {
                Ok((name, r)) => {
                    let key = run_key(&self.cfg, RunKind::Profile, name, PROFILE_POLICY);
                    memo_put(&key, &r);
                    if let Some(store) = &self.store {
                        store.store_run(&key, &r);
                    }
                    self.profiles.insert(name, r);
                }
                Err(e) => self
                    .failures
                    .push(format!("profile {}: {e}", names[e.task()])),
            }
        }
        timer.finish();
    }

    /// Fills the static-run cache for every `(workload, policy)` pair in
    /// parallel (missing entries only). Store hits are resolved from disk
    /// first; profiles are prewarmed only for pairs that actually need
    /// simulating, so a fully warm store performs zero simulations.
    pub fn prewarm_static(&mut self, wls: &[Workload], policies: &[PlacementPolicy]) {
        let mut missing: Vec<(Workload, PlacementPolicy)> = wls
            .iter()
            .flat_map(|wl| policies.iter().map(move |p| (*wl, *p)))
            .filter(|(wl, p)| !self.statics.contains_key(&(wl.name(), p.name())))
            .collect();
        missing.retain(|(wl, p)| {
            let key = run_key(&self.cfg, RunKind::Static, wl.name(), &p.name());
            match memo_get(&key) {
                Some(r) => {
                    self.statics.insert((wl.name(), p.name()), r);
                    false
                }
                None => true,
            }
        });
        if let Some(store) = &self.store {
            missing.retain(|(wl, p)| {
                let key = run_key(&self.cfg, RunKind::Static, wl.name(), &p.name());
                match store.load_run(&key) {
                    Some(r) => {
                        self.statics.insert((wl.name(), p.name()), r);
                        false
                    }
                    None => true,
                }
            });
        }
        if missing.is_empty() {
            return;
        }
        let need_profiles = dedupe_workloads(missing.iter().map(|(wl, _)| *wl));
        self.prewarm_profiles(&need_profiles);
        // A profile that failed its retry budget leaves dependents
        // unrunnable: record the skip and keep going with the rest.
        missing.retain(|(wl, p)| {
            let ok = self.profiles.contains_key(wl.name());
            if !ok {
                self.failures.push(format!(
                    "static {} {}: skipped (profile unavailable)",
                    p.name(),
                    wl.name()
                ));
            }
            ok
        });
        if missing.is_empty() {
            return;
        }
        let timer = StageTimer::new(format!(
            "static x{} (threads={})",
            missing.len(),
            self.threads
        ));
        let cfg = &self.cfg;
        let store = self.store.as_ref();
        let profiles = &self.profiles;
        let labels: Vec<String> = missing
            .iter()
            .map(|(wl, p)| format!("{} {}", p.name(), wl.name()))
            .collect();
        let results = try_parallel_map_metrics(
            self.threads,
            missing,
            &self.metrics,
            None,
            &TaskOptions::from_env(),
            |_, (wl, policy)| {
                eprintln!("  [static {}] {}", policy.name(), wl.name());
                let key = run_key(cfg, RunKind::Static, wl.name(), &policy.name());
                let label = format!("{}/{}", wl.name(), policy.name());
                let (r, _) = run_with_recovery(
                    || build_static_sim(cfg, wl, *policy, &profiles[wl.name()].table),
                    &key,
                    &label,
                    store,
                    None,
                );
                ((wl.name(), policy.name()), r)
            },
        );
        for result in results {
            match result {
                Ok((key, r)) => {
                    let skey = run_key(&self.cfg, RunKind::Static, key.0, &key.1);
                    memo_put(&skey, &r);
                    if let Some(store) = &self.store {
                        store.store_run(&skey, &r);
                    }
                    self.statics.insert(key, r);
                }
                Err(e) => self
                    .failures
                    .push(format!("static {}: {e}", labels[e.task()])),
            }
        }
        timer.finish();
    }

    /// Fills the migration-run cache for every `(workload, scheme)` pair
    /// in parallel (missing entries only; store hits resolved first,
    /// profiles prewarmed only for pairs that need simulating).
    pub fn prewarm_migration(&mut self, wls: &[Workload], schemes: &[MigrationScheme]) {
        let mut missing: Vec<(Workload, MigrationScheme)> = wls
            .iter()
            .flat_map(|wl| schemes.iter().map(move |s| (*wl, *s)))
            .filter(|(wl, s)| !self.migrations.contains_key(&(wl.name(), s.name())))
            .collect();
        missing.retain(|(wl, s)| {
            let key = run_key(&self.cfg, RunKind::Migration, wl.name(), s.name());
            match memo_get(&key) {
                Some(r) => {
                    self.migrations.insert((wl.name(), s.name()), r);
                    false
                }
                None => true,
            }
        });
        if let Some(store) = &self.store {
            missing.retain(|(wl, s)| {
                let key = run_key(&self.cfg, RunKind::Migration, wl.name(), s.name());
                match store.load_run(&key) {
                    Some(r) => {
                        self.migrations.insert((wl.name(), s.name()), r);
                        false
                    }
                    None => true,
                }
            });
        }
        if missing.is_empty() {
            return;
        }
        let need_profiles = dedupe_workloads(missing.iter().map(|(wl, _)| *wl));
        self.prewarm_profiles(&need_profiles);
        missing.retain(|(wl, s)| {
            let ok = self.profiles.contains_key(wl.name());
            if !ok {
                self.failures.push(format!(
                    "migration {} {}: skipped (profile unavailable)",
                    s.name(),
                    wl.name()
                ));
            }
            ok
        });
        if missing.is_empty() {
            return;
        }
        let timer = StageTimer::new(format!(
            "migration x{} (threads={})",
            missing.len(),
            self.threads
        ));
        let cfg = &self.cfg;
        let store = self.store.as_ref();
        let profiles = &self.profiles;
        let labels: Vec<String> = missing
            .iter()
            .map(|(wl, s)| format!("{} {}", s.name(), wl.name()))
            .collect();
        let results = try_parallel_map_metrics(
            self.threads,
            missing,
            &self.metrics,
            None,
            &TaskOptions::from_env(),
            |_, (wl, scheme)| {
                eprintln!("  [migration {}] {}", scheme.name(), wl.name());
                let key = run_key(cfg, RunKind::Migration, wl.name(), scheme.name());
                let label = format!("{}/{}", wl.name(), scheme.name());
                let (r, _) = run_with_recovery(
                    || build_migration_sim(cfg, wl, *scheme, &profiles[wl.name()].table),
                    &key,
                    &label,
                    store,
                    None,
                );
                ((wl.name(), scheme.name()), r)
            },
        );
        for result in results {
            match result {
                Ok((key, r)) => {
                    let skey = run_key(&self.cfg, RunKind::Migration, key.0, key.1);
                    memo_put(&skey, &r);
                    if let Some(store) = &self.store {
                        store.store_run(&skey, &r);
                    }
                    self.migrations.insert(key, r);
                }
                Err(e) => self
                    .failures
                    .push(format!("migration {}: {e}", labels[e.task()])),
            }
        }
        timer.finish();
    }

    /// Fills the annotation-run cache for `wls` in parallel (missing
    /// entries only; store hits resolved first, profiles prewarmed only
    /// for workloads that need simulating).
    pub fn prewarm_annotated(&mut self, wls: &[Workload]) {
        let mut missing: Vec<Workload> = wls
            .iter()
            .filter(|wl| !self.annotated.contains_key(wl.name()))
            .copied()
            .collect();
        if let Some(store) = &self.store {
            missing.retain(|wl| {
                let key = run_key(&self.cfg, RunKind::Annotated, wl.name(), ANNOTATED_POLICY);
                match store.load_annotated(&key) {
                    Some(pair) => {
                        self.annotated.insert(wl.name(), pair);
                        false
                    }
                    None => true,
                }
            });
        }
        if missing.is_empty() {
            return;
        }
        self.prewarm_profiles(&missing);
        missing.retain(|wl| {
            let ok = self.profiles.contains_key(wl.name());
            if !ok {
                self.failures.push(format!(
                    "annotated {}: skipped (profile unavailable)",
                    wl.name()
                ));
            }
            ok
        });
        if missing.is_empty() {
            return;
        }
        let timer = StageTimer::new(format!(
            "annotated x{} (threads={})",
            missing.len(),
            self.threads
        ));
        let cfg = &self.cfg;
        let store = self.store.as_ref();
        let profiles = &self.profiles;
        let names: Vec<&'static str> = missing.iter().map(|wl| wl.name()).collect();
        let results = try_parallel_map_metrics(
            self.threads,
            missing,
            &self.metrics,
            None,
            &TaskOptions::from_env(),
            |_, wl| {
                eprintln!("  [annotated] {}", wl.name());
                let key = run_key(cfg, RunKind::Annotated, wl.name(), ANNOTATED_POLICY);
                let label = format!("{}/{ANNOTATED_POLICY}", wl.name());
                let table = &profiles[wl.name()].table;
                let set = build_annotated_sim(cfg, wl, table).1;
                let (r, _) = run_with_recovery(
                    || build_annotated_sim(cfg, wl, table).0,
                    &key,
                    &label,
                    store,
                    None,
                );
                (wl.name(), (r, set))
            },
        );
        for result in results {
            match result {
                Ok((name, (r, set))) => {
                    if let Some(store) = &self.store {
                        let key = run_key(&self.cfg, RunKind::Annotated, name, ANNOTATED_POLICY);
                        store.store_annotated(&key, &r, &set);
                    }
                    self.annotated.insert(name, (r, set));
                }
                Err(e) => self
                    .failures
                    .push(format!("annotated {}: {e}", names[e.task()])),
            }
        }
        timer.finish();
    }

    /// The annotation run (Section 7) for `workload`, cached.
    pub fn annotated_run(&mut self, wl: &Workload) -> (RunResult, AnnotationSet) {
        if !self.annotated.contains_key(wl.name()) {
            self.prewarm_annotated(std::slice::from_ref(wl));
        }
        self.annotated[wl.name()].clone()
    }

    /// The DDR-only profiling run for `workload`.
    pub fn profile(&mut self, wl: &Workload) -> RunResult {
        if !self.profiles.contains_key(wl.name()) {
            let store_key = run_key(&self.cfg, RunKind::Profile, wl.name(), PROFILE_POLICY);
            let cached = memo_get(&store_key)
                .or_else(|| self.store.as_ref().and_then(|s| s.load_run(&store_key)));
            let r = match cached {
                Some(r) => r,
                None => {
                    eprintln!("  [profile] {}", wl.name());
                    let label = format!("{}/{PROFILE_POLICY}", wl.name());
                    let (r, _) = run_with_recovery(
                        || build_profile_sim(&self.cfg, wl),
                        &store_key,
                        &label,
                        self.store.as_ref(),
                        None,
                    );
                    memo_put(&store_key, &r);
                    if let Some(store) = &self.store {
                        store.store_run(&store_key, &r);
                    }
                    r
                }
            };
            self.profiles.insert(wl.name(), r);
        }
        self.profiles[wl.name()].clone()
    }

    /// A static-placement run under `policy`.
    pub fn static_run(&mut self, wl: &Workload, policy: PlacementPolicy) -> RunResult {
        let key = (wl.name(), policy.name());
        if !self.statics.contains_key(&key) {
            let store_key = run_key(&self.cfg, RunKind::Static, wl.name(), &policy.name());
            let cached = memo_get(&store_key)
                .or_else(|| self.store.as_ref().and_then(|s| s.load_run(&store_key)));
            let r = match cached {
                Some(r) => r,
                None => {
                    let profile = self.profile(wl);
                    eprintln!("  [static {}] {}", policy.name(), wl.name());
                    let label = format!("{}/{}", wl.name(), policy.name());
                    let (r, _) = run_with_recovery(
                        || build_static_sim(&self.cfg, wl, policy, &profile.table),
                        &store_key,
                        &label,
                        self.store.as_ref(),
                        None,
                    );
                    memo_put(&store_key, &r);
                    if let Some(store) = &self.store {
                        store.store_run(&store_key, &r);
                    }
                    r
                }
            };
            self.statics.insert(key.clone(), r);
        }
        self.statics[&key].clone()
    }

    /// A dynamic-migration run under `scheme`.
    pub fn migration_run(&mut self, wl: &Workload, scheme: MigrationScheme) -> RunResult {
        let key = (wl.name(), scheme.name());
        if !self.migrations.contains_key(&key) {
            let store_key = run_key(&self.cfg, RunKind::Migration, wl.name(), scheme.name());
            let cached = memo_get(&store_key)
                .or_else(|| self.store.as_ref().and_then(|s| s.load_run(&store_key)));
            let r = match cached {
                Some(r) => r,
                None => {
                    let profile = self.profile(wl);
                    eprintln!("  [migration {}] {}", scheme.name(), wl.name());
                    let label = format!("{}/{}", wl.name(), scheme.name());
                    let (r, _) = run_with_recovery(
                        || build_migration_sim(&self.cfg, wl, scheme, &profile.table),
                        &store_key,
                        &label,
                        self.store.as_ref(),
                        None,
                    );
                    memo_put(&store_key, &r);
                    if let Some(store) = &self.store {
                        store.store_run(&store_key, &r);
                    }
                    r
                }
            };
            self.migrations.insert(key, r);
        }
        self.migrations[&key].clone()
    }

    /// Every cached run's telemetry snapshot, labelled
    /// `profile/{wl}`, `static/{wl}/{policy}`, `migration/{wl}/{scheme}`
    /// or `annotated/{wl}` and sorted by label (deterministic).
    pub fn telemetry_runs(&self) -> Vec<(String, Snapshot)> {
        let mut runs: Vec<(String, Snapshot)> = Vec::new();
        for (name, r) in &self.profiles {
            runs.push((format!("profile/{name}"), r.telemetry.clone()));
        }
        for ((wl, policy), r) in &self.statics {
            runs.push((format!("static/{wl}/{policy}"), r.telemetry.clone()));
        }
        for ((wl, scheme), r) in &self.migrations {
            runs.push((format!("migration/{wl}/{scheme}"), r.telemetry.clone()));
        }
        for (name, (r, _)) in &self.annotated {
            runs.push((format!("annotated/{name}"), r.telemetry.clone()));
        }
        runs.sort_by(|a, b| a.0.cmp(&b.0));
        runs
    }

    /// Workloads ordered by decreasing MPKI (how Figures 7/8 order their
    /// x-axes: bandwidth-intensive on the left).
    pub fn workloads_by_mpki(&mut self, wls: &[Workload]) -> Vec<Workload> {
        let mut v: Vec<(f64, Workload)> =
            wls.iter().map(|wl| (self.profile(wl).mpki, *wl)).collect();
        v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        v.into_iter().map(|(_, w)| w).collect()
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

/// Deduplicates workloads by name, preserving first-seen order.
fn dedupe_workloads(wls: impl Iterator<Item = Workload>) -> Vec<Workload> {
    let mut seen = std::collections::HashSet::new();
    wls.filter(|wl| seen.insert(wl.name())).collect()
}

/// The shared epilogue of every experiment binary: dumps the cached
/// runs' telemetry to stdout when `RAMP_STATS` is set.
///
/// `json` emits one deterministic document (byte-identical at any thread
/// count *and* across cold/warm store runs — golden-tested by
/// `tests/golden_stats.rs`); `table` emits human-readable tables plus
/// the volatile process stats: executor counters and, when a store is
/// configured, its hit/miss/write counters (`[store]` section). Call
/// this as the last line of an experiment binary's `main`.
pub fn finish(h: &Harness) {
    // Failed/skipped runs are reported unconditionally (stderr, so the
    // deterministic stdout stays byte-identical), before the RAMP_STATS
    // gate: a chaos run without stats must still account for every task.
    if !h.failures.is_empty() {
        eprintln!(
            "[harness] {} run(s) failed or were skipped:",
            h.failures.len()
        );
        for f in &h.failures {
            eprintln!("  [failed] {f}");
        }
    }
    let Ok(mode) = std::env::var(ENV_STATS) else {
        return;
    };
    let runs = h.telemetry_runs();
    match mode.trim() {
        "json" => {
            // The JSON document must stay byte-identical across thread
            // counts (golden-tested), so the measurement context rides
            // on stderr instead of inside the payload.
            eprintln!(
                "[bench] context: threads={} profile={}",
                h.threads,
                scorecard::build_profile()
            );
            println!("{}", render_runs_json(&runs));
        }
        "table" => {
            print!("{}", render_runs_table(&runs));
            let mut reg = StatRegistry::new();
            h.metrics.export_telemetry(&mut reg, "exec");
            if let Some(store) = h.store() {
                store.export_telemetry(&mut reg, "store");
            }
            if let Some(chaos) = chaos::global() {
                chaos.export_telemetry(&mut reg, "chaos");
            }
            println!("=== harness ===");
            println!(
                "threads = {} | profile = {}",
                h.threads,
                scorecard::build_profile()
            );
            print!("{}", reg.snapshot_full().to_table());
        }
        other => eprintln!("{ENV_STATS}={other}: expected `json` or `table`"),
    }
}

/// A static-policy comparison row: IPC and SER relative to the
/// performance-focused placement (how Figures 7-11 are normalized).
#[derive(Clone, Debug)]
pub struct RelativeRow {
    /// Workload name.
    pub workload: String,
    /// IPC of the policy divided by perf-focused IPC.
    pub ipc_rel: f64,
    /// SER reduction factor: perf-focused SER divided by policy SER.
    pub ser_reduction: f64,
}

/// Runs `policy` against the performance-focused baseline over `wls`.
pub fn static_vs_perf(
    h: &mut Harness,
    wls: &[Workload],
    policy: PlacementPolicy,
) -> Vec<RelativeRow> {
    wls.iter()
        .map(|wl| {
            let base = h.static_run(wl, PlacementPolicy::PerfFocused);
            let run = h.static_run(wl, policy);
            RelativeRow {
                workload: wl.name().to_string(),
                ipc_rel: run.ipc / base.ipc,
                ser_reduction: base.ser_fit / run.ser_fit.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// Runs migration `scheme` against the performance-focused migration
/// baseline over `wls` (how Figures 14/15 are normalized).
pub fn migration_vs_perf(
    h: &mut Harness,
    wls: &[Workload],
    scheme: MigrationScheme,
) -> Vec<RelativeRow> {
    wls.iter()
        .map(|wl| {
            let base = h.migration_run(wl, MigrationScheme::PerfFc);
            let run = h.migration_run(wl, scheme);
            RelativeRow {
                workload: wl.name().to_string(),
                ipc_rel: run.ipc / base.ipc,
                ser_reduction: base.ser_fit / run.ser_fit.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// Prints relative rows plus their means, paper-style.
pub fn print_relative(title: &str, rows: &[RelativeRow], paper_ipc_loss: &str, paper_ser: &str) {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.3}", r.ipc_rel),
                fmt_x(r.ser_reduction),
            ]
        })
        .collect();
    print_table(
        title,
        &["workload", "IPC vs perf-focused", "SER reduction"],
        &data,
    );
    let ipc_mean = geomean_or_one(&rows.iter().map(|r| r.ipc_rel).collect::<Vec<_>>());
    let ser_mean = geomean_or_one(&rows.iter().map(|r| r.ser_reduction).collect::<Vec<_>>());
    println!(
        "\nmean: IPC loss {:.1}% (paper: {paper_ipc_loss}), SER reduction {} (paper: {paper_ser})",
        (1.0 - ipc_mean) * 100.0,
        fmt_x(ser_mean),
    );
}

/// Prints a markdown table: header row plus aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a ratio the way the paper quotes it ("1.60x").
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Geometric mean helper that tolerates empty input.
pub fn geomean_or_one(xs: &[f64]) -> f64 {
    ramp_sim::stats::geomean(xs).unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workload_list_is_fourteen() {
        if std::env::var(ENV_WORKLOADS).is_err() {
            assert_eq!(workloads().len(), 14);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_x(1.6), "1.60x");
        assert_eq!(fmt_pct(0.049), "4.9%");
        assert_eq!(geomean_or_one(&[]), 1.0);
    }
}
