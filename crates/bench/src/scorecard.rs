//! The committed performance scorecard (`BENCH_*.json`).
//!
//! A pinned suite of microbenches over the simulator's hot kernels plus
//! an `all_experiments` cold/warm wall-clock probe, rendered as one flat
//! JSON object (dotted keys, [`ramp_serve::json`] writer/scanner — no
//! JSON dependency) so CI can diff a fresh run against the committed
//! baseline with a tolerance band.
//!
//! Layout of the emitted document (`schema` pins it; golden-tested by
//! `tests/golden_bench.rs`):
//!
//! - `schema` — schema version string ([`SCHEMA`]).
//! - `meta.*` — measurement context: executor thread count, build
//!   profile, `git describe`, store modes exercised by the probe, and
//!   whether fast mode was active. Perf numbers are never comparable
//!   without these.
//! - `bench.<name>.{median_ns,mean_ns,samples}` — per-kernel timings;
//!   median of N samples with warmup iterations discarded.
//! - `probe.all_experiments_{cold,warm}_ms` — end-to-end wall clock of
//!   the `all_experiments` binary with the store off (cold: every
//!   simulation runs) and against a prewarmed store (warm: zero
//!   simulations, pure replay + formatting).
//! - `baseline.*` — frozen mirror of `bench.*`/`probe.*` from the first
//!   bless, preserved verbatim by [`update`] so speedups stay anchored
//!   to the pre-campaign numbers.
//! - `speedup.*` — `baseline` probe divided by current probe.
//!
//! Workflow (see DESIGN.md §10): `scorecard update BENCH_0007.json`
//! re-measures and rewrites the file keeping the baseline section;
//! `scorecard check BENCH_0007.json` (the `ci.sh bench` /
//! `bench-smoke` stages) re-measures and fails on schema drift or
//! regression past the tolerance band.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ramp_avf::{PageStats, StatsTable};
use ramp_cache::{Hierarchy, HierarchyConfig};
use ramp_core::config::SystemConfig;
use ramp_core::system::RunResult;
use ramp_core::PageMap;
use ramp_dram::{AddressMapping, MemRequest, MemorySystem, Organization};
use ramp_serve::json::{parse_flat, ObjWriter};
use ramp_serve::store::{run_key, RunKind, RunStore, StoreMode};
use ramp_sim::rng::{SimRng, Zipf};
use ramp_sim::telemetry::{Snapshot, Stat};
use ramp_sim::units::{AccessKind, Cycle, LineAddr, PageId};
use ramp_trace::{Benchmark, InstanceGen};

use crate::microbench::black_box;

/// Schema version of the emitted document. Bump only with a deliberate
/// layout change (and re-bless the golden snapshot + committed file).
///
/// v2: added the `store_append_replay_{files,wal}` kernel pair pinning
/// the WAL backend's append+replay overhead against the one-file-per-
/// entry backend.
pub const SCHEMA: &str = "ramp-bench-v2";

/// Environment variable: any value switches the suite to fast mode
/// (fewer samples, smaller probe) for the CI smoke stage.
pub const ENV_FAST: &str = "RAMP_BENCH_FAST";

/// Default tolerance band for [`check`]: a metric regresses when the
/// fresh measurement exceeds `committed * TOLERANCE`.
pub const TOLERANCE: f64 = 1.6;

/// Metadata keys every scorecard must carry (asserted by the golden
/// schema test so scorecards stay comparable across PRs).
pub const REQUIRED_META: &[&str] = &[
    "meta.threads",
    "meta.profile",
    "meta.git",
    "meta.store_modes",
    "meta.fast",
];

/// The build profile baked into this binary.
pub fn build_profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn fast_mode() -> bool {
    std::env::var(ENV_FAST).is_ok()
}

/// One measured kernel: median/mean over `samples` timed iterations.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Pinned kernel name (stable across PRs — the check stage treats a
    /// name-set change as schema drift).
    pub name: &'static str,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration (all samples, warmup discarded).
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: u64,
}

/// The full scorecard: context + kernel timings + probe wall clocks.
#[derive(Clone, Debug)]
pub struct Scorecard {
    /// Executor threads the probe ran with.
    pub threads: u64,
    /// `release` or `debug`.
    pub profile: String,
    /// `git describe` of the tree that was measured.
    pub git: String,
    /// Store modes the probe exercised (`cold+warm`).
    pub store_modes: String,
    /// Fast (smoke) mode?
    pub fast: bool,
    /// Kernel timings, in pinned suite order.
    pub benches: Vec<BenchResult>,
    /// `(probe key, milliseconds)` pairs, e.g.
    /// `("all_experiments_cold_ms", 8200.0)`.
    pub probes: Vec<(&'static str, f64)>,
}

impl Scorecard {
    /// A synthetic scorecard with fixed values — used by the golden
    /// schema test so the rendered layout is deterministic.
    pub fn example() -> Self {
        Scorecard {
            threads: 4,
            profile: "release".to_string(),
            git: "v0-test".to_string(),
            store_modes: "cold+warm".to_string(),
            fast: false,
            benches: vec![
                BenchResult {
                    name: "trace_gen",
                    median_ns: 1000.0,
                    mean_ns: 1100.0,
                    samples: 9,
                },
                BenchResult {
                    name: "dram_channel",
                    median_ns: 2000.0,
                    mean_ns: 2100.0,
                    samples: 9,
                },
            ],
            probes: vec![
                ("all_experiments_cold_ms", 8000.0),
                ("all_experiments_warm_ms", 2000.0),
            ],
        }
    }

    /// Renders the scorecard as the canonical flat JSON document,
    /// copying `baseline.*` keys from `baseline` (or freezing the
    /// current numbers as the baseline when `baseline` is empty).
    pub fn render(&self, baseline: &BTreeMap<String, String>) -> String {
        let mut w = ObjWriter::new();
        w.str("schema", SCHEMA);
        w.u64("meta.threads", self.threads);
        w.str("meta.profile", &self.profile);
        w.str("meta.git", &self.git);
        w.str("meta.store_modes", &self.store_modes);
        w.bool("meta.fast", self.fast);
        for b in &self.benches {
            w.f64(&format!("bench.{}.median_ns", b.name), b.median_ns);
            w.f64(&format!("bench.{}.mean_ns", b.name), b.mean_ns);
            w.u64(&format!("bench.{}.samples", b.name), b.samples);
        }
        for (k, ms) in &self.probes {
            w.f64(&format!("probe.{k}"), *ms);
        }
        // Baseline: preserved verbatim (BTreeMap => sorted key order) or
        // frozen from the current numbers on first bless.
        if baseline.is_empty() {
            for b in &self.benches {
                w.f64(&format!("baseline.bench.{}.median_ns", b.name), b.median_ns);
            }
            for (k, ms) in &self.probes {
                w.f64(&format!("baseline.probe.{k}"), *ms);
            }
        } else {
            // Kernels added after the first bless freeze their first
            // measurement, so a suite extension never orphans the
            // committed anchors of the original kernels.
            let mut merged = baseline.clone();
            for b in &self.benches {
                merged
                    .entry(format!("baseline.bench.{}.median_ns", b.name))
                    .or_insert_with(|| b.median_ns.to_string());
            }
            for (k, v) in &merged {
                match v.parse::<f64>() {
                    Ok(n) => w.f64(k, n),
                    Err(_) => w.str(k, v),
                };
            }
        }
        // Speedups: baseline probe / current probe (1.0 at first bless).
        for (k, ms) in &self.probes {
            let base = if baseline.is_empty() {
                *ms
            } else {
                baseline
                    .get(&format!("baseline.probe.{k}"))
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(*ms)
            };
            let name = k.trim_end_matches("_ms");
            w.f64(&format!("speedup.{name}"), base / ms.max(f64::MIN_POSITIVE));
        }
        let mut s = w.finish();
        s.push('\n');
        s
    }
}

/// Times `routine` (over fresh state from `setup`): `warmup` discarded
/// iterations, then `n` timed samples; returns (median_ns, mean_ns, n).
fn sample<I>(
    warmup: usize,
    n: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I),
) -> (f64, f64, u64) {
    for _ in 0..warmup {
        routine(setup());
    }
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let input = setup();
        let t0 = Instant::now();
        routine(input);
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (median, mean, samples.len() as u64)
}

/// Runs the pinned kernel suite. Names are stable: the check stage
/// treats any change to the name set as schema drift.
pub fn run_suite(fast: bool) -> Vec<BenchResult> {
    let (warmup, n) = if fast { (1, 5) } else { (3, 15) };
    let mut out = Vec::new();
    let mut push = |name: &'static str, (median_ns, mean_ns, samples): (f64, f64, u64)| {
        eprintln!("  [bench] {name}: median {:.0} ns", median_ns);
        out.push(BenchResult {
            name,
            median_ns,
            mean_ns,
            samples,
        });
    };

    push(
        "trace_gen",
        sample(
            warmup,
            n,
            || InstanceGen::new(Benchmark::Mcf.profile(), 0, 1, 10_000_000),
            |mut gen| {
                for _ in 0..10_000 {
                    black_box(gen.next());
                }
            },
        ),
    );

    let zipf = Zipf::new(65_536, 0.8);
    push(
        "zipf_sample",
        sample(
            warmup,
            n,
            || SimRng::from_seed(11),
            |mut rng| {
                for _ in 0..10_000 {
                    black_box(zipf.sample(&mut rng));
                }
            },
        ),
    );

    let zipf_c = Zipf::new(4096, 0.8);
    push(
        "cache_hierarchy",
        sample(
            warmup,
            n,
            || {
                (
                    Hierarchy::new(HierarchyConfig::table1_scaled()),
                    SimRng::from_seed(3),
                )
            },
            |(mut h, mut rng)| {
                let mut mem_out = Vec::new();
                for i in 0..10_000u64 {
                    let line = LineAddr(zipf_c.sample(&mut rng) as u64 * 64 + i % 64);
                    let kind = if i % 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    h.access((i % 16) as usize, line, kind, &mut mem_out);
                    mem_out.clear();
                }
            },
        ),
    );

    push(
        "dram_channel",
        sample(
            warmup,
            n,
            || (MemorySystem::hbm(), SimRng::from_seed(5)),
            |(mut mem, mut rng)| {
                let mut done = Vec::new();
                let mut t = 0u64;
                let mut issued = 0u64;
                while issued < 2_000 {
                    t += 40;
                    let req = MemRequest {
                        id: issued,
                        line: LineAddr(rng.below(1 << 20)),
                        kind: AccessKind::Read,
                        core: 0,
                        arrive: Cycle(t),
                    };
                    if mem.can_accept(&req) {
                        mem.enqueue(req).unwrap();
                        issued += 1;
                    }
                    mem.advance(Cycle(t), &mut done);
                }
                black_box(done.len());
            },
        ),
    );

    let mapping = AddressMapping::new(Organization::hbm());
    push(
        "dram_mapping",
        sample(
            warmup,
            n,
            || (),
            |()| {
                let mut acc = 0u64;
                for line in 0..100_000u64 {
                    let c = mapping.decode(LineAddr(line * 7 + 3));
                    acc = acc
                        .wrapping_add(c.channel as u64)
                        .wrapping_add(c.bank as u64)
                        .wrapping_add(c.row)
                        .wrapping_add(c.col);
                }
                black_box(acc);
            },
        ),
    );

    push(
        "pagemap_frame_line",
        sample(
            warmup,
            n,
            || {
                let mut pm = PageMap::new(4096);
                for core in 0..16u64 {
                    for p in 0..1024u64 {
                        let page = PageId((core << 22) | p);
                        if p % 4 == 0 {
                            let _ = pm.place_in_hbm(page);
                        } else {
                            pm.resolve(page);
                        }
                    }
                }
                (pm, SimRng::from_seed(17))
            },
            |(mut pm, mut rng)| {
                let mut acc = 0u64;
                for _ in 0..100_000u64 {
                    let page = PageId((rng.below(16) << 22) | rng.below(1024));
                    let (kind, fl) = pm.frame_line(page, rng.below(64) as usize);
                    acc = acc.wrapping_add(fl.0).wrapping_add(kind as u64);
                }
                black_box(acc);
            },
        ),
    );

    // Store append + replay: K results into a fresh store, drop, reopen
    // (the WAL backend replays the whole log), one readback. The
    // files/WAL pair pins the durable-log overhead against the
    // one-file-per-entry backend (DESIGN.md §11).
    let store_cfg = SystemConfig::smoke_test();
    let store_k = if fast { 8u64 } else { 24 };
    let store_kernel = |mode: StoreMode| {
        let dir = std::env::temp_dir().join(format!(
            "ramp-bench-store-{}-{}",
            mode.label(),
            std::process::id()
        ));
        let timing = sample(
            warmup,
            n,
            || {
                let _ = std::fs::remove_dir_all(&dir);
                dir.clone()
            },
            |dir| {
                let store = RunStore::open_mode(&dir, mode).expect("open bench store");
                let mut last = String::new();
                for i in 0..store_k {
                    let key = run_key(&store_cfg, RunKind::Migration, &format!("wl{i}"), "bench");
                    assert!(store.store_run(&key, &store_sample_run(i)));
                    last = key;
                }
                drop(store);
                let store = RunStore::open_mode(&dir, mode).expect("reopen bench store");
                black_box(store.load_run(&last).expect("readback after replay").cycles);
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
        timing
    };
    let files = store_kernel(StoreMode::Files);
    push("store_append_replay_files", files);
    let wal = store_kernel(StoreMode::Wal);
    push("store_append_replay_wal", wal);

    out
}

/// A small fully-populated run result for the store kernels; bytes vary
/// with `salt` so successive appends exercise distinct records.
fn store_sample_run(salt: u64) -> RunResult {
    let mut telemetry = Snapshot::default();
    telemetry.insert("system", "instructions", Stat::Counter(1_000 + salt));
    RunResult {
        workload: format!("wl{salt}"),
        policy: "bench".into(),
        ipc: 1.0 + salt as f64 / 7.0,
        per_core_ipc: vec![1.0, 0.5 + salt as f64],
        ser_fit: 100.0 + salt as f64,
        ser_ddr_only_fit: 1.0,
        cycles: 10_000 + salt,
        instructions: 1_000 + salt,
        mpki: 2.5,
        hbm_accesses: 40 + salt,
        ddr_accesses: 11,
        migrations: salt % 5,
        mean_read_latency: (80.0, 200.0),
        table: StatsTable::from_stats(
            vec![PageStats {
                page: PageId(salt),
                reads: salt,
                writes: 2,
                ace_hbm: 10,
                ace_ddr: 5,
                avf: 0.25,
            }],
            10_000 + salt,
        ),
        telemetry,
    }
}

/// Pinned probe configuration: the `all_experiments` binary over the
/// `lbm,mcf` pair. Fast mode shrinks the instruction budget so the
/// smoke stage stays quick (fast and full scorecards are therefore not
/// probe-comparable — [`check`] enforces matching `meta.fast`).
fn probe_env(fast: bool) -> Vec<(&'static str, String)> {
    vec![
        ("RAMP_WORKLOADS", "lbm,mcf".to_string()),
        (
            "RAMP_INSTS",
            if fast { "50000" } else { "200000" }.to_string(),
        ),
        ("RAMP_THREADS", "4".to_string()),
    ]
}

fn all_experiments_bin() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("scorecard binary has no parent dir")?;
    let bin = dir.join(format!("all_experiments{}", std::env::consts::EXE_SUFFIX));
    if bin.exists() {
        Ok(bin)
    } else {
        Err(format!(
            "{} not found (build the workspace first)",
            bin.display()
        ))
    }
}

/// Runs `all_experiments` once with `extra` env and returns wall ms.
fn timed_probe_run(bin: &Path, fast: bool, extra: &[(&str, String)]) -> Result<f64, String> {
    let mut cmd = std::process::Command::new(bin);
    for (k, v) in probe_env(fast) {
        cmd.env(k, v);
    }
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.stdout(std::process::Stdio::null());
    cmd.stderr(std::process::Stdio::null());
    let t0 = Instant::now();
    let status = cmd.status().map_err(|e| format!("spawn probe: {e}"))?;
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    if !status.success() {
        return Err(format!("probe exited with {status}"));
    }
    Ok(ms)
}

/// Runs the cold + warm `all_experiments` probes; returns probe rows.
pub fn run_probe(fast: bool) -> Result<Vec<(&'static str, f64)>, String> {
    let bin = all_experiments_bin()?;
    // Cold: store disabled, every simulation executes.
    eprintln!("  [probe] all_experiments cold (store off) ...");
    let cold = timed_probe_run(&bin, fast, &[("RAMP_STORE", "off".to_string())])?;
    eprintln!("  [probe] all_experiments cold: {cold:.0} ms");
    // Warm: prewarm a scratch store (untimed), then measure pure replay.
    let dir = std::env::temp_dir().join(format!("ramp-scorecard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let store = [("RAMP_STORE_DIR", dir.display().to_string())];
    eprintln!("  [probe] all_experiments warm (prewarming store) ...");
    timed_probe_run(&bin, fast, &store)?;
    let warm = timed_probe_run(&bin, fast, &store)?;
    eprintln!("  [probe] all_experiments warm: {warm:.0} ms");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(vec![
        ("all_experiments_cold_ms", cold),
        ("all_experiments_warm_ms", warm),
    ])
}

/// Measures a full scorecard (suite + probe) in the current mode.
pub fn measure() -> Result<Scorecard, String> {
    let fast = fast_mode();
    let benches = run_suite(fast);
    let probes = run_probe(fast)?;
    Ok(Scorecard {
        threads: 4,
        profile: build_profile().to_string(),
        git: git_describe(),
        store_modes: "cold+warm".to_string(),
        fast,
        benches,
        probes,
    })
}

/// Parses a committed scorecard file into its flat field map.
pub fn parse_file(path: &Path) -> Result<BTreeMap<String, String>, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_flat(body.trim())
}

/// Extracts the `baseline.*` keys of a parsed scorecard.
pub fn baseline_of(fields: &BTreeMap<String, String>) -> BTreeMap<String, String> {
    fields
        .iter()
        .filter(|(k, _)| k.starts_with("baseline."))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// Re-measures and rewrites `path`, preserving its `baseline.*` section
/// (or freezing the fresh numbers as the baseline when the file does
/// not exist yet).
pub fn update(path: &Path) -> Result<(), String> {
    let baseline = if path.exists() {
        baseline_of(&parse_file(path)?)
    } else {
        BTreeMap::new()
    };
    let card = measure()?;
    let body = card.render(&baseline);
    std::fs::write(path, &body).map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("wrote {}", path.display());
    for (k, v) in parse_flat(body.trim())? {
        if k.starts_with("speedup.") {
            eprintln!("  {k} = {v}");
        }
    }
    Ok(())
}

/// One regression / drift complaint from [`check`].
#[derive(Debug, PartialEq)]
pub struct Violation(pub String);

/// Diffs a fresh measurement against committed fields: schema drift
/// (version, missing metadata, kernel name-set change) is always fatal;
/// a kernel median or probe wall clock exceeding `committed * tol`
/// is a regression. Probes are only compared when both sides ran in
/// the same mode (`meta.fast` matches) — fast probes use a smaller
/// instruction budget and are not comparable to full ones.
pub fn check_against(
    fields: &BTreeMap<String, String>,
    fresh: &Scorecard,
    tol: f64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if fields.get("schema").map(String::as_str) != Some(SCHEMA) {
        out.push(Violation(format!(
            "schema drift: committed {:?}, expected {SCHEMA:?}",
            fields.get("schema")
        )));
        return out;
    }
    for key in REQUIRED_META {
        if !fields.contains_key(*key) {
            out.push(Violation(format!("schema drift: missing {key}")));
        }
    }
    let committed_names: Vec<&str> = fields
        .keys()
        .filter_map(|k| {
            k.strip_prefix("bench.")
                .and_then(|r| r.strip_suffix(".median_ns"))
        })
        .collect();
    let fresh_names: Vec<&str> = fresh.benches.iter().map(|b| b.name).collect();
    if committed_names != {
        let mut s = fresh_names.clone();
        s.sort_unstable();
        s
    } {
        out.push(Violation(format!(
            "schema drift: kernel set changed (committed {committed_names:?}, fresh {fresh_names:?})"
        )));
        return out;
    }
    for b in &fresh.benches {
        let key = format!("bench.{}.median_ns", b.name);
        let Some(committed) = fields.get(&key).and_then(|v| v.parse::<f64>().ok()) else {
            out.push(Violation(format!("schema drift: {key} not a number")));
            continue;
        };
        if b.median_ns > committed * tol {
            out.push(Violation(format!(
                "regression: {key} {:.0} ns > committed {:.0} ns * {tol}",
                b.median_ns, committed
            )));
        }
    }
    let modes_match = fields.get("meta.fast").map(String::as_str)
        == Some(if fresh.fast { "true" } else { "false" });
    if modes_match {
        for (k, ms) in &fresh.probes {
            let key = format!("probe.{k}");
            let Some(committed) = fields.get(&key).and_then(|v| v.parse::<f64>().ok()) else {
                out.push(Violation(format!("schema drift: {key} not a number")));
                continue;
            };
            if *ms > committed * tol {
                out.push(Violation(format!(
                    "regression: {key} {ms:.0} ms > committed {committed:.0} ms * {tol}"
                )));
            }
        }
    } else {
        eprintln!("  [check] probe skipped: committed meta.fast differs from this run");
    }
    out
}

/// Measures fresh and checks against the committed file at `path`.
pub fn check(path: &Path, tol: f64) -> Result<Vec<Violation>, String> {
    let fields = parse_file(path)?;
    let fresh = measure()?;
    Ok(check_against(&fields, &fresh, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_example() -> BTreeMap<String, String> {
        let card = Scorecard::example();
        parse_flat(card.render(&BTreeMap::new()).trim()).unwrap()
    }

    #[test]
    fn render_freezes_baseline_on_first_bless() {
        let fields = committed_example();
        assert_eq!(fields["schema"], SCHEMA);
        assert_eq!(fields["bench.trace_gen.median_ns"], "1000");
        assert_eq!(fields["baseline.bench.trace_gen.median_ns"], "1000");
        assert_eq!(fields["baseline.probe.all_experiments_cold_ms"], "8000");
        assert_eq!(fields["speedup.all_experiments_cold"], "1");
        for key in REQUIRED_META {
            assert!(fields.contains_key(*key), "missing {key}");
        }
    }

    #[test]
    fn render_preserves_existing_baseline_and_computes_speedup() {
        let first = committed_example();
        let mut faster = Scorecard::example();
        faster.probes = vec![
            ("all_experiments_cold_ms", 4000.0),
            ("all_experiments_warm_ms", 1000.0),
        ];
        let second = parse_flat(faster.render(&baseline_of(&first)).trim()).unwrap();
        assert_eq!(second["baseline.probe.all_experiments_cold_ms"], "8000");
        assert_eq!(second["probe.all_experiments_cold_ms"], "4000");
        assert_eq!(second["speedup.all_experiments_cold"], "2");
        assert_eq!(second["speedup.all_experiments_warm"], "2");
    }

    #[test]
    fn render_freezes_baseline_for_kernels_added_after_first_bless() {
        let first = committed_example();
        let mut extended = Scorecard::example();
        extended.benches.push(BenchResult {
            name: "new_kernel",
            median_ns: 512.0,
            mean_ns: 600.0,
            samples: 9,
        });
        let second = parse_flat(extended.render(&baseline_of(&first)).trim()).unwrap();
        // Old anchors survive verbatim; the new kernel gets frozen at
        // its first measurement.
        assert_eq!(second["baseline.bench.trace_gen.median_ns"], "1000");
        assert_eq!(second["baseline.bench.new_kernel.median_ns"], "512");
    }

    #[test]
    fn check_passes_identical_and_flags_regression() {
        let fields = committed_example();
        let card = Scorecard::example();
        assert_eq!(check_against(&fields, &card, TOLERANCE), Vec::new());
        let mut slow = Scorecard::example();
        slow.benches[0].median_ns = 1000.0 * TOLERANCE * 2.0;
        slow.probes[0].1 = 8000.0 * TOLERANCE * 2.0;
        let violations = check_against(&fields, &slow, TOLERANCE);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].0.contains("bench.trace_gen.median_ns"));
        assert!(violations[1].0.contains("probe.all_experiments_cold_ms"));
    }

    #[test]
    fn check_flags_schema_drift() {
        let mut fields = committed_example();
        fields.insert("schema".into(), "ramp-bench-v0".into());
        let v = check_against(&fields, &Scorecard::example(), TOLERANCE);
        assert!(v[0].0.contains("schema drift"), "{v:?}");

        let mut fields = committed_example();
        fields.remove("meta.git");
        let v = check_against(&fields, &Scorecard::example(), TOLERANCE);
        assert!(v.iter().any(|x| x.0.contains("missing meta.git")), "{v:?}");

        let mut renamed = Scorecard::example();
        renamed.benches[0].name = "trace_gen_v2";
        let v = check_against(&committed_example(), &renamed, TOLERANCE);
        assert!(v[0].0.contains("kernel set changed"), "{v:?}");
    }

    #[test]
    fn probe_comparison_requires_matching_mode() {
        let fields = committed_example();
        let mut fast = Scorecard::example();
        fast.fast = true;
        fast.probes[0].1 = 1e9; // would regress if compared
        assert_eq!(check_against(&fields, &fast, TOLERANCE), Vec::new());
    }
}
