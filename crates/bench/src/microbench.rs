//! A std-only micro-benchmark harness (the in-tree `criterion`
//! replacement).
//!
//! `cargo bench` still works — the bench targets set `harness = false`
//! and drive this module from a plain `main`. Timing is wall-clock
//! [`Instant`] with warmup, adaptive batching and a trimmed mean, which
//! is plenty to spot order-of-magnitude regressions in the simulator's
//! hot kernels; it makes no claim to criterion's statistical rigor.
//!
//! `RAMP_BENCH_MS` bounds the measurement window per benchmark
//! (default 300 ms); `RAMP_BENCH_FILTER` substring-filters benchmark
//! names, mirroring `cargo bench <filter>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_ms() -> u64 {
    std::env::var("RAMP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn filter() -> Option<String> {
    // First non-flag CLI arg (cargo bench passes the filter through), or
    // the RAMP_BENCH_FILTER variable.
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .or_else(|| std::env::var("RAMP_BENCH_FILTER").ok())
}

fn skip(name: &str) -> bool {
    filter().is_some_and(|f| !name.contains(&f))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(name: &str, samples: &mut Vec<f64>) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = samples[samples.len() / 2];
    // Trimmed mean over the central 80% damps scheduler noise.
    let lo = samples.len() / 10;
    let hi = samples.len() - lo;
    let central = &samples[lo..hi];
    let mean = central.iter().sum::<f64>() / central.len() as f64;
    println!(
        "{name:<44} {:>12}/iter (median {:>12}, {} samples)",
        fmt_ns(mean),
        fmt_ns(median),
        samples.len()
    );
}

/// Times `routine` (no per-iteration setup): warmup, then sample until
/// the measurement window closes.
pub fn bench(name: &str, mut routine: impl FnMut()) {
    bench_with_setup(name, || (), move |()| routine());
}

/// Times `routine` only, re-running `setup` before every iteration
/// (the `iter_batched` pattern: untimed fresh state per iteration).
pub fn bench_with_setup<I>(name: &str, mut setup: impl FnMut() -> I, mut routine: impl FnMut(I)) {
    if skip(name) {
        return;
    }
    // Warmup: a few iterations so lazily-initialized state and caches
    // settle before sampling.
    for _ in 0..3 {
        routine(setup());
    }
    let window = Duration::from_millis(measure_ms());
    let started = Instant::now();
    let mut samples = Vec::new();
    while started.elapsed() < window || samples.len() < 10 {
        let input = setup();
        let t0 = Instant::now();
        routine(input);
        samples.push(t0.elapsed().as_nanos() as f64);
        if samples.len() >= 100_000 {
            break;
        }
    }
    report(name, &mut samples);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 us");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3e9), "3.000 s");
    }

    #[test]
    fn report_handles_small_sample_sets() {
        let mut s = vec![5.0, 1.0, 3.0];
        report("test", &mut s);
        assert_eq!(s, vec![1.0, 3.0, 5.0]);
    }
}
