//! Figure 3: ACE-interval semantics of memory AVF, demonstrated on the
//! four cache-line scenarios of the paper's illustration.

use ramp_avf::AvfTracker;
use ramp_bench::print_table;
use ramp_dram::MemoryKind;
use ramp_sim::units::{AccessKind, Cycle, PageId};

fn scenario(accesses: &[(u64, AccessKind)]) -> f64 {
    let mut t = AvfTracker::new(Cycle(0));
    for &(cycle, kind) in accesses {
        t.on_access(PageId(0), 0, kind, Cycle(cycle), MemoryKind::Ddr);
    }
    // One line of the page over a 1000-cycle window; scale to line-AVF.
    t.finish(Cycle(1000)).get(PageId(0)).unwrap().avf * 64.0
}

fn main() {
    use AccessKind::{Read as R, Write as W};
    let rows = vec![
        vec![
            "(a) WR,RD,RD,WR".into(),
            format!(
                "{:.1}%",
                scenario(&[(100, W), (400, R), (700, R), (900, W)]) * 100.0
            ),
            "ACE between write and last read (60%)".into(),
        ],
        vec![
            "(b) WR,WR,RD".into(),
            format!("{:.1}%", scenario(&[(100, W), (600, W), (700, R)]) * 100.0),
            "strike before 2nd write masked (10%)".into(),
        ],
        vec![
            "(c) same hotness, early reads".into(),
            format!(
                "{:.1}%",
                scenario(&[(100, W), (200, R), (300, R), (400, W)]) * 100.0
            ),
            "reads right after write: low AVF (20%)".into(),
        ],
        vec![
            "(d) same hotness, late reads".into(),
            format!(
                "{:.1}%",
                scenario(&[(100, W), (700, R), (900, R), (950, W)]) * 100.0
            ),
            "reads long after write: high AVF (80%)".into(),
        ],
    ];
    print_table(
        "Figure 3: line AVF per access sequence (1000-cycle window)",
        &["scenario", "line AVF", "interpretation"],
        &rows,
    );
    println!(
        "\n(c) and (d) have identical hotness but 4x different AVF — the paper's core insight."
    );
}
