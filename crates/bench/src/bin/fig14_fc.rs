//! Figure 14: reliability-aware Full-Counter migration.
//!
//! Paper: SER reduced 1.8x at 6 % performance loss vs performance-focused
//! migration; milc even speeds up slightly (fewer migrations).

use ramp_bench::{migration_vs_perf, print_relative, workloads, Harness};
use ramp_core::migration::MigrationScheme;

fn main() {
    let mut h = Harness::new();
    let all = workloads();
    h.prewarm_migration(&all, &[MigrationScheme::RelFc, MigrationScheme::PerfFc]);
    let wls = h.workloads_by_mpki(&all);
    let rows = migration_vs_perf(&mut h, &wls, MigrationScheme::RelFc);
    print_relative(
        "Figure 14: reliability-aware migration (Full Counters)",
        &rows,
        "6%",
        "1.8x",
    );
    ramp_bench::finish(&h);
}
