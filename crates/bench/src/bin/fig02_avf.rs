//! Figure 2: mean memory AVF per workload on a DDR-only system.
//!
//! Paper: AVF varies from 1.7 % (astar) to 22.5 % (milc), motivating
//! AVF-aware application-specific placement.

use ramp_bench::{print_table, workloads, Harness};

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_profiles(&wls);
    let mut rows: Vec<(f64, String)> = wls
        .iter()
        .map(|wl| {
            let r = h.profile(wl);
            (r.table.mean_avf(), wl.name().to_string())
        })
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|(avf, name)| vec![name.clone(), format!("{:.2}%", avf * 100.0)])
        .collect();
    print_table(
        "Figure 2: mean memory AVF (DDR-only), increasing order",
        &["workload", "mean AVF"],
        &data,
    );
    println!(
        "\nspan: {:.2}% .. {:.2}% (paper: 1.7% astar .. 22.5% milc)",
        rows.first().map(|r| r.0 * 100.0).unwrap_or(0.0),
        rows.last().map(|r| r.0 * 100.0).unwrap_or(0.0)
    );
    ramp_bench::finish(&h);
}
