//! Figure 8: balanced static placement (hot & low-risk quadrant only).
//!
//! Paper: SER reduced 3x at 14 % performance loss vs performance-focused.

use ramp_bench::{print_relative, static_vs_perf, workloads, Harness};
use ramp_core::placement::PlacementPolicy;

fn main() {
    let mut h = Harness::new();
    let all = workloads();
    h.prewarm_static(
        &all,
        &[PlacementPolicy::Balanced, PlacementPolicy::PerfFocused],
    );
    let wls = h.workloads_by_mpki(&all);
    let rows = static_vs_perf(&mut h, &wls, PlacementPolicy::Balanced);
    print_relative(
        "Figure 8: balanced static placement (ordered by MPKI desc)",
        &rows,
        "14%",
        "3.0x",
    );
    ramp_bench::finish(&h);
}
