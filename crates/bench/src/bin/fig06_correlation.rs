//! Figure 6: hotness vs AVF of the 1000 hottest pages of mix1.
//!
//! Paper: most hot pages sit near 80 % AVF but some are below 60 % and as
//! low as 5 %; the footprint-wide hotness-AVF correlation is ~0.08.

use ramp_avf::{hotness_avf_correlation, hottest_pages};
use ramp_bench::{print_table, Harness};
use ramp_trace::{MixId, Workload};

fn main() {
    let mut h = Harness::new();
    let wl = Workload::Mix(MixId::Mix1);
    let r = h.profile(&wl);
    let hot = hottest_pages(&r.table);
    let take = hot.len().min(1000);
    // Print a decile summary of the top-1000 series (the figure's shape).
    let mut rows = Vec::new();
    for d in 0..10 {
        let idx = (d * take) / 10;
        let s = hot[idx];
        rows.push(vec![
            format!("{}", idx),
            format!("{}", s.hotness()),
            format!("{:.1}%", s.avf * 100.0),
            format!("{:.2}", s.wr_ratio()),
        ]);
    }
    print_table(
        "Figure 6: top-1000 hottest pages of mix1 (decile samples)",
        &["rank", "accesses", "AVF", "Wr ratio"],
        &rows,
    );
    let lo = hot[..take].iter().map(|s| s.avf).fold(f64::MAX, f64::min);
    let hi = hot[..take].iter().map(|s| s.avf).fold(0.0f64, f64::max);
    let rho = hotness_avf_correlation(&r.table).unwrap_or(f64::NAN);
    println!(
        "\ntop-1000 AVF range: {:.1}%..{:.1}% (paper: 5%..~90%)",
        lo * 100.0,
        hi * 100.0
    );
    println!(
        "footprint hotness-AVF correlation: {rho:.3} (paper: 0.08) — weak/moderate, far below 1"
    );
    ramp_bench::finish(&h);
}
