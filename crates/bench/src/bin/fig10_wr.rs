//! Figure 10: top-Wr-ratio heuristic placement.
//!
//! Paper: SER reduced 1.8x at 8.1 % performance loss vs perf-focused.

use ramp_bench::{print_relative, static_vs_perf, workloads, Harness};
use ramp_core::placement::PlacementPolicy;

fn main() {
    let mut h = Harness::new();
    let all = workloads();
    h.prewarm_static(
        &all,
        &[PlacementPolicy::WrRatio, PlacementPolicy::PerfFocused],
    );
    let wls = h.workloads_by_mpki(&all);
    let rows = static_vs_perf(&mut h, &wls, PlacementPolicy::WrRatio);
    print_relative("Figure 10: Wr-ratio placement", &rows, "8.1%", "1.8x");
    ramp_bench::finish(&h);
}
