//! Extension experiment (Section 7, closing remark): "Supplementing such an
//! annotation-driven static data placement scheme with a reliability-aware
//! migration mechanism could potentially further improve the overall
//! reliability of the system." We measure exactly that: annotations alone
//! vs annotations + Cross-Counter migration of the unpinned capacity.

use ramp_bench::{fmt_x, geomean_or_one, print_table, workloads, Harness};
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_core::runner::run_annotated_with_migration;
use ramp_sim::exec::{parallel_map, StageTimer};

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_static(&wls, &[PlacementPolicy::PerfFocused]);
    h.prewarm_annotated(&wls);
    let profiles: Vec<_> = wls.iter().map(|wl| h.profile(wl)).collect();
    let timer = StageTimer::new(format!(
        "annotated+CC x{} (threads={})",
        wls.len(),
        h.threads
    ));
    let boths = {
        let cfg = &h.cfg;
        parallel_map(h.threads, wls.clone(), |i, wl| {
            run_annotated_with_migration(cfg, wl, MigrationScheme::CrossCounter, &profiles[i].table)
                .0
        })
    };
    timer.finish();
    let mut rows = Vec::new();
    let mut ann_sers = Vec::new();
    let mut both_sers = Vec::new();
    for (i, wl) in wls.iter().enumerate() {
        let base = h.static_run(wl, PlacementPolicy::PerfFocused);
        let (ann, _) = h.annotated_run(wl);
        let both = &boths[i];
        let ann_red = base.ser_fit / ann.ser_fit.max(f64::MIN_POSITIVE);
        let both_red = base.ser_fit / both.ser_fit.max(f64::MIN_POSITIVE);
        ann_sers.push(ann_red);
        both_sers.push(both_red);
        rows.push(vec![
            wl.name().to_string(),
            format!("{:.3} / {}", ann.ipc / base.ipc, fmt_x(ann_red)),
            format!("{:.3} / {}", both.ipc / base.ipc, fmt_x(both_red)),
        ]);
    }
    print_table(
        "Extension: annotations alone vs annotations + Cross-Counter migration (IPC rel / SER reduction vs perf-static)",
        &["workload", "annotations", "annotations + CC"],
        &rows,
    );
    println!(
        "\nmean SER reduction: annotations {} -> with CC {} (paper: 'could potentially further improve')",
        fmt_x(geomean_or_one(&ann_sers)),
        fmt_x(geomean_or_one(&both_sers))
    );
    ramp_bench::finish(&h);
}
