//! Performance-scorecard CLI (see DESIGN.md §10).
//!
//! ```text
//! scorecard run                      measure, print the JSON document
//! scorecard update BENCH_0007.json   measure, rewrite the file keeping
//!                                    its baseline.* section
//! scorecard check BENCH_0007.json [--tol X]
//!                                    measure, diff against the file;
//!                                    exit 1 on regression/schema drift
//! ```
//!
//! `RAMP_BENCH_FAST=1` switches to fast mode (fewer samples, smaller
//! probe) for the CI smoke stage.

use std::path::Path;
use std::process::ExitCode;

use ramp_bench::scorecard;

fn usage() -> ExitCode {
    eprintln!("usage: scorecard run | update <file> | check <file> [--tol X]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => scorecard::measure().map(|card| {
            print!("{}", card.render(&Default::default()));
        }),
        Some("update") => match args.get(1) {
            Some(path) => scorecard::update(Path::new(path)),
            None => return usage(),
        },
        Some("check") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let mut tol = scorecard::TOLERANCE;
            if let Some(i) = args.iter().position(|a| a == "--tol") {
                match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) if t >= 1.0 => tol = t,
                    _ => return usage(),
                }
            }
            match scorecard::check(Path::new(path), tol) {
                Ok(violations) if violations.is_empty() => {
                    eprintln!("scorecard OK (tolerance {tol}x vs {path})");
                    Ok(())
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("scorecard FAIL: {}", v.0);
                    }
                    return ExitCode::FAILURE;
                }
                Err(e) => Err(e),
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scorecard: {e}");
            ExitCode::FAILURE
        }
    }
}
