//! Figure 13: migration-interval sweep.
//!
//! Paper: sweeping the FC interval over three workloads of different
//! memory intensity shows ~100 ms (scaled here to cycles) performs best.

use ramp_bench::{print_table, Harness};
use ramp_core::migration::MigrationScheme;
use ramp_core::runner::run_migration;
use ramp_trace::{Benchmark, MixId, Workload};

fn main() {
    let mut h = Harness::new();
    // Low / medium / high memory intensity, as in the paper.
    let wls = [
        Workload::Homogeneous(Benchmark::Astar),
        Workload::Mix(MixId::Mix1),
        Workload::Homogeneous(Benchmark::Lbm),
    ];
    let intervals: [u64; 4] = [100_000, 200_000, 400_000, 1_600_000];
    let mut rows = Vec::new();
    for wl in &wls {
        let profile = h.profile(wl);
        let mut row = vec![wl.name().to_string()];
        for &iv in &intervals {
            let mut cfg = h.cfg.clone();
            cfg.fc_interval_cycles = iv;
            eprintln!("  [sweep {} @ {iv}]", wl.name());
            let r = run_migration(&cfg, wl, MigrationScheme::PerfFc, &profile.table);
            row.push(format!("{:.3}", r.ipc));
        }
        rows.push(row);
    }
    print_table(
        "Figure 13: FC-interval sweep (IPC per interval, cycles)",
        &["workload", "100k", "200k", "400k (default)", "1.6M"],
        &rows,
    );
    println!("\npaper: 100 ms (our scaled 400k-cycle default) is the sweet spot.");
}
