//! Figure 13: migration-interval sweep.
//!
//! Paper: sweeping the FC interval over three workloads of different
//! memory intensity shows ~100 ms (scaled here to cycles) performs best.

use ramp_bench::{print_table, Harness};
use ramp_core::migration::MigrationScheme;
use ramp_core::runner::run_migration;
use ramp_sim::exec::parallel_map;
use ramp_trace::{Benchmark, MixId, Workload};

fn main() {
    let mut h = Harness::new();
    // Low / medium / high memory intensity, as in the paper.
    let wls = [
        Workload::Homogeneous(Benchmark::Astar),
        Workload::Mix(MixId::Mix1),
        Workload::Homogeneous(Benchmark::Lbm),
    ];
    let intervals: [u64; 4] = [100_000, 200_000, 400_000, 1_600_000];
    h.prewarm_profiles(&wls);
    let profiles: Vec<_> = wls.iter().map(|wl| h.profile(wl)).collect();
    // Per-task configs bypass the harness caches, so the sweep shards
    // directly through exec; results return in input order.
    let sweep: Vec<(Workload, u64)> = wls
        .iter()
        .flat_map(|wl| intervals.iter().map(move |&iv| (*wl, iv)))
        .collect();
    let ipcs = {
        let base_cfg = &h.cfg;
        parallel_map(h.threads, sweep, |i, (wl, iv)| {
            let mut cfg = base_cfg.clone();
            cfg.fc_interval_cycles = *iv;
            run_migration(
                &cfg,
                wl,
                MigrationScheme::PerfFc,
                &profiles[i / intervals.len()].table,
            )
            .ipc
        })
    };
    let mut rows = Vec::new();
    for (wi, wl) in wls.iter().enumerate() {
        let mut row = vec![wl.name().to_string()];
        for ii in 0..intervals.len() {
            row.push(format!("{:.3}", ipcs[wi * intervals.len() + ii]));
        }
        rows.push(row);
    }
    print_table(
        "Figure 13: FC-interval sweep (IPC per interval, cycles)",
        &["workload", "100k", "200k", "400k (default)", "1.6M"],
        &rows,
    );
    println!("\npaper: 100 ms (our scaled 400k-cycle default) is the sweet spot.");
    ramp_bench::finish(&h);
}
