//! Calibration diagnostics: per-workload memory AVF, MPKI, footprint,
//! quadrant fractions and correlations — the knobs DESIGN.md's profile
//! tuning targets (Figures 2, 4, 6 and 9).

use ramp_avf::{
    hotness_avf_correlation, hottest_pages, writeratio_avf_correlation, Quadrant, QuadrantAnalysis,
};
use ramp_bench::{print_table, workloads, Harness};

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_profiles(&wls);
    let mut rows = Vec::new();
    for wl in wls {
        let r = h.profile(&wl);
        let q = QuadrantAnalysis::new(&r.table);
        let rho_hot = hotness_avf_correlation(&r.table).unwrap_or(f64::NAN);
        let rho_wr = writeratio_avf_correlation(&r.table, 1000).unwrap_or(f64::NAN);
        // AVF mass captured by the 4096 hottest pages (what a perf-focused
        // placement would move to HBM): the paper's 287x implies ~0.3.
        let hot = hottest_pages(&r.table);
        let total_mass: f64 = r.table.pages().iter().map(|s| s.avf).sum();
        let hot_mass: f64 = hot.iter().take(4096).map(|s| s.avf).sum();
        let share = if total_mass > 0.0 {
            hot_mass / total_mass
        } else {
            0.0
        };
        rows.push(vec![
            wl.name().to_string(),
            format!("{:.2}", r.ipc),
            format!("{:.1}", r.mpki),
            format!("{}", r.table.pages().len()),
            format!("{:.2}%", r.table.mean_avf() * 100.0),
            format!("{:.1}%", q.fraction(Quadrant::HotLowRisk) * 100.0),
            format!("{:.1}%", q.fraction(Quadrant::HotHighRisk) * 100.0),
            format!("{:.1}%", q.fraction(Quadrant::ColdHighRisk) * 100.0),
            format!("{:.2}", rho_hot),
            format!("{:.2}", rho_wr),
            format!("{:.2}", share),
        ]);
    }
    print_table(
        "Calibration (DDR-only profiling runs)",
        &[
            "workload",
            "IPC",
            "MPKI",
            "pages",
            "meanAVF",
            "hot&low",
            "hot&high",
            "cold&high",
            "rho(hot,avf)",
            "rho(wr,avf)",
            "hot4096 avf share",
        ],
        &rows,
    );
    ramp_bench::finish(&h);
}
