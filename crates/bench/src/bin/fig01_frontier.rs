//! Figure 1: the reliability-performance frontier of hot-page placement.
//!
//! Sweeping the fraction of HBM filled with the hottest pages (astar,
//! cactusADM, mix1 averaged) traces the frontier: full performance costs
//! orders of magnitude in SER. Reliability-aware points (Wr2, balanced)
//! sit in the otherwise-inaccessible top-right region.

use ramp_bench::{fmt_x, geomean_or_one, print_table, Harness};
use ramp_core::placement::PlacementPolicy;
use ramp_trace::{Benchmark, MixId, Workload};

fn main() {
    let mut h = Harness::new();
    let wls = [
        Workload::Homogeneous(Benchmark::Astar),
        Workload::Homogeneous(Benchmark::CactusADM),
        Workload::Mix(MixId::Mix1),
    ];
    h.prewarm_static(
        &wls,
        &[
            PlacementPolicy::FracHottest(0.0),
            PlacementPolicy::FracHottest(0.25),
            PlacementPolicy::FracHottest(0.5),
            PlacementPolicy::FracHottest(0.75),
            PlacementPolicy::FracHottest(1.0),
            PlacementPolicy::Wr2Ratio,
            PlacementPolicy::Balanced,
        ],
    );
    let mut rows = Vec::new();
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut ipcs = Vec::new();
        let mut sers = Vec::new();
        for wl in &wls {
            let ddr = h.profile(wl);
            let r = h.static_run(wl, PlacementPolicy::FracHottest(frac));
            ipcs.push(r.ipc / ddr.ipc);
            sers.push(r.ser_vs_ddr_only());
        }
        rows.push(vec![
            format!("{:.0}% of HBM", frac * 100.0),
            fmt_x(geomean_or_one(&ipcs)),
            fmt_x(geomean_or_one(&sers)),
        ]);
    }
    // Reliability-aware reference points.
    for policy in [PlacementPolicy::Wr2Ratio, PlacementPolicy::Balanced] {
        let mut ipcs = Vec::new();
        let mut sers = Vec::new();
        for wl in &wls {
            let ddr = h.profile(wl);
            let r = h.static_run(wl, policy);
            ipcs.push(r.ipc / ddr.ipc);
            sers.push(r.ser_vs_ddr_only());
        }
        rows.push(vec![
            policy.name(),
            fmt_x(geomean_or_one(&ipcs)),
            fmt_x(geomean_or_one(&sers)),
        ]);
    }
    print_table(
        "Figure 1: performance vs reliability frontier (astar+cactusADM+mix1)",
        &["placement", "IPC vs DDR-only", "SER vs DDR-only"],
        &rows,
    );
    println!("\npaper: hot-page placement trades up to ~287x SER for 1.6x IPC; reliability-aware\npoints reach near-full IPC at a fraction of the SER.");
    ramp_bench::finish(&h);
}
