//! Figure 1: the reliability-performance frontier of hot-page placement.
//!
//! Sweeping the fraction of HBM filled with the hottest pages (astar,
//! cactusADM, mix1 averaged) traces the frontier: full performance costs
//! orders of magnitude in SER. Reliability-aware points (Wr2, balanced)
//! sit in the otherwise-inaccessible top-right region.
//!
//! Since the sweep engine landed this binary is a thin client of
//! `ramp_sweep`: the workload×placement plane is enumerated as a
//! [`SweepSpec`], executed through the store-deduped engine (so a
//! second invocation simulates nothing), and the Pareto frontier is the
//! engine's dominance ranking rather than hand-read off the table.

use ramp_bench::{experiment_config, fmt_x, geomean_or_one, print_table, threads};
use ramp_serve::store::RunStore;
use ramp_sweep::engine::{self, SweepRun};
use ramp_sweep::spec::{parse_action, Strategy, SweepSpec};
use ramp_trace::{Benchmark, MixId, Workload};

/// The placement axis, in table order: the frac-hottest sweep plus the
/// reliability-aware reference points (tokens are sweep policy tokens).
const PLACEMENTS: [&str; 7] = [
    "frac-hottest-0.00",
    "frac-hottest-0.25",
    "frac-hottest-0.50",
    "frac-hottest-0.75",
    "frac-hottest-1.00",
    "wr2-ratio",
    "balanced",
];

fn lookup<'a>(run: &'a SweepRun, workload: &str, policy: &str) -> &'a engine::PointRow {
    run.rows
        .iter()
        .find(|r| r.workload == workload && r.policy == policy)
        .unwrap_or_else(|| panic!("sweep produced no {workload}/{policy} row"))
}

fn main() {
    let wls = [
        Workload::Homogeneous(Benchmark::Astar),
        Workload::Homogeneous(Benchmark::CactusADM),
        Workload::Mix(MixId::Mix1),
    ];
    let mut policies: Vec<(String, _)> =
        vec![("profile".to_string(), parse_action("profile").unwrap())];
    for token in PLACEMENTS {
        policies.push((token.to_string(), parse_action(token).unwrap()));
    }
    let spec = SweepSpec {
        name: "fig01-frontier".to_string(),
        strategy: Strategy::Grid,
        seed: 0,
        samples: 0,
        rungs: 3,
        base_label: "table1".to_string(),
        base: experiment_config(),
        workloads: wls.to_vec(),
        policies,
        knobs: Vec::new(),
    };
    let store = RunStore::from_env();
    let run = engine::run_local(&spec, store.as_ref(), threads()).unwrap_or_else(|e| {
        eprintln!("fig01_frontier: {e}");
        std::process::exit(1);
    });

    let mut rows = Vec::new();
    for (token, label) in PLACEMENTS.iter().map(|t| {
        let label = match *t {
            "frac-hottest-0.00" => "0% of HBM".to_string(),
            "frac-hottest-0.25" => "25% of HBM".to_string(),
            "frac-hottest-0.50" => "50% of HBM".to_string(),
            "frac-hottest-0.75" => "75% of HBM".to_string(),
            "frac-hottest-1.00" => "100% of HBM".to_string(),
            other => other.to_string(),
        };
        (*t, label)
    }) {
        let mut ipcs = Vec::new();
        let mut sers = Vec::new();
        for wl in &wls {
            let ddr = lookup(&run, wl.name(), "ddr-only");
            let r = lookup(&run, wl.name(), token);
            ipcs.push(r.ipc / ddr.ipc);
            sers.push(r.ser_vs_ddr_only);
        }
        rows.push(vec![
            label,
            fmt_x(geomean_or_one(&ipcs)),
            fmt_x(geomean_or_one(&sers)),
        ]);
    }
    print_table(
        "Figure 1: performance vs reliability frontier (astar+cactusADM+mix1)",
        &["placement", "IPC vs DDR-only", "SER vs DDR-only"],
        &rows,
    );

    // The engine's non-dominated sort over every (workload, placement)
    // point: which placements are Pareto-optimal in (IPC, FIT) space.
    let mut frontier: Vec<String> = run
        .frontier()
        .into_iter()
        .map(|i| format!("{}/{}", run.rows[i].workload, run.rows[i].policy))
        .collect();
    frontier.sort();
    println!(
        "\nPareto frontier ({} of {} points): {}",
        frontier.len(),
        run.rows.len(),
        frontier.join(", ")
    );
    println!("\npaper: hot-page placement trades up to ~287x SER for 1.6x IPC; reliability-aware\npoints reach near-full IPC at a fraction of the SER.");
    // Volatile cache counters stay off the deterministic stdout.
    eprintln!("{}", engine::summary_line(&run, store.as_ref()));
}
