//! FaultSim calibration: uncorrected-error FIT per GB for the two memories
//! (Section 3.2: 100K SEC-DED trials, 1M ChipKill trials).
//!
//! The resulting rates feed the SER model (Equation 2); EXPERIMENTS.md
//! records the calibrated values and the DDR residual floor.

use ramp_bench::print_table;
use ramp_faultsim::{run_monte_carlo, RasConfig};
use ramp_sim::exec::{default_threads, parallel_map, StageTimer};
use ramp_sim::SimRng;

fn main() {
    let root = SimRng::from_seed(2018);
    // Trial counts from the paper, scaled by mission count. The two
    // Monte Carlos are independent tasks on decorrelated child streams,
    // so they shard across cores with results in input order.
    let tasks = vec![
        ("secded", RasConfig::hbm_secded(), 2_000_000u64),
        ("chipkill", RasConfig::ddr_chipkill(), 1_000_000u64),
    ];
    let threads = default_threads().min(tasks.len());
    let timer = StageTimer::new(format!("faultsim x{} (threads={threads})", tasks.len()));
    let mut results = parallel_map(threads, tasks, |_, (label, ras, trials)| {
        run_monte_carlo(ras, *trials, &mut root.child(label))
    });
    timer.finish();
    let ddr = results.pop().expect("chipkill outcome");
    let hbm = results.pop().expect("secded outcome");
    let rows = vec![
        vec![
            "HBM / SEC-DED".into(),
            hbm.faults.to_string(),
            hbm.corrected.to_string(),
            hbm.detected_ue.to_string(),
            hbm.silent_ue.to_string(),
            format!("{:.3}", hbm.fit_uncorrected_per_gb()),
        ],
        vec![
            "DDR / ChipKill".into(),
            ddr.faults.to_string(),
            ddr.corrected.to_string(),
            ddr.detected_ue.to_string(),
            ddr.silent_ue.to_string(),
            format!("{:.5}", ddr.fit_uncorrected_per_gb()),
        ],
    ];
    print_table(
        "FaultSim Monte Carlo (per-memory RAS)",
        &[
            "memory",
            "faults",
            "corrected",
            "DUE",
            "SDC",
            "uncorrected FIT/GB",
        ],
        &rows,
    );
    println!(
        "\ncalibrated SER model uses HBM 50 FIT/GB, DDR 0.05 FIT/GB (simulated ChipKill DUEs\n\
         plus the residual-uncorrected floor documented in EXPERIMENTS.md)."
    );
}
