//! FaultSim calibration: uncorrected-error FIT per GB for the two memories
//! (Section 3.2: 100K SEC-DED trials, 1M ChipKill trials).
//!
//! The resulting rates feed the SER model (Equation 2); EXPERIMENTS.md
//! records the calibrated values and the DDR residual floor.

use ramp_bench::print_table;
use ramp_faultsim::{run_monte_carlo, RasConfig};
use ramp_sim::SimRng;

fn main() {
    let mut rng = SimRng::from_seed(2018);
    // Trial counts from the paper, scaled by mission count.
    eprintln!("running SEC-DED trials...");
    let hbm = run_monte_carlo(&RasConfig::hbm_secded(), 2_000_000, &mut rng);
    eprintln!("running ChipKill trials...");
    let ddr = run_monte_carlo(&RasConfig::ddr_chipkill(), 1_000_000, &mut rng);
    let rows = vec![
        vec![
            "HBM / SEC-DED".into(),
            hbm.faults.to_string(),
            hbm.corrected.to_string(),
            hbm.detected_ue.to_string(),
            hbm.silent_ue.to_string(),
            format!("{:.3}", hbm.fit_uncorrected_per_gb()),
        ],
        vec![
            "DDR / ChipKill".into(),
            ddr.faults.to_string(),
            ddr.corrected.to_string(),
            ddr.detected_ue.to_string(),
            ddr.silent_ue.to_string(),
            format!("{:.5}", ddr.fit_uncorrected_per_gb()),
        ],
    ];
    print_table(
        "FaultSim Monte Carlo (per-memory RAS)",
        &["memory", "faults", "corrected", "DUE", "SDC", "uncorrected FIT/GB"],
        &rows,
    );
    println!(
        "\ncalibrated SER model uses HBM 50 FIT/GB, DDR 0.05 FIT/GB (simulated ChipKill DUEs\n\
         plus the residual-uncorrected floor documented in EXPERIMENTS.md)."
    );
}
