//! Figure 12: performance-focused dynamic migration vs DDR-only.
//!
//! Paper: 1.52x IPC (vs 1.6x static) and 268x SER relative to DDR-only;
//! ~47k migrations per 100 ms interval at full scale.

use ramp_bench::{fmt_x, geomean_or_one, print_table, workloads, Harness};
use ramp_core::migration::MigrationScheme;

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_migration(&wls, &[MigrationScheme::PerfFc]);
    let mut rows = Vec::new();
    let mut ipcs = Vec::new();
    let mut sers = Vec::new();
    for wl in wls {
        let ddr = h.profile(&wl);
        let mig = h.migration_run(&wl, MigrationScheme::PerfFc);
        let ipc_x = mig.ipc / ddr.ipc;
        let ser_x = mig.ser_vs_ddr_only();
        ipcs.push(ipc_x);
        sers.push(ser_x);
        rows.push(vec![
            wl.name().to_string(),
            fmt_x(ipc_x),
            fmt_x(ser_x),
            mig.migrations.to_string(),
        ]);
    }
    print_table(
        "Figure 12: performance-focused migration vs DDR-only",
        &["workload", "IPC boost", "SER vs DDR-only", "migrations"],
        &rows,
    );
    println!(
        "\nmean: IPC {} (paper: 1.52x), SER {} (paper: 268x)",
        fmt_x(geomean_or_one(&ipcs)),
        fmt_x(geomean_or_one(&sers))
    );
    ramp_bench::finish(&h);
}
