//! Interactive exploration CLI: run any workload under any policy or
//! migration scheme and print the full result.
//!
//! ```text
//! cargo run --release -p ramp-bench --bin explore -- mix1 wr2
//! cargo run --release -p ramp-bench --bin explore -- lbm cross-counter
//! cargo run --release -p ramp-bench --bin explore -- astar annotations
//! ```

use ramp_bench::experiment_config;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_core::runner::{profile_workload, run_annotated, run_migration, run_static};
use ramp_core::system::RunResult;
use ramp_trace::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: explore <workload> <policy>\n\
         workloads: astar cactusADM lbm mcf milc soplex libquantum xsbench lulesh mix1..mix5\n\
         policies : ddr-only perf rel balanced wr wr2 annotations perf-fc rel-fc cross-counter"
    );
    std::process::exit(2);
}

fn print_result(label: &str, r: &RunResult, baseline: Option<&RunResult>) {
    println!("\n== {label} ==");
    println!("  IPC           : {:.3}", r.ipc);
    if let Some(b) = baseline {
        println!(
            "  vs DDR-only   : {:.2}x IPC, {:.1}x SER",
            r.ipc / b.ipc,
            r.ser_vs_ddr_only()
        );
    }
    println!("  SER           : {:.3e} FIT", r.ser_fit);
    println!("  MPKI          : {:.1}", r.mpki);
    println!("  HBM accesses  : {}", r.hbm_accesses);
    println!("  DDR accesses  : {}", r.ddr_accesses);
    println!("  migrations    : {}", r.migrations);
    println!(
        "  read latency  : HBM {:.0} cy, DDR {:.0} cy",
        r.mean_read_latency.0, r.mean_read_latency.1
    );
    println!("  cycles        : {}", r.cycles);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 2 {
        usage();
    }
    let Some(workload) = Workload::from_name(&args[0]) else {
        eprintln!("unknown workload {}", args[0]);
        usage();
    };
    let cfg = experiment_config();
    eprintln!("profiling {workload} (DDR-only)...");
    let profile = profile_workload(&cfg, &workload);
    print_result("ddr-only (profiling pass)", &profile, None);

    let result = match args[1].as_str() {
        "ddr-only" => return,
        "perf" => run_static(
            &cfg,
            &workload,
            PlacementPolicy::PerfFocused,
            &profile.table,
        ),
        "rel" => run_static(&cfg, &workload, PlacementPolicy::RelFocused, &profile.table),
        "balanced" => run_static(&cfg, &workload, PlacementPolicy::Balanced, &profile.table),
        "wr" => run_static(&cfg, &workload, PlacementPolicy::WrRatio, &profile.table),
        "wr2" => run_static(&cfg, &workload, PlacementPolicy::Wr2Ratio, &profile.table),
        "perf-fc" => run_migration(&cfg, &workload, MigrationScheme::PerfFc, &profile.table),
        "rel-fc" => run_migration(&cfg, &workload, MigrationScheme::RelFc, &profile.table),
        "cross-counter" => run_migration(
            &cfg,
            &workload,
            MigrationScheme::CrossCounter,
            &profile.table,
        ),
        "annotations" => {
            let (r, set) = run_annotated(&cfg, &workload, &profile.table);
            println!("\nannotated structures ({}):", set.count());
            for (b, n) in &set.structures {
                println!("  {b}::{n}");
            }
            r
        }
        other => {
            eprintln!("unknown policy {other}");
            usage();
        }
    };
    print_result(&args[1], &result, Some(&profile));
}
