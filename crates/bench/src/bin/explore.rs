//! Interactive exploration CLI: run any workload under any set of
//! policies and print the results with their Pareto ranks.
//!
//! ```text
//! cargo run --release -p ramp-bench --bin explore -- mix1 wr2
//! cargo run --release -p ramp-bench --bin explore -- lbm cross-counter
//! cargo run --release -p ramp-bench --bin explore -- astar perf-focused balanced annotations
//! ```
//!
//! Each invocation is a one-workload sweep through `ramp_sweep`: every
//! requested policy executes via the store-deduped engine (a repeated
//! exploration simulates nothing) and the rows come back with dominance
//! ranks, so comparing several policies shows at a glance which are
//! Pareto-optimal. The DDR-only profile is always included as the
//! baseline row. Legacy short policy names (`perf`, `rel`, `wr`, `wr2`)
//! are still accepted.

use ramp_bench::{experiment_config, threads};
use ramp_serve::store::RunStore;
use ramp_sweep::engine;
use ramp_sweep::spec::{parse_action, Strategy, SweepSpec};
use ramp_trace::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: explore <workload> <policy> [policy...]\n\
         workloads: astar cactusADM lbm mcf milc soplex libquantum xsbench lulesh mix1..mix5\n\
         policies : ddr-only perf rel balanced wr wr2 annotations perf-fc rel-fc cross-counter\n\
                    (or any sweep token: perf-focused, static:NAME, migration:NAME, profile)"
    );
    std::process::exit(2);
}

/// Maps the legacy short names this CLI always accepted onto sweep
/// policy tokens; everything else passes through to [`parse_action`].
fn canonical(token: &str) -> &str {
    match token {
        "ddr-only" => "profile",
        "perf" => "perf-focused",
        "rel" => "rel-focused",
        "wr" => "wr-ratio",
        "wr2" => "wr2-ratio",
        "annotations" => "annotated",
        other => other,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let Some(workload) = Workload::from_name(&args[0]) else {
        eprintln!("unknown workload {}", args[0]);
        usage();
    };
    let mut policies = vec![(
        "profile".to_string(),
        parse_action("profile").expect("profile token"),
    )];
    for raw in &args[1..] {
        let token = canonical(raw);
        match parse_action(token) {
            Ok(action) => policies.push((token.to_string(), action)),
            Err(e) => {
                eprintln!("{e}");
                usage();
            }
        }
    }
    let spec = SweepSpec {
        name: "explore".to_string(),
        strategy: Strategy::Grid,
        seed: 0,
        samples: 0,
        rungs: 3,
        base_label: "table1".to_string(),
        base: experiment_config(),
        workloads: vec![workload],
        policies,
        knobs: Vec::new(),
    };
    let store = RunStore::from_env();
    let run = engine::run_local(&spec, store.as_ref(), threads()).unwrap_or_else(|e| {
        eprintln!("explore: {e}");
        std::process::exit(1);
    });

    let ddr = run
        .rows
        .iter()
        .find(|r| r.policy == "ddr-only")
        .expect("profile row always present");
    let ddr_ipc = ddr.ipc;
    for (i, r) in run.rows.iter().enumerate() {
        println!("\n== {}/{} ==", r.workload, r.policy);
        println!("  IPC           : {:.3}", r.ipc);
        if r.policy != "ddr-only" {
            println!(
                "  vs DDR-only   : {:.2}x IPC, {:.1}x SER",
                r.ipc / ddr_ipc,
                r.ser_vs_ddr_only
            );
        }
        println!("  SER           : {:.3e} FIT", r.ser_fit);
        println!("  MPKI          : {:.1}", r.mpki);
        println!("  HBM accesses  : {}", r.hbm_accesses);
        println!("  DDR accesses  : {}", r.ddr_accesses);
        println!("  migrations    : {}", r.migrations);
        println!(
            "  mig rate      : {:.2} pages/Mcycle",
            r.mig_pages_per_mcycle()
        );
        println!("  cycles        : {}", r.cycles);
        println!(
            "  pareto rank   : {}{}",
            run.ranks[i],
            if run.ranks[i] == 0 { " (frontier)" } else { "" }
        );
        println!("  store key     : {}", r.key);
    }
    // Volatile cache counters stay off the deterministic stdout.
    eprintln!("{}", engine::summary_line(&run, store.as_ref()));
}
