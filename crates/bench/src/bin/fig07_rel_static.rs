//! Figure 7: naive reliability-focused static placement.
//!
//! Paper: SER reduced 5x, performance loses 17 % relative to the
//! performance-focused placement; bandwidth-intensive workloads (left,
//! high MPKI) lose the most; lbm and milc are outliers (-6 %, -1 %).

use ramp_bench::{print_relative, static_vs_perf, workloads, Harness};
use ramp_core::placement::PlacementPolicy;

fn main() {
    let mut h = Harness::new();
    let all = workloads();
    h.prewarm_static(
        &all,
        &[PlacementPolicy::RelFocused, PlacementPolicy::PerfFocused],
    );
    let wls = h.workloads_by_mpki(&all);
    let rows = static_vs_perf(&mut h, &wls, PlacementPolicy::RelFocused);
    print_relative(
        "Figure 7: reliability-focused static placement (ordered by MPKI desc)",
        &rows,
        "17%",
        "5.0x",
    );
    ramp_bench::finish(&h);
}
