//! Figure 16: program-annotation-based placement.
//!
//! Paper: SER reduced 1.3x at 1.1 % performance cost vs the perf-focused
//! static oracular placement, with no hardware overhead.

use ramp_bench::{fmt_x, geomean_or_one, print_table, workloads, Harness};
use ramp_core::placement::PlacementPolicy;

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_static(&wls, &[PlacementPolicy::PerfFocused]);
    h.prewarm_annotated(&wls);
    let mut rows = Vec::new();
    let mut ipcs = Vec::new();
    let mut sers = Vec::new();
    for wl in wls {
        let base = h.static_run(&wl, PlacementPolicy::PerfFocused);
        let (run, set) = h.annotated_run(&wl);
        let ipc_rel = run.ipc / base.ipc;
        let ser_red = base.ser_fit / run.ser_fit.max(f64::MIN_POSITIVE);
        ipcs.push(ipc_rel);
        sers.push(ser_red);
        rows.push(vec![
            wl.name().to_string(),
            format!("{:.3}", ipc_rel),
            fmt_x(ser_red),
            set.count().to_string(),
        ]);
    }
    print_table(
        "Figure 16: annotation-based placement vs perf-focused static",
        &["workload", "IPC vs perf", "SER reduction", "annotations"],
        &rows,
    );
    println!(
        "\nmean: IPC loss {:.1}% (paper: 1.1%), SER reduction {} (paper: 1.3x)",
        (1.0 - geomean_or_one(&ipcs)) * 100.0,
        fmt_x(geomean_or_one(&sers))
    );
    ramp_bench::finish(&h);
}
