//! Table 3: summary of every scheme, normalized to its performance-focused
//! counterpart (static schemes vs perf-static, dynamic vs perf-migration).

use ramp_bench::{
    fmt_x, geomean_or_one, migration_vs_perf, print_table, static_vs_perf, workloads, Harness,
};
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_static(
        &wls,
        &[
            PlacementPolicy::PerfFocused,
            PlacementPolicy::RelFocused,
            PlacementPolicy::Balanced,
            PlacementPolicy::WrRatio,
            PlacementPolicy::Wr2Ratio,
        ],
    );
    h.prewarm_migration(
        &wls,
        &[
            MigrationScheme::PerfFc,
            MigrationScheme::RelFc,
            MigrationScheme::CrossCounter,
        ],
    );
    h.prewarm_annotated(&wls);
    let mut rows = Vec::new();

    let statics = [
        (
            "Reliability-focused [5.1]",
            PlacementPolicy::RelFocused,
            "17%",
            "5.0x",
        ),
        ("Balanced [5.2]", PlacementPolicy::Balanced, "14%", "3.0x"),
        ("Wr ratio [5.4.1]", PlacementPolicy::WrRatio, "8.1%", "1.8x"),
        ("Wr2 ratio [5.4.2]", PlacementPolicy::Wr2Ratio, "1%", "1.6x"),
    ];
    for (name, policy, p_ipc, p_ser) in statics {
        let r = static_vs_perf(&mut h, &wls, policy);
        let ipc = geomean_or_one(&r.iter().map(|x| x.ipc_rel).collect::<Vec<_>>());
        let ser = geomean_or_one(&r.iter().map(|x| x.ser_reduction).collect::<Vec<_>>());
        rows.push(vec![
            name.to_string(),
            format!("{:.1}% (paper {p_ipc})", (1.0 - ipc) * 100.0),
            format!("{} (paper {p_ser})", fmt_x(ser)),
        ]);
    }
    let dynamics = [
        (
            "Reliability-aware FC [6.2]",
            MigrationScheme::RelFc,
            "6%",
            "1.8x",
        ),
        (
            "Cross Counters [6.4]",
            MigrationScheme::CrossCounter,
            "4.9%",
            "1.5x",
        ),
    ];
    for (name, scheme, p_ipc, p_ser) in dynamics {
        let r = migration_vs_perf(&mut h, &wls, scheme);
        let ipc = geomean_or_one(&r.iter().map(|x| x.ipc_rel).collect::<Vec<_>>());
        let ser = geomean_or_one(&r.iter().map(|x| x.ser_reduction).collect::<Vec<_>>());
        rows.push(vec![
            name.to_string(),
            format!("{:.1}% (paper {p_ipc})", (1.0 - ipc) * 100.0),
            format!("{} (paper {p_ser})", fmt_x(ser)),
        ]);
    }
    // Annotations vs perf-static.
    {
        let mut ipcs = Vec::new();
        let mut sers = Vec::new();
        for wl in &wls {
            let base = h.static_run(wl, PlacementPolicy::PerfFocused);
            let (run, _) = h.annotated_run(wl);
            ipcs.push(run.ipc / base.ipc);
            sers.push(base.ser_fit / run.ser_fit.max(f64::MIN_POSITIVE));
        }
        rows.push(vec![
            "Program annotations [7]".to_string(),
            format!("{:.1}% (paper 1.1%)", (1.0 - geomean_or_one(&ipcs)) * 100.0),
            format!("{} (paper 1.3x)", fmt_x(geomean_or_one(&sers))),
        ]);
    }
    print_table(
        "Table 3: IPC degradation and SER improvement vs the respective performance-focused scheme",
        &["scheme", "IPC degradation", "SER improvement"],
        &rows,
    );
    ramp_bench::finish(&h);
}
