//! Runs the complete experiment suite — every table and figure — in a
//! single process so profiling passes and baseline runs are shared via
//! [`ramp_bench::Harness`]. Output is markdown; EXPERIMENTS.md is the
//! curated record of one full run.
//!
//! The experiment matrix is sharded across cores (`-j N`, `--threads N`
//! or `RAMP_THREADS`; default all cores) by prewarming the harness caches
//! through [`ramp_sim::exec`]; every figure is then formatted from cached
//! results, so stdout is byte-identical at any thread count.

use ramp_avf::{
    hotness_avf_correlation, hottest_pages, writeratio_avf_correlation, Quadrant, QuadrantAnalysis,
};
use ramp_bench::{
    fmt_pct, fmt_x, geomean_or_one, migration_vs_perf, print_relative, print_table,
    run_migration_memo, static_vs_perf, workloads, Harness,
};
use ramp_core::annotate::select_annotations;
use ramp_core::hwcost;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_faultsim::{run_monte_carlo, RasConfig};
use ramp_sim::exec::{parallel_map, StageTimer};
use ramp_sim::stats::Histogram;
use ramp_sim::SimRng;
use ramp_trace::{Benchmark, MixId, Workload};

const FRONTIER_WLS: [Workload; 3] = [
    Workload::Homogeneous(Benchmark::Astar),
    Workload::Homogeneous(Benchmark::CactusADM),
    Workload::Mix(MixId::Mix1),
];

const SWEEP_WLS: [Workload; 3] = [
    Workload::Homogeneous(Benchmark::Astar),
    Workload::Mix(MixId::Mix1),
    Workload::Homogeneous(Benchmark::Lbm),
];

const SWEEP_INTERVALS: [u64; 4] = [100_000, 200_000, 400_000, 1_600_000];

/// Shards every simulation of the suite across the worker pool; after
/// this, the figure sections below only read caches.
fn prewarm(h: &mut Harness, wls: &[Workload]) {
    eprintln!("sharding experiment matrix over {} threads", h.threads);
    let total = StageTimer::new("prewarm total");
    h.prewarm_profiles(wls);
    h.prewarm_static(
        wls,
        &[
            PlacementPolicy::PerfFocused,
            PlacementPolicy::RelFocused,
            PlacementPolicy::Balanced,
            PlacementPolicy::WrRatio,
            PlacementPolicy::Wr2Ratio,
        ],
    );
    h.prewarm_static(
        &FRONTIER_WLS,
        &[0.0f64, 0.25, 0.5, 0.75, 1.0].map(PlacementPolicy::FracHottest),
    );
    h.prewarm_migration(
        wls,
        &[
            MigrationScheme::PerfFc,
            MigrationScheme::RelFc,
            MigrationScheme::CrossCounter,
        ],
    );
    h.prewarm_annotated(wls);
    total.finish();
}

fn main() {
    // Config-sweep sections below rebuild harnesses whose default point
    // matches the main config; memoize runs process-wide so a cold store
    // never simulates the same (config, workload, policy) twice.
    ramp_bench::enable_run_memo();
    let mut h = Harness::new();
    let wls = workloads();
    prewarm(&mut h, &wls);

    // ---- FaultSim calibration (Section 3.2) -------------------------
    // The two Monte Carlos are independent tasks on decorrelated child
    // streams of the root seed.
    println!("\n\n## FaultSim calibration (Section 3.2)\n");
    let root = SimRng::from_seed(2018);
    let mc = parallel_map(
        h.threads.min(2),
        vec![
            ("hbm", RasConfig::hbm_secded()),
            ("ddr", RasConfig::ddr_chipkill()),
        ],
        |_, (label, ras)| run_monte_carlo(ras, 500_000, &mut root.child(label)),
    );
    let (hbm, ddr) = (&mc[0], &mc[1]);
    print_table(
        "FaultSim Monte Carlo",
        &[
            "memory",
            "faults",
            "corrected",
            "DUE",
            "SDC",
            "uncorrected FIT/GB",
        ],
        &[
            vec![
                "HBM / SEC-DED".into(),
                hbm.faults.to_string(),
                hbm.corrected.to_string(),
                hbm.detected_ue.to_string(),
                hbm.silent_ue.to_string(),
                format!("{:.3}", hbm.fit_uncorrected_per_gb()),
            ],
            vec![
                "DDR / ChipKill".into(),
                ddr.faults.to_string(),
                ddr.corrected.to_string(),
                ddr.detected_ue.to_string(),
                ddr.silent_ue.to_string(),
                format!("{:.5}", ddr.fit_uncorrected_per_gb()),
            ],
        ],
    );

    // ---- Hardware cost (Sections 6.3/6.4.2) -------------------------
    println!("\n\n## Hardware cost (Sections 6.3/6.4.2)\n");
    print_table(
        "Tracking storage at full scale",
        &["mechanism", "measured", "paper"],
        &[
            vec![
                "rel-aware FC total".into(),
                hwcost::human_bytes(hwcost::reliability_fc_bytes()),
                "8.5 MB".into(),
            ],
            vec![
                "rel-aware FC extra".into(),
                hwcost::human_bytes(hwcost::reliability_fc_extra_bytes()),
                "4.25 MB".into(),
            ],
            vec![
                "CC risk counters".into(),
                hwcost::human_bytes(hwcost::cc_risk_counter_bytes()),
                "512 KB".into(),
            ],
            vec![
                "CC total".into(),
                hwcost::human_bytes(hwcost::cross_counter_total_bytes()),
                "676 KB".into(),
            ],
        ],
    );

    // ---- Figure 2 ----------------------------------------------------
    println!("\n\n## Figure 2: mean memory AVF (DDR-only)\n");
    let mut avf_rows: Vec<(f64, String)> = wls
        .iter()
        .map(|wl| (h.profile(wl).table.mean_avf(), wl.name().to_string()))
        .collect();
    avf_rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    print_table(
        "Figure 2 (increasing order; paper: 1.7% astar .. 22.5% milc)",
        &["workload", "mean AVF"],
        &avf_rows
            .iter()
            .map(|(a, n)| vec![n.clone(), format!("{:.2}%", a * 100.0)])
            .collect::<Vec<_>>(),
    );

    // ---- Figure 4 ----------------------------------------------------
    println!("\n\n## Figure 4: hotness-risk quadrants\n");
    let rows: Vec<Vec<String>> = wls
        .iter()
        .map(|wl| {
            let r = h.profile(wl);
            let q = QuadrantAnalysis::new(&r.table);
            vec![
                wl.name().to_string(),
                fmt_pct(q.fraction(Quadrant::HotLowRisk)),
                fmt_pct(q.fraction(Quadrant::HotHighRisk)),
                fmt_pct(q.fraction(Quadrant::ColdLowRisk)),
                fmt_pct(q.fraction(Quadrant::ColdHighRisk)),
            ]
        })
        .collect();
    print_table(
        "Figure 4 (paper: hot&low spans 9%-39%; lbm the outlier)",
        &["workload", "hot&low", "hot&high", "cold&low", "cold&high"],
        &rows,
    );

    // ---- Figures 6 and 9 (mix1 correlations) -------------------------
    println!("\n\n## Figures 6 and 9: mix1 correlations\n");
    {
        let wl = Workload::Mix(MixId::Mix1);
        let r = h.profile(&wl);
        let hot = hottest_pages(&r.table);
        let take = hot.len().min(1000);
        let lo = hot[..take].iter().map(|s| s.avf).fold(f64::MAX, f64::min);
        let hi = hot[..take].iter().map(|s| s.avf).fold(0.0f64, f64::max);
        println!(
            "top-1000 hot pages AVF range: {:.1}%..{:.1}% (paper: ~5%..~90%)",
            lo * 100.0,
            hi * 100.0
        );
        println!(
            "hotness-AVF correlation: {:.3} (paper: 0.08)",
            hotness_avf_correlation(&r.table).unwrap_or(f64::NAN)
        );
        println!(
            "write-ratio-AVF correlation (top 1000): {:.2} (paper: -0.32)",
            writeratio_avf_correlation(&r.table, 1000).unwrap_or(f64::NAN)
        );
        let mut hist = Histogram::new(0.0, 1.0, 5);
        for s in r.table.pages() {
            if s.hotness() > 0 {
                hist.push(s.writes as f64 / s.hotness() as f64);
            }
        }
        print_table(
            "Figure 9b: pages per write-share bin (mix1, touched pages)",
            &["write share", "pages"],
            &hist
                .iter()
                .map(|(lo, hi, c)| {
                    vec![
                        format!("{:.0}%-{:.0}%", lo * 100.0, hi * 100.0),
                        c.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    // ---- Figure 5 ----------------------------------------------------
    println!("\n\n## Figure 5: performance-focused static placement\n");
    let mut f5 = Vec::new();
    let mut ipcs = Vec::new();
    let mut sers = Vec::new();
    for wl in &wls {
        let ddr = h.profile(wl);
        let perf = h.static_run(wl, PlacementPolicy::PerfFocused);
        let (ix, sx) = (perf.ipc / ddr.ipc, perf.ser_vs_ddr_only());
        ipcs.push(ix);
        sers.push(sx);
        f5.push(vec![
            wl.name().to_string(),
            format!("{:.3}", ddr.ipc),
            format!("{:.3}", perf.ipc),
            fmt_x(ix),
            fmt_x(sx),
        ]);
    }
    print_table(
        "Figure 5",
        &[
            "workload",
            "IPC (DDR-only)",
            "IPC (perf)",
            "IPC boost",
            "SER vs DDR-only",
        ],
        &f5,
    );
    println!(
        "\nmean: IPC {} (paper: 1.6x), SER {} (paper: 287x)",
        fmt_x(geomean_or_one(&ipcs)),
        fmt_x(geomean_or_one(&sers))
    );

    // ---- Figure 1 ----------------------------------------------------
    println!("\n\n## Figure 1: frontier (astar+cactusADM+mix1)\n");
    let mut f1 = Vec::new();
    for frac in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let mut i = Vec::new();
        let mut s = Vec::new();
        for wl in &FRONTIER_WLS {
            let ddr = h.profile(wl);
            let r = h.static_run(wl, PlacementPolicy::FracHottest(frac));
            i.push(r.ipc / ddr.ipc);
            s.push(r.ser_vs_ddr_only());
        }
        f1.push(vec![
            format!("{:.0}% of HBM", frac * 100.0),
            fmt_x(geomean_or_one(&i)),
            fmt_x(geomean_or_one(&s)),
        ]);
    }
    for policy in [PlacementPolicy::Wr2Ratio, PlacementPolicy::Balanced] {
        let mut i = Vec::new();
        let mut s = Vec::new();
        for wl in &FRONTIER_WLS {
            let ddr = h.profile(wl);
            let r = h.static_run(wl, policy);
            i.push(r.ipc / ddr.ipc);
            s.push(r.ser_vs_ddr_only());
        }
        f1.push(vec![
            policy.name(),
            fmt_x(geomean_or_one(&i)),
            fmt_x(geomean_or_one(&s)),
        ]);
    }
    print_table(
        "Figure 1",
        &["placement", "IPC vs DDR-only", "SER vs DDR-only"],
        &f1,
    );

    // ---- Figures 7, 8, 10, 11 (static policies vs perf) --------------
    let by_mpki = h.workloads_by_mpki(&wls);
    for (title, policy, p_ipc, p_ser) in [
        (
            "Figure 7: reliability-focused static",
            PlacementPolicy::RelFocused,
            "17%",
            "5.0x",
        ),
        (
            "Figure 8: balanced static",
            PlacementPolicy::Balanced,
            "14%",
            "3.0x",
        ),
        (
            "Figure 10: Wr-ratio static",
            PlacementPolicy::WrRatio,
            "8.1%",
            "1.8x",
        ),
        (
            "Figure 11: Wr2-ratio static",
            PlacementPolicy::Wr2Ratio,
            "1%",
            "1.6x",
        ),
    ] {
        println!("\n\n## {title}\n");
        let rows = static_vs_perf(&mut h, &by_mpki, policy);
        print_relative(title, &rows, p_ipc, p_ser);
    }

    // ---- Figure 12 ----------------------------------------------------
    println!("\n\n## Figure 12: performance-focused migration\n");
    let mut f12 = Vec::new();
    let mut i12 = Vec::new();
    let mut s12 = Vec::new();
    for wl in &wls {
        let ddr = h.profile(wl);
        let mig = h.migration_run(wl, MigrationScheme::PerfFc);
        let (ix, sx) = (mig.ipc / ddr.ipc, mig.ser_vs_ddr_only());
        i12.push(ix);
        s12.push(sx);
        f12.push(vec![
            wl.name().to_string(),
            fmt_x(ix),
            fmt_x(sx),
            mig.migrations.to_string(),
        ]);
    }
    print_table(
        "Figure 12",
        &["workload", "IPC boost", "SER vs DDR-only", "migrations"],
        &f12,
    );
    println!(
        "\nmean: IPC {} (paper: 1.52x), SER {} (paper: 268x)",
        fmt_x(geomean_or_one(&i12)),
        fmt_x(geomean_or_one(&s12))
    );

    // ---- Figure 13 ----------------------------------------------------
    // The interval sweep uses per-task configs, so it shards directly
    // through exec rather than the harness caches; results come back in
    // input order, keeping the table deterministic.
    println!("\n\n## Figure 13: FC-interval sweep\n");
    let sweep: Vec<(Workload, u64)> = SWEEP_WLS
        .iter()
        .flat_map(|wl| SWEEP_INTERVALS.iter().map(move |&iv| (*wl, iv)))
        .collect();
    let sweep_profiles: Vec<_> = SWEEP_WLS.iter().map(|wl| h.profile(wl)).collect();
    let sweep_ipc = {
        let base_cfg = &h.cfg;
        parallel_map(h.threads, sweep, |i, (wl, iv)| {
            let mut cfg = base_cfg.clone();
            cfg.fc_interval_cycles = *iv;
            let profile = &sweep_profiles[i / SWEEP_INTERVALS.len()];
            run_migration_memo(&cfg, wl, MigrationScheme::PerfFc, &profile.table).ipc
        })
    };
    let mut f13 = Vec::new();
    for (wi, wl) in SWEEP_WLS.iter().enumerate() {
        let mut row = vec![wl.name().to_string()];
        for ii in 0..SWEEP_INTERVALS.len() {
            row.push(format!("{:.3}", sweep_ipc[wi * SWEEP_INTERVALS.len() + ii]));
        }
        f13.push(row);
    }
    print_table(
        "Figure 13 (IPC per FC interval; paper: 100 ms = our 400k-cycle default is best)",
        &["workload", "100k", "200k", "400k (default)", "1.6M"],
        &f13,
    );

    // ---- Figures 14, 15 ------------------------------------------------
    for (title, scheme, p_ipc, p_ser) in [
        (
            "Figure 14: reliability-aware FC migration",
            MigrationScheme::RelFc,
            "6%",
            "1.8x",
        ),
        (
            "Figure 15: Cross-Counter migration",
            MigrationScheme::CrossCounter,
            "4.9%",
            "1.5x",
        ),
    ] {
        println!("\n\n## {title}\n");
        let rows = migration_vs_perf(&mut h, &by_mpki, scheme);
        print_relative(title, &rows, p_ipc, p_ser);
    }

    // ---- Figures 16, 17 ------------------------------------------------
    println!("\n\n## Figures 16 and 17: program annotations\n");
    let mut f16 = Vec::new();
    let mut i16 = Vec::new();
    let mut s16 = Vec::new();
    let mut counts = Vec::new();
    for wl in &wls {
        let base = h.static_run(wl, PlacementPolicy::PerfFocused);
        let (run, set) = h.annotated_run(wl);
        let ipc_rel = run.ipc / base.ipc;
        let ser_red = base.ser_fit / run.ser_fit.max(f64::MIN_POSITIVE);
        i16.push(ipc_rel);
        s16.push(ser_red);
        counts.push(set.count() as f64);
        f16.push(vec![
            wl.name().to_string(),
            format!("{:.3}", ipc_rel),
            fmt_x(ser_red),
            set.count().to_string(),
            set.pinned.len().to_string(),
        ]);
    }
    print_table(
        "Figures 16/17 (vs perf-focused static)",
        &[
            "workload",
            "IPC vs perf",
            "SER reduction",
            "annotations",
            "pinned pages",
        ],
        &f16,
    );
    println!(
        "\nmean: IPC loss {:.1}% (paper: 1.1%), SER reduction {} (paper: 1.3x), annotations {:.1} (paper: ~8)",
        (1.0 - geomean_or_one(&i16)) * 100.0,
        fmt_x(geomean_or_one(&s16)),
        counts.iter().sum::<f64>() / counts.len().max(1) as f64
    );

    // ---- Table 3 summary ------------------------------------------------
    println!("\n\n## Table 3: summary\n");
    let mut t3 = Vec::new();
    for (name, policy, p_ipc, p_ser) in [
        (
            "Reliability-focused [5.1]",
            PlacementPolicy::RelFocused,
            "17%",
            "5.0x",
        ),
        ("Balanced [5.2]", PlacementPolicy::Balanced, "14%", "3.0x"),
        ("Wr ratio [5.4.1]", PlacementPolicy::WrRatio, "8.1%", "1.8x"),
        ("Wr2 ratio [5.4.2]", PlacementPolicy::Wr2Ratio, "1%", "1.6x"),
    ] {
        let r = static_vs_perf(&mut h, &wls, policy);
        let ipc = geomean_or_one(&r.iter().map(|x| x.ipc_rel).collect::<Vec<_>>());
        let ser = geomean_or_one(&r.iter().map(|x| x.ser_reduction).collect::<Vec<_>>());
        t3.push(vec![
            name.to_string(),
            format!("{:.1}% (paper {p_ipc})", (1.0 - ipc) * 100.0),
            format!("{} (paper {p_ser})", fmt_x(ser)),
        ]);
    }
    for (name, scheme, p_ipc, p_ser) in [
        (
            "Reliability-aware FC [6.2]",
            MigrationScheme::RelFc,
            "6%",
            "1.8x",
        ),
        (
            "Cross Counters [6.4]",
            MigrationScheme::CrossCounter,
            "4.9%",
            "1.5x",
        ),
    ] {
        let r = migration_vs_perf(&mut h, &wls, scheme);
        let ipc = geomean_or_one(&r.iter().map(|x| x.ipc_rel).collect::<Vec<_>>());
        let ser = geomean_or_one(&r.iter().map(|x| x.ser_reduction).collect::<Vec<_>>());
        t3.push(vec![
            name.to_string(),
            format!("{:.1}% (paper {p_ipc})", (1.0 - ipc) * 100.0),
            format!("{} (paper {p_ser})", fmt_x(ser)),
        ]);
    }
    t3.push(vec![
        "Program annotations [7]".to_string(),
        format!("{:.1}% (paper 1.1%)", (1.0 - geomean_or_one(&i16)) * 100.0),
        format!("{} (paper 1.3x)", fmt_x(geomean_or_one(&s16))),
    ]);
    print_table(
        "Table 3: vs the respective performance-focused scheme",
        &["scheme", "IPC degradation", "SER improvement"],
        &t3,
    );

    // ---- Annotation selection detail (Figure 17 support) --------------
    println!("\n\n## Annotation detail (Figure 17 support)\n");
    let mut f17 = Vec::new();
    for wl in &wls {
        let profile = h.profile(wl);
        let set = select_annotations(
            wl,
            &profile.table,
            h.cfg.hbm_capacity_pages as usize,
            h.cfg.seed,
        );
        let names: Vec<String> = set
            .structures
            .iter()
            .take(4)
            .map(|(b, n)| format!("{b}::{n}"))
            .collect();
        f17.push(vec![
            wl.name().to_string(),
            set.count().to_string(),
            names.join(", "),
        ]);
    }
    print_table(
        "Selected structures (first four)",
        &["workload", "count", "structures"],
        &f17,
    );
    ramp_bench::finish(&h);
}
