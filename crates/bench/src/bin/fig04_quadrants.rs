//! Figure 4: hotness-AVF quadrant decomposition of each workload's
//! footprint.
//!
//! Paper: every workload has pages in all four quadrants; hot & low-risk
//! pages are 9 %-39 % of the footprint (mix1: 29.4 %); lbm is the outlier
//! with almost none.

use ramp_avf::{Quadrant, QuadrantAnalysis};
use ramp_bench::{fmt_pct, print_table, workloads, Harness};

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_profiles(&wls);
    let mut rows = Vec::new();
    for wl in wls {
        let r = h.profile(&wl);
        let q = QuadrantAnalysis::new(&r.table);
        rows.push(vec![
            wl.name().to_string(),
            fmt_pct(q.fraction(Quadrant::HotLowRisk)),
            fmt_pct(q.fraction(Quadrant::HotHighRisk)),
            fmt_pct(q.fraction(Quadrant::ColdLowRisk)),
            fmt_pct(q.fraction(Quadrant::ColdHighRisk)),
            format!("{}", q.total()),
        ]);
    }
    print_table(
        "Figure 4: footprint share per hotness-risk quadrant",
        &[
            "workload",
            "hot&low",
            "hot&high",
            "cold&low",
            "cold&high",
            "pages",
        ],
        &rows,
    );
    println!("\npaper: hot & low-risk spans 9%-39% of the footprint; lbm is the outlier with few.");
    ramp_bench::finish(&h);
}
