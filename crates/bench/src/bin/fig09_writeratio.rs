//! Figure 9: write ratio as an AVF proxy on mix1.
//!
//! Paper: (a) write ratio anti-correlates with AVF (rho = -0.32) over the
//! hottest pages; (b) the footprint is mostly read-heavy but has large
//! write-heavy bins.

use ramp_avf::writeratio_avf_correlation;
use ramp_bench::{print_table, Harness};
use ramp_sim::stats::Histogram;
use ramp_trace::{MixId, Workload};

fn main() {
    let mut h = Harness::new();
    let wl = Workload::Mix(MixId::Mix1);
    let r = h.profile(&wl);
    let rho = writeratio_avf_correlation(&r.table, 1000).unwrap_or(f64::NAN);
    println!("write-ratio vs AVF correlation (top 1000 hot pages): {rho:.2} (paper: -0.32)");

    // Histogram of write fraction w/(r+w) binned by 20% as in Fig 9b.
    let mut hist = Histogram::new(0.0, 1.0, 5);
    for s in r.table.pages() {
        if s.hotness() > 0 {
            hist.push(s.writes as f64 / s.hotness() as f64);
        }
    }
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(lo, hi, c)| {
            vec![
                format!("{:.0}%-{:.0}%", lo * 100.0, hi * 100.0),
                c.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 9b: pages per write-share bin (mix1, touched pages)",
        &["write share", "pages"],
        &rows,
    );
    println!("\npaper: mostly read-heavy pages, with substantial mass in the top two write bins.");
    ramp_bench::finish(&h);
}
