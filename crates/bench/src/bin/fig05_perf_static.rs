//! Figure 5: performance-focused static placement vs DDR-only.
//!
//! Paper: 1.6x IPC boost and 287x SER increase relative to DDR-only.

use ramp_bench::{fmt_x, geomean_or_one, print_table, workloads, Harness};
use ramp_core::placement::PlacementPolicy;

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_static(&wls, &[PlacementPolicy::PerfFocused]);
    let mut rows = Vec::new();
    let mut ipcs = Vec::new();
    let mut sers = Vec::new();
    for wl in &wls {
        let ddr = h.profile(wl);
        let perf = h.static_run(wl, PlacementPolicy::PerfFocused);
        let ipc_x = perf.ipc / ddr.ipc;
        let ser_x = perf.ser_vs_ddr_only();
        ipcs.push(ipc_x);
        sers.push(ser_x);
        rows.push(vec![
            wl.name().to_string(),
            format!("{:.3}", ddr.ipc),
            format!("{:.3}", perf.ipc),
            fmt_x(ipc_x),
            fmt_x(ser_x),
        ]);
    }
    print_table(
        "Figure 5: performance-focused static placement",
        &[
            "workload",
            "IPC (DDR-only)",
            "IPC (perf-static)",
            "IPC boost",
            "SER vs DDR-only",
        ],
        &rows,
    );
    println!(
        "\nmean: IPC {} (paper: 1.6x), SER {} (paper: 287x)",
        fmt_x(geomean_or_one(&ipcs)),
        fmt_x(geomean_or_one(&sers))
    );
    ramp_bench::finish(&h);
}
