//! Figure 17: number of annotated program structures per workload.
//!
//! Paper: one annotation suffices for most workloads (average ~8), with
//! cactusADM (39) and mix1 (45) as outliers.

use ramp_bench::{print_table, workloads, Harness};
use ramp_core::annotate::select_annotations;

fn main() {
    let mut h = Harness::new();
    let wls = workloads();
    h.prewarm_profiles(&wls);
    let mut rows = Vec::new();
    let mut counts = Vec::new();
    for wl in wls {
        let profile = h.profile(&wl);
        let set = select_annotations(
            &wl,
            &profile.table,
            h.cfg.hbm_capacity_pages as usize,
            h.cfg.seed,
        );
        counts.push(set.count() as f64);
        rows.push(vec![
            wl.name().to_string(),
            set.count().to_string(),
            set.pinned.len().to_string(),
        ]);
    }
    print_table(
        "Figure 17: annotated structures per workload",
        &["workload", "structures", "pinned pages"],
        &rows,
    );
    let mean = counts.iter().sum::<f64>() / counts.len().max(1) as f64;
    println!("\nmean annotations: {mean:.1} (paper: ~8, with cactusADM=39 and mix1=45 outliers)");
    ramp_bench::finish(&h);
}
