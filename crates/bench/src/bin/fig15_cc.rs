//! Figure 15: Cross-Counter reliability-aware migration.
//!
//! Paper: SER reduced 1.5x at 4.9 % performance loss vs performance-
//! focused migration, with only 676 KB of tracking hardware.

use ramp_bench::{migration_vs_perf, print_relative, workloads, Harness};
use ramp_core::migration::MigrationScheme;

fn main() {
    let mut h = Harness::new();
    let all = workloads();
    h.prewarm_migration(
        &all,
        &[MigrationScheme::CrossCounter, MigrationScheme::PerfFc],
    );
    let wls = h.workloads_by_mpki(&all);
    let rows = migration_vs_perf(&mut h, &wls, MigrationScheme::CrossCounter);
    print_relative(
        "Figure 15: reliability-aware migration (Cross Counters)",
        &rows,
        "4.9%",
        "1.5x",
    );
    ramp_bench::finish(&h);
}
