//! Figure 11: top-Wr²-ratio heuristic placement.
//!
//! Paper: SER reduced 1.6x at only 1 % performance loss vs perf-focused —
//! the headline static result.

use ramp_bench::{print_relative, static_vs_perf, workloads, Harness};
use ramp_core::placement::PlacementPolicy;

fn main() {
    let mut h = Harness::new();
    let all = workloads();
    h.prewarm_static(
        &all,
        &[PlacementPolicy::Wr2Ratio, PlacementPolicy::PerfFocused],
    );
    let wls = h.workloads_by_mpki(&all);
    let rows = static_vs_perf(&mut h, &wls, PlacementPolicy::Wr2Ratio);
    print_relative("Figure 11: Wr2-ratio placement", &rows, "1%", "1.6x");
    ramp_bench::finish(&h);
}
