//! Sections 6.3 / 6.4.2: hardware cost of the migration mechanisms at the
//! paper's full (unscaled) Table 1 capacities.

use ramp_bench::print_table;
use ramp_core::hwcost;

fn main() {
    let rows = vec![
        vec![
            "perf-focused FC (1x 8-bit counter/page, 17 GB)".into(),
            hwcost::human_bytes(hwcost::perf_fc_bytes()),
            "4.25 MB".into(),
        ],
        vec![
            "reliability-aware FC (2x 8-bit counters/page)".into(),
            hwcost::human_bytes(hwcost::reliability_fc_bytes()),
            "8.5 MB".into(),
        ],
        vec![
            "reliability-aware FC extra vs perf".into(),
            hwcost::human_bytes(hwcost::reliability_fc_extra_bytes()),
            "4.25 MB".into(),
        ],
        vec![
            "CC risk counters (16-bit x 262K HBM pages)".into(),
            hwcost::human_bytes(hwcost::cc_risk_counter_bytes()),
            "512 KB".into(),
        ],
        vec![
            "CC MEA tracking".into(),
            hwcost::human_bytes(hwcost::mea_bytes()),
            "100 KB".into(),
        ],
        vec![
            "CC remap table cache".into(),
            hwcost::human_bytes(hwcost::remap_cache_bytes()),
            "64 KB".into(),
        ],
        vec![
            "Cross Counters total".into(),
            hwcost::human_bytes(hwcost::cross_counter_total_bytes()),
            "676 KB".into(),
        ],
    ];
    print_table(
        "Hardware cost (Sections 6.3/6.4.2)",
        &["mechanism", "measured", "paper"],
        &rows,
    );
}
