//! End-to-end resilience matrix: the full serving stack (executor,
//! store, HTTP server, retrying client) driven under seeded fault
//! injection. For every `(seed, spec)` cell the invariant is the same:
//!
//! * every submitted run either completes with results **byte-identical**
//!   to the fault-free reference, or fails *classified* — a `failed` job
//!   carries a `simulation panicked: ...` message, an `expired` job a
//!   deadline message, a transport failure a typed [`ClientError`];
//! * no panic ever escapes a server thread (the join at the end proves
//!   it) and the server never answers 500 for an injected fault;
//! * the armed fault kinds actually fired (their roll counters moved).
//!
//! Chaos handles are built explicitly ([`Chaos::from_spec`]) rather than
//! through `RAMP_CHAOS`, so parallel tests never race on the
//! process-global registry.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ramp_core::config::SystemConfig;
use ramp_serve::client::Client;
use ramp_serve::http::PoolPolicy;
use ramp_serve::server::{Server, ServerConfig};
use ramp_serve::store::RunStore;
use ramp_sim::chaos::{Chaos, FaultKind};

/// Small enough that a debug-mode job takes well under a second.
fn tiny_sim() -> SystemConfig {
    SystemConfig {
        insts_per_core: 20_000,
        ..SystemConfig::smoke_test()
    }
}

fn scratch_store(tag: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("ramp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

/// Starts a server whose connection handling, job execution *and* store
/// share one chaos registry.
fn start(tag: &str, chaos: Option<Arc<Chaos>>) -> (SocketAddr, JoinHandle<()>) {
    let store = scratch_store(tag).with_chaos(chaos.clone());
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            sim: tiny_sim(),
            workers: 2,
            queue_capacity: 16,
            request_timeout: Duration::from_secs(10),
            deadline: Duration::from_secs(60),
            restart_limit: 6,
            restart_backoff: Duration::from_millis(5),
            http: PoolPolicy::default(),
            store: Some(store),
            chaos,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

/// A patient client: generous transport budget, fast jittered backoff,
/// 429s retried (the matrix is about faults, not backpressure).
fn patient(addr: SocketAddr) -> Client {
    Client::new(addr.to_string())
        .with_retries(12)
        .with_backoff(Duration::from_millis(2))
        .with_retry_429(true)
}

/// One run of every kind, exercising profile reuse across kinds.
const COMBOS: &[(&str, &str, &str)] = &[
    ("lbm", "profile", ""),
    ("mcf", "static", "perf-focused"),
    ("milc", "migration", "perf-fc"),
    ("astar", "annotated", ""),
];

/// `(ipc, key)` per combo, as served — the byte-identity reference.
fn run_combos(client: &Client) -> Vec<Result<(String, String), String>> {
    COMBOS
        .iter()
        .map(|(wl, kind, policy)| {
            let submit = client
                .submit(wl, kind, policy)
                .map_err(|e| format!("submit {wl}/{kind}: {e}"))?;
            match (submit.status, submit.cached) {
                (202, _) => {
                    let job = submit.job.expect("202 carries a job id");
                    let done = client
                        .wait_done(job, 120_000)
                        .map_err(|e| format!("wait {wl}/{kind}: {e}"))?;
                    match done.state() {
                        Some("done") => {
                            Ok((done.fields["ipc"].clone(), done.fields["key"].clone()))
                        }
                        Some(state) => Err(format!(
                            "{wl}/{kind} ended {state}: {}",
                            done.fields.get("error").cloned().unwrap_or_default()
                        )),
                        None => panic!("terminal job without a state: {}", done.body),
                    }
                }
                (200, true) => Ok((
                    submit.response.fields["ipc"].clone(),
                    submit.key.clone().expect("cached response carries a key"),
                )),
                (status, _) => panic!("submit {wl}/{kind} returned {status}"),
            }
        })
        .collect()
}

#[test]
fn seeded_fault_matrix_completes_identically_or_fails_classified() {
    // Fault-free reference first.
    let (addr, handle) = start("reference", None);
    let client = patient(addr);
    let reference: Vec<(String, String)> = run_combos(&client)
        .into_iter()
        .map(|r| r.expect("fault-free run succeeds"))
        .collect();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // The matrix: each cell arms a different mix against its own seed.
    let matrix: &[(u64, &str)] = &[
        (11, "net=0.25,slow=1ms"),
        (12, "io=0.4"),
        (13, "panic=0.4,retries=1"),
        (14, "io=0.25,net=0.15,panic=0.15,slow=1ms"),
    ];
    let mut total_injected = 0u64;
    for (cell, (seed, spec)) in matrix.iter().enumerate() {
        let chaos = Arc::new(Chaos::from_spec(*seed, spec).unwrap());
        let (addr, handle) = start(&format!("cell{cell}"), Some(Arc::clone(&chaos)));
        let client = patient(addr);

        let mut done = 0usize;
        let mut classified = 0usize;
        for (i, outcome) in run_combos(&client).into_iter().enumerate() {
            match outcome {
                Ok((ipc, key)) => {
                    // Whatever survived the faults must be byte-identical
                    // to the reference — a wrong-but-plausible payload is
                    // the one unacceptable outcome.
                    assert_eq!(
                        (ipc, key),
                        reference[i].clone(),
                        "cell {cell} ({spec}) combo {:?}",
                        COMBOS[i]
                    );
                    done += 1;
                }
                Err(msg) => {
                    // Failures must be classified, not mysterious: an
                    // injected panic surfaced through the job state, a
                    // deadline expiry, or a typed client error.
                    assert!(
                        msg.contains("simulation panicked")
                            || msg.contains("deadline")
                            || msg.contains("after")
                            || msg.contains("attempt"),
                        "cell {cell} ({spec}): unclassified failure: {msg}"
                    );
                    classified += 1;
                }
            }
        }
        assert_eq!(done + classified, COMBOS.len(), "every combo accounted for");

        // /stats must still be serveable mid-chaos, and shutdown must
        // drain cleanly (it is exempt from injected resets).
        let stats = client.stats().unwrap_or_default();
        assert!(
            stats.is_empty() || stats.contains("server.jobs"),
            "stats document lost its job counters: {stats}"
        );
        client.shutdown().expect("shutdown drains despite chaos");
        handle.join().expect("no panic may escape a server thread");

        // The armed kinds really ran through their injection sites.
        for kind in [
            FaultKind::Io,
            FaultKind::Panic,
            FaultKind::Net,
            FaultKind::Slow,
        ] {
            if chaos.rate(kind) > 0.0 {
                assert!(
                    chaos.rolls(kind) > 0,
                    "cell {cell} ({spec}): {} armed but never rolled",
                    kind.label()
                );
                total_injected += chaos.injected(kind);
            }
        }
    }
    assert!(
        total_injected > 0,
        "the whole matrix injected nothing — chaos is wired to nothing"
    );
}

#[test]
fn heavy_resets_classify_without_budget_and_recover_with_one() {
    let chaos = Arc::new(Chaos::from_spec(21, "net=0.6").unwrap());
    let (addr, handle) = start("resets", Some(Arc::clone(&chaos)));

    // Zero retry budget: some of these must surface as typed transport
    // errors (never a panic, never a hang).
    let impatient = Client::new(addr.to_string()).with_retries(0);
    let failures = (0..6).filter(|_| impatient.health().is_err()).count();
    assert!(failures > 0, "60% resets never surfaced in six attempts");

    // A real budget rides the same fault rate out.
    let client = patient(addr);
    assert_eq!(client.health().expect("retries recover").status, 200);
    assert!(chaos.injected(FaultKind::Net) > 0);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn stale_queued_jobs_expire_with_a_classified_state() {
    // One worker and a 1 ms deadline: whatever queues behind the first
    // job sits past its deadline and must expire unrun — a classified
    // state, not a hang and not a wrong result.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            sim: tiny_sim(),
            workers: 1,
            queue_capacity: 8,
            request_timeout: Duration::from_secs(10),
            deadline: Duration::from_millis(1),
            restart_limit: 3,
            restart_backoff: Duration::from_millis(10),
            http: PoolPolicy::default(),
            store: Some(scratch_store("expire")),
            chaos: None,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let client = patient(addr);

    let mut jobs = Vec::new();
    for wl in ["lbm", "mcf", "milc", "astar"] {
        let submit = client.submit(wl, "profile", "").unwrap();
        assert_eq!(submit.status, 202, "{wl}");
        jobs.push(submit.job.unwrap());
    }
    let mut expired = 0usize;
    let mut completed = 0usize;
    for job in jobs {
        let terminal = client.wait_done(job, 120_000).unwrap();
        match terminal.state() {
            Some("done") => completed += 1,
            Some("expired") => {
                assert!(
                    terminal.fields["error"].contains("deadline"),
                    "{}",
                    terminal.body
                );
                expired += 1;
            }
            state => panic!("job {job} ended {state:?}: {}", terminal.body),
        }
    }
    assert!(
        expired > 0,
        "a 1 ms deadline behind a busy worker must expire"
    );
    assert_eq!(expired + completed, 4);

    // The drain must account for expired jobs, or shutdown would hang.
    let drained = client.shutdown().unwrap();
    assert_eq!(
        drained.fields["accepted"].parse::<usize>().unwrap(),
        expired + completed
    );
    assert_eq!(drained.fields["expired"].parse::<usize>().unwrap(), expired);
    handle.join().unwrap();
}
