//! Integration test of `POST /submit-batch`: one request carrying a mix
//! of warm, cold and invalid specs comes back with per-index states —
//! cached entries inline their full run summary (zero extra round trips
//! on a warm remote sweep), queued entries carry job ids that drain to
//! `done`, and bad specs are rejected without poisoning their batchmates.

use std::time::Duration;

use ramp_core::config::SystemConfig;
use ramp_serve::client::Client;
use ramp_serve::http::PoolPolicy;
use ramp_serve::server::{Server, ServerConfig, MAX_BATCH};
use ramp_serve::store::RunStore;

fn scratch_store(tag: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("ramp-batch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

fn start(tag: &str) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            sim: SystemConfig {
                insts_per_core: 40_000,
                ..SystemConfig::smoke_test()
            },
            workers: 2,
            queue_capacity: 8,
            request_timeout: Duration::from_secs(10),
            deadline: Duration::from_secs(60),
            restart_limit: 3,
            restart_backoff: Duration::from_millis(10),
            http: PoolPolicy::default(),
            store: Some(scratch_store(tag)),
            chaos: None,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn spec(workload: &str, kind: &str, policy: &str) -> (String, String, String) {
    (workload.to_string(), kind.to_string(), policy.to_string())
}

#[test]
fn batch_mixes_warm_queued_and_rejected_specs() {
    let (addr, handle) = start("mixed");
    let client = Client::new(addr.to_string());

    // Warm one spec the old way so the batch can answer it from the store.
    let first = client.submit("astar", "profile", "").unwrap();
    assert_eq!(first.status, 202);
    let done = client.wait_done(first.job.unwrap(), 120_000).unwrap();
    assert_eq!(done.state(), Some("done"));

    let batch = client
        .submit_batch(&[
            spec("astar", "profile", ""),        // warm -> done inline
            spec("astar", "static", "balanced"), // cold -> queued
            spec("zork", "profile", ""),         // invalid -> rejected
        ])
        .unwrap();
    assert_eq!(batch.len(), 3);

    assert_eq!(batch[0].state, "done");
    assert!(batch[0].cached);
    assert_eq!(batch[0].fields["workload"], "astar");
    assert_eq!(
        batch[0].fields["ipc"], done.fields["ipc"],
        "inline summary disagrees"
    );
    assert_eq!(batch[0].fields["key"], done.fields["key"]);

    assert_eq!(batch[1].state, "queued");
    let job = batch[1].job.expect("queued entry carries a job id");
    assert!(batch[1].key.is_some(), "queued entry carries its run key");

    assert_eq!(batch[2].state, "rejected");
    let err = batch[2]
        .error
        .as_deref()
        .expect("rejected entry carries an error");
    assert!(err.contains("workload"), "unexpected rejection: {err}");

    // The queued batchmate drains like any submitted job, to the same key.
    let finished = client.wait_done(job, 120_000).unwrap();
    assert_eq!(finished.state(), Some("done"));
    assert_eq!(
        Some(finished.fields["key"].as_str()),
        batch[1].key.as_deref()
    );

    // A repeat of the whole batch is now fully warm except the bad spec.
    let again = client
        .submit_batch(&[
            spec("astar", "profile", ""),
            spec("astar", "static", "balanced"),
            spec("zork", "profile", ""),
        ])
        .unwrap();
    assert_eq!(again[0].state, "done");
    assert_eq!(again[1].state, "done");
    assert!(again[1].cached);
    assert_eq!(again[2].state, "rejected");

    let drained = client.shutdown().unwrap();
    assert_eq!(drained.fields["failed"], "0");
    handle.join().unwrap();
}

#[test]
fn batch_rejects_bad_counts() {
    let (addr, handle) = start("counts");
    let client = Client::new(addr.to_string());

    // An empty batch and an oversized batch both 400 at the protocol
    // level before any spec is parsed.
    assert!(client.submit_batch(&[]).is_err(), "empty batch must fail");
    let oversized: Vec<_> = (0..MAX_BATCH + 1)
        .map(|_| spec("astar", "profile", ""))
        .collect();
    assert!(
        client.submit_batch(&oversized).is_err(),
        "batch beyond MAX_BATCH must fail"
    );

    // Nothing was accepted by either attempt.
    let drained = client.shutdown().unwrap();
    assert_eq!(drained.fields["accepted"], "0");
    handle.join().unwrap();
}
