//! Kill-and-replay matrix for the WAL-backed run store.
//!
//! Every cell simulates one crash mode the durability design (DESIGN.md
//! §11) claims to survive — a torn tail from a kill mid-append, a bit
//! flip inside a committed segment, a corrupted manifest, and seeded
//! chaos faults on the append path itself — then reopens the store and
//! holds it to one invariant: **every record acked before the crash is
//! byte-identical after replay, and everything else is classified**
//! (truncated-and-counted or quarantined-and-counted), never silently
//! wrong. The matrix runs serially and sharded over four worker threads
//! of the `ramp_sim::exec` executor, mirroring `RAMP_THREADS=1/4` in the
//! CI golden stages.
//!
//! A second family proves compaction preserves every live key
//! byte-for-byte, is crash-safe when its manifest swap is injected to
//! fail, and that a supervised multi-worker server over a WAL store
//! survives whole-worker kills with a clean offline verify afterwards.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use ramp_avf::{PageStats, StatsTable};
use ramp_core::config::SystemConfig;
use ramp_core::system::RunResult;
use ramp_serve::client::Client;
use ramp_serve::http::PoolPolicy;
use ramp_serve::server::{Server, ServerConfig};
use ramp_serve::store::{run_key, RunKind, RunStore, StoreMode};
use ramp_serve::wire;
use ramp_sim::chaos::{Chaos, FaultKind};
use ramp_sim::codec::decode_framed_prefix;
use ramp_sim::exec::parallel_map;
use ramp_sim::telemetry::{Snapshot, Stat};
use ramp_sim::units::PageId;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ramp-walrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small fully-populated result whose bytes vary with `salt`, so a
/// byte-identity check on one key can never pass by matching another.
fn sample_run(workload: &str, salt: u64) -> RunResult {
    let mut telemetry = Snapshot::default();
    telemetry.insert("system", "instructions", Stat::Counter(1_000 + salt));
    RunResult {
        workload: workload.into(),
        policy: "wal-matrix".into(),
        ipc: 1.0 + salt as f64 / 7.0,
        per_core_ipc: vec![1.0, 0.5 + salt as f64],
        ser_fit: 100.0 + salt as f64,
        ser_ddr_only_fit: 1.0,
        cycles: 10_000 + salt,
        instructions: 1_000 + salt,
        mpki: 2.5,
        hbm_accesses: 40 + salt,
        ddr_accesses: 11,
        migrations: salt % 5,
        mean_read_latency: (80.0, 200.0),
        table: StatsTable::from_stats(
            vec![PageStats {
                page: PageId(salt),
                reads: salt,
                writes: 2,
                ace_hbm: 10,
                ace_ddr: 5,
                avf: 0.25,
            }],
            10_000 + salt,
        ),
        telemetry,
    }
}

fn keyed(cfg: &SystemConfig, i: u64) -> (String, RunResult) {
    let workload = format!("wl{i}");
    let key = run_key(cfg, RunKind::Migration, &workload, "wal-matrix");
    (key, sample_run(&workload, i))
}

fn wal_dir(store: &RunStore) -> PathBuf {
    store.dir().join("wal")
}

/// Segment files currently on disk, in id order.
fn seg_files(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .collect();
    segs.sort();
    segs
}

/// Byte offsets of each framed record inside one segment.
fn record_offsets(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut offsets = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let (_, consumed) = decode_framed_prefix(
            &bytes[at..],
            wire::KIND_WAL_RECORD,
            ramp_serve::wal::WAL_VERSION,
        )
        .expect("intact segment decodes");
        offsets.push((at, consumed));
        at += consumed;
    }
    offsets
}

/// Checks every populated key against the reopened store: loaded values
/// must be byte-identical to what was written; missing values are only
/// acceptable when `allow_missing` (the crash mode classifies them).
/// Returns how many keys survived.
fn check_byte_identity(
    store: &RunStore,
    written: &[(String, RunResult)],
    allow_missing: bool,
    ctx: &str,
) -> usize {
    let mut present = 0usize;
    for (key, run) in written {
        match store.load_run(key) {
            Some(loaded) => {
                assert_eq!(
                    wire::encode_run(&loaded),
                    wire::encode_run(run),
                    "{ctx}: key {key} replayed with different bytes"
                );
                present += 1;
            }
            None => assert!(allow_missing, "{ctx}: acked key {key} vanished"),
        }
    }
    present
}

/// One crash mode of the matrix.
struct Cell {
    name: &'static str,
    seed: u64,
}

const CELLS: &[Cell] = &[
    Cell {
        name: "torn-tail",
        seed: 3,
    },
    Cell {
        name: "segment-flip",
        seed: 5,
    },
    Cell {
        name: "manifest-corrupt",
        seed: 7,
    },
    Cell {
        name: "append-chaos",
        seed: 11,
    },
];

fn exercise(cell: &Cell, threads_tag: &str) {
    let cfg = SystemConfig::smoke_test();
    let dir = fresh_dir(&format!("{}-{threads_tag}", cell.name));
    let ctx = format!("{}@{threads_tag}", cell.name);

    match cell.name {
        // Kill mid-append: the last record's frame is cut short on disk.
        // Replay must truncate it (classified as torn, not quarantined),
        // keep every earlier record byte-identical, and verify clean.
        "torn-tail" => {
            let store = RunStore::open_wal(&dir).unwrap();
            let written: Vec<_> = (0..8).map(|i| keyed(&cfg, i)).collect();
            for (key, run) in &written {
                assert!(store.store_run(key, run), "{ctx}: populate failed");
            }
            let wdir = wal_dir(&store);
            drop(store);
            let seg = seg_files(&wdir).pop().expect("one live segment");
            let intact = std::fs::read(&seg).unwrap();
            let offsets = record_offsets(&intact);
            let &(last_at, last_len) = offsets.last().unwrap();
            // Three seeded cuts inside the final frame: header, body, and
            // one byte short of complete.
            for cut_pick in 0..3u64 {
                let offset = ((cell.seed + cut_pick * 13) % (last_len as u64 - 1)) as usize;
                let cut = last_at + 1 + offset;
                std::fs::write(&seg, &intact[..cut]).unwrap();
                let store = RunStore::open_wal(&dir).unwrap();
                let replay = store.replay_report().unwrap();
                assert_eq!(replay.torn_truncated, 1, "{ctx}: cut at {cut}");
                assert_eq!(replay.quarantined, 0, "{ctx}: torn tail misclassified");
                let present = check_byte_identity(&store, &written, true, &ctx);
                assert_eq!(present, written.len() - 1, "{ctx}: wrong survivor count");
                assert!(store.verify().ok(), "{ctx}: {}", store.verify());
                drop(store);
                // Replay healed (truncated) the file; restore the intact
                // bytes for the next cut.
                std::fs::write(&seg, &intact).unwrap();
            }
        }
        // A flipped byte inside a committed record: the damaged record
        // and the remainder of its segment are quarantined (classified),
        // everything before it is byte-identical, and nothing loads
        // wrong bytes.
        "segment-flip" => {
            let store = RunStore::open_wal(&dir).unwrap();
            let written: Vec<_> = (0..8).map(|i| keyed(&cfg, i)).collect();
            for (key, run) in &written {
                assert!(store.store_run(key, run), "{ctx}: populate failed");
            }
            let wdir = wal_dir(&store);
            drop(store);
            let seg = seg_files(&wdir).pop().expect("one live segment");
            let intact = std::fs::read(&seg).unwrap();
            let offsets = record_offsets(&intact);
            let (at, len) = offsets[(cell.seed % offsets.len() as u64) as usize];
            let mut bad = intact.clone();
            // Flip one payload byte (offset 21 clears the frame header).
            bad[at + 21 + (cell.seed % (len as u64 - 29)) as usize] ^= 0x20;
            std::fs::write(&seg, &bad).unwrap();

            let store = RunStore::open_wal(&dir).unwrap();
            let replay = store.replay_report().unwrap();
            assert!(replay.quarantined >= 1, "{ctx}: flip not quarantined");
            let present = check_byte_identity(&store, &written, true, &ctx);
            assert!(
                present < written.len(),
                "{ctx}: a flipped record cannot survive"
            );
            assert!(store.verify().ok(), "{ctx}: {}", store.verify());
        }
        // A corrupted manifest: the next open quarantines it and rebuilds
        // the segment list by scanning, losing nothing.
        "manifest-corrupt" => {
            let store = RunStore::open_wal(&dir).unwrap();
            let written: Vec<_> = (0..8).map(|i| keyed(&cfg, i)).collect();
            for (key, run) in &written {
                assert!(store.store_run(key, run), "{ctx}: populate failed");
            }
            let wdir = wal_dir(&store);
            drop(store);
            let manifest = wdir.join("MANIFEST");
            let mut bytes = std::fs::read(&manifest).unwrap();
            let mid = (cell.seed % bytes.len() as u64) as usize;
            bytes[mid] ^= 0xFF;
            std::fs::write(&manifest, &bytes).unwrap();

            let store = RunStore::open_wal(&dir).unwrap();
            let replay = store.replay_report().unwrap();
            assert!(replay.manifest_rebuilt, "{ctx}: manifest not rebuilt");
            assert_eq!(
                check_byte_identity(&store, &written, false, &ctx),
                written.len()
            );
            assert!(store.verify().ok(), "{ctx}: {}", store.verify());
        }
        // Seeded io faults on the live append path (failed appends, torn
        // appends that poison the handle, failed manifest swaps): only
        // acked writes count, and every one of them replays identically.
        "append-chaos" => {
            let chaos = Arc::new(Chaos::from_spec(cell.seed, "io=0.45").unwrap());
            let store = RunStore::open_wal(&dir)
                .unwrap()
                .with_chaos(Some(Arc::clone(&chaos)));
            let written: Vec<_> = (0..32).map(|i| keyed(&cfg, i)).collect();
            let mut acked = Vec::new();
            for (key, run) in &written {
                if store.store_run(key, run) {
                    acked.push((key.clone(), run.clone()));
                }
            }
            assert!(chaos.rolls(FaultKind::Io) > 0, "{ctx}: chaos never rolled");
            drop(store);

            let store = RunStore::open_wal(&dir).unwrap();
            assert_eq!(
                check_byte_identity(&store, &acked, false, &ctx),
                acked.len(),
                "{ctx}: an acked write went missing"
            );
            assert!(store.verify().ok(), "{ctx}: {}", store.verify());
        }
        other => panic!("unknown cell {other}"),
    }
}

#[test]
fn kill_and_replay_matrix_single_thread() {
    for cell in CELLS {
        exercise(cell, "t1");
    }
}

#[test]
fn kill_and_replay_matrix_four_threads() {
    parallel_map(4, CELLS.iter().collect::<Vec<_>>(), |_, cell| {
        exercise(cell, "t4")
    });
}

#[test]
fn compaction_preserves_live_keys_and_survives_injected_crash() {
    let cfg = SystemConfig::smoke_test();
    let dir = fresh_dir("compact");
    let store = RunStore::open_wal(&dir).unwrap();
    assert_eq!(store.mode(), StoreMode::Wal);

    // Live data plus garbage to reclaim: overwritten runs and a removed
    // checkpoint trail.
    let written: Vec<_> = (0..10).map(|i| keyed(&cfg, i)).collect();
    for (key, run) in &written {
        assert!(store.store_run(key, &sample_run("stale", 999)));
        assert!(store.store_run(key, run));
    }
    let (dead_key, _) = keyed(&cfg, 0);
    for epoch in 1..=4 {
        let blob = ramp_sim::codec::encode_framed(
            ramp_core::system::CHECKPOINT_KIND,
            ramp_core::system::CHECKPOINT_VERSION,
            &[epoch as u8; 32],
        );
        assert!(store.store_checkpoint(&dead_key, epoch, &blob));
    }
    assert_eq!(store.remove_checkpoints(&dead_key), 4);

    // A compaction whose manifest swap is injected to fail must change
    // nothing: the old segments stay live.
    let chaos = Arc::new(Chaos::from_spec(17, "io=1.0").unwrap());
    let store = store.with_chaos(Some(chaos));
    assert!(
        store.compact().unwrap().is_err(),
        "io=1.0 must fail the swap"
    );
    let store = store.with_chaos(None);
    assert_eq!(
        check_byte_identity(&store, &written, false, "compact-crash"),
        written.len()
    );
    assert!(store.verify().ok(), "{}", store.verify());

    // The real pass drops the dead records and preserves live bytes.
    let report = store.compact().unwrap().unwrap();
    assert!(
        report.bytes_after < report.bytes_before,
        "compaction reclaimed nothing: {report}"
    );
    assert_eq!(
        check_byte_identity(&store, &written, false, "compacted"),
        written.len()
    );
    assert!(store.verify().ok(), "{}", store.verify());

    // And the compacted log replays identically on a cold open.
    drop(store);
    let store = RunStore::open_wal(&dir).unwrap();
    assert_eq!(
        check_byte_identity(&store, &written, false, "compacted-reopen"),
        written.len()
    );
    assert!(store.list_checkpoints(&keyed(&cfg, 0).0).is_empty());
    assert!(store.verify().ok(), "{}", store.verify());
}

#[test]
fn supervised_workers_survive_kills_over_a_wal_store() {
    // Whole-worker kills (`server.worker` panics escape the per-job
    // isolation) against a WAL-backed store: the supervisor requeues and
    // restarts, the drain terminates, no panic escapes the server, and
    // the store verifies clean offline afterwards.
    let dir = fresh_dir("server");
    let chaos = Arc::new(Chaos::from_spec(29, "panic=0.5").unwrap());
    let store = RunStore::open_wal(&dir)
        .unwrap()
        .with_chaos(Some(Arc::clone(&chaos)));
    let sim = SystemConfig {
        insts_per_core: 20_000,
        ..SystemConfig::smoke_test()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            sim: sim.clone(),
            workers: 2,
            queue_capacity: 16,
            request_timeout: Duration::from_secs(10),
            deadline: Duration::from_secs(60),
            restart_limit: 32,
            restart_backoff: Duration::from_millis(1),
            http: PoolPolicy::default(),
            store: Some(store),
            chaos: Some(Arc::clone(&chaos)),
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let client = Client::new(addr.to_string())
        .with_retries(12)
        .with_backoff(Duration::from_millis(2))
        .with_retry_429(true);

    let mut done = 0usize;
    let mut classified = 0usize;
    for wl in ["lbm", "mcf", "milc", "astar", "libquantum", "gcc"] {
        let submit = client.submit(wl, "profile", "").unwrap();
        match submit.status {
            202 => {
                let terminal = client.wait_done(submit.job.unwrap(), 120_000).unwrap();
                match terminal.state() {
                    Some("done") => done += 1,
                    Some("failed") => {
                        let err = &terminal.fields["error"];
                        assert!(
                            err.contains("panicked") || err.contains("attempt"),
                            "unclassified failure: {err}"
                        );
                        classified += 1;
                    }
                    state => panic!("job ended {state:?}: {}", terminal.body),
                }
            }
            200 => done += 1,
            status => panic!("submit {wl} returned {status}"),
        }
    }
    assert_eq!(done + classified, 6, "every job accounted for");
    let stats = client.stats().unwrap();
    assert!(stats.contains("worker_deaths"), "{stats}");
    client.shutdown().expect("drain survives worker kills");
    handle.join().expect("no panic may escape the server");
    assert!(
        chaos.injected(FaultKind::Panic) > 0,
        "panic chaos armed but never fired"
    );

    // Offline, without chaos: the WAL replays and verifies clean.
    let store = RunStore::open_wal(&dir).unwrap();
    assert!(store.verify().ok(), "{}", store.verify());
}
