//! Property-based tests over the shard-routing primitives (in-tree
//! `ramp_sim::check` harness): the guarantees every other layer of the
//! fleet leans on. Balance — jump-consistent-hash spreads keys evenly
//! over any shard count; monotonicity — growing the map from N to N+1
//! shards moves only ~1/(N+1) of the keys (the property that makes the
//! hash "consistent"); and replica sets — always the requested size,
//! pairwise-distinct, led by the primary, and identical no matter which
//! router computes them.
//!
//! Each property runs deterministic cases; on failure the harness
//! prints the case's seed so `RAMP_PROP_SEED=<seed>` replays it alone.

use ramp_serve::router::{replica_set, route_shard};
use ramp_sim::check::{check, check_n, Gen};

/// A plausible routing key: the same `workload|kind|policy` shape the
/// router hashes in production, plus raw random strings for coverage
/// beyond the structured namespace.
fn arb_key(g: &mut Gen) -> String {
    if g.bool() {
        let workloads = ["mcf", "milc", "omnetpp", "astar", "sphinx", "soplex"];
        let kinds = ["profile", "placement", "migration"];
        let policies = ["", "perf-fc", "balanced", "wr-ratio", "frac-hottest-0.50"];
        format!(
            "{}|{}|{}",
            g.pick(&workloads),
            g.pick(&kinds),
            g.pick(&policies)
        )
    } else {
        let len = g.usize_in(1, 40);
        (0..len)
            .map(|_| g.u8_in_inclusive(b' ', b'~') as char)
            .collect()
    }
}

/// Every key lands in range, and the same key always lands on the same
/// shard — routing is a pure function of (key, shard count).
#[test]
fn routing_is_total_and_deterministic() {
    check("routing_is_total_and_deterministic", |g| {
        let key = arb_key(g);
        let shards = g.usize_in(1, 64);
        let slot = route_shard(&key, shards);
        assert!(slot < shards, "key {key:?} -> {slot} out of {shards}");
        assert_eq!(slot, route_shard(&key, shards), "routing must be pure");
    });
}

/// Balance: over a fixed population of distinct run keys, every shard
/// count 1..=16 spreads load within 3x of the ideal share. (Jump hash
/// is much tighter in expectation; the loose bound keeps the test
/// deterministic-robust at this population size.)
#[test]
fn keys_balance_across_shard_counts() {
    let keys: Vec<String> = (0..4096)
        .map(|i| format!("wl{}|placement|p{}", i, i % 7))
        .collect();
    for shards in 1..=16usize {
        let mut counts = vec![0usize; shards];
        for key in &keys {
            counts[route_shard(key, shards)] += 1;
        }
        let ideal = keys.len() / shards;
        for (slot, &n) in counts.iter().enumerate() {
            assert!(
                n * 3 >= ideal && n <= ideal * 3,
                "shard {slot}/{shards} holds {n} keys (ideal {ideal})"
            );
        }
    }
}

/// Monotonicity: adding one shard to an N-shard map relocates roughly
/// 1/(N+1) of the keys, and every relocated key moves *to the new
/// shard* — nothing reshuffles between old shards.
#[test]
fn growing_the_map_moves_only_its_share_of_keys() {
    check_n("growing_the_map_moves_only_its_share_of_keys", 64, |g| {
        let shards = g.usize_in(1, 16);
        let keys: Vec<String> = (0..2048).map(|i| format!("key-{i}|{}", g.u64())).collect();
        let mut moved = 0usize;
        for key in &keys {
            let before = route_shard(key, shards);
            let after = route_shard(key, shards + 1);
            if before != after {
                assert_eq!(after, shards, "key {key:?} reshuffled {before}->{after}");
                moved += 1;
            }
        }
        let expected = keys.len() / (shards + 1);
        assert!(
            moved * 2 >= expected && moved <= expected * 2,
            "{moved} of {} keys moved at {shards}->{} shards (expected ~{expected})",
            keys.len(),
            shards + 1
        );
    });
}

/// Replica sets: requested size (clamped to the shard count), led by
/// the jump-hash primary, pairwise-distinct, and in range.
#[test]
fn replica_sets_are_distinct_primary_led_and_clamped() {
    check("replica_sets_are_distinct_primary_led_and_clamped", |g| {
        let key = arb_key(g);
        let shards = g.usize_in(1, 16);
        let replicas = g.usize_in(0, 20); // deliberately out of range too
        let set = replica_set(&key, shards, replicas);
        assert_eq!(set.len(), replicas.clamp(1, shards));
        assert_eq!(set[0], route_shard(&key, shards), "primary leads");
        for (i, &a) in set.iter().enumerate() {
            assert!(a < shards, "replica {a} out of range {shards}");
            for &b in &set[i + 1..] {
                assert_ne!(a, b, "duplicate replica in {set:?}");
            }
        }
        assert_eq!(
            set,
            replica_set(&key, shards, replicas),
            "replica sets must agree across routers"
        );
    });
}
