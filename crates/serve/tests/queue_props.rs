//! Property tests for the bounded job queue: the 429 backpressure path
//! interleaved with job deadlines.
//!
//! The server's admission story is `try_push` → `Full` → HTTP 429 with a
//! retry-after hint, and every accepted job carries a deadline that the
//! dispatcher checks when it finally pops the job. These properties drive
//! that whole loop with seeded random interleavings of arrivals, batch
//! pops, clock advances, 429 retries and shutdown, and assert the
//! invariants the server relies on:
//!
//! * `Full` is returned **exactly** when the queue is at capacity, and
//!   `Closed` exactly after `close()` — never any other time.
//! * accepted == completed + expired + still-queued (no job is lost or
//!   duplicated, including jobs retried after a 429).
//! * pops preserve FIFO admission order.
//! * a 429'd client that waits for the dispatcher to free a slot (the
//!   retry-after contract) always gets in, as long as the queue is open.
//! * after `close()` the backlog drains in order and then `pop_batch`
//!   reports end-of-queue.

use ramp_serve::queue::{BoundedQueue, PushError};
use ramp_sim::check::check_n;

/// A queued job as the property model sees it: admission ticket plus the
/// virtual-clock deadline it was accepted with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Job {
    seq: u64,
    deadline: u64,
}

#[test]
fn full_and_closed_are_exact_and_no_job_is_lost() {
    check_n("queue full/closed exactness + conservation", 192, |g| {
        let capacity = g.usize_in(1, 9);
        let q = BoundedQueue::new(capacity);
        let horizon = g.u64_in(8, 40);

        let mut clock = 0u64;
        let mut next_seq = 0u64;
        let mut accepted: Vec<Job> = Vec::new(); // admission order
        let mut popped: Vec<Job> = Vec::new();
        let mut completed = 0u64;
        let mut expired = 0u64;
        let mut rejected_429 = 0u64;
        let mut closed = false;

        let steps = g.usize_in(10, 120);
        for _ in 0..steps {
            match g.u64_below(10) {
                // Arrival: a client submits a job with a deadline.
                0..=4 => {
                    let job = Job {
                        seq: next_seq,
                        deadline: clock + g.u64_in(0, horizon),
                    };
                    let depth_before = q.len();
                    match q.try_push(job) {
                        Ok(()) => {
                            assert!(!closed, "push accepted after close");
                            assert!(
                                depth_before < capacity,
                                "push accepted at depth {depth_before} with capacity {capacity}"
                            );
                            accepted.push(job);
                            next_seq += 1;
                        }
                        Err(PushError::Full) => {
                            assert!(!closed, "Full reported after close (must be Closed)");
                            assert_eq!(
                                depth_before, capacity,
                                "429 at depth {depth_before} but capacity is {capacity}"
                            );
                            rejected_429 += 1;
                        }
                        Err(PushError::Closed) => {
                            assert!(closed, "Closed reported while the queue was open");
                        }
                    }
                }
                // Dispatch: the worker drains a batch and applies the
                // deadline check the server performs per job.
                5..=7 => {
                    if q.is_empty() {
                        continue; // pop_batch would block; model stays single-threaded
                    }
                    let max = g.usize_in(1, capacity + 2);
                    let batch = q.pop_batch(max).expect("non-empty queue yielded None");
                    assert!(!batch.is_empty() && batch.len() <= max);
                    for job in batch {
                        if job.deadline < clock {
                            expired += 1;
                        } else {
                            completed += 1;
                        }
                        popped.push(job);
                    }
                }
                // Time passes; queued jobs may drift past their deadline.
                8 => clock += g.u64_in(1, horizon),
                // Shutdown (at most once per case).
                _ => {
                    if !closed && g.u64_below(4) == 0 {
                        q.close();
                        closed = true;
                    }
                }
            }
        }

        // Drain whatever is still queued (close first so the final
        // pop_batch can report end-of-queue rather than block).
        if !closed {
            q.close();
        }
        while let Some(batch) = q.pop_batch(capacity) {
            for job in batch {
                if job.deadline < clock {
                    expired += 1;
                } else {
                    completed += 1;
                }
                popped.push(job);
            }
        }

        // Conservation: every accepted job surfaced exactly once, and
        // nothing the queue never accepted ever came out of it.
        assert_eq!(
            accepted.len() as u64,
            completed + expired,
            "accepted={} completed={completed} expired={expired} (429s={rejected_429})",
            accepted.len()
        );
        // FIFO: pops reproduce the admission order byte-for-byte.
        assert_eq!(popped, accepted, "pop order diverged from admission order");
    });
}

#[test]
fn retry_after_always_lands_once_a_slot_frees() {
    check_n("429 retry lands after dispatcher frees a slot", 128, |g| {
        let capacity = g.usize_in(1, 6);
        let q = BoundedQueue::new(capacity);

        // Fill to the brim, confirm the 429.
        for seq in 0..capacity as u64 {
            q.try_push(Job { seq, deadline: 10 }).unwrap();
        }
        let shed = Job {
            seq: capacity as u64,
            deadline: 10,
        };
        assert_eq!(q.try_push(shed), Err(PushError::Full));

        // The retry-after contract: once the dispatcher pops *anything*,
        // an immediate retry of the shed job must be accepted.
        let freed = g.usize_in(1, capacity + 1);
        let batch = q.pop_batch(freed).unwrap();
        assert!(!batch.is_empty());
        assert!(
            q.try_push(shed).is_ok(),
            "retry refused although {} slot(s) freed",
            batch.len()
        );

        // And the retried job keeps its FIFO position behind the survivors.
        let mut rest = Vec::new();
        q.close();
        while let Some(b) = q.pop_batch(capacity) {
            rest.extend(b);
        }
        assert_eq!(rest.last(), Some(&shed), "retried job lost its place");
        let mut seqs: Vec<u64> = batch.iter().chain(&rest).map(|j| j.seq).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(seqs, sorted, "interleaved pops broke FIFO order");
        seqs.dedup();
        assert_eq!(
            seqs.len(),
            capacity + 1,
            "a job was lost or duplicated across the retry"
        );
    });
}

#[test]
fn fifo_makes_deadline_expiry_monotone_across_admission_order() {
    check_n("FIFO + monotone clock => monotone expiry", 128, |g| {
        let capacity = g.usize_in(2, 8);
        let q = BoundedQueue::new(capacity);

        // Admit a burst at t=0 with varied per-job patience.
        let jobs: Vec<Job> = (0..g.u64_in(2, capacity as u64 + 1))
            .map(|seq| Job {
                seq,
                deadline: g.u64_in(0, 12),
            })
            .collect();
        for job in &jobs {
            q.try_push(*job).unwrap();
        }

        // Drain in small batches with the clock ticking between pops,
        // recording the virtual time each job reached the dispatcher.
        let mut clock = 0u64;
        let mut seen: Vec<(Job, u64)> = Vec::new();
        q.close();
        loop {
            clock += g.u64_in(0, 8);
            match q.pop_batch(g.usize_in(1, 4)) {
                Some(batch) => seen.extend(batch.into_iter().map(|j| (j, clock))),
                None => break,
            }
        }
        assert_eq!(seen.len(), jobs.len());

        // FIFO means dispatch times are non-decreasing in admission
        // order...
        assert_eq!(
            seen.iter().map(|(j, _)| *j).collect::<Vec<_>>(),
            jobs,
            "drain diverged from admission order"
        );
        for pair in seen.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "later-admitted job dispatched earlier"
            );
        }
        // ...so expiry is monotone: once job i expires, every job behind
        // it with equal-or-less patience must expire too. A queue that
        // reordered or parked jobs would break this, and the server's
        // expired/done split depends on it being true.
        for i in 0..seen.len() {
            let (ji, ti) = seen[i];
            if ji.deadline >= ti {
                continue; // i made its deadline
            }
            for (jj, tj) in &seen[i + 1..] {
                if jj.deadline <= ji.deadline {
                    assert!(
                        jj.deadline < *tj,
                        "job {} expired but later job {} with deadline {} <= {} did not",
                        ji.seq,
                        jj.seq,
                        jj.deadline,
                        ji.deadline
                    );
                }
            }
        }
    });
}
