//! Golden-snapshot coverage for `GET /jobs/{id}` poll bodies.
//!
//! Every [`JobState`] variant — including the running state's live
//! checkpoint-progress fields (`epochs_done`, `epochs_total`,
//! `ckpt_epoch`, `resumed`) — is rendered through the production
//! [`render_job_status`] and pinned byte-for-byte against the committed
//! golden file. A schema drift in poll responses (renamed field,
//! reordered keys, changed formatting) fails here before any client
//! breaks.
//!
//! Regenerating after an intentional schema change:
//!
//! ```text
//! RAMP_BLESS=1 cargo test -p ramp-serve --test golden_progress
//! ```
//!
//! then commit the updated `tests/golden/job_status.json` and call out
//! the schema change in the PR description.

use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;

use ramp_serve::server::{render_job_status, JobState, RunSummary};
use ramp_serve::spec::RunProgress;

const GOLDEN_PATH: &str = "tests/golden/job_status.json";

fn sample_states() -> Vec<(&'static str, JobState)> {
    let fresh = RunProgress::default();
    let running = RunProgress {
        epochs_done: AtomicU64::new(7),
        epochs_total: AtomicU64::new(12),
        ckpt_epoch: AtomicU64::new(6),
        resumed: AtomicBool::new(false),
    };
    let resumed = RunProgress {
        epochs_done: AtomicU64::new(9),
        epochs_total: AtomicU64::new(12),
        ckpt_epoch: AtomicU64::new(8),
        resumed: AtomicBool::new(true),
    };
    let summary = RunSummary {
        key: "0123456789abcdef0123456789abcdef".to_string(),
        workload: "lbm".to_string(),
        policy: "perf-fc".to_string(),
        ipc: 1.25,
        ser_fit: 420.5,
        ser_vs_ddr_only: 0.875,
        cycles: 1_000_000,
        instructions: 1_250_000,
        mpki: 12.5,
        hbm_accesses: 9_000,
        ddr_accesses: 3_000,
        migrations: 42,
    };
    vec![
        ("queued", JobState::Queued),
        ("running-fresh", JobState::Running(Arc::new(fresh))),
        ("running-mid", JobState::Running(Arc::new(running))),
        ("running-resumed", JobState::Running(Arc::new(resumed))),
        ("done", JobState::Done(summary)),
        (
            "failed",
            JobState::Failed("worker panicked: boom".to_string()),
        ),
        ("expired", JobState::Expired),
    ]
}

fn render_document() -> String {
    let mut out = String::new();
    for (i, (label, state)) in sample_states().iter().enumerate() {
        out.push_str(&format!("# {label}\n"));
        out.push_str(&render_job_status(i as u64 + 1, state));
        out.push('\n');
    }
    out
}

fn golden_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn job_status_bodies_match_committed_golden_snapshot() {
    let rendered = render_document();
    let path = golden_file();
    if std::env::var("RAMP_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with RAMP_BLESS=1 cargo test -p ramp-serve --test golden_progress",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "job-status snapshot drifted from {GOLDEN_PATH}; if the change is \
         intentional, regenerate with RAMP_BLESS=1 cargo test -p ramp-serve \
         --test golden_progress"
    );
}

#[test]
fn running_state_exposes_checkpoint_progress_fields() {
    let (_, state) = &sample_states()[3]; // running-resumed
    let body = render_job_status(9, state);
    for needle in [
        "\"state\":\"running\"",
        "\"epochs_done\":9",
        "\"epochs_total\":12",
        "\"ckpt_epoch\":8",
        "\"resumed\":true",
    ] {
        assert!(body.contains(needle), "poll body missing {needle}: {body}");
    }
}
