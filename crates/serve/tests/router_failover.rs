//! Kill-a-shard-mid-sweep: the headline fault-tolerance guarantee of
//! the sharded fleet (DESIGN.md §13). A 64-point sweep is fanned out
//! through `ramp-router` to three real `ramp-served` shard processes;
//! one shard is SIGKILLed while points are in flight; the sweep must
//! still complete and its final Pareto artifact must be byte-identical
//! to an undisturbed local run of the same spec.
//!
//! Why byte-identity holds: every shard simulates the same
//! deterministic system, run keys are replicated on two shards, the
//! router fails requests over per-request (before the health prober
//! even darkens the dead shard), and lost in-flight jobs are
//! resubmitted to a surviving replica on the next poll. The artifact
//! excludes volatile counters, so "who simulated it" never leaks into
//! the bytes.

use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ramp_serve::client::{scan_counter, Client};
use ramp_serve::store::RunStore;
use ramp_sweep::artifact;
use ramp_sweep::engine;
use ramp_sweep::spec::SweepSpec;

/// The 64-point fleet grid (kept in sync with examples/sweep_fleet.toml
/// by the `fleet_spec_matches_the_example_file` test below).
const SPEC: &str = r#"
[sweep]
name = "sweep-fleet"
strategy = "grid"
base = "smoke"
insts = 20000

[axes]
workload = ["mcf", "milc", "omnetpp", "astar", "sphinx", "soplex", "gcc", "lbm"]
policy = ["profile", "perf-focused", "rel-focused", "balanced", "wr-ratio", "wr2-ratio", "frac-hottest-0.50", "migration:perf-fc"]
"#;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ramp-router-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reads a `--port-file`, polling until the daemon writes it.
fn wait_port(path: &PathBuf) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(addr) = std::fs::read_to_string(path) {
            if !addr.trim().is_empty() {
                return addr.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "no port file at {path:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_healthy(addr: &str) {
    let client = Client::new(addr.to_string()).with_retries(0);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(r) = client.health() {
            if r.status == 200 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "{addr} never became healthy");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn killing_a_shard_mid_sweep_keeps_the_artifact_byte_identical() {
    let dir = scratch_dir("fleet");
    let spec = SweepSpec::parse(SPEC).unwrap();

    // Undisturbed reference: the same spec run locally against a scratch
    // store. This is the byte-level ground truth the fleet must match.
    let ref_store = RunStore::open(dir.join("ref-store")).unwrap();
    let ref_run = engine::run_local(&spec, Some(&ref_store), 4).unwrap();
    let reference = artifact::render(&spec, &ref_run);

    // Three real shard daemons (separate processes, separate stores).
    let mut children = Vec::new();
    let mut shard_addrs = Vec::new();
    for i in 0..3 {
        let port_file = dir.join(format!("shard{i}.port"));
        let child = Command::new(env!("CARGO_BIN_EXE_ramp-served"))
            .args(["--addr", "127.0.0.1:0", "--workers", "2", "--queue", "64"])
            .args(["--smoke", "--port-file"])
            .arg(&port_file)
            .env("RAMP_INSTS", "20000")
            .env("RAMP_STORE_DIR", dir.join(format!("shard{i}-store")))
            .env_remove("RAMP_CHAOS")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ramp-served");
        children.push(child);
        shard_addrs.push(wait_port(&port_file));
    }

    // The router fronting them, replicas = 2, fast probe cadence so the
    // dead shard is darkened (and its hints dropped) within the test.
    let router_port_file = dir.join("router.port");
    let mut router_cmd = Command::new(env!("CARGO_BIN_EXE_ramp-router"));
    router_cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--replicas",
        "2",
        "--probe-ms",
        "50",
    ]);
    for addr in &shard_addrs {
        router_cmd.args(["--shard", addr]);
    }
    let router = router_cmd
        .args(["--port-file"])
        .arg(&router_port_file)
        .env_remove("RAMP_CHAOS")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ramp-router");
    children.push(router);
    let mut fleet = Reaper(children);
    let router_addr = wait_port(&router_port_file);
    for addr in &shard_addrs {
        wait_healthy(addr);
    }
    wait_healthy(&router_addr);

    // Fan the sweep out through the router on a worker thread while this
    // thread watches /stats for in-flight traffic and pulls the trigger.
    let done = Arc::new(AtomicBool::new(false));
    let sweep_done = Arc::clone(&done);
    let sweep_spec = spec.clone();
    let sweep_addr = router_addr.clone();
    let sweep = std::thread::spawn(move || {
        let client = Client::new(sweep_addr)
            .with_retries(6)
            .with_backoff(Duration::from_millis(25));
        let run = engine::run_remote(&sweep_spec, &client, 8, 120_000);
        sweep_done.store(true, Ordering::SeqCst);
        run
    });

    let stats_client = Client::new(router_addr.clone()).with_retries(6);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let doc = stats_client.stats().unwrap_or_default();
        if scan_counter(&doc, "proxied").unwrap_or(0) >= 8 {
            break;
        }
        assert!(
            Instant::now() < deadline && !done.load(Ordering::SeqCst),
            "sweep finished before any traffic was observed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // SIGKILL the middle shard while the sweep is mid-flight.
    assert!(
        !done.load(Ordering::SeqCst),
        "sweep already finished; the kill would not disturb anything"
    );
    fleet.0[1].kill().expect("SIGKILL shard 1");
    fleet.0[1].wait().unwrap();

    let run = sweep
        .join()
        .expect("sweep thread panicked")
        .expect("remote sweep failed after shard kill");
    let disturbed = artifact::render(&spec, &run);
    assert_eq!(
        disturbed, reference,
        "artifact diverged after killing a shard mid-sweep"
    );
    assert_eq!(run.rows.len(), 64);

    // The router must have noticed: either per-request failover fired or
    // a lost job was resubmitted to a surviving replica.
    let doc = stats_client.stats().expect("router stats after kill");
    let failover = scan_counter(&doc, "failover").unwrap_or(0);
    let resubmitted = scan_counter(&doc, "resubmitted").unwrap_or(0);
    assert!(
        failover + resubmitted > 0,
        "no failover or resubmission recorded in {doc}"
    );

    // Graceful teardown: router first, then the surviving shards.
    let _ = stats_client.shutdown();
    for (i, addr) in shard_addrs.iter().enumerate() {
        if i != 1 {
            let _ = Client::new(addr.clone()).shutdown();
        }
    }
    let status = fleet.0.pop().unwrap().wait_with_output().unwrap();
    assert!(
        status.status.success(),
        "router exited uncleanly: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    for (i, child) in fleet.0.iter_mut().enumerate() {
        if i == 1 {
            continue; // the murdered shard
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(st) = child.try_wait().unwrap() {
                assert!(st.success(), "shard {i} exited uncleanly");
                break;
            }
            assert!(Instant::now() < deadline, "shard {i} never drained");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Guards the inline spec against drifting from the shipped example.
#[test]
fn fleet_spec_matches_the_example_file() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/sweep_fleet.toml");
    let mut text = String::new();
    std::fs::File::open(&path)
        .unwrap_or_else(|e| panic!("{path:?}: {e}"))
        .read_to_string(&mut text)
        .unwrap();
    let example = SweepSpec::parse(&text).unwrap();
    let inline = SweepSpec::parse(SPEC).unwrap();
    assert_eq!(example.name, inline.name);
    assert_eq!(
        example.base.canonical_bytes(),
        inline.base.canonical_bytes()
    );
    assert_eq!(example.workloads, inline.workloads);
    assert_eq!(
        example.policies.iter().map(|p| &p.0).collect::<Vec<_>>(),
        inline.policies.iter().map(|p| &p.0).collect::<Vec<_>>()
    );
}
