//! Property tests for the store wire format: randomized run results must
//! round-trip bit-exactly, and *any* single-byte corruption, truncation
//! or version skew must decode to a clean error — the store treats those
//! as cache misses, so a panic or a silently-wrong result here would
//! poison every downstream experiment.

use ramp_avf::{PageStats, StatsTable};
use ramp_core::annotate::AnnotationSet;
use ramp_core::system::RunResult;
use ramp_sim::check::{check, Gen};
use ramp_sim::codec::CodecError;
use ramp_sim::telemetry::{BinHistogram, Snapshot, Stat};
use ramp_sim::PageId;
use ramp_trace::{Benchmark, Workload};

fn gen_string(g: &mut Gen) -> String {
    let pool = [
        "lbm",
        "mcf",
        "frac-hottest-0.50",
        "perf-fc",
        "",
        "caf\u{e9}/\"x\"",
    ];
    (*g.pick(&pool)).to_string()
}

fn gen_stat(g: &mut Gen) -> Stat {
    match g.u64_below(4) {
        0 => Stat::Counter(g.u64()),
        1 => Stat::Gauge(g.f64_in(-1e12, 1e12)),
        2 => {
            let bins = g.usize_in(1, 9);
            let lo = g.f64_in(-100.0, 100.0);
            let hi = lo + g.f64_in(0.5, 1000.0);
            let mut h = BinHistogram::new(lo, hi, bins);
            for _ in 0..g.usize_in(0, 20) {
                h.observe(g.f64_in(lo - 10.0, hi + 10.0));
            }
            Stat::Histogram(h)
        }
        _ => Stat::Ratio {
            num: g.u64_below(1 << 40),
            den: g.u64_below(1 << 40),
        },
    }
}

fn gen_snapshot(g: &mut Gen) -> Snapshot {
    let mut snap = Snapshot::default();
    for s in 0..g.usize_in(0, 4) {
        for n in 0..g.usize_in(1, 5) {
            snap.insert(&format!("scope{s}"), &format!("stat{n}"), gen_stat(g));
        }
    }
    snap
}

fn gen_run(g: &mut Gen) -> RunResult {
    let pages = g.vec(0, 12, |g| PageStats {
        page: PageId(g.u64_below(1 << 48)),
        reads: g.u64_below(1 << 32),
        writes: g.u64_below(1 << 32),
        ace_hbm: g.u64_below(1 << 40),
        ace_ddr: g.u64_below(1 << 40),
        avf: g.f64_in(0.0, 1.0),
    });
    RunResult {
        workload: gen_string(g),
        policy: gen_string(g),
        ipc: g.f64_in(0.0, 16.0),
        per_core_ipc: g.vec(0, 16, |g| g.f64_in(0.0, 4.0)),
        ser_fit: g.f64_in(0.0, 1e6),
        ser_ddr_only_fit: g.f64_in(1e-9, 1e4),
        cycles: g.u64(),
        instructions: g.u64(),
        mpki: g.f64_in(0.0, 500.0),
        hbm_accesses: g.u64_below(1 << 48),
        ddr_accesses: g.u64_below(1 << 48),
        migrations: g.u64_below(1 << 32),
        mean_read_latency: (g.f64_in(0.0, 1e4), g.f64_in(0.0, 1e4)),
        table: StatsTable::from_stats(pages, g.u64_below(1 << 48)),
        telemetry: gen_snapshot(g),
    }
}

fn assert_bit_equal(a: &RunResult, b: &RunResult) {
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
    assert_eq!(a.per_core_ipc.len(), b.per_core_ipc.len());
    for (x, y) in a.per_core_ipc.iter().zip(&b.per_core_ipc) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.ser_fit.to_bits(), b.ser_fit.to_bits());
    assert_eq!(a.ser_ddr_only_fit.to_bits(), b.ser_ddr_only_fit.to_bits());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.mpki.to_bits(), b.mpki.to_bits());
    assert_eq!(a.hbm_accesses, b.hbm_accesses);
    assert_eq!(a.ddr_accesses, b.ddr_accesses);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(
        a.mean_read_latency.0.to_bits(),
        b.mean_read_latency.0.to_bits()
    );
    assert_eq!(
        a.mean_read_latency.1.to_bits(),
        b.mean_read_latency.1.to_bits()
    );
    assert_eq!(a.table.pages(), b.table.pages());
    assert_eq!(a.table.total_cycles(), b.table.total_cycles());
    assert_eq!(a.telemetry, b.telemetry);
}

#[test]
fn random_runs_round_trip_bit_exactly() {
    check("wire: run round trip", |g| {
        let run = gen_run(g);
        let bytes = ramp_serve::wire::encode_run(&run);
        let back = ramp_serve::wire::decode_run(&bytes).expect("round trip decodes");
        assert_bit_equal(&run, &back);
        // The deterministic JSON document must also be unchanged.
        assert_eq!(run.telemetry.to_json(), back.telemetry.to_json());
    });
}

#[test]
fn random_annotated_runs_round_trip() {
    check("wire: annotated round trip", |g| {
        let run = gen_run(g);
        let benches = Benchmark::ALL;
        let set = AnnotationSet {
            structures: g.vec(0, 5, |g| {
                (*g.pick(&benches), format!("structure{}", g.u64_below(10)))
            }),
            pinned: g
                .vec(0, 20, |g| PageId(g.u64_below(1 << 30)))
                .into_iter()
                .collect(),
        };
        let bytes = ramp_serve::wire::encode_annotated(&run, &set);
        let (back, back_set) = ramp_serve::wire::decode_annotated(&bytes).unwrap();
        assert_bit_equal(&run, &back);
        assert_eq!(back_set.structures, set.structures);
        assert_eq!(back_set.pinned, set.pinned);
    });
}

#[test]
fn any_single_byte_corruption_is_a_clean_error() {
    check("wire: corruption detected", |g| {
        let run = gen_run(g);
        let good = ramp_serve::wire::encode_run(&run);
        // Flip one random bit somewhere in the frame.
        let mut bad = good.clone();
        let at = g.usize_in(0, bad.len());
        bad[at] ^= 1 << g.u64_below(8);
        match ramp_serve::wire::decode_run(&bad) {
            Err(_) => {}
            // Only a bit-exact reproduction may decode (never happens
            // with a real flip, but keeps the property honest).
            Ok(back) => assert_bit_equal(&run, &back),
        }
    });
}

#[test]
fn any_truncation_is_a_clean_error() {
    check("wire: truncation detected", |g| {
        let run = gen_run(g);
        let good = ramp_serve::wire::encode_run(&run);
        let cut = g.usize_in(0, good.len()); // strictly shorter
        assert!(
            ramp_serve::wire::decode_run(&good[..cut]).is_err(),
            "decode of {cut}/{} bytes must fail",
            good.len()
        );
    });
}

#[test]
fn version_and_kind_skew_are_clean_misses() {
    let run = gen_run(&mut test_gen());
    let good = ramp_serve::wire::encode_run(&run);
    let mut skewed = good.clone();
    skewed[8] ^= 0x01; // first byte of the little-endian version field
    assert!(matches!(
        ramp_serve::wire::decode_run(&skewed),
        Err(CodecError::WrongVersion { .. })
    ));
    assert!(matches!(
        ramp_serve::wire::decode_annotated(&good),
        Err(CodecError::WrongKind { .. })
    ));
}

#[test]
fn store_survives_random_garbage_files() {
    // Random bytes dropped into the store directory must read as misses.
    let dir = std::env::temp_dir().join(format!("ramp-codec-props-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ramp_serve::store::RunStore::open(&dir).unwrap();
    let cfg = ramp_core::config::SystemConfig::smoke_test();
    let key = ramp_serve::store::run_key(
        &cfg,
        ramp_serve::store::RunKind::Profile,
        Workload::all()[0].name(),
        "ddr-only",
    );
    check("store: garbage files are misses", |g| {
        let garbage: Vec<u8> = g.vec(0, 200, |g| g.u64() as u8);
        std::fs::write(dir.join(format!("{key}.run")), &garbage).unwrap();
        assert!(store.load_run(&key).is_none());
    });
}

#[test]
fn corrupted_persisted_entries_quarantine_and_never_serve_garbage() {
    // A persisted entry damaged on disk — one flipped bit or a random
    // truncation — must read back as a clean miss AND be quarantined
    // (renamed `*.quarantine` beside a `*.reason` autopsy note). It must
    // never panic and never serve a payload that differs from what was
    // written.
    let dir = std::env::temp_dir().join(format!("ramp-codec-quarantine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ramp_serve::store::RunStore::open(&dir).unwrap();
    let cfg = ramp_core::config::SystemConfig::smoke_test();
    let key = ramp_serve::store::run_key(
        &cfg,
        ramp_serve::store::RunKind::Static,
        Workload::all()[0].name(),
        "perf-focused",
    );
    let path = dir.join(format!("{key}.run"));
    let jail = dir.join(format!("{key}.run.quarantine"));
    let reason = dir.join(format!("{key}.run.reason"));
    check("store: damaged entries quarantine", |g| {
        let _ = std::fs::remove_file(&jail);
        let _ = std::fs::remove_file(&reason);
        let run = gen_run(g);
        assert!(store.store_run(&key, &run), "persist a fresh entry");
        let good = std::fs::read(&path).unwrap();
        let mut bad = good.clone();
        if g.u64_below(2) == 0 {
            let at = g.usize_in(0, bad.len());
            bad[at] ^= 1 << g.u64_below(8);
        } else {
            bad.truncate(g.usize_in(0, bad.len()));
        }
        std::fs::write(&path, &bad).unwrap();
        match store.load_run(&key) {
            None => {
                assert!(!path.exists(), "damaged file must leave the serving path");
                assert!(jail.exists(), "damaged file must be jailed");
                let note = std::fs::read_to_string(&reason).unwrap();
                assert!(note.contains(&format!("{key}.run")), "{note}");
                assert_eq!(
                    std::fs::read(&jail).unwrap(),
                    bad,
                    "jail preserves the bytes"
                );
            }
            // Only a bit-exact reproduction may ever serve.
            Some(back) => assert_bit_equal(&run, &back),
        }
    });
    let quarantined = store
        .metrics()
        .quarantined
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(quarantined > 0, "at least one iteration must quarantine");
}

fn test_gen() -> Gen {
    Gen::from_seed(0x52414d50)
}
