//! Chaos matrix for the shard router: seeded faults armed at the three
//! router sites (`router.upstream`, `router.handoff`, `router.probe`)
//! while the shards underneath stay fault-free. The PR-5 contract holds
//! one layer up:
//!
//! * every run driven through the router either completes with results
//!   **byte-identical** to the fault-free reference (the shards are
//!   deterministic; the router must never corrupt what it proxies), or
//!   fails *classified* — a 503 "no live replica", a typed
//!   [`ClientError`], or a poll budget expiry;
//! * `/stats` stays serveable mid-chaos, shutdown drains cleanly, and
//!   no panic escapes the router, its prober, its handoff thread or any
//!   shard (the joins prove it);
//! * the armed fault kinds actually rolled at the router's sites.
//!
//! Chaos handles are built explicitly ([`Chaos::from_spec`]) so
//! parallel tests never race on the process-global registry.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ramp_core::config::SystemConfig;
use ramp_serve::client::Client;
use ramp_serve::http::PoolPolicy;
use ramp_serve::router::{Router, RouterConfig};
use ramp_serve::server::{Server, ServerConfig};
use ramp_serve::store::RunStore;
use ramp_sim::chaos::{Chaos, FaultKind};

fn tiny_sim() -> SystemConfig {
    SystemConfig {
        insts_per_core: 20_000,
        ..SystemConfig::smoke_test()
    }
}

fn scratch_store(tag: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("ramp-router-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

/// One fault-free in-process shard.
fn start_shard(tag: &str) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            sim: tiny_sim(),
            workers: 2,
            queue_capacity: 16,
            request_timeout: Duration::from_secs(10),
            deadline: Duration::from_secs(60),
            restart_limit: 6,
            restart_backoff: Duration::from_millis(5),
            http: PoolPolicy::default(),
            store: Some(scratch_store(tag)),
            chaos: None,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

/// A chaos-armed router over three fault-free shards.
fn start_fleet(
    cell: usize,
    chaos: Option<Arc<Chaos>>,
) -> (
    SocketAddr,
    JoinHandle<()>,
    Vec<(SocketAddr, JoinHandle<()>)>,
) {
    let shards: Vec<(SocketAddr, JoinHandle<()>)> = (0..3)
        .map(|i| start_shard(&format!("cell{cell}-shard{i}")))
        .collect();
    let mut cfg = RouterConfig::new(shards.iter().map(|(a, _)| a.to_string()).collect());
    cfg.replicas = 2;
    cfg.probe_interval = Duration::from_millis(20);
    cfg.chaos = chaos;
    let router = Router::bind("127.0.0.1:0", cfg).unwrap();
    let addr = router.local_addr();
    (addr, std::thread::spawn(move || router.run()), shards)
}

fn patient(addr: SocketAddr) -> Client {
    Client::new(addr.to_string())
        .with_retries(12)
        .with_backoff(Duration::from_millis(2))
        .with_retry_429(true)
}

const COMBOS: &[(&str, &str, &str)] = &[
    ("lbm", "profile", ""),
    ("mcf", "static", "perf-focused"),
    ("milc", "migration", "perf-fc"),
    ("astar", "annotated", ""),
];

/// `(ipc, key)` per combo as served through the router; 503s (every
/// replica dark or faulted) come back as classified errors.
fn run_combos(client: &Client) -> Vec<Result<(String, String), String>> {
    COMBOS
        .iter()
        .map(|(wl, kind, policy)| {
            let submit = client
                .submit(wl, kind, policy)
                .map_err(|e| format!("submit {wl}/{kind}: {e}"))?;
            match (submit.status, submit.cached) {
                (202, _) => {
                    let job = submit.job.expect("202 carries a job id");
                    let done = client
                        .wait_done(job, 120_000)
                        .map_err(|e| format!("wait {wl}/{kind}: {e}"))?;
                    match done.state() {
                        Some("done") => {
                            Ok((done.fields["ipc"].clone(), done.fields["key"].clone()))
                        }
                        Some(state) => Err(format!(
                            "{wl}/{kind} ended {state}: {}",
                            done.fields.get("error").cloned().unwrap_or_default()
                        )),
                        None => panic!("terminal job without a state: {}", done.body),
                    }
                }
                (200, true) => Ok((
                    submit.response.fields["ipc"].clone(),
                    submit.key.clone().expect("cached response carries a key"),
                )),
                (503, _) => Err(format!(
                    "{wl}/{kind}: no live replica (503): {}",
                    submit.response.body
                )),
                (status, _) => panic!("submit {wl}/{kind} returned {status}"),
            }
        })
        .collect()
}

fn teardown(
    router_addr: SocketAddr,
    router: JoinHandle<()>,
    shards: Vec<(SocketAddr, JoinHandle<()>)>,
) {
    patient(router_addr)
        .shutdown()
        .expect("router shutdown drains despite chaos");
    router.join().expect("no panic may escape the router");
    for (addr, handle) in shards {
        patient(addr).shutdown().expect("shard shutdown");
        handle.join().expect("no panic may escape a shard");
    }
}

#[test]
fn chaos_armed_router_proxies_identically_or_fails_classified() {
    // Fault-free reference through a fault-free router: the proxy layer
    // must be invisible in the bytes.
    let (addr, router, shards) = start_fleet(0, None);
    let reference: Vec<(String, String)> = run_combos(&patient(addr))
        .into_iter()
        .map(|r| r.expect("fault-free fleet run succeeds"))
        .collect();
    teardown(addr, router, shards);

    let matrix: &[(u64, &str)] = &[
        (31, "net=0.3,slow=1ms"),
        (32, "panic=0.5,retries=1"),
        (33, "net=0.2,panic=0.2,slow=1ms"),
    ];
    let mut total_injected = 0u64;
    for (cell, (seed, spec)) in matrix.iter().enumerate() {
        let chaos = Arc::new(Chaos::from_spec(*seed, spec).unwrap());
        let (addr, router, shards) = start_fleet(cell + 1, Some(Arc::clone(&chaos)));
        let client = patient(addr);

        let mut done = 0usize;
        let mut classified = 0usize;
        for (i, outcome) in run_combos(&client).into_iter().enumerate() {
            match outcome {
                Ok(pair) => {
                    assert_eq!(
                        pair,
                        reference[i].clone(),
                        "cell {cell} ({spec}) combo {:?}",
                        COMBOS[i]
                    );
                    done += 1;
                }
                Err(msg) => {
                    assert!(
                        msg.contains("no live replica")
                            || msg.contains("after")
                            || msg.contains("attempt")
                            || msg.contains("deadline"),
                        "cell {cell} ({spec}): unclassified failure: {msg}"
                    );
                    classified += 1;
                }
            }
        }
        assert_eq!(done + classified, COMBOS.len(), "every combo accounted for");

        // The router's own stats document stays serveable mid-chaos and
        // carries the per-shard health scopes.
        let stats = client.stats().unwrap_or_default();
        assert!(
            stats.is_empty() || stats.contains("router.shard0"),
            "stats lost the shard scopes: {stats}"
        );

        teardown(addr, router, shards);

        for kind in [FaultKind::Net, FaultKind::Panic, FaultKind::Slow] {
            if chaos.rate(kind) > 0.0 {
                assert!(
                    chaos.rolls(kind) > 0,
                    "cell {cell} ({spec}): {} armed but never rolled at a router site",
                    kind.label()
                );
                total_injected += chaos.injected(kind);
            }
        }
    }
    assert!(
        total_injected > 0,
        "the whole matrix injected nothing — the router sites are wired to nothing"
    );
}
