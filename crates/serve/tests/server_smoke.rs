//! In-process integration test of the full serving choreography: the
//! same sequence `scripts/ci.sh` drives against the release binaries —
//! health, submit/poll/fetch, warm-cache resubmit, a concurrent burst
//! that must trip the bounded queue's 429, and a graceful shutdown that
//! drains every accepted job.

use std::time::Duration;

use ramp_core::config::SystemConfig;
use ramp_serve::client::{scan_counter, smoke, Client};
use ramp_serve::http::PoolPolicy;
use ramp_serve::server::{Server, ServerConfig};
use ramp_serve::store::RunStore;

fn scratch_store(tag: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("ramp-server-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

/// A simulation small enough that debug-mode jobs take ~0.1 s: long
/// enough for the burst to observe a full queue, short enough for CI.
fn tiny_sim() -> SystemConfig {
    SystemConfig {
        insts_per_core: 40_000,
        ..SystemConfig::smoke_test()
    }
}

fn start(cfg: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn full_smoke_choreography() {
    let (addr, handle) = start(ServerConfig {
        sim: tiny_sim(),
        workers: 1,
        queue_capacity: 1,
        request_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(60),
        restart_limit: 3,
        restart_backoff: Duration::from_millis(10),
        http: PoolPolicy::default(),
        store: Some(scratch_store("choreo")),
        chaos: None,
    });
    let transcript = smoke(&addr.to_string()).expect("smoke choreography");
    assert!(transcript.contains("rejected (429)"), "{transcript}");
    assert!(transcript.contains("graceful shutdown"), "{transcript}");
    handle.join().unwrap();
}

#[test]
fn bad_requests_get_400s_and_404s() {
    let (addr, handle) = start(ServerConfig {
        sim: tiny_sim(),
        workers: 1,
        queue_capacity: 4,
        request_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(60),
        restart_limit: 3,
        restart_backoff: Duration::from_millis(10),
        http: PoolPolicy::default(),
        store: Some(scratch_store("errors")),
        chaos: None,
    });
    let client = Client::new(addr.to_string());

    // Unknown workload / kind / policy.
    assert_eq!(client.submit("zork", "profile", "").unwrap().status, 400);
    assert_eq!(client.submit("lbm", "sweep", "").unwrap().status, 400);
    assert_eq!(client.submit("lbm", "static", "bogus").unwrap().status, 400);
    // Unknown job, malformed id, unknown endpoint, unknown key.
    assert_eq!(client.job_status(999).unwrap().status, 404);
    assert_eq!(
        client.run_summary(&"0".repeat(32)).unwrap().status,
        404,
        "valid-shape key with no entry"
    );
    assert_eq!(client.run_summary("not-hex").unwrap().status, 400);
    // Nothing was accepted, so shutdown drains instantly.
    let drained = client.shutdown().unwrap();
    assert_eq!(drained.fields["accepted"], "0");
    handle.join().unwrap();
}

#[test]
fn stats_track_store_and_queue_counters() {
    let (addr, handle) = start(ServerConfig {
        sim: tiny_sim(),
        workers: 2,
        queue_capacity: 8,
        request_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(60),
        restart_limit: 3,
        restart_backoff: Duration::from_millis(10),
        http: PoolPolicy::default(),
        store: Some(scratch_store("stats")),
        chaos: None,
    });
    let client = Client::new(addr.to_string());

    let submit = client.submit("mcf", "migration", "perf-fc").unwrap();
    assert_eq!(submit.status, 202);
    let done = client.wait_done(submit.job.unwrap(), 120_000).unwrap();
    assert_eq!(done.state(), Some("done"));
    assert_eq!(done.fields["policy"], "perf-fc");
    assert!(done.fields["ipc"].parse::<f64>().unwrap() > 0.0);

    // Fetch by key must agree with the job's summary field-for-field.
    let fetched = client.run_summary(&done.fields["key"]).unwrap();
    assert_eq!(fetched.status, 200);
    assert_eq!(fetched.fields["ipc"], done.fields["ipc"]);
    assert_eq!(fetched.fields["cycles"], done.fields["cycles"]);

    // A duplicate submit is served straight from the store.
    let again = client.submit("mcf", "migration", "perf-fc").unwrap();
    assert_eq!(again.status, 200);
    assert!(again.cached);
    assert_eq!(again.response.fields["ipc"], done.fields["ipc"]);

    let stats = client.stats().unwrap();
    assert!(scan_counter(&stats, "hits").unwrap() >= 1, "{stats}");
    assert!(scan_counter(&stats, "writes").unwrap() >= 2, "{stats}");
    assert_eq!(scan_counter(&stats, "accepted"), Some(1), "{stats}");
    assert_eq!(scan_counter(&stats, "completed"), Some(1), "{stats}");
    assert_eq!(scan_counter(&stats, "failed"), Some(0), "{stats}");

    let drained = client.shutdown().unwrap();
    assert_eq!(drained.fields["completed"], "1");
    handle.join().unwrap();
}

#[test]
fn shutdown_waits_for_inflight_jobs() {
    let (addr, handle) = start(ServerConfig {
        sim: tiny_sim(),
        workers: 1,
        queue_capacity: 4,
        request_timeout: Duration::from_secs(30),
        deadline: Duration::from_secs(60),
        restart_limit: 3,
        restart_backoff: Duration::from_millis(10),
        http: PoolPolicy::default(),
        store: Some(scratch_store("drain")),
        chaos: None,
    });
    let client = Client::new(addr.to_string());

    // Queue three uncached runs, then immediately request shutdown.
    let mut jobs = Vec::new();
    for wl in ["lbm", "milc", "astar"] {
        let submit = client.submit(wl, "profile", "").unwrap();
        assert_eq!(submit.status, 202, "{wl}");
        jobs.push(submit.job.unwrap());
    }
    let drained = client.shutdown().unwrap();
    assert_eq!(drained.status, 200);
    assert_eq!(drained.fields["accepted"], "3");
    assert_eq!(drained.fields["completed"], "3");
    assert_eq!(drained.fields["failed"], "0");
    handle.join().unwrap();
}
