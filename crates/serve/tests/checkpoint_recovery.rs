//! Kill-and-diff recovery suite for epoch-granular checkpoint/resume.
//!
//! Each matrix cell runs an uninterrupted reference simulation, then a
//! second copy of the same simulation that is killed (via a panic from
//! the epoch hook) at a seeded random epoch while writing a checkpoint
//! every epoch, and finally resumes through the production recovery
//! path ([`run_with_recovery_every`]). The resumed [`RunResult`] must be
//! **byte-identical** to the reference — asserted on the wire encoding
//! (`wire::encode_run`, which covers every counter bit-for-bit) and on
//! the rendered telemetry JSON. The matrix is exercised both serially
//! and sharded over four worker threads of the `ramp_sim::exec`
//! executor, mirroring how `ramp-bench` and the server drive runs.
//!
//! A second family of tests tears checkpoint tails at every byte
//! boundary (truncation and bit flips) and proves the store falls back
//! to the previous durable segment — never garbage, never a panic — and
//! that an end-to-end resume over a corrupted tail still reproduces the
//! reference bytes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

use ramp_core::config::SystemConfig;
use ramp_core::migration::MigrationScheme;
use ramp_core::runner::{build_migration_sim, build_profile_sim, profile_workload};
use ramp_core::system::{RunHooks, RunResult, SystemSim, CHECKPOINT_KIND, CHECKPOINT_VERSION};
use ramp_serve::spec::{run_with_recovery_every, RunProgress};
use ramp_serve::store::RunStore;
use ramp_serve::wire;
use ramp_sim::codec::encode_framed;
use ramp_sim::exec::parallel_map;
use ramp_trace::{Benchmark, Workload};

fn scratch_store(tag: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("ramp-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

/// One kill/resume scenario: which sim to build and the seed that picks
/// the kill epoch.
struct Cell {
    name: &'static str,
    workload: Workload,
    scheme: Option<MigrationScheme>,
    seed: u64,
}

fn matrix() -> Vec<Cell> {
    vec![
        Cell {
            name: "profile-lbm",
            workload: Workload::Homogeneous(Benchmark::Lbm),
            scheme: None,
            seed: 3,
        },
        Cell {
            name: "migration-mcf-perf-fc",
            workload: Workload::Homogeneous(Benchmark::Mcf),
            scheme: Some(MigrationScheme::PerfFc),
            seed: 5,
        },
        Cell {
            name: "migration-milc-cross-counter",
            workload: Workload::Homogeneous(Benchmark::Milc),
            scheme: Some(MigrationScheme::CrossCounter),
            seed: 11,
        },
    ]
}

/// Runs `build()` to completion while recording the number of epoch
/// boundaries the run crosses.
fn reference_run(build: &dyn Fn() -> SystemSim) -> (RunResult, u64) {
    let mut epochs = 0u64;
    let mut on_epoch = |e: u64| epochs = e;
    let run = build().run_with_hooks(RunHooks {
        checkpoint_every: 0,
        on_epoch: Some(&mut on_epoch),
        on_checkpoint: None,
    });
    (run, epochs)
}

/// Kills a checkpointing copy of `build()` at `kill_epoch` (panic from
/// the epoch hook, caught here), leaving checkpoint segments for epochs
/// `1..kill_epoch` in `store` under `key`.
fn kill_at_epoch(build: &dyn Fn() -> SystemSim, store: &RunStore, key: &str, kill_epoch: u64) {
    let died = catch_unwind(AssertUnwindSafe(|| {
        let mut on_epoch = |e: u64| {
            if e == kill_epoch {
                panic!("injected kill at epoch {e}");
            }
        };
        let mut on_checkpoint = |e: u64, blob: Vec<u8>| {
            assert!(
                store.store_checkpoint(key, e, &blob),
                "checkpoint write failed"
            );
        };
        build().run_with_hooks(RunHooks {
            checkpoint_every: 1,
            on_epoch: Some(&mut on_epoch),
            on_checkpoint: Some(&mut on_checkpoint),
        });
    }));
    assert!(died.is_err(), "{key}: injected kill did not fire");
}

/// Full kill-at-seeded-epoch → resume → byte-diff scenario for one cell.
fn exercise(cell: &Cell, store: &RunStore) {
    let cfg = SystemConfig::smoke_test();
    let profile = cell.scheme.map(|_| profile_workload(&cfg, &cell.workload));
    let build = || match (cell.scheme, &profile) {
        (Some(scheme), Some(p)) => build_migration_sim(&cfg, &cell.workload, scheme, &p.table),
        _ => build_profile_sim(&cfg, &cell.workload),
    };

    let (reference, total_epochs) = reference_run(&build);
    assert!(
        total_epochs >= 2,
        "{}: run too short ({total_epochs} epochs) to kill mid-flight",
        cell.name
    );
    // Seeded kill epoch in [1, total]. Epoch 1 kills before the first
    // checkpoint lands, covering the cold-fallback path.
    let kill_epoch = 1 + cell.seed % total_epochs;

    let key = format!("ckpt-test-{}", cell.name);
    kill_at_epoch(&build, store, &key, kill_epoch);
    assert_eq!(
        store.list_checkpoints(&key).len() as u64,
        kill_epoch - 1,
        "{}: unexpected checkpoint trail after kill",
        cell.name
    );

    let progress = RunProgress::default();
    let (resumed, was_resumed) =
        run_with_recovery_every(build, &key, cell.name, Some(store), Some(&progress), 1);

    assert_eq!(
        wire::encode_run(&resumed),
        wire::encode_run(&reference),
        "{}: resumed RunResult is not byte-identical to the reference",
        cell.name
    );
    assert_eq!(
        resumed.telemetry.to_json(),
        reference.telemetry.to_json(),
        "{}: resumed telemetry drifted from the reference",
        cell.name
    );
    assert_eq!(
        was_resumed,
        kill_epoch > 1,
        "{}: resume flag wrong for kill at epoch {kill_epoch}",
        cell.name
    );
    assert_eq!(progress.resumed.load(Ordering::Relaxed), kill_epoch > 1);
    assert!(
        store.list_checkpoints(&key).is_empty(),
        "{}: completed run left its checkpoint trail behind",
        cell.name
    );
}

#[test]
fn kill_and_resume_matrix_single_thread() {
    let store = scratch_store("matrix-t1");
    for cell in &matrix() {
        exercise(cell, &store);
    }
}

#[test]
fn kill_and_resume_matrix_four_threads() {
    let store = scratch_store("matrix-t4");
    parallel_map(4, matrix(), |_, cell| exercise(cell, &store));
}

#[test]
fn torn_tail_falls_back_at_every_byte_boundary() {
    let store = scratch_store("torn-exhaustive");
    let key = "torn-synthetic";
    let good = encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, &[0xA5u8; 64]);
    let tail = encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, &[0x5Au8; 64]);
    assert!(store.store_checkpoint(key, 1, &good));

    // Truncation at every prefix length (including the empty file).
    for cut in 0..tail.len() {
        assert!(store.store_checkpoint(key, 2, &tail[..cut]));
        let (epoch, bytes) = store
            .load_latest_checkpoint(key)
            .expect("previous segment must survive a torn tail");
        assert_eq!(
            (epoch, &bytes),
            (1, &good),
            "truncation at byte {cut} leaked a torn segment"
        );
    }
    // A single flipped bit at every byte offset.
    for pos in 0..tail.len() {
        let mut bad = tail.clone();
        bad[pos] ^= 0x40;
        assert!(store.store_checkpoint(key, 2, &bad));
        let (epoch, bytes) = store
            .load_latest_checkpoint(key)
            .expect("previous segment must survive a corrupt tail");
        assert_eq!(
            (epoch, &bytes),
            (1, &good),
            "bit flip at byte {pos} leaked a corrupt segment"
        );
    }
    // The intact tail is preferred once it decodes.
    assert!(store.store_checkpoint(key, 2, &tail));
    assert_eq!(store.load_latest_checkpoint(key), Some((2, tail)));
}

#[test]
fn torn_real_checkpoint_resumes_byte_identical() {
    let store = scratch_store("torn-resume");
    let cfg = SystemConfig::smoke_test();
    let workload = Workload::Homogeneous(Benchmark::Libquantum);
    let profile = profile_workload(&cfg, &workload);
    let build = || build_migration_sim(&cfg, &workload, MigrationScheme::PerfFc, &profile.table);

    let (reference, total_epochs) = reference_run(&build);
    assert!(
        total_epochs >= 3,
        "need >=2 checkpoint segments to tear one"
    );
    let kill_epoch = total_epochs;
    let key = "torn-real";
    kill_at_epoch(&build, &store, key, kill_epoch);

    // Tear the newest segment at a handful of sampled byte boundaries
    // (real blobs are large; the exhaustive sweep above covers every
    // offset on a small frame).
    let segments = store.list_checkpoints(key);
    let (latest_epoch, latest_path) = segments.last().expect("trail exists").clone();
    let intact = std::fs::read(&latest_path).unwrap();
    let cuts: Vec<usize> = (0..intact.len())
        .filter(|i| *i < 32 || *i % 997 == 0 || *i + 32 >= intact.len())
        .collect();
    for cut in cuts {
        std::fs::write(&latest_path, &intact[..cut]).unwrap();
        let (epoch, _) = store
            .load_latest_checkpoint(key)
            .expect("older segments must survive");
        assert_eq!(
            epoch,
            latest_epoch - 1,
            "torn tail at byte {cut} was not quarantined"
        );
        // Quarantine renamed the file; restore the trail for the next cut.
        assert!(store.store_checkpoint(key, latest_epoch, &intact[..cut]));
    }

    // Leave the tail torn and resume end to end: recovery must fall
    // back to the previous epoch and still reproduce the reference.
    std::fs::write(&latest_path, &intact[..intact.len() / 2]).unwrap();
    let progress = RunProgress::default();
    let (resumed, was_resumed) =
        run_with_recovery_every(build, key, "torn-real", Some(&store), Some(&progress), 1);
    assert!(was_resumed);
    assert!(progress.ckpt_epoch.load(Ordering::Relaxed) >= latest_epoch);
    assert_eq!(wire::encode_run(&resumed), wire::encode_run(&reference));
    assert_eq!(resumed.telemetry.to_json(), reference.telemetry.to_json());
    assert!(store.list_checkpoints(key).is_empty());
}
