//! Append-only write-ahead log backend for the run store.
//!
//! Instead of one file per entry, WAL mode (`RAMP_STORE_MODE=wal`)
//! batches every store mutation into checksummed, length-prefixed
//! records appended to segment files under `<store>/wal/`:
//!
//! * `seg-<id>.wal` — a back-to-back sequence of framed records
//!   ([`ramp_sim::codec::encode_framed`], kind [`KIND_WAL_RECORD`]).
//!   Each record is a tagged mutation: put run / put annotated / put
//!   checkpoint / delete checkpoint trail / delete one checkpoint.
//!   Values are the *same* framed bytes file mode writes, so the wire
//!   format (and its version/checksum discipline) is unchanged.
//! * `MANIFEST` — a framed (kind [`KIND_WAL_MANIFEST`]),
//!   generation-numbered list of live segment ids plus the next id to
//!   allocate. It is replaced only by atomic rename, and a new segment
//!   is registered in the manifest *before* its file is created — so
//!   any `seg-*.wal` file not named by the manifest is provably
//!   uncommitted garbage (a compaction that died before its swap) and
//!   is deleted on open.
//!
//! **Replay on open** scans every live segment front to back. A record
//! that decodes applies to the in-memory index (last writer wins, which
//! is what makes healing rewrites and compaction idempotent). A
//! truncated frame at the end of a segment is a *torn tail* — the
//! kill-mid-append artifact — and is truncated away. Any other decode
//! failure (bit rot, bad checksum, foreign bytes) quarantines the
//! remainder of the segment to `seg-<id>.wal.quarantine` next to a
//! `.reason` file, then truncates the segment at the last good record:
//! damaged bytes are preserved for autopsy and never served. A
//! missing or undecodable manifest is itself quarantined and rebuilt
//! by scanning `seg-*.wal` files in id order — ids are allocated
//! monotonically, so last-writer-wins replay over all surviving
//! segments reconstructs a consistent index.
//!
//! **Compaction** ([`Wal::compact`], exposed as `ramp-store compact`)
//! rewrites the live records into fresh segments, swaps the manifest
//! (generation + 1), and only then deletes the old segments. A crash
//! at any point leaves either the old manifest naming the old
//! (complete) segments, or the new manifest naming the new (complete)
//! segments — never a state that loses a live record.
//!
//! The index keeps record values in memory: the store's working set is
//! bounded by the experiment suite (a few MiB of telemetry), and it
//! buys replay-speed reads with zero offset bookkeeping. WAL mode is
//! **single-process** — one writer owns the active segment (the
//! multi-worker server shares one handle across threads; a `Mutex`
//! serializes appends). File mode remains the default and supports
//! concurrent processes.
//!
//! Chaos sites (all [`FaultKind::Io`], see [`ramp_sim::chaos`]):
//! `wal.append` fails an append cleanly, `wal.torn` leaves a torn
//! half-record on disk and poisons the handle (the process "died"
//! mid-append: reads keep working, writes refuse), `wal.manifest`
//! fails a manifest swap, `wal.manifest.corrupt` flips a byte in the
//! manifest before the swap so the *next* open must rebuild.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ramp_sim::chaos::{Chaos, FaultKind};
use ramp_sim::codec::{
    decode_framed, decode_framed_prefix, encode_framed, ByteReader, ByteWriter, CodecError,
};

use crate::wire::{KIND_WAL_MANIFEST, KIND_WAL_RECORD};

/// Format version of WAL records and the manifest; bump on layout change.
pub const WAL_VERSION: u32 = 1;

/// Environment variable overriding the segment rotation threshold in
/// bytes (useful to force multi-segment stores in tests and CI).
pub const ENV_SEG_BYTES: &str = "RAMP_WAL_SEG_BYTES";

/// Default segment rotation threshold: append past this and the next
/// record opens a fresh segment.
pub const DEFAULT_SEG_BYTES: u64 = 256 * 1024;

const TAG_PUT_RUN: u8 = 1;
const TAG_PUT_ANN: u8 = 2;
const TAG_PUT_CKPT: u8 = 3;
const TAG_DEL_CKPT_TRAIL: u8 = 4;
const TAG_DEL_CKPT_ONE: u8 = 5;

/// Which keyspace a plain (non-checkpoint) record lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// `.run`-equivalent entries (framed [`crate::wire::KIND_RUN`]).
    Run,
    /// `.ann`-equivalent entries (framed [`crate::wire::KIND_ANNOTATED`]).
    Annotated,
}

/// Why an append did not land. Every variant is a clean failure: the
/// store degrades to a cold cache, never aborts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppendError {
    /// Injected fault at the `wal.append` site.
    Injected,
    /// Injected kill mid-append (`wal.torn`): a torn half-record is on
    /// disk and the handle is poisoned against further writes.
    Torn,
    /// The handle was poisoned by an earlier [`AppendError::Torn`].
    Poisoned,
    /// The post-append length check failed; the segment was rolled back.
    Verify,
    /// A real I/O error from the filesystem (or a failed manifest swap
    /// during rotation).
    Io(String),
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::Injected => write!(f, "injected append fault"),
            AppendError::Torn => write!(f, "injected kill mid-append"),
            AppendError::Poisoned => write!(f, "handle poisoned by earlier torn append"),
            AppendError::Verify => write!(f, "post-append length verify failed"),
            AppendError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// What replay-on-open found and repaired.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Live segments named by the manifest.
    pub segments: u64,
    /// Records applied to the index.
    pub records: u64,
    /// Torn tails truncated (kill-mid-append artifacts).
    pub torn_truncated: u64,
    /// Undecodable remainders quarantined to `*.quarantine`.
    pub quarantined: u64,
    /// Unregistered `seg-*.wal` files deleted (uncommitted garbage).
    pub orphans_removed: u64,
    /// Manifest-named segments whose file was absent (crash between
    /// manifest swap and file creation; harmless).
    pub missing_segments: u64,
    /// `true` when the manifest was absent or undecodable and the
    /// segment list was rebuilt by scanning the directory.
    pub manifest_rebuilt: bool,
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segments={} records={} torn={} quarantined={} orphans={} missing={} rebuilt={}",
            self.segments,
            self.records,
            self.torn_truncated,
            self.quarantined,
            self.orphans_removed,
            self.missing_segments,
            self.manifest_rebuilt
        )
    }
}

/// What one [`Wal::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Live segments before the pass.
    pub segments_before: u64,
    /// Live segments after the pass.
    pub segments_after: u64,
    /// Live records rewritten.
    pub records: u64,
    /// On-disk segment bytes before the pass.
    pub bytes_before: u64,
    /// On-disk segment bytes after the pass.
    pub bytes_after: u64,
}

impl fmt::Display for CompactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segments {}->{} records={} bytes {}->{}",
            self.segments_before,
            self.segments_after,
            self.records,
            self.bytes_before,
            self.bytes_after
        )
    }
}

/// Read-only on-disk validation of a WAL directory (no healing).
#[derive(Clone, Debug, Default)]
pub struct WalVerifyReport {
    /// Live segments named by the manifest.
    pub segments: u64,
    /// Records that decoded cleanly across all segments.
    pub records: u64,
    /// Manifest generation (0 when the manifest is missing/unreadable).
    pub generation: u64,
    /// Everything wrong, one human-readable line each. Empty == clean.
    pub errors: Vec<String>,
}

/// The in-memory index: every live record's value bytes, keyed exactly
/// like file mode names files.
#[derive(Debug, Default)]
struct Index {
    runs: BTreeMap<String, Vec<u8>>,
    anns: BTreeMap<String, Vec<u8>>,
    /// Checkpoints keyed `(base_key, epoch)`.
    ckpts: BTreeMap<(String, u64), Vec<u8>>,
}

impl Index {
    fn map(&mut self, kind: ValueKind) -> &mut BTreeMap<String, Vec<u8>> {
        match kind {
            ValueKind::Run => &mut self.runs,
            ValueKind::Annotated => &mut self.anns,
        }
    }

    fn apply(&mut self, rec: &Record) {
        match rec {
            Record::Put(kind, key, value) => {
                self.map(*kind).insert(key.clone(), value.clone());
            }
            Record::PutCkpt(key, epoch, value) => {
                self.ckpts.insert((key.clone(), *epoch), value.clone());
            }
            Record::DelCkptTrail(key) => {
                self.ckpts.retain(|(k, _), _| k != key);
            }
            Record::DelCkptOne(key, epoch) => {
                self.ckpts.remove(&(key.clone(), *epoch));
            }
        }
    }
}

/// One tagged WAL mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Record {
    Put(ValueKind, String, Vec<u8>),
    PutCkpt(String, u64, Vec<u8>),
    DelCkptTrail(String),
    DelCkptOne(String, u64),
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::Put(kind, key, value) => {
                w.u8(match kind {
                    ValueKind::Run => TAG_PUT_RUN,
                    ValueKind::Annotated => TAG_PUT_ANN,
                });
                w.str(key);
                w.u64(value.len() as u64);
                let mut bytes = w.into_bytes();
                bytes.extend_from_slice(value);
                return bytes;
            }
            Record::PutCkpt(key, epoch, value) => {
                w.u8(TAG_PUT_CKPT);
                w.str(key);
                w.u64(*epoch);
                w.u64(value.len() as u64);
                let mut bytes = w.into_bytes();
                bytes.extend_from_slice(value);
                return bytes;
            }
            Record::DelCkptTrail(key) => {
                w.u8(TAG_DEL_CKPT_TRAIL);
                w.str(key);
            }
            Record::DelCkptOne(key, epoch) => {
                w.u8(TAG_DEL_CKPT_ONE);
                w.str(key);
                w.u64(*epoch);
            }
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Record, CodecError> {
        let mut r = ByteReader::new(payload);
        let tag = r.u8()?;
        let key = r.str()?;
        let rec = match tag {
            TAG_PUT_RUN | TAG_PUT_ANN => {
                let kind = if tag == TAG_PUT_RUN {
                    ValueKind::Run
                } else {
                    ValueKind::Annotated
                };
                let len = r.u64()?;
                let value = r.take(len as usize)?.to_vec();
                Record::Put(kind, key, value)
            }
            TAG_PUT_CKPT => {
                let epoch = r.u64()?;
                let len = r.u64()?;
                let value = r.take(len as usize)?.to_vec();
                Record::PutCkpt(key, epoch, value)
            }
            TAG_DEL_CKPT_TRAIL => Record::DelCkptTrail(key),
            TAG_DEL_CKPT_ONE => Record::DelCkptOne(key, r.u64()?),
            _ => return Err(CodecError::Malformed("unknown WAL record tag")),
        };
        if !r.is_empty() {
            return Err(CodecError::Malformed("trailing bytes in WAL record"));
        }
        Ok(rec)
    }
}

#[derive(Debug)]
struct Inner {
    index: Index,
    /// Live segment ids, manifest order (append order; the last is the
    /// active segment).
    segments: Vec<u64>,
    generation: u64,
    next_seg: u64,
    active_len: u64,
    /// Set by an injected `wal.torn` kill: reads stay live, writes refuse.
    poisoned: bool,
}

/// An open WAL directory: replayed index + append machinery.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    chaos: Option<Arc<Chaos>>,
    seg_target: u64,
    tmp_counter: AtomicU64,
    inner: Mutex<Inner>,
}

fn seg_name(id: u64) -> String {
    format!("seg-{id:08}.wal")
}

fn parse_seg_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

fn encode_manifest(generation: u64, next_seg: u64, segments: &[u64]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(generation);
    w.u64(next_seg);
    w.u32(segments.len() as u32);
    for &id in segments {
        w.u64(id);
    }
    encode_framed(KIND_WAL_MANIFEST, WAL_VERSION, w.bytes())
}

fn decode_manifest(bytes: &[u8]) -> Result<(u64, u64, Vec<u64>), CodecError> {
    let payload = decode_framed(bytes, KIND_WAL_MANIFEST, WAL_VERSION)?;
    let mut r = ByteReader::new(payload);
    let generation = r.u64()?;
    let next_seg = r.u64()?;
    let n = r.seq_len(8)?;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        segments.push(r.u64()?);
    }
    if !r.is_empty() {
        return Err(CodecError::Malformed("trailing bytes in manifest"));
    }
    Ok((generation, next_seg, segments))
}

/// The segment rotation threshold from [`ENV_SEG_BYTES`], defaulting to
/// [`DEFAULT_SEG_BYTES`].
pub fn seg_bytes_from_env() -> u64 {
    std::env::var(ENV_SEG_BYTES)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_SEG_BYTES)
}

impl Wal {
    /// Opens (creating if needed) the WAL under `dir`, replaying every
    /// live segment into the in-memory index and healing the artifacts
    /// a crash can leave: torn tails are truncated, undecodable
    /// remainders quarantined, unregistered segments deleted, and a
    /// missing or damaged manifest rebuilt by directory scan.
    pub fn open(
        dir: impl Into<PathBuf>,
        chaos: Option<Arc<Chaos>>,
        seg_target: u64,
    ) -> std::io::Result<(Wal, ReplayReport)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut report = ReplayReport::default();

        let manifest_path = dir.join("MANIFEST");
        let (generation, mut next_seg, segments) = match fs::read(&manifest_path) {
            Ok(bytes) => match decode_manifest(&bytes) {
                Ok(m) => m,
                Err(e) => {
                    // Quarantine the damaged manifest and rebuild from the
                    // segment files themselves.
                    let jail = dir.join("MANIFEST.quarantine");
                    let _ = fs::rename(&manifest_path, &jail);
                    let _ = fs::write(dir.join("MANIFEST.reason"), format!("MANIFEST: {e}\n"));
                    report.manifest_rebuilt = true;
                    rebuild_manifest(&dir)
                }
            },
            Err(_) => {
                let rebuilt = rebuild_manifest(&dir);
                if !rebuilt.2.is_empty() {
                    // Segments exist but no manifest did: count as a rebuild.
                    report.manifest_rebuilt = true;
                }
                rebuilt
            }
        };
        if next_seg <= segments.iter().copied().max().unwrap_or(0) {
            next_seg = segments.iter().copied().max().unwrap_or(0) + 1;
        }

        let mut index = Index::default();
        let mut active_len = 0;
        report.segments = segments.len() as u64;
        for (i, &id) in segments.iter().enumerate() {
            let path = dir.join(seg_name(id));
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    // Registered before creation; the crash hit between
                    // the manifest swap and the first append.
                    report.missing_segments += 1;
                    if i == segments.len() - 1 {
                        active_len = 0;
                    }
                    continue;
                }
            };
            let good = replay_segment(&bytes, &mut index, &mut report);
            if good < bytes.len() {
                // Heal the tail on disk so the next open (and verify)
                // see only whole records.
                let remainder = &bytes[good..];
                if !is_torn_tail(remainder) {
                    let name = seg_name(id);
                    let jail = dir.join(format!("{name}.quarantine"));
                    let _ = fs::write(&jail, remainder);
                    let _ = fs::write(
                        dir.join(format!("{name}.reason")),
                        format!("{name}: undecodable remainder at offset {good}\n"),
                    );
                }
                truncate_file(&path, good as u64)?;
            }
            if i == segments.len() - 1 {
                active_len = good as u64;
            }
        }

        // Any segment file the manifest does not name is uncommitted
        // garbage (rotation registers before creating; compaction
        // registers after writing but before deleting the old ones).
        if let Ok(entries) = fs::read_dir(&dir) {
            let mut orphans: Vec<PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .and_then(parse_seg_name)
                        .is_some_and(|id| !segments.contains(&id))
                })
                .collect();
            orphans.sort();
            for p in orphans {
                if fs::remove_file(&p).is_ok() {
                    report.orphans_removed += 1;
                }
            }
        }

        // If the manifest was rebuilt (or absent), persist the repaired
        // view immediately so a second crash replays the same state.
        if report.manifest_rebuilt {
            let bytes = encode_manifest(generation, next_seg, &segments);
            let tmp = dir.join(format!("MANIFEST.tmp-{}", std::process::id()));
            fs::write(&tmp, &bytes).and_then(|_| fs::rename(&tmp, &manifest_path))?;
        }

        let wal = Wal {
            dir,
            chaos,
            seg_target,
            tmp_counter: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                index,
                segments,
                generation,
                next_seg,
                active_len,
                poisoned: false,
            }),
        };
        Ok((wal, report))
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Replaces the fault-injection registry (used by
    /// [`crate::store::RunStore::with_chaos`]).
    pub fn set_chaos(&mut self, chaos: Option<Arc<Chaos>>) {
        self.chaos = chaos;
    }

    fn roll(&self, site: &str) -> bool {
        self.chaos
            .as_ref()
            .is_some_and(|c| c.roll(FaultKind::Io, site))
    }

    /// Swaps a new manifest into place by atomic rename. Rolls the
    /// `wal.manifest` (failed swap) and `wal.manifest.corrupt` (byte
    /// flipped before the swap, so the *next* open must rebuild) sites.
    fn write_manifest(
        &self,
        generation: u64,
        next_seg: u64,
        segments: &[u64],
    ) -> Result<(), AppendError> {
        if self.roll("wal.manifest") {
            return Err(AppendError::Injected);
        }
        let mut bytes = encode_manifest(generation, next_seg, segments);
        if self.roll("wal.manifest.corrupt") {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("MANIFEST.tmp-{}-{n}", std::process::id()));
        fs::write(&tmp, &bytes)
            .and_then(|_| fs::rename(&tmp, self.dir.join("MANIFEST")))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                AppendError::Io(e.to_string())
            })
    }

    /// Registers and opens a fresh active segment. Manifest first: the
    /// new id is durable in the manifest before the file exists, so an
    /// unregistered segment file can never hold committed records.
    fn rotate(&self, inner: &mut Inner) -> Result<(), AppendError> {
        let id = inner.next_seg;
        let mut segments = inner.segments.clone();
        segments.push(id);
        self.write_manifest(inner.generation + 1, id + 1, &segments)?;
        inner.generation += 1;
        inner.next_seg = id + 1;
        inner.segments = segments;
        inner.active_len = 0;
        fs::File::create(self.dir.join(seg_name(id)))
            .map_err(|e| AppendError::Io(e.to_string()))?;
        Ok(())
    }

    /// Appends one record durably, then applies it to the index.
    fn append(&self, rec: &Record) -> Result<(), AppendError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.poisoned {
            return Err(AppendError::Poisoned);
        }
        if self.roll("wal.append") {
            return Err(AppendError::Injected);
        }
        if inner.segments.is_empty() || inner.active_len >= self.seg_target {
            self.rotate(&mut inner)?;
        }
        let id = *inner.segments.last().expect("rotate ensures a segment");
        let path = self.dir.join(seg_name(id));
        let framed = encode_framed(KIND_WAL_RECORD, WAL_VERSION, &rec.encode());
        let offset = inner.active_len;
        let wrote = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                f.write_all(&framed)?;
                f.flush()
            });
        if let Err(e) = wrote {
            let _ = truncate_file(&path, offset);
            return Err(AppendError::Io(e.to_string()));
        }
        if self.roll("wal.torn") {
            // Simulated kill mid-append: leave a torn half-record on
            // disk and refuse further writes — exactly the state a real
            // kill leaves for replay-on-open to heal.
            let _ = truncate_file(&path, offset + (framed.len() / 2).max(1) as u64);
            inner.poisoned = true;
            return Err(AppendError::Torn);
        }
        // Length verify: a short write must never count as persisted.
        match fs::metadata(&path) {
            Ok(m) if m.len() == offset + framed.len() as u64 => {}
            _ => {
                let _ = truncate_file(&path, offset);
                return Err(AppendError::Verify);
            }
        }
        inner.active_len = offset + framed.len() as u64;
        inner.index.apply(rec);
        Ok(())
    }

    /// Persists a run/annotated value under `key`.
    pub fn put(&self, kind: ValueKind, key: &str, value: &[u8]) -> Result<(), AppendError> {
        self.append(&Record::Put(kind, key.to_string(), value.to_vec()))
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, kind: ValueKind, key: &str) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        inner.index.map(kind).get(key).cloned()
    }

    /// Removes `key` from the in-memory index *without* logging a
    /// delete — used when a replayed value turns out undecodable at a
    /// higher layer (version skew): the bytes go to quarantine and the
    /// slot becomes a miss for this process; compaction drops them.
    pub fn evict(&self, kind: ValueKind, key: &str) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        inner.index.map(kind).remove(key)
    }

    /// Persists a checkpoint blob for `(key, epoch)`.
    pub fn put_ckpt(&self, key: &str, epoch: u64, value: &[u8]) -> Result<(), AppendError> {
        self.append(&Record::PutCkpt(key.to_string(), epoch, value.to_vec()))
    }

    /// The checkpoint blob at `(key, epoch)`, if any.
    pub fn get_ckpt(&self, key: &str, epoch: u64) -> Option<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        inner.index.ckpts.get(&(key.to_string(), epoch)).cloned()
    }

    /// Epochs with a live checkpoint for `key`, ascending.
    pub fn ckpt_epochs(&self, key: &str) -> Vec<u64> {
        let inner = self.inner.lock().unwrap();
        inner
            .index
            .ckpts
            .range((key.to_string(), 0)..=(key.to_string(), u64::MAX))
            .map(|((_, e), _)| *e)
            .collect()
    }

    /// Every live checkpoint as `(key, epoch, size_bytes)`, sorted.
    pub fn ckpts_all(&self) -> Vec<(String, u64, u64)> {
        let inner = self.inner.lock().unwrap();
        inner
            .index
            .ckpts
            .iter()
            .map(|((k, e), v)| (k.clone(), *e, v.len() as u64))
            .collect()
    }

    /// Logs a trail delete and drops every checkpoint of `key`.
    /// Returns how many were dropped (0 if the delete could not be
    /// logged — the index then still holds them, consistent with disk).
    pub fn del_ckpt_trail(&self, key: &str) -> Result<usize, AppendError> {
        let before = self.ckpt_epochs(key).len();
        if before == 0 {
            return Ok(0);
        }
        self.append(&Record::DelCkptTrail(key.to_string()))?;
        Ok(before)
    }

    /// Logs a single-checkpoint delete for `(key, epoch)`.
    pub fn del_ckpt(&self, key: &str, epoch: u64) -> Result<(), AppendError> {
        self.append(&Record::DelCkptOne(key.to_string(), epoch))
    }

    /// Drops one checkpoint from the in-memory index without logging
    /// (see [`Wal::evict`] for when unlogged removal is the right call).
    pub fn evict_ckpt(&self, key: &str, epoch: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        inner.index.ckpts.remove(&(key.to_string(), epoch))
    }

    /// Drops every checkpoint of `key` from the in-memory index without
    /// logging; returns how many were dropped.
    pub fn evict_ckpt_trail(&self, key: &str) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let before = inner.index.ckpts.len();
        inner.index.ckpts.retain(|(k, _), _| k != key);
        before - inner.index.ckpts.len()
    }

    /// Base keys of every live run/annotated entry (for orphan scans).
    pub fn value_keys(&self, kind: ValueKind) -> Vec<String> {
        let mut inner = self.inner.lock().unwrap();
        inner.index.map(kind).keys().cloned().collect()
    }

    /// Base keys that currently own at least one checkpoint.
    pub fn ckpt_keys(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut keys: Vec<String> = inner.index.ckpts.keys().map(|(k, _)| k.clone()).collect();
        keys.dedup();
        keys
    }

    /// Dumps `bytes` (an undecodable value caught above the WAL layer)
    /// to a quarantine file next to the segments, with a reason.
    pub fn quarantine_value(&self, label: &str, bytes: &[u8], why: &str) {
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let name = format!("value-{label}-{n}.quarantine");
        let _ = fs::write(self.dir.join(&name), bytes);
        let _ = fs::write(
            self.dir.join(format!("value-{label}-{n}.reason")),
            format!("{label}: {why}\n"),
        );
    }

    /// Live record count (runs + annotated + checkpoints).
    pub fn live_records(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        (inner.index.runs.len() + inner.index.anns.len() + inner.index.ckpts.len()) as u64
    }

    /// Rewrites the live records into fresh segments, swaps the
    /// manifest, and deletes the retired segments.
    ///
    /// Crash-safety: the new segments are complete on disk *before* the
    /// manifest names them (a crash before the swap leaves unregistered
    /// files that the next open deletes), and the old segments are
    /// deleted only *after* the swap (a crash before the deletes leaves
    /// orphans that the next open deletes). Either way every live
    /// record survives byte-identically.
    pub fn compact(&self) -> Result<CompactReport, AppendError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.poisoned {
            return Err(AppendError::Poisoned);
        }
        let mut report = CompactReport {
            segments_before: inner.segments.len() as u64,
            ..CompactReport::default()
        };
        for &id in &inner.segments {
            if let Ok(m) = fs::metadata(self.dir.join(seg_name(id))) {
                report.bytes_before += m.len();
            }
        }

        // Serialize the live index in deterministic order.
        let mut records: Vec<Record> = Vec::new();
        for (k, v) in &inner.index.runs {
            records.push(Record::Put(ValueKind::Run, k.clone(), v.clone()));
        }
        for (k, v) in &inner.index.anns {
            records.push(Record::Put(ValueKind::Annotated, k.clone(), v.clone()));
        }
        for ((k, e), v) in &inner.index.ckpts {
            records.push(Record::PutCkpt(k.clone(), *e, v.clone()));
        }
        report.records = records.len() as u64;

        // Write complete fresh segments (unregistered until the swap).
        let mut new_ids: Vec<u64> = Vec::new();
        let mut next = inner.next_seg;
        let mut buf: Vec<u8> = Vec::new();
        let flush_seg =
            |buf: &mut Vec<u8>, next: &mut u64, ids: &mut Vec<u64>| -> Result<(), AppendError> {
                let id = *next;
                *next += 1;
                fs::write(self.dir.join(seg_name(id)), buf.as_slice())
                    .map_err(|e| AppendError::Io(e.to_string()))?;
                ids.push(id);
                buf.clear();
                Ok(())
            };
        for rec in &records {
            buf.extend_from_slice(&encode_framed(KIND_WAL_RECORD, WAL_VERSION, &rec.encode()));
            if buf.len() as u64 >= self.seg_target {
                flush_seg(&mut buf, &mut next, &mut new_ids)?;
            }
        }
        if !buf.is_empty() || new_ids.is_empty() {
            flush_seg(&mut buf, &mut next, &mut new_ids)?;
        }
        for &id in &new_ids {
            if let Ok(m) = fs::metadata(self.dir.join(seg_name(id))) {
                report.bytes_after += m.len();
            }
        }

        // The swap: after this rename the new segments are the store.
        if let Err(e) = self.write_manifest(inner.generation + 1, next, &new_ids) {
            // Failed swap: the old manifest still rules; drop the
            // unregistered files and report the failure.
            for &id in &new_ids {
                let _ = fs::remove_file(self.dir.join(seg_name(id)));
            }
            return Err(e);
        }
        let old = std::mem::replace(&mut inner.segments, new_ids.clone());
        inner.generation += 1;
        inner.next_seg = next;
        inner.active_len = new_ids
            .last()
            .and_then(|&id| fs::metadata(self.dir.join(seg_name(id))).ok())
            .map(|m| m.len())
            .unwrap_or(0);
        for id in old {
            if !inner.segments.contains(&id) {
                let _ = fs::remove_file(self.dir.join(seg_name(id)));
            }
        }
        report.segments_after = inner.segments.len() as u64;
        Ok(report)
    }

    /// Read-only on-disk validation: re-reads the manifest and scans
    /// every named segment front to back, counting whole records and
    /// reporting every defect (torn tail, bad checksum, unregistered
    /// or missing segment file) without repairing anything.
    pub fn verify(&self) -> WalVerifyReport {
        // Hold the lock so appends cannot race the scan.
        let _inner = self.inner.lock().unwrap();
        verify_dir(&self.dir)
    }
}

/// Directory-level verify, usable without replaying (the `ramp-store
/// verify` CLI path). See [`Wal::verify`].
pub fn verify_dir(dir: &Path) -> WalVerifyReport {
    let mut report = WalVerifyReport::default();
    let manifest = match fs::read(dir.join("MANIFEST")) {
        Ok(bytes) => match decode_manifest(&bytes) {
            Ok(m) => Some(m),
            Err(e) => {
                report.errors.push(format!("MANIFEST undecodable: {e}"));
                None
            }
        },
        Err(e) => {
            report.errors.push(format!("MANIFEST unreadable: {e}"));
            None
        }
    };
    let Some((generation, _next, segments)) = manifest else {
        return report;
    };
    report.generation = generation;
    report.segments = segments.len() as u64;
    for &id in &segments {
        let name = seg_name(id);
        let bytes = match fs::read(dir.join(&name)) {
            Ok(b) => b,
            Err(e) => {
                report.errors.push(format!("{name} unreadable: {e}"));
                continue;
            }
        };
        let mut offset = 0;
        while offset < bytes.len() {
            match decode_framed_prefix(&bytes[offset..], KIND_WAL_RECORD, WAL_VERSION) {
                Ok((payload, n)) => match Record::decode(payload) {
                    Ok(_) => {
                        report.records += 1;
                        offset += n;
                    }
                    Err(e) => {
                        report
                            .errors
                            .push(format!("{name}: bad record at offset {offset}: {e}"));
                        break;
                    }
                },
                Err(CodecError::Truncated) => {
                    report
                        .errors
                        .push(format!("{name}: torn tail at offset {offset}"));
                    break;
                }
                Err(e) => {
                    report
                        .errors
                        .push(format!("{name}: undecodable at offset {offset}: {e}"));
                    break;
                }
            }
        }
    }
    // Unregistered segment files are uncommitted garbage.
    if let Ok(entries) = fs::read_dir(dir) {
        let mut extra: Vec<String> = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .filter(|n| parse_seg_name(n).is_some_and(|id| !segments.contains(&id)))
            .collect();
        extra.sort();
        for name in extra {
            report.errors.push(format!("{name}: not in manifest"));
        }
    }
    report
}

/// `true` when `remainder` looks like a torn tail (a frame cut short)
/// rather than damaged bytes: the prefix decode reports `Truncated`.
fn is_torn_tail(remainder: &[u8]) -> bool {
    matches!(
        decode_framed_prefix(remainder, KIND_WAL_RECORD, WAL_VERSION),
        Err(CodecError::Truncated)
    )
}

/// Applies every whole record at the head of `bytes` to `index`,
/// returning the offset of the first byte that did not decode (equal to
/// `bytes.len()` for a fully clean segment) and updating `report`.
fn replay_segment(bytes: &[u8], index: &mut Index, report: &mut ReplayReport) -> usize {
    let mut offset = 0;
    while offset < bytes.len() {
        match decode_framed_prefix(&bytes[offset..], KIND_WAL_RECORD, WAL_VERSION) {
            Ok((payload, n)) => match Record::decode(payload) {
                Ok(rec) => {
                    index.apply(&rec);
                    report.records += 1;
                    offset += n;
                }
                Err(_) => {
                    // Framed cleanly but not one of ours: damage.
                    report.quarantined += 1;
                    break;
                }
            },
            Err(CodecError::Truncated) => {
                report.torn_truncated += 1;
                break;
            }
            Err(_) => {
                report.quarantined += 1;
                break;
            }
        }
    }
    offset
}

/// Scans `dir` for `seg-*.wal` files and synthesizes a manifest view
/// from them (ids ascending — allocation order, so last-writer-wins
/// replay is preserved).
fn rebuild_manifest(dir: &Path) -> (u64, u64, Vec<u64>) {
    let mut ids: Vec<u64> = fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.file_name().to_str().and_then(parse_seg_name))
                .collect()
        })
        .unwrap_or_default();
    ids.sort_unstable();
    let next = ids.last().map(|&id| id + 1).unwrap_or(1);
    (1, next, ids)
}

fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    fs::OpenOptions::new()
        .write(true)
        .open(path)
        .and_then(|f| f.set_len(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    static SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch() -> PathBuf {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ramp-wal-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> (Wal, ReplayReport) {
        Wal::open(dir, None, DEFAULT_SEG_BYTES).unwrap()
    }

    #[test]
    fn record_encoding_round_trips() {
        let recs = vec![
            Record::Put(ValueKind::Run, "k1".into(), vec![1, 2, 3]),
            Record::Put(ValueKind::Annotated, "k2".into(), vec![]),
            Record::PutCkpt("k3".into(), 7, vec![9; 40]),
            Record::DelCkptTrail("k3".into()),
            Record::DelCkptOne("k3".into(), 7),
        ];
        for rec in recs {
            assert_eq!(Record::decode(&rec.encode()).unwrap(), rec);
        }
        assert!(Record::decode(&[0xEE]).is_err());
    }

    #[test]
    fn put_get_survive_reopen() {
        let dir = scratch();
        {
            let (wal, report) = open(&dir);
            assert_eq!(report, ReplayReport::default());
            wal.put(ValueKind::Run, "a", b"alpha").unwrap();
            wal.put(ValueKind::Run, "b", b"beta").unwrap();
            wal.put(ValueKind::Run, "a", b"alpha-2").unwrap(); // last wins
            wal.put(ValueKind::Annotated, "a", b"ann").unwrap();
            wal.put_ckpt("a", 1, b"c1").unwrap();
            wal.put_ckpt("a", 2, b"c2").unwrap();
            wal.del_ckpt("a", 1).unwrap();
        }
        let (wal, report) = open(&dir);
        assert_eq!(report.records, 7);
        assert_eq!(report.torn_truncated, 0);
        assert_eq!(wal.get(ValueKind::Run, "a").unwrap(), b"alpha-2");
        assert_eq!(wal.get(ValueKind::Run, "b").unwrap(), b"beta");
        assert_eq!(wal.get(ValueKind::Annotated, "a").unwrap(), b"ann");
        assert_eq!(wal.ckpt_epochs("a"), vec![2]);
        assert!(wal.get(ValueKind::Run, "missing").is_none());
    }

    #[test]
    fn torn_tail_truncates_at_every_byte_boundary() {
        let dir = scratch();
        {
            let (wal, _) = open(&dir);
            wal.put(ValueKind::Run, "keep", b"value-kept").unwrap();
            wal.put(ValueKind::Run, "tail", b"value-torn").unwrap();
        }
        let seg = dir.join(seg_name(1));
        let intact = fs::read(&seg).unwrap();
        // First record's framed length: decode it back.
        let (_, first_len) = decode_framed_prefix(&intact, KIND_WAL_RECORD, WAL_VERSION).unwrap();
        for cut in first_len + 1..intact.len() {
            fs::write(&seg, &intact[..cut]).unwrap();
            let (wal, report) = open(&dir);
            assert_eq!(
                wal.get(ValueKind::Run, "keep").unwrap(),
                b"value-kept",
                "cut {cut}"
            );
            assert!(wal.get(ValueKind::Run, "tail").is_none(), "cut {cut}");
            assert_eq!(report.torn_truncated, 1, "cut {cut}");
            // The heal truncated the torn bytes away on disk.
            assert_eq!(fs::metadata(&seg).unwrap().len() as usize, first_len);
            // Re-appends after the heal land cleanly.
            wal.put(ValueKind::Run, "tail", b"value-torn").unwrap();
            drop(wal);
            fs::write(&seg, &intact).unwrap(); // reset for the next cut
        }
    }

    #[test]
    fn corrupt_record_quarantines_remainder() {
        let dir = scratch();
        {
            let (wal, _) = open(&dir);
            wal.put(ValueKind::Run, "keep", b"value-kept").unwrap();
            wal.put(ValueKind::Run, "rot", b"value-rotted").unwrap();
        }
        let seg = dir.join(seg_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        let (_, first_len) = decode_framed_prefix(&bytes, KIND_WAL_RECORD, WAL_VERSION).unwrap();
        // Flip a payload byte of the second record: checksum failure.
        let len = bytes.len();
        bytes[first_len + 25] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let (wal, report) = open(&dir);
        assert_eq!(report.quarantined, 1);
        assert_eq!(wal.get(ValueKind::Run, "keep").unwrap(), b"value-kept");
        assert!(wal.get(ValueKind::Run, "rot").is_none());
        // The damaged remainder survives for autopsy.
        let jail = dir.join(format!("{}.quarantine", seg_name(1)));
        assert_eq!(fs::read(&jail).unwrap().len(), len - first_len);
        assert!(dir.join(format!("{}.reason", seg_name(1))).exists());
        assert_eq!(fs::metadata(&seg).unwrap().len() as usize, first_len);
    }

    #[test]
    fn manifest_corruption_rebuilds_by_scan() {
        let dir = scratch();
        {
            let (wal, _) = open(&dir);
            wal.put(ValueKind::Run, "a", b"alpha").unwrap();
            wal.put_ckpt("a", 3, b"ck").unwrap();
        }
        // Damage the manifest in place.
        let manifest = dir.join("MANIFEST");
        let mut bytes = fs::read(&manifest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&manifest, &bytes).unwrap();

        let (wal, report) = open(&dir);
        assert!(report.manifest_rebuilt);
        assert_eq!(report.records, 2);
        assert_eq!(wal.get(ValueKind::Run, "a").unwrap(), b"alpha");
        assert_eq!(wal.get_ckpt("a", 3).unwrap(), b"ck");
        assert!(dir.join("MANIFEST.quarantine").exists());
        // The rebuilt manifest is durable: a further reopen is clean.
        let (_, report) = open(&dir);
        assert!(!report.manifest_rebuilt);
        assert_eq!(report.records, 2);
        assert!(verify_dir(&dir).errors.is_empty());
    }

    #[test]
    fn rotation_registers_before_creating() {
        let dir = scratch();
        let (wal, _) = Wal::open(&dir, None, 64).unwrap(); // tiny segments
        for i in 0..8 {
            wal.put(ValueKind::Run, &format!("k{i}"), &[i as u8; 48])
                .unwrap();
        }
        let segs = {
            let inner = wal.inner.lock().unwrap();
            inner.segments.clone()
        };
        assert!(segs.len() > 1, "tiny target must have rotated: {segs:?}");
        drop(wal);
        let (wal, report) = open(&dir);
        assert_eq!(report.records, 8);
        assert_eq!(report.orphans_removed, 0);
        for i in 0..8 {
            assert_eq!(
                wal.get(ValueKind::Run, &format!("k{i}")).unwrap(),
                &[i as u8; 48]
            );
        }
    }

    #[test]
    fn unregistered_segments_are_deleted_on_open() {
        let dir = scratch();
        {
            let (wal, _) = open(&dir);
            wal.put(ValueKind::Run, "a", b"alpha").unwrap();
        }
        // An uncommitted segment (compaction died before its swap).
        fs::write(dir.join(seg_name(99)), b"garbage never registered").unwrap();
        let (wal, report) = open(&dir);
        assert_eq!(report.orphans_removed, 1);
        assert!(!dir.join(seg_name(99)).exists());
        assert_eq!(wal.get(ValueKind::Run, "a").unwrap(), b"alpha");
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_live_bytes() {
        let dir = scratch();
        let (wal, _) = Wal::open(&dir, None, 128).unwrap();
        for i in 0..6 {
            wal.put(ValueKind::Run, "hot", &[i as u8; 64]).unwrap(); // 5 dead versions
        }
        wal.put(ValueKind::Run, "cold", b"cold-value").unwrap();
        wal.put_ckpt("hot", 1, b"ck1").unwrap();
        wal.put_ckpt("hot", 2, b"ck2").unwrap();
        wal.del_ckpt_trail("hot").unwrap();

        let report = wal.compact().unwrap();
        assert_eq!(report.records, 2); // hot + cold, no checkpoints
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(wal.get(ValueKind::Run, "hot").unwrap(), &[5u8; 64]);
        assert_eq!(wal.get(ValueKind::Run, "cold").unwrap(), b"cold-value");
        assert!(wal.ckpt_epochs("hot").is_empty());
        assert!(wal.verify().errors.is_empty());

        // Appends keep working after the swap, and a reopen agrees.
        wal.put(ValueKind::Run, "post", b"post-compact").unwrap();
        drop(wal);
        let (wal, report) = open(&dir);
        assert_eq!(report.records, 3);
        assert_eq!(wal.get(ValueKind::Run, "post").unwrap(), b"post-compact");
        assert_eq!(wal.get(ValueKind::Run, "hot").unwrap(), &[5u8; 64]);
    }

    #[test]
    fn compaction_crash_before_swap_loses_nothing() {
        // Simulate "died before the manifest swap": write the fresh
        // segments by hand (unregistered) and reopen.
        let dir = scratch();
        {
            let (wal, _) = open(&dir);
            wal.put(ValueKind::Run, "a", b"alpha").unwrap();
            wal.put(ValueKind::Run, "b", b"beta").unwrap();
        }
        let rec = Record::Put(ValueKind::Run, "a".into(), b"alpha".to_vec());
        fs::write(
            dir.join(seg_name(7)),
            encode_framed(KIND_WAL_RECORD, WAL_VERSION, &rec.encode()),
        )
        .unwrap();
        let (wal, report) = open(&dir);
        assert_eq!(report.orphans_removed, 1);
        assert_eq!(wal.get(ValueKind::Run, "a").unwrap(), b"alpha");
        assert_eq!(wal.get(ValueKind::Run, "b").unwrap(), b"beta");
    }

    #[test]
    fn injected_append_faults_fail_clean_and_torn_poisons() {
        let dir = scratch();
        let chaos = Arc::new(Chaos::from_spec(11, "io=1.0").unwrap());
        let (wal, _) = Wal::open(&dir, Some(chaos), DEFAULT_SEG_BYTES).unwrap();
        // io=1.0 fires wal.append on the very first roll.
        assert_eq!(
            wal.put(ValueKind::Run, "a", b"x"),
            Err(AppendError::Injected)
        );
        assert!(wal.get(ValueKind::Run, "a").is_none());
        drop(wal);

        // A seed/spec that passes wal.append but fires wal.torn.
        let (wal, _) = Wal::open(&dir, None, DEFAULT_SEG_BYTES).unwrap();
        wal.put(ValueKind::Run, "keep", b"kept").unwrap();
        drop(wal);
        let chaos = Arc::new(Chaos::from_spec(11, "io=0.45").unwrap());
        let (wal, _) = Wal::open(&dir, Some(chaos), DEFAULT_SEG_BYTES).unwrap();
        let mut torn_seen = false;
        for i in 0..64 {
            match wal.put(ValueKind::Run, &format!("t{i}"), &[i as u8; 32]) {
                Err(AppendError::Torn) => {
                    torn_seen = true;
                    break;
                }
                Ok(()) | Err(AppendError::Injected) => {}
                other => panic!("unexpected append outcome: {other:?}"),
            }
        }
        assert!(torn_seen, "io=0.45 over 64 appends must hit wal.torn");
        // Poisoned: every further write refuses, reads stay live.
        assert_eq!(
            wal.put(ValueKind::Run, "late", b"no"),
            Err(AppendError::Poisoned)
        );
        assert_eq!(wal.get(ValueKind::Run, "keep").unwrap(), b"kept");
        drop(wal);

        // Replay heals the torn tail; every successfully acked record
        // (and nothing else) is visible.
        let (wal, report) = open(&dir);
        assert!(report.torn_truncated <= 1);
        assert_eq!(wal.get(ValueKind::Run, "keep").unwrap(), b"kept");
        assert!(wal.get(ValueKind::Run, "late").is_none());
        assert!(wal.verify().errors.is_empty());
    }

    #[test]
    fn verify_reports_damage_without_healing() {
        let dir = scratch();
        {
            let (wal, _) = open(&dir);
            wal.put(ValueKind::Run, "a", b"alpha").unwrap();
        }
        let seg = dir.join(seg_name(1));
        let intact = fs::read(&seg).unwrap();
        fs::write(&seg, &intact[..intact.len() - 3]).unwrap();
        let report = verify_dir(&dir);
        assert_eq!(report.errors.len(), 1);
        assert!(
            report.errors[0].contains("torn tail"),
            "{:?}",
            report.errors
        );
        // Verify is read-only: the damage is still there.
        assert_eq!(fs::read(&seg).unwrap().len(), intact.len() - 3);
    }
}
