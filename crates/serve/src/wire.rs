//! The on-disk wire format of the run store: versioned, checksummed
//! encodings of [`RunResult`] and annotated runs.
//!
//! Built on the generic `ramp_sim::codec` primitives. The format is
//! little-endian, length-prefixed, and framed by
//! [`ramp_sim::codec::encode_framed`] (magic + [`WIRE_VERSION`] + payload
//! kind + checksum), so any truncation, corruption or version skew
//! decodes to a clean [`CodecError`] that the store maps to a cache miss
//! — never a panic, never a stale result.
//!
//! `f64` fields travel as IEEE-754 bit patterns: a decoded result is
//! *bit-identical* to the encoded one, which is what lets a warm-started
//! experiment binary produce byte-identical stdout.

use std::collections::HashSet;

use ramp_avf::{PageStats, StatsTable};
use ramp_core::annotate::AnnotationSet;
use ramp_core::system::RunResult;
use ramp_sim::codec::{decode_framed, encode_framed, ByteReader, ByteWriter, CodecError};
use ramp_sim::telemetry::{BinHistogram, Snapshot, Stat};
use ramp_sim::units::PageId;
use ramp_trace::Benchmark;

/// Format version of every store entry; bump on any layout change so
/// stale entries become misses instead of misreads.
pub const WIRE_VERSION: u32 = 1;

/// Frame kind tag for a plain [`RunResult`].
pub const KIND_RUN: u8 = 1;
/// Frame kind tag for an annotated run (result + annotation set).
pub const KIND_ANNOTATED: u8 = 2;
// Kind 3 is a simulation checkpoint (`ramp_core::system::CHECKPOINT_KIND`).
/// Frame kind tag for one WAL segment record (see [`crate::wal`]).
pub const KIND_WAL_RECORD: u8 = 4;
/// Frame kind tag for the WAL manifest (see [`crate::wal`]).
pub const KIND_WAL_MANIFEST: u8 = 5;

const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;
const TAG_RATIO: u8 = 3;

fn write_snapshot(w: &mut ByteWriter, snap: &Snapshot) {
    let scopes: Vec<_> = snap.scopes().collect();
    w.u32(scopes.len() as u32);
    for (scope, stats) in scopes {
        w.str(scope);
        w.u32(stats.len() as u32);
        for (name, stat) in stats {
            w.str(name);
            match stat {
                Stat::Counter(v) => {
                    w.u8(TAG_COUNTER);
                    w.u64(*v);
                }
                Stat::Gauge(v) => {
                    w.u8(TAG_GAUGE);
                    w.f64(*v);
                }
                Stat::Histogram(h) => {
                    w.u8(TAG_HISTOGRAM);
                    w.f64(h.lo());
                    w.f64(h.hi());
                    w.u32(h.counts().len() as u32);
                    for &c in h.counts() {
                        w.u64(c);
                    }
                }
                Stat::Ratio { num, den } => {
                    w.u8(TAG_RATIO);
                    w.u64(*num);
                    w.u64(*den);
                }
            }
        }
    }
}

fn read_snapshot(r: &mut ByteReader) -> Result<Snapshot, CodecError> {
    let mut snap = Snapshot::default();
    let n_scopes = r.seq_len(4)?;
    for _ in 0..n_scopes {
        let scope = r.str()?;
        let n_stats = r.seq_len(5)?;
        for _ in 0..n_stats {
            let name = r.str()?;
            let stat = match r.u8()? {
                TAG_COUNTER => Stat::Counter(r.u64()?),
                TAG_GAUGE => Stat::Gauge(r.f64()?),
                TAG_HISTOGRAM => {
                    let lo = r.f64()?;
                    let hi = r.f64()?;
                    let bins = r.seq_len(8)?;
                    let counts = (0..bins).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
                    Stat::Histogram(
                        BinHistogram::from_parts(lo, hi, counts)
                            .ok_or(CodecError::Malformed("bad histogram geometry"))?,
                    )
                }
                TAG_RATIO => Stat::Ratio {
                    num: r.u64()?,
                    den: r.u64()?,
                },
                _ => return Err(CodecError::Malformed("unknown stat tag")),
            };
            snap.insert(&scope, name, stat);
        }
    }
    Ok(snap)
}

fn write_table(w: &mut ByteWriter, table: &StatsTable) {
    w.u64(table.total_cycles());
    w.u32(table.pages().len() as u32);
    for s in table.pages() {
        w.u64(s.page.0);
        w.u64(s.reads);
        w.u64(s.writes);
        w.u64(s.ace_hbm);
        w.u64(s.ace_ddr);
        w.f64(s.avf);
    }
}

fn read_table(r: &mut ByteReader) -> Result<StatsTable, CodecError> {
    let total_cycles = r.u64()?;
    let n = r.seq_len(48)?;
    let mut stats = Vec::with_capacity(n);
    for _ in 0..n {
        stats.push(PageStats {
            page: PageId(r.u64()?),
            reads: r.u64()?,
            writes: r.u64()?,
            ace_hbm: r.u64()?,
            ace_ddr: r.u64()?,
            avf: r.f64()?,
        });
    }
    Ok(StatsTable::from_stats(stats, total_cycles))
}

fn write_run_payload(w: &mut ByteWriter, run: &RunResult) {
    w.str(&run.workload);
    w.str(&run.policy);
    w.f64(run.ipc);
    w.u32(run.per_core_ipc.len() as u32);
    for &v in &run.per_core_ipc {
        w.f64(v);
    }
    w.f64(run.ser_fit);
    w.f64(run.ser_ddr_only_fit);
    w.u64(run.cycles);
    w.u64(run.instructions);
    w.f64(run.mpki);
    w.u64(run.hbm_accesses);
    w.u64(run.ddr_accesses);
    w.u64(run.migrations);
    w.f64(run.mean_read_latency.0);
    w.f64(run.mean_read_latency.1);
    write_table(w, &run.table);
    write_snapshot(w, &run.telemetry);
}

fn read_run_payload(r: &mut ByteReader) -> Result<RunResult, CodecError> {
    let workload = r.str()?;
    let policy = r.str()?;
    let ipc = r.f64()?;
    let n_cores = r.seq_len(8)?;
    let per_core_ipc = (0..n_cores)
        .map(|_| r.f64())
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunResult {
        workload,
        policy,
        ipc,
        per_core_ipc,
        ser_fit: r.f64()?,
        ser_ddr_only_fit: r.f64()?,
        cycles: r.u64()?,
        instructions: r.u64()?,
        mpki: r.f64()?,
        hbm_accesses: r.u64()?,
        ddr_accesses: r.u64()?,
        migrations: r.u64()?,
        mean_read_latency: (r.f64()?, r.f64()?),
        table: read_table(r)?,
        telemetry: read_snapshot(r)?,
    })
}

/// Encodes a run result as a framed, checksummed store entry.
pub fn encode_run(run: &RunResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_run_payload(&mut w, run);
    encode_framed(KIND_RUN, WIRE_VERSION, w.bytes())
}

/// Decodes a framed store entry back into a run result.
///
/// Fails cleanly (no panic, no partial result) on truncation, bit flips,
/// wrong kind or version skew.
pub fn decode_run(bytes: &[u8]) -> Result<RunResult, CodecError> {
    let payload = decode_framed(bytes, KIND_RUN, WIRE_VERSION)?;
    let mut r = ByteReader::new(payload);
    let run = read_run_payload(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::Malformed("trailing payload bytes"));
    }
    Ok(run)
}

/// Encodes an annotated run (result plus its annotation set).
pub fn encode_annotated(run: &RunResult, set: &AnnotationSet) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_run_payload(&mut w, run);
    w.u32(set.structures.len() as u32);
    for (bench, name) in &set.structures {
        w.str(bench.name());
        w.str(name);
    }
    let mut pinned: Vec<u64> = set.pinned.iter().map(|p| p.0).collect();
    pinned.sort_unstable();
    w.u32(pinned.len() as u32);
    for p in pinned {
        w.u64(p);
    }
    encode_framed(KIND_ANNOTATED, WIRE_VERSION, w.bytes())
}

/// Decodes an annotated-run store entry.
pub fn decode_annotated(bytes: &[u8]) -> Result<(RunResult, AnnotationSet), CodecError> {
    let payload = decode_framed(bytes, KIND_ANNOTATED, WIRE_VERSION)?;
    let mut r = ByteReader::new(payload);
    let run = read_run_payload(&mut r)?;
    let n_structs = r.seq_len(8)?;
    let mut structures = Vec::with_capacity(n_structs);
    for _ in 0..n_structs {
        let bench = Benchmark::from_name(&r.str()?)
            .ok_or(CodecError::Malformed("unknown benchmark name"))?;
        structures.push((bench, r.str()?));
    }
    let n_pinned = r.seq_len(8)?;
    let pinned: HashSet<PageId> = (0..n_pinned)
        .map(|_| r.u64().map(PageId))
        .collect::<Result<_, _>>()?;
    if !r.is_empty() {
        return Err(CodecError::Malformed("trailing payload bytes"));
    }
    Ok((run, AnnotationSet { structures, pinned }))
}

/// Test-only fixtures shared across the crate's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A small but fully-populated result exercising every field.
    pub(crate) fn sample_run() -> RunResult {
        let mut telemetry = Snapshot::default();
        telemetry.insert("system", "instructions", Stat::Counter(42_000));
        telemetry.insert("system", "ipc", Stat::Gauge(1.25));
        telemetry.insert("dram.hbm", "row_hit_ratio", Stat::Ratio { num: 3, den: 7 });
        let mut h = BinHistogram::new(0.0, 16.0, 4);
        h.observe(1.0);
        h.observe(15.0);
        telemetry.insert("core.c00", "outstanding_misses", Stat::Histogram(h));
        RunResult {
            workload: "lbm".into(),
            policy: "perf-focused".into(),
            ipc: 1.25,
            per_core_ipc: vec![1.0, 1.5, f64::MIN_POSITIVE],
            ser_fit: 287.5,
            ser_ddr_only_fit: 1.0,
            cycles: 33_600,
            instructions: 42_000,
            mpki: 12.5,
            hbm_accesses: 400,
            ddr_accesses: 125,
            migrations: 3,
            mean_read_latency: (81.5, 210.25),
            table: StatsTable::from_stats(
                vec![
                    PageStats {
                        page: PageId(7),
                        reads: 10,
                        writes: 2,
                        ace_hbm: 100,
                        ace_ddr: 50,
                        avf: 0.25,
                    },
                    PageStats {
                        page: PageId(9),
                        reads: 0,
                        writes: 0,
                        ace_hbm: 0,
                        ace_ddr: 0,
                        avf: 0.0,
                    },
                ],
                33_600,
            ),
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::sample_run;
    use super::*;

    fn assert_runs_equal(a: &RunResult, b: &RunResult) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
        assert_eq!(a.per_core_ipc.len(), b.per_core_ipc.len());
        for (x, y) in a.per_core_ipc.iter().zip(&b.per_core_ipc) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.ser_fit.to_bits(), b.ser_fit.to_bits());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.table.pages(), b.table.pages());
        assert_eq!(a.table.total_cycles(), b.table.total_cycles());
        assert_eq!(a.telemetry, b.telemetry);
    }

    #[test]
    fn run_round_trips_bit_exactly() {
        let run = sample_run();
        let bytes = encode_run(&run);
        let back = decode_run(&bytes).unwrap();
        assert_runs_equal(&run, &back);
        assert_eq!(run.telemetry.to_json(), back.telemetry.to_json());
    }

    #[test]
    fn annotated_round_trips() {
        let run = sample_run();
        let set = AnnotationSet {
            structures: vec![
                (Benchmark::Lbm, "lattice_a".into()),
                (Benchmark::Mcf, "nodes".into()),
            ],
            pinned: [PageId(1), PageId(99)].into_iter().collect(),
        };
        let bytes = encode_annotated(&run, &set);
        let (back, back_set) = decode_annotated(&bytes).unwrap();
        assert_runs_equal(&run, &back);
        assert_eq!(back_set.structures, set.structures);
        assert_eq!(back_set.pinned, set.pinned);
    }

    #[test]
    fn kind_confusion_is_a_clean_error() {
        let run = sample_run();
        let bytes = encode_run(&run);
        assert!(matches!(
            decode_annotated(&bytes),
            Err(CodecError::WrongKind { .. })
        ));
    }
}
