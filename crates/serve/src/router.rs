//! The shard router: a reverse proxy that spreads run keys over a fleet
//! of `ramp-served` processes with replication and health-checked
//! failover.
//!
//! The router owns a **static shard map** (ordered `host:port` list) and
//! routes every submit/poll/fetch by jump-consistent-hash of the run's
//! routing key to a *replica set*: the primary shard plus the next
//! `R - 1` shards in map order ([`replica_set`]). Requests walk the set
//! in order — a connection failure, timeout, or 5xx on one member
//! retries the next with a deterministic decorrelated-jitter delay
//! ([`failover_delay`]); a dark member (see health, below) is skipped
//! outright. Because every shard simulates the same deterministic
//! system, any replica can answer any request in its set: a dark shard
//! degrades capacity, never correctness, mirroring the two-tier
//! replication-based protection scheme the paper's reliability model is
//! built on.
//!
//! **Writes** (submits) are mirrored best-effort: when a shard accepts a
//! job, the router queues a *hint* — the run spec — for every other
//! member of the replica set. A background handoff thread delivers
//! hints to live shards (warming their stores), and holds them for dark
//! shards until the health prober reports recovery: hinted handoff, so
//! a shard that was down during a write converges once it returns.
//! **Reads** prefer any replica that answers warm: `GET /runs/{key}`
//! scans the key's replica set first, then every remaining live shard.
//!
//! **Health** is an active prober thread: `GET /health` per shard on an
//! interval; [`RouterConfig::fail_threshold`] consecutive failures mark
//! a shard dark, [`RouterConfig::live_threshold`] consecutive successes
//! bring it back. Per-shard state is exported under `router.shard{i}`
//! telemetry scopes in the router's own `/stats`. The degradation
//! ladder: all members live → plain proxying; some dark → serve from
//! the rest and count `router.degraded`; all dark or failing → `503`
//! with `retry-after` and count `router.unavailable`.
//!
//! Jobs are renumbered: the router allocates its own job ids and maps
//! them to `(shard, upstream id)`, so `GET /jobs/{id}` works no matter
//! which shard ran the job — and when the owning shard dies mid-job,
//! the poll transparently **resubmits** the remembered spec to a
//! surviving replica (idempotent by the content-addressed run key) and
//! keeps the same router job id.
//!
//! Both sides of the router use bounded keep-alive connection pools:
//! the listener via [`crate::http::serve_pooled`], and one small
//! persistent-connection pool per upstream shard (request-capped,
//! idle-reaped by the prober).
//!
//! Chaos sites (see [`ramp_sim::chaos`]): `router.upstream` injects
//! upstream request faults (exercising failover), `router.probe`
//! injects probe failures (exercising dark/live transitions), and
//! `router.handoff` injects slow/panicking hint deliveries (exercising
//! the redelivery loop — a handoff panic is caught, counted, and the
//! hint retried).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ramp_sim::chaos::{self, Chaos, FaultKind};
use ramp_sim::codec::fnv1a64;
use ramp_sim::telemetry::StatRegistry;

use crate::http::{read_response_full, serve_pooled, HttpResponse, PoolPolicy, Reply, Request};
use crate::json::{error_body, parse_flat, ObjWriter};
use crate::server::MAX_BATCH;
use crate::spec::RunSpec;

/// Chaos site rolled per upstream request attempt (`Net` faults).
pub const SITE_UPSTREAM: &str = "router.upstream";
/// Chaos site rolled per hint delivery (`Slow` delays, `Panic` kills).
pub const SITE_HANDOFF: &str = "router.handoff";
/// Chaos site rolled per health probe (`Net` faults → probe failure).
pub const SITE_PROBE: &str = "router.probe";

/// Requests served per upstream connection before it is re-dialed.
const UPSTREAM_MAX_REQUESTS: u32 = 128;
/// Idle upstream connections older than this are reaped by the prober.
const UPSTREAM_IDLE: Duration = Duration::from_secs(5);
/// Hints held per shard before new mirrors are dropped (best-effort).
const MAX_HINTS: usize = 1024;
/// Delivery attempts per hint before it is dropped.
const MAX_HINT_ATTEMPTS: u32 = 5;

/// Jump consistent hash (Lamping–Veach) of a run key over `buckets`.
/// Deterministic, uniform, and minimally disruptive under growth:
/// going from N to N+1 buckets moves only ~1/(N+1) of the keys. Used
/// both for worker slots inside one server and for shards across the
/// fleet.
pub fn route_shard(key: &str, buckets: usize) -> usize {
    let mut h = fnv1a64(key.as_bytes());
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        h = h.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = ((b.wrapping_add(1) as f64) * ((1u64 << 31) as f64 / (((h >> 33) + 1) as f64))) as i64;
    }
    b as usize
}

/// The ordered replica set for `key`: the jump-hash primary followed by
/// the next `replicas - 1` shards in map order (distinct by
/// construction, clamped to the shard count).
pub fn replica_set(key: &str, shards: usize, replicas: usize) -> Vec<usize> {
    let primary = route_shard(key, shards);
    (0..replicas.clamp(1, shards))
        .map(|i| (primary + i) % shards)
        .collect()
}

/// The deterministic decorrelated-jitter delay before failover attempt
/// `attempt` (1-based) for `key`: jittered over `[base, min(cap,
/// base·3^attempt))` with the jitter hashed from `(key, attempt)` — a
/// replay backs off identically, distinct keys decorrelate.
pub fn failover_delay(key: &str, attempt: u32) -> Duration {
    const BASE_US: u64 = 2_000;
    const CAP_US: u64 = 50_000;
    let mut h = fnv1a64(key.as_bytes()) ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    let ceiling = BASE_US
        .saturating_mul(3u64.saturating_pow(attempt))
        .min(CAP_US);
    let span = ceiling.saturating_sub(BASE_US).max(1);
    Duration::from_micros(BASE_US + h % span)
}

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Ordered shard map (`host:port` per shard). Order matters: it
    /// defines replica sets, so every router over the same map agrees.
    pub shards: Vec<String>,
    /// Replication factor R: each key lives on its primary plus R−1
    /// successors. Clamped to the shard count.
    pub replicas: usize,
    /// Health probe interval per shard.
    pub probe_interval: Duration,
    /// Consecutive probe failures before a shard goes dark.
    pub fail_threshold: u32,
    /// Consecutive probe successes before a dark shard is live again.
    pub live_threshold: u32,
    /// Connect/read timeout for one health probe.
    pub probe_timeout: Duration,
    /// Connect/read timeout for one proxied upstream request.
    pub upstream_timeout: Duration,
    /// Listener-side keep-alive pool tuning.
    pub http: PoolPolicy,
    /// Fault-injection registry; defaults to the `RAMP_CHAOS` global.
    pub chaos: Option<Arc<Chaos>>,
}

impl RouterConfig {
    /// Defaults: replication factor 2, 100 ms probes with 2-strike
    /// dark / 2-strike live thresholds, 500 ms probe timeout, 30 s
    /// upstream timeout, default listener pool, environment chaos.
    pub fn new(shards: Vec<String>) -> Self {
        RouterConfig {
            shards,
            replicas: 2,
            probe_interval: Duration::from_millis(100),
            fail_threshold: 2,
            live_threshold: 2,
            probe_timeout: Duration::from_millis(500),
            upstream_timeout: Duration::from_secs(30),
            http: PoolPolicy::default(),
            chaos: chaos::global(),
        }
    }
}

/// An undelivered write mirror: the spec to replay on a replica.
struct Hint {
    workload: String,
    kind: String,
    policy: String,
    attempts: u32,
}

/// One pooled upstream connection.
struct Pooled {
    stream: TcpStream,
    served: u32,
    idle_since: Instant,
}

/// Per-shard health ledger, connection pool, and hint queue.
struct ShardState {
    addr: String,
    live: AtomicBool,
    consec_fail: AtomicU64,
    consec_ok: AtomicU64,
    probes: AtomicU64,
    probe_failures: AtomicU64,
    transitions: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    pool: Mutex<Vec<Pooled>>,
    hints: Mutex<VecDeque<Hint>>,
    hints_queued: AtomicU64,
    hints_delivered: AtomicU64,
    hints_dropped: AtomicU64,
}

impl ShardState {
    fn new(addr: String) -> Self {
        ShardState {
            addr,
            // Optimistic start: the first requests race the first probe,
            // and per-request failover covers a shard that is not
            // actually there yet.
            live: AtomicBool::new(true),
            consec_fail: AtomicU64::new(0),
            consec_ok: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            hints: Mutex::new(VecDeque::new()),
            hints_queued: AtomicU64::new(0),
            hints_delivered: AtomicU64::new(0),
            hints_dropped: AtomicU64::new(0),
        }
    }
}

/// What the router remembers about one renumbered job.
#[derive(Clone)]
struct RouterJob {
    shard: usize,
    upstream: u64,
    workload: String,
    kind: String,
    policy: String,
    routing_key: String,
}

struct RouterShared {
    shards: Vec<ShardState>,
    replicas: usize,
    upstream_timeout: Duration,
    chaos: Option<Arc<Chaos>>,
    jobs: Mutex<HashMap<u64, RouterJob>>,
    next_job: AtomicU64,
    proxied: AtomicU64,
    failover: AtomicU64,
    degraded: AtomicU64,
    unavailable: AtomicU64,
    resubmitted: AtomicU64,
    handoff_panics: AtomicU64,
    stop: AtomicBool,
}

impl RouterShared {
    fn live_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.live.load(Ordering::SeqCst))
            .count()
    }

    fn hints_pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hints.lock().unwrap().len())
            .sum()
    }
}

/// The routing key of a submit: the raw spec triple. Every router over
/// the same shard map routes the same spec identically (the
/// content-addressed store key is not computable without the simulated
/// system's config, which the router deliberately does not own).
fn routing_key(workload: &str, kind: &str, policy: &str) -> String {
    format!("{workload}|{kind}|{policy}")
}

fn connect_shard(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let sa = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))?;
    TcpStream::connect_timeout(&sa, timeout).map_err(|e| format!("connect {addr}: {e}"))
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: shard\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One request to shard `idx`, reusing a pooled connection when one is
/// fresh (a stale pooled connection gets one silent fresh-dial retry —
/// the shard may simply have reaped it).
fn upstream_once(
    shared: &RouterShared,
    idx: usize,
    method: &str,
    path: &str,
    body: &str,
) -> Result<HttpResponse, String> {
    let shard = &shared.shards[idx];
    shard.requests.fetch_add(1, Ordering::SeqCst);
    let pooled = shard.pool.lock().unwrap().pop();
    if let Some(mut p) = pooled {
        if p.idle_since.elapsed() < UPSTREAM_IDLE {
            if let Ok(resp) = exchange(&mut p.stream, method, path, body) {
                repool(shard, p.stream, p.served + 1, &resp);
                return Ok(resp);
            }
        }
        // Stale or broken: drop it and dial fresh below.
    }
    let mut stream = connect_shard(&shard.addr, shared.upstream_timeout)?;
    let _ = stream.set_read_timeout(Some(shared.upstream_timeout));
    let _ = stream.set_write_timeout(Some(shared.upstream_timeout));
    let resp = exchange(&mut stream, method, path, body)?;
    repool(shard, stream, 1, &resp);
    Ok(resp)
}

fn exchange(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> Result<HttpResponse, String> {
    send_request(stream, method, path, body).map_err(|e| format!("send: {e}"))?;
    read_response_full(stream)
}

fn repool(shard: &ShardState, stream: TcpStream, served: u32, resp: &HttpResponse) {
    if resp.keep_alive() && served < UPSTREAM_MAX_REQUESTS {
        shard.pool.lock().unwrap().push(Pooled {
            stream,
            served,
            idle_since: Instant::now(),
        });
    }
}

/// [`upstream_once`] behind the `router.upstream` chaos site: an
/// injected `Net` fault fails the attempt before the network is
/// touched, so failover is exercisable deterministically.
fn upstream(
    shared: &RouterShared,
    idx: usize,
    method: &str,
    path: &str,
    body: &str,
) -> Result<HttpResponse, String> {
    if let Some(c) = shared.chaos.as_ref() {
        c.maybe_slow(SITE_UPSTREAM);
        if c.roll(FaultKind::Net, SITE_UPSTREAM) {
            return Err("injected upstream fault".into());
        }
    }
    upstream_once(shared, idx, method, path, body)
}

fn is_gateway_error(status: u16) -> bool {
    matches!(status, 500 | 502 | 503 | 504)
}

enum Forward {
    /// A replica answered (any non-5xx status); carries which one.
    Ok { shard: usize, resp: HttpResponse },
    /// Every eligible replica was dark or failed.
    Unavailable,
}

/// Walks `key`'s replica set: skips dark members (and `skip`), retries
/// past failures with jittered delays, and accounts failover (served by
/// a non-first member) and degradation (served while some member was
/// dark).
fn forward(
    shared: &RouterShared,
    key: &str,
    method: &str,
    path: &str,
    body: &str,
    skip: Option<usize>,
) -> Forward {
    let set = replica_set(key, shared.shards.len(), shared.replicas);
    let mut dark = 0usize;
    let mut attempt = 0u32;
    for (pos, &idx) in set.iter().enumerate() {
        if Some(idx) == skip {
            dark += 1;
            continue;
        }
        let shard = &shared.shards[idx];
        if !shard.live.load(Ordering::SeqCst) {
            dark += 1;
            continue;
        }
        if attempt > 0 || pos > 0 {
            std::thread::sleep(failover_delay(key, attempt.max(1)));
        }
        match upstream(shared, idx, method, path, body) {
            Ok(resp) if !is_gateway_error(resp.status) => {
                if pos > 0 {
                    shared.failover.fetch_add(1, Ordering::SeqCst);
                }
                if dark > 0 {
                    shared.degraded.fetch_add(1, Ordering::SeqCst);
                }
                return Forward::Ok { shard: idx, resp };
            }
            Ok(_) | Err(_) => {
                shard.errors.fetch_add(1, Ordering::SeqCst);
                attempt += 1;
            }
        }
    }
    shared.unavailable.fetch_add(1, Ordering::SeqCst);
    Forward::Unavailable
}

fn unavailable_reply() -> Reply {
    let mut reply = Reply::json(503, error_body("no live replica"));
    reply
        .headers
        .push(("retry-after".to_string(), "1".to_string()));
    reply
}

/// Copies a passthrough upstream response into a reply, preserving the
/// `retry-after` hint on shed load.
fn passthrough(resp: HttpResponse) -> Reply {
    let mut reply = Reply::json(resp.status, String::new());
    if let Some(ra) = resp.header("retry-after") {
        reply
            .headers
            .push(("retry-after".to_string(), ra.to_string()));
    }
    reply.body = resp.body;
    reply
}

/// Splices router job id `gid` over the upstream id in a body that
/// starts `{"job":N,...` (every poll response does).
fn rewrite_job_prefix(body: &str, gid: u64) -> String {
    if let Some(rest) = body.strip_prefix("{\"job\":") {
        let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
        if digits > 0 {
            return format!("{{\"job\":{gid}{}", &rest[digits..]);
        }
    }
    body.to_string()
}

/// Queues write mirrors for every replica of `rk` other than the shard
/// that took the write; the handoff thread delivers them.
fn enqueue_hints(
    shared: &RouterShared,
    rk: &str,
    served_by: usize,
    workload: &str,
    kind: &str,
    policy: &str,
) {
    let set = replica_set(rk, shared.shards.len(), shared.replicas);
    for &idx in &set {
        if idx == served_by {
            continue;
        }
        let shard = &shared.shards[idx];
        let mut q = shard.hints.lock().unwrap();
        if q.len() >= MAX_HINTS {
            shard.hints_dropped.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        q.push_back(Hint {
            workload: workload.to_string(),
            kind: kind.to_string(),
            policy: policy.to_string(),
            attempts: 0,
        });
        shard.hints_queued.fetch_add(1, Ordering::SeqCst);
    }
}

fn submit(shared: &RouterShared, body: &str) -> Reply {
    if shared.stop.load(Ordering::SeqCst) {
        return Reply::json(503, error_body("shutting down"));
    }
    let fields = match parse_flat(body) {
        Ok(f) => f,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    let get = |k: &str| fields.get(k).map(String::as_str).unwrap_or("");
    let (workload, kind, policy) = (get("workload"), get("kind"), get("policy"));
    // Validate locally for a crisp 400 before burning upstream attempts.
    if let Err(msg) = RunSpec::parse(workload, kind, policy) {
        return Reply::json(400, error_body(&msg));
    }
    let rk = routing_key(workload, kind, policy);
    match forward(shared, &rk, "POST", "/runs", body, None) {
        Forward::Unavailable => unavailable_reply(),
        Forward::Ok { shard, resp } if resp.status == 202 => {
            let f = parse_flat(&resp.body).unwrap_or_default();
            let Some(upstream_id) = f.get("job").and_then(|j| j.parse::<u64>().ok()) else {
                return Reply::json(502, error_body("shard 202 without a job id"));
            };
            let key = f.get("key").cloned().unwrap_or_default();
            let gid = shared.next_job.fetch_add(1, Ordering::SeqCst);
            shared.jobs.lock().unwrap().insert(
                gid,
                RouterJob {
                    shard,
                    upstream: upstream_id,
                    workload: workload.to_string(),
                    kind: kind.to_string(),
                    policy: policy.to_string(),
                    routing_key: rk.clone(),
                },
            );
            enqueue_hints(shared, &rk, shard, workload, kind, policy);
            let body = ObjWriter::new()
                .u64("job", gid)
                .str("state", "queued")
                .str("key", &key)
                .finish();
            Reply::json(202, body)
        }
        Forward::Ok { resp, .. } => passthrough(resp),
    }
}

fn submit_batch(shared: &RouterShared, body: &str) -> Reply {
    if shared.stop.load(Ordering::SeqCst) {
        return Reply::json(503, error_body("shutting down"));
    }
    let fields = match parse_flat(body) {
        Ok(f) => f,
        Err(msg) => return Reply::json(400, error_body(&msg)),
    };
    let Some(count) = fields.get("count").and_then(|c| c.parse::<usize>().ok()) else {
        return Reply::json(400, error_body("count is required"));
    };
    if count == 0 || count > MAX_BATCH {
        return Reply::json(400, error_body(&format!("count must be 1..={MAX_BATCH}")));
    }

    /// One re-emitted field of the merged response.
    enum Fv {
        S(String),
        U(u64),
    }
    let mut out: Vec<Vec<(String, Fv)>> = (0..count).map(|_| Vec::new()).collect();

    // Group valid specs by primary shard over the FULL map (not the
    // live subset — failover belongs to `forward`, so routing stays
    // identical whatever the fleet's health).
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut triples: Vec<Option<(String, String, String)>> = Vec::with_capacity(count);
    for (i, out_i) in out.iter_mut().enumerate() {
        let get = |k: &str| {
            fields
                .get(&format!("{i}.{k}"))
                .map(String::as_str)
                .unwrap_or("")
        };
        let (workload, kind, policy) = (get("workload"), get("kind"), get("policy"));
        match RunSpec::parse(workload, kind, policy) {
            Ok(_) => {
                let rk = routing_key(workload, kind, policy);
                groups
                    .entry(route_shard(&rk, shared.shards.len()))
                    .or_default()
                    .push(i);
                triples.push(Some((
                    workload.to_string(),
                    kind.to_string(),
                    policy.to_string(),
                )));
            }
            Err(msg) => {
                out_i.push(("state".to_string(), Fv::S("rejected".to_string())));
                out_i.push(("error".to_string(), Fv::S(msg)));
                triples.push(None);
            }
        }
    }

    for idxs in groups.values() {
        // All group members share a primary, hence a replica set; any
        // member's routing key selects it.
        let rk = {
            let (w, k, p) = triples[idxs[0]].as_ref().expect("grouped spec is valid");
            routing_key(w, k, p)
        };
        let mut sw = ObjWriter::new();
        sw.u64("count", idxs.len() as u64);
        for (sub, &orig) in idxs.iter().enumerate() {
            let (w, k, p) = triples[orig].as_ref().expect("grouped spec is valid");
            sw.str(&format!("{sub}.workload"), w)
                .str(&format!("{sub}.kind"), k);
            if !p.is_empty() {
                sw.str(&format!("{sub}.policy"), p);
            }
        }
        match forward(shared, &rk, "POST", "/submit-batch", &sw.finish(), None) {
            Forward::Ok { shard, resp } if resp.status == 200 => {
                let sub_fields = parse_flat(&resp.body).unwrap_or_default();
                for (sub, &orig) in idxs.iter().enumerate() {
                    merge_batch_item(
                        shared,
                        &sub_fields,
                        sub,
                        shard,
                        &triples[orig],
                        &mut out[orig],
                    );
                }
            }
            Forward::Ok { .. } => {
                for &orig in idxs {
                    out[orig].push(("state".to_string(), Fv::S("rejected".to_string())));
                    out[orig].push(("error".to_string(), Fv::S("upstream rejected batch".into())));
                }
            }
            Forward::Unavailable => {
                for &orig in idxs {
                    out[orig].push(("state".to_string(), Fv::S("rejected".to_string())));
                    out[orig].push(("error".to_string(), Fv::S("no live replica".to_string())));
                }
            }
        }
    }

    let mut w = ObjWriter::new();
    w.u64("count", count as u64);
    for (i, item) in out.iter().enumerate() {
        for (name, v) in item {
            match v {
                Fv::S(s) => w.str(&format!("{i}.{name}"), s),
                Fv::U(u) => w.u64(&format!("{i}.{name}"), *u),
            };
        }
    }
    return Reply::json(200, w.finish());

    /// Copies one sub-batch item to its original index: `queued` items
    /// are renumbered (and mirrored via hints); everything else is
    /// copied field-for-field, values kept in their literal text form
    /// (the flat protocol's clients re-parse by name, not JSON type).
    fn merge_batch_item(
        shared: &RouterShared,
        sub_fields: &BTreeMap<String, String>,
        sub: usize,
        shard: usize,
        triple: &Option<(String, String, String)>,
        out: &mut Vec<(String, Fv)>,
    ) {
        let prefix = format!("{sub}.");
        let get = |k: &str| sub_fields.get(&format!("{sub}.{k}")).map(String::as_str);
        match get("state") {
            Some("queued") => {
                let Some(upstream_id) = get("job").and_then(|j| j.parse::<u64>().ok()) else {
                    out.push(("state".to_string(), Fv::S("rejected".to_string())));
                    out.push((
                        "error".to_string(),
                        Fv::S("shard queued without a job id".to_string()),
                    ));
                    return;
                };
                let (w, k, p) = triple.as_ref().expect("queued spec is valid");
                let rk = routing_key(w, k, p);
                let gid = shared.next_job.fetch_add(1, Ordering::SeqCst);
                shared.jobs.lock().unwrap().insert(
                    gid,
                    RouterJob {
                        shard,
                        upstream: upstream_id,
                        workload: w.clone(),
                        kind: k.clone(),
                        policy: p.clone(),
                        routing_key: rk.clone(),
                    },
                );
                enqueue_hints(shared, &rk, shard, w, k, p);
                out.push(("state".to_string(), Fv::S("queued".to_string())));
                out.push(("job".to_string(), Fv::U(gid)));
                if let Some(key) = get("key") {
                    out.push(("key".to_string(), Fv::S(key.to_string())));
                }
            }
            Some(_) => {
                // done / rejected: copy verbatim, state first.
                if let Some(state) = get("state") {
                    out.push(("state".to_string(), Fv::S(state.to_string())));
                }
                for (k, v) in sub_fields {
                    if let Some(name) = k.strip_prefix(&prefix) {
                        if name != "state" && !name.contains('.') {
                            out.push((name.to_string(), Fv::S(v.clone())));
                        }
                    }
                }
            }
            None => {
                out.push(("state".to_string(), Fv::S("rejected".to_string())));
                out.push((
                    "error".to_string(),
                    Fv::S("shard answered without a state".to_string()),
                ));
            }
        }
    }
}

fn poll(shared: &RouterShared, id_str: &str) -> Reply {
    let Ok(gid) = id_str.parse::<u64>() else {
        return Reply::json(400, error_body("job id must be an integer"));
    };
    let job = shared.jobs.lock().unwrap().get(&gid).cloned();
    let Some(job) = job else {
        return Reply::json(404, error_body("no such job"));
    };
    let path = format!("/jobs/{}", job.upstream);
    let attempt = if shared.shards[job.shard].live.load(Ordering::SeqCst) {
        upstream(shared, job.shard, "GET", &path, "")
    } else {
        Err("owning shard is dark".into())
    };
    match attempt {
        Ok(resp) if resp.status == 200 => Reply::json(200, rewrite_job_prefix(&resp.body, gid)),
        // 404 from the shard means it restarted and lost its job table;
        // gateway errors and a dark owner mean it is gone. Either way
        // the run is idempotent: resubmit the remembered spec to a
        // surviving replica under the same router job id.
        Ok(resp) if resp.status != 404 && !is_gateway_error(resp.status) => passthrough(resp),
        _ => resubmit(shared, gid, &job),
    }
}

/// Re-dispatches a lost job's spec to the surviving replicas; the
/// router job id is stable across the move.
fn resubmit(shared: &RouterShared, gid: u64, job: &RouterJob) -> Reply {
    let mut w = ObjWriter::new();
    w.str("workload", &job.workload).str("kind", &job.kind);
    if !job.policy.is_empty() {
        w.str("policy", &job.policy);
    }
    match forward(
        shared,
        &job.routing_key,
        "POST",
        "/runs",
        &w.finish(),
        Some(job.shard),
    ) {
        Forward::Unavailable => unavailable_reply(),
        Forward::Ok { shard, resp } => match resp.status {
            // Warm on the replica: answer done right now, as a poll body.
            200 => {
                shared.resubmitted.fetch_add(1, Ordering::SeqCst);
                let rewritten = resp.body.replacen(
                    "{\"state\":\"done\",\"cached\":true",
                    &format!("{{\"job\":{gid},\"state\":\"done\""),
                    1,
                );
                Reply::json(200, rewritten)
            }
            // Re-queued: remember the new home, keep polling.
            202 => {
                shared.resubmitted.fetch_add(1, Ordering::SeqCst);
                let f = parse_flat(&resp.body).unwrap_or_default();
                if let Some(upstream_id) = f.get("job").and_then(|j| j.parse::<u64>().ok()) {
                    let mut jobs = shared.jobs.lock().unwrap();
                    if let Some(entry) = jobs.get_mut(&gid) {
                        entry.shard = shard;
                        entry.upstream = upstream_id;
                    }
                }
                Reply::json(
                    200,
                    ObjWriter::new()
                        .u64("job", gid)
                        .str("state", "queued")
                        .finish(),
                )
            }
            // 429: the replica is shedding; report still-queued so the
            // caller polls again instead of failing a live job.
            429 => Reply::json(
                200,
                ObjWriter::new()
                    .u64("job", gid)
                    .str("state", "queued")
                    .finish(),
            ),
            _ => passthrough(resp),
        },
    }
}

fn fetch(shared: &RouterShared, key: &str) -> Reply {
    if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Reply::json(400, error_body("key must be 32 hex digits"));
    }
    // Prefer-warm scan: the store key's replica set is only a heuristic
    // (submits route by spec, not store key), so fall back to every
    // remaining live shard before answering 404.
    let mut order = replica_set(key, shared.shards.len(), shared.replicas);
    for idx in 0..shared.shards.len() {
        if !order.contains(&idx) {
            order.push(idx);
        }
    }
    let path = format!("/runs/{key}");
    let mut answered_404 = false;
    let mut tried = 0usize;
    for idx in order {
        if !shared.shards[idx].live.load(Ordering::SeqCst) {
            continue;
        }
        tried += 1;
        match upstream(shared, idx, "GET", &path, "") {
            Ok(resp) if resp.status == 200 => return Reply::json(200, resp.body),
            Ok(resp) if resp.status == 404 => answered_404 = true,
            Ok(resp) if !is_gateway_error(resp.status) => return passthrough(resp),
            _ => {
                shared.shards[idx].errors.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    if answered_404 {
        return Reply::json(404, error_body("no stored run under that key"));
    }
    if tried == 0 {
        shared.unavailable.fetch_add(1, Ordering::SeqCst);
        return unavailable_reply();
    }
    Reply::json(502, error_body("every live shard failed the fetch"))
}

fn health_body(shared: &RouterShared) -> (u16, String) {
    let live = shared.live_count();
    let body = ObjWriter::new()
        .bool("ok", live > 0)
        .u64("shards", shared.shards.len() as u64)
        .u64("live", live as u64)
        .u64("replicas", shared.replicas as u64)
        .finish();
    (if live > 0 { 200 } else { 503 }, body)
}

fn stats_body(shared: &RouterShared) -> String {
    let mut reg = StatRegistry::new();
    reg.counter_add("router", "proxied", shared.proxied.load(Ordering::SeqCst));
    reg.counter_add("router", "failover", shared.failover.load(Ordering::SeqCst));
    reg.counter_add("router", "degraded", shared.degraded.load(Ordering::SeqCst));
    reg.counter_add(
        "router",
        "unavailable",
        shared.unavailable.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "router",
        "resubmitted",
        shared.resubmitted.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "router",
        "handoff_panics",
        shared.handoff_panics.load(Ordering::SeqCst),
    );
    reg.gauge_set("router", "shards", shared.shards.len() as f64);
    reg.gauge_set("router", "live", shared.live_count() as f64);
    reg.gauge_set("router", "replicas", shared.replicas as f64);
    reg.gauge_set("router", "handoff_pending", shared.hints_pending() as f64);
    if let Some(c) = shared.chaos.as_ref() {
        c.export_telemetry(&mut reg, "chaos");
    }
    for (i, shard) in shared.shards.iter().enumerate() {
        let scope = format!("router.shard{i}");
        reg.gauge_set(
            &scope,
            "live",
            if shard.live.load(Ordering::SeqCst) {
                1.0
            } else {
                0.0
            },
        );
        reg.counter_add(&scope, "probes", shard.probes.load(Ordering::SeqCst));
        reg.counter_add(
            &scope,
            "probe_failures",
            shard.probe_failures.load(Ordering::SeqCst),
        );
        reg.counter_add(
            &scope,
            "transitions",
            shard.transitions.load(Ordering::SeqCst),
        );
        reg.counter_add(&scope, "requests", shard.requests.load(Ordering::SeqCst));
        reg.counter_add(&scope, "errors", shard.errors.load(Ordering::SeqCst));
        reg.counter_add(
            &scope,
            "hints_queued",
            shard.hints_queued.load(Ordering::SeqCst),
        );
        reg.counter_add(
            &scope,
            "hints_delivered",
            shard.hints_delivered.load(Ordering::SeqCst),
        );
        reg.counter_add(
            &scope,
            "hints_dropped",
            shard.hints_dropped.load(Ordering::SeqCst),
        );
        reg.gauge_set(&scope, "pool_idle", shard.pool.lock().unwrap().len() as f64);
    }
    reg.snapshot_full().to_json()
}

/// Waits briefly for pending hints to drain (the handoff thread does
/// the delivering), then reports counts and stops the listener.
fn shutdown(shared: &RouterShared) -> Reply {
    let deadline = Instant::now() + Duration::from_secs(2);
    while shared.hints_pending() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    shared.stop.store(true, Ordering::SeqCst);
    let body = ObjWriter::new()
        .bool("drained", true)
        .u64("proxied", shared.proxied.load(Ordering::SeqCst))
        .u64("failover", shared.failover.load(Ordering::SeqCst))
        .u64("resubmitted", shared.resubmitted.load(Ordering::SeqCst))
        .u64("hints_pending", shared.hints_pending() as u64)
        .finish();
    let mut reply = Reply::json(200, body);
    reply.stop = true;
    reply
}

fn route_request(shared: &RouterShared, req: &Request) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let (status, body) = health_body(shared);
            Reply::json(status, body)
        }
        ("GET", "/stats") => Reply::json(200, stats_body(shared)),
        ("POST", "/runs") => {
            shared.proxied.fetch_add(1, Ordering::SeqCst);
            submit(shared, &req.body)
        }
        ("POST", "/submit-batch") => {
            shared.proxied.fetch_add(1, Ordering::SeqCst);
            submit_batch(shared, &req.body)
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            shared.proxied.fetch_add(1, Ordering::SeqCst);
            poll(shared, &path["/jobs/".len()..])
        }
        ("GET", path) if path.starts_with("/runs/") => {
            shared.proxied.fetch_add(1, Ordering::SeqCst);
            fetch(shared, &path["/runs/".len()..])
        }
        ("POST", "/shutdown") => shutdown(shared),
        ("GET", _) | ("POST", _) => Reply::json(404, error_body("no such endpoint")),
        _ => Reply::json(405, error_body("method not allowed")),
    }
}

fn probe_once(shard: &ShardState, timeout: Duration) -> bool {
    let Ok(mut s) = connect_shard(&shard.addr, timeout) else {
        return false;
    };
    let _ = s.set_read_timeout(Some(timeout));
    let _ = s.set_write_timeout(Some(timeout));
    if send_request(&mut s, "GET", "/health", "").is_err() {
        return false;
    }
    matches!(read_response_full(&mut s), Ok(resp) if resp.status == 200)
}

fn prober_loop(shared: &RouterShared, cfg: &RouterConfig) {
    while !shared.stop.load(Ordering::SeqCst) {
        for shard in &shared.shards {
            shard.probes.fetch_add(1, Ordering::SeqCst);
            let injected = shared.chaos.as_ref().is_some_and(|c| {
                c.maybe_slow(SITE_PROBE);
                c.roll(FaultKind::Net, SITE_PROBE)
            });
            let ok = !injected && probe_once(shard, cfg.probe_timeout);
            if ok {
                shard.consec_fail.store(0, Ordering::SeqCst);
                let streak = shard.consec_ok.fetch_add(1, Ordering::SeqCst) + 1;
                if !shard.live.load(Ordering::SeqCst) && streak >= u64::from(cfg.live_threshold) {
                    shard.live.store(true, Ordering::SeqCst);
                    shard.transitions.fetch_add(1, Ordering::SeqCst);
                }
            } else {
                shard.probe_failures.fetch_add(1, Ordering::SeqCst);
                shard.consec_ok.store(0, Ordering::SeqCst);
                let streak = shard.consec_fail.fetch_add(1, Ordering::SeqCst) + 1;
                if shard.live.load(Ordering::SeqCst) && streak >= u64::from(cfg.fail_threshold) {
                    shard.live.store(false, Ordering::SeqCst);
                    shard.transitions.fetch_add(1, Ordering::SeqCst);
                    // A dark shard's pooled connections are dead weight.
                    shard.pool.lock().unwrap().clear();
                }
            }
            // Reap idle upstream connections while we're here.
            shard
                .pool
                .lock()
                .unwrap()
                .retain(|p| p.idle_since.elapsed() < UPSTREAM_IDLE);
        }
        std::thread::sleep(cfg.probe_interval);
    }
}

/// Delivers one hint; `true` means the replica has (or will have) the
/// result. Panics injected at `router.handoff` unwind to the caller.
fn deliver_hint(shared: &RouterShared, idx: usize, hint: &Hint) -> bool {
    if let Some(c) = shared.chaos.as_ref() {
        c.maybe_slow(SITE_HANDOFF);
        c.maybe_panic(SITE_HANDOFF);
    }
    let mut w = ObjWriter::new();
    w.str("workload", &hint.workload).str("kind", &hint.kind);
    if !hint.policy.is_empty() {
        w.str("policy", &hint.policy);
    }
    matches!(
        upstream_once(shared, idx, "POST", "/runs", &w.finish()),
        Ok(resp) if resp.status == 200 || resp.status == 202
    )
}

fn handoff_loop(shared: &RouterShared) {
    while !shared.stop.load(Ordering::SeqCst) {
        for (idx, shard) in shared.shards.iter().enumerate() {
            if !shard.live.load(Ordering::SeqCst) {
                continue;
            }
            loop {
                let hint = shard.hints.lock().unwrap().pop_front();
                let Some(mut hint) = hint else { break };
                let outcome = catch_unwind(AssertUnwindSafe(|| deliver_hint(shared, idx, &hint)));
                if matches!(outcome, Ok(true)) {
                    shard.hints_delivered.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                if outcome.is_err() {
                    shared.handoff_panics.fetch_add(1, Ordering::SeqCst);
                }
                hint.attempts += 1;
                if hint.attempts >= MAX_HINT_ATTEMPTS {
                    shard.hints_dropped.fetch_add(1, Ordering::SeqCst);
                } else {
                    shard.hints.lock().unwrap().push_front(hint);
                }
                // Back off this shard until the next sweep.
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A bound, not-yet-running router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
    cfg: RouterConfig,
}

impl Router {
    /// Binds `addr`; fails on an empty shard map.
    pub fn bind(addr: &str, cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "at least one shard is required",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(RouterShared {
            shards: cfg.shards.iter().cloned().map(ShardState::new).collect(),
            replicas: cfg.replicas.clamp(1, cfg.shards.len()),
            upstream_timeout: cfg.upstream_timeout,
            chaos: cfg.chaos.clone(),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            proxied: AtomicU64::new(0),
            failover: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            resubmitted: AtomicU64::new(0),
            handoff_panics: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        Ok(Router {
            listener,
            shared,
            cfg,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Serves requests until a `POST /shutdown`; joins the prober and
    /// handoff threads before returning.
    pub fn run(self) {
        let prober = {
            let shared = Arc::clone(&self.shared);
            let cfg = self.cfg.clone();
            std::thread::spawn(move || prober_loop(&shared, &cfg))
        };
        let handoff = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handoff_loop(&shared))
        };
        let shared = Arc::clone(&self.shared);
        serve_pooled(self.listener, self.cfg.http, move |req: &Request| {
            route_request(&shared, req)
        });
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = prober.join();
        let _ = handoff.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for buckets in [1usize, 2, 3, 8, 17] {
            for i in 0..200 {
                let key = format!("{i:032x}");
                let a = route_shard(&key, buckets);
                assert_eq!(a, route_shard(&key, buckets), "stable for {key}");
                assert!(a < buckets, "{a} out of range for {buckets}");
            }
        }
    }

    #[test]
    fn replica_sets_are_distinct_and_clamped() {
        for shards in 1..=6 {
            for i in 0..50 {
                let set = replica_set(&format!("k{i}"), shards, 3);
                assert_eq!(set.len(), 3.min(shards));
                let mut sorted = set.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), set.len(), "duplicates in {set:?}");
            }
        }
    }

    #[test]
    fn failover_delay_is_deterministic_bounded_and_jittered() {
        let a = failover_delay("mcf|profile|", 1);
        assert_eq!(a, failover_delay("mcf|profile|", 1), "replayable");
        assert!(a >= Duration::from_millis(2), "floor: {a:?}");
        assert!(a <= Duration::from_millis(50), "cap: {a:?}");
        assert_ne!(
            failover_delay("mcf|profile|", 1),
            failover_delay("lbm|profile|", 1),
            "distinct keys decorrelate"
        );
        assert!(failover_delay("x", 10) <= Duration::from_millis(50));
    }

    #[test]
    fn job_prefix_rewrite_splices_the_router_id() {
        assert_eq!(
            rewrite_job_prefix("{\"job\":17,\"state\":\"queued\"}", 900),
            "{\"job\":900,\"state\":\"queued\"}"
        );
        // Not a poll body: returned untouched.
        assert_eq!(
            rewrite_job_prefix("{\"error\":\"x\"}", 1),
            "{\"error\":\"x\"}"
        );
    }
}
