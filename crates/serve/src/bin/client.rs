//! `ramp-client` — scriptable client for `ramp-served`.
//!
//! ```text
//! ramp-client [--addr HOST:PORT] health
//! ramp-client [--addr HOST:PORT] submit WORKLOAD KIND [POLICY]
//! ramp-client [--addr HOST:PORT] job ID
//! ramp-client [--addr HOST:PORT] wait ID [TIMEOUT_MS]
//! ramp-client [--addr HOST:PORT] result KEY
//! ramp-client [--addr HOST:PORT] stats
//! ramp-client [--addr HOST:PORT] shutdown
//! ramp-client [--addr HOST:PORT] smoke
//! ```
//!
//! Every subcommand prints the server's JSON response body on stdout and
//! exits non-zero on transport errors or error-class statuses (except
//! `submit`, where 429 is a meaningful answer and is reported via exit
//! code 3 so scripts can distinguish shed load from failure). `smoke`
//! runs the full CI choreography against a live server.

use ramp_serve::client::{smoke, Client};

fn usage() -> ! {
    eprintln!(
        "usage: ramp-client [--addr HOST:PORT] \
         health|submit|job|wait|result|stats|shutdown|smoke [args...]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("ramp-client: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut addr = "127.0.0.1:7177".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--addr" {
            addr = args.next().unwrap_or_else(|| usage());
        } else {
            rest.push(arg);
            rest.extend(args.by_ref());
        }
    }
    if rest.is_empty() {
        usage();
    }
    let client = Client::new(addr.clone());
    let arg = |i: usize| -> &str { rest.get(i).map(String::as_str).unwrap_or("") };

    match rest[0].as_str() {
        "health" => {
            let r = client.health().unwrap_or_else(|e| fail(&e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "submit" => {
            if rest.len() < 3 {
                usage();
            }
            let s = client
                .submit(arg(1), arg(2), arg(3))
                .unwrap_or_else(|e| fail(&e));
            println!("{}", s.response.body);
            std::process::exit(match s.status {
                200 | 202 => 0,
                429 => 3,
                _ => 1,
            });
        }
        "job" => {
            let id = arg(1).parse().unwrap_or_else(|_| usage());
            let r = client.job_status(id).unwrap_or_else(|e| fail(&e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "wait" => {
            let id = arg(1).parse().unwrap_or_else(|_| usage());
            let timeout = rest
                .get(2)
                .map(|t| t.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(300_000);
            let r = client.wait_done(id, timeout).unwrap_or_else(|e| fail(&e));
            println!("{}", r.body);
            std::process::exit(if r.state() == Some("done") { 0 } else { 1 });
        }
        "result" => {
            if rest.len() < 2 {
                usage();
            }
            let r = client.run_summary(arg(1)).unwrap_or_else(|e| fail(&e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "stats" => {
            let doc = client.stats().unwrap_or_else(|e| fail(&e));
            println!("{doc}");
        }
        "shutdown" => {
            let r = client.shutdown().unwrap_or_else(|e| fail(&e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "smoke" => match smoke(&addr) {
            Ok(transcript) => print!("{transcript}"),
            Err(e) => fail(&format!("smoke failed: {e}")),
        },
        _ => usage(),
    }
}
