//! `ramp-client` — scriptable client for `ramp-served`.
//!
//! ```text
//! ramp-client [GLOBAL FLAGS] health
//! ramp-client [GLOBAL FLAGS] submit WORKLOAD KIND [POLICY]
//! ramp-client [GLOBAL FLAGS] submit-batch WORKLOAD:KIND[:POLICY] [...]
//! ramp-client [GLOBAL FLAGS] job ID
//! ramp-client [GLOBAL FLAGS] wait ID [TIMEOUT_MS]
//! ramp-client [GLOBAL FLAGS] result KEY
//! ramp-client [GLOBAL FLAGS] stats
//! ramp-client [GLOBAL FLAGS] shutdown
//! ramp-client [GLOBAL FLAGS] smoke
//!
//! GLOBAL FLAGS:
//!   --addr HOST:PORT   server address        (default 127.0.0.1:7177)
//!   --server HOST:PORT endpoint list entry; repeatable — the first is
//!                      the primary, the rest are fallbacks tried in
//!                      order when it is dead (overrides --addr)
//!   --retries N        transport retry budget (default 3)
//!   --backoff-ms MS    base retry backoff     (default 50)
//!   --retry-429        also retry 429s, honoring retry-after
//! ```
//!
//! Every subcommand prints the server's JSON response body on stdout and
//! exits non-zero on transport errors or error-class statuses (except
//! `submit`, where 429 is a meaningful answer and is reported via exit
//! code 3 so scripts can distinguish shed load from failure). Transport
//! faults are retried with jittered exponential backoff before the
//! classified error is reported. `smoke` runs the full CI choreography
//! against a live server (the flags tune its client too, which is how
//! the chaos CI stage keeps the choreography green under injected
//! socket resets).
//!
//! `wait` exit codes tell scripts *which* side gave up:
//!
//! | code | meaning                                                      |
//! |------|--------------------------------------------------------------|
//! | 0    | job reached `done`                                           |
//! | 1    | job reached `failed`, or transport gave up after its retries |
//! | 4    | the **server** expired the job (queued past its deadline)    |
//! | 5    | the **client** poll budget ran out before a terminal state   |

use std::time::Duration;

use ramp_serve::client::{smoke_with, Client, ClientError};

fn usage() -> ! {
    eprintln!(
        "usage: ramp-client [--addr HOST:PORT] [--server HOST:PORT ...] [--retries N] \
         [--backoff-ms MS] [--retry-429] \
         health|submit|submit-batch|job|wait|result|stats|shutdown|smoke [args...]\n\
         \n\
         --server is repeatable: the first is the primary endpoint, the rest are\n\
         fallbacks tried in order when it is dead (overrides --addr).\n\
         \n\
         exit codes:\n\
         \x20 0  success (job done / request ok)\n\
         \x20 1  failure: error status, failed job, or transport gave up\n\
         \x20 2  usage error\n\
         \x20 3  shed load (429 on submit; rejected specs in submit-batch)\n\
         \x20 4  wait: the server expired the job before it ran\n\
         \x20 5  wait: the client poll budget ran out first"
    );
    std::process::exit(2);
}

fn fail(err: impl std::fmt::Display) -> ! {
    eprintln!("ramp-client: {err}");
    std::process::exit(1);
}

fn main() {
    let mut addr = "127.0.0.1:7177".to_string();
    let mut servers: Vec<String> = Vec::new();
    let mut retries: u32 = 3;
    let mut backoff_ms: u64 = 50;
    let mut retry_429 = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--server" => servers.push(args.next().unwrap_or_else(|| usage())),
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--backoff-ms" => {
                backoff_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--retry-429" => retry_429 = true,
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    if rest.is_empty() {
        usage();
    }
    if servers.is_empty() {
        servers.push(addr);
    }
    let client = Client::new(servers.remove(0))
        .with_fallbacks(servers)
        .with_retries(retries)
        .with_backoff(Duration::from_millis(backoff_ms))
        .with_retry_429(retry_429);
    let arg = |i: usize| -> &str { rest.get(i).map(String::as_str).unwrap_or("") };

    match rest[0].as_str() {
        "health" => {
            let r = client.health().unwrap_or_else(|e| fail(e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "submit" => {
            if rest.len() < 3 {
                usage();
            }
            let s = client
                .submit(arg(1), arg(2), arg(3))
                .unwrap_or_else(|e| fail(e));
            println!("{}", s.response.body);
            std::process::exit(match s.status {
                200 | 202 => 0,
                429 => 3,
                _ => 1,
            });
        }
        "submit-batch" => {
            // Each arg is WORKLOAD:KIND[:POLICY]; one request for all.
            if rest.len() < 2 {
                usage();
            }
            let mut specs = Vec::new();
            for arg in &rest[1..] {
                let mut parts = arg.splitn(3, ':');
                let workload = parts.next().unwrap_or("").to_string();
                let Some(kind) = parts.next().map(str::to_string) else {
                    eprintln!("ramp-client: spec {arg:?} must be WORKLOAD:KIND[:POLICY]");
                    usage();
                };
                let policy = parts.next().unwrap_or("").to_string();
                specs.push((workload, kind, policy));
            }
            let batch = client.submit_batch(&specs).unwrap_or_else(|e| fail(e));
            let mut rejected = false;
            for (i, item) in batch.iter().enumerate() {
                let mut line = format!("{i} state={}", item.state);
                if let Some(job) = item.job {
                    line.push_str(&format!(" job={job}"));
                }
                if let Some(key) = &item.key {
                    line.push_str(&format!(" key={key}"));
                }
                if item.cached {
                    line.push_str(" cached=true");
                }
                if let Some(err) = &item.error {
                    line.push_str(&format!(" error={err}"));
                    rejected = true;
                }
                println!("{line}");
            }
            std::process::exit(if rejected { 3 } else { 0 });
        }
        "job" => {
            let id = arg(1).parse().unwrap_or_else(|_| usage());
            let r = client.job_status(id).unwrap_or_else(|e| fail(e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "wait" => {
            let id: u64 = arg(1).parse().unwrap_or_else(|_| usage());
            let timeout = rest
                .get(2)
                .map(|t| t.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(300_000);
            match client.wait_done(id, timeout) {
                Ok(r) => {
                    println!("{}", r.body);
                    match r.state() {
                        Some("done") => std::process::exit(0),
                        Some("expired") => {
                            eprintln!(
                                "ramp-client: server expired job {id}: it sat queued past the \
                                 server-side deadline and was never run"
                            );
                            std::process::exit(4);
                        }
                        _ => std::process::exit(1),
                    }
                }
                Err(e @ ClientError::Timeout { .. }) => {
                    eprintln!("ramp-client: client poll budget exhausted: {e}");
                    std::process::exit(5);
                }
                Err(e) => fail(e),
            }
        }
        "result" => {
            if rest.len() < 2 {
                usage();
            }
            let r = client.run_summary(arg(1)).unwrap_or_else(|e| fail(e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "stats" => {
            let doc = client.stats().unwrap_or_else(|e| fail(e));
            println!("{doc}");
        }
        "shutdown" => {
            let r = client.shutdown().unwrap_or_else(|e| fail(e));
            println!("{}", r.body);
            std::process::exit(if r.status == 200 { 0 } else { 1 });
        }
        "smoke" => match smoke_with(&client) {
            Ok(transcript) => print!("{transcript}"),
            Err(e) => fail(format!("smoke failed: {e}")),
        },
        _ => usage(),
    }
}
