//! `ramp-router` — the shard router daemon.
//!
//! ```text
//! ramp-router [--addr HOST:PORT] --shard HOST:PORT [--shard HOST:PORT ...]
//!             [--replicas R] [--probe-ms MS] [--fail-threshold N]
//!             [--live-threshold N] [--http-threads N] [--port-file PATH]
//! ```
//!
//! Fronts a fleet of `ramp-served` shards (see DESIGN.md §13): run keys
//! are jump-consistent-hashed over the ordered shard map, replicated on
//! `--replicas` shards (default 2), health-probed every `--probe-ms`
//! (default 100), and failed over per-request. The shard map may also
//! come from `RAMP_SHARDS` (comma-separated `host:port` list) when no
//! `--shard` flags are given. Shard **order matters**: every router
//! over the same ordered map computes the same replica sets.
//! `--port-file` writes the bound address for scripts, and `RAMP_CHAOS`
//! arms the `router.upstream` / `router.handoff` / `router.probe`
//! fault-injection sites.

use std::time::Duration;

use ramp_serve::router::{Router, RouterConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ramp-router [--addr HOST:PORT] --shard HOST:PORT [--shard HOST:PORT ...] \
         [--replicas R] [--probe-ms MS] [--fail-threshold N] [--live-threshold N] \
         [--http-threads N] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7178".to_string();
    let mut shards: Vec<String> = Vec::new();
    let mut replicas: Option<usize> = None;
    let mut probe_ms: Option<u64> = None;
    let mut fail_threshold: Option<u32> = None;
    let mut live_threshold: Option<u32> = None;
    let mut http_threads: Option<usize> = None;
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--shard" => shards.push(value("--shard")),
            "--replicas" => replicas = value("--replicas").parse().ok(),
            "--probe-ms" => probe_ms = value("--probe-ms").parse().ok(),
            "--fail-threshold" => fail_threshold = value("--fail-threshold").parse().ok(),
            "--live-threshold" => live_threshold = value("--live-threshold").parse().ok(),
            "--http-threads" => http_threads = value("--http-threads").parse().ok(),
            "--port-file" => port_file = Some(value("--port-file")),
            _ => usage(),
        }
    }

    if shards.is_empty() {
        if let Ok(v) = std::env::var("RAMP_SHARDS") {
            shards = v
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
        }
    }
    if shards.is_empty() {
        eprintln!("no shards: pass --shard or set RAMP_SHARDS");
        usage();
    }

    let mut cfg = RouterConfig::new(shards);
    if let Some(r) = replicas {
        cfg.replicas = r.max(1);
    }
    if let Some(ms) = probe_ms {
        cfg.probe_interval = Duration::from_millis(ms.max(1));
    }
    if let Some(n) = fail_threshold {
        cfg.fail_threshold = n.max(1);
    }
    if let Some(n) = live_threshold {
        cfg.live_threshold = n.max(1);
    }
    if let Some(n) = http_threads {
        cfg.http.threads = n.max(1);
    }

    let shard_list = cfg.shards.join(", ");
    let replicas = cfg.replicas.clamp(1, cfg.shards.len());
    let router = match Router::bind(&addr, cfg) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let bound = router.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("ramp-router listening on {bound} (shards: {shard_list}; replicas: {replicas})");
    router.run();
    eprintln!("ramp-router exited");
}
