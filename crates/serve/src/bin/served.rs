//! `ramp-served` — the experiment server daemon.
//!
//! ```text
//! ramp-served [--addr HOST:PORT] [--workers N] [--queue N]
//!             [--deadline-ms MS] [--http-threads N]
//!             [--port-file PATH] [--smoke]
//! ```
//!
//! Binds the address (default `127.0.0.1:7177`; port `0` picks an
//! ephemeral port), optionally writes the bound address to `--port-file`
//! for scripts, and serves until a client POSTs `/shutdown`.
//! `--workers N` spawns N supervised worker threads — each owns a slice
//! of the `--queue` capacity and jobs are consistent-hash routed by run
//! key, so every key has one writer; a crashed worker is restarted with
//! bounded backoff and its in-flight job retried once (see DESIGN.md
//! §11). `--smoke` switches to the small `SystemConfig::smoke_test`
//! system so CI runs finish in seconds; `RAMP_INSTS` overrides the
//! per-core instruction budget either way, and
//! `RAMP_STORE`/`RAMP_STORE_DIR`/`RAMP_STORE_MODE` configure the result
//! store exactly as for the experiment binaries (`RAMP_STORE_MODE=wal`
//! selects the append-only WAL backend). `--deadline-ms` caps how long
//! a queued job may wait before it is expired unrun (default 60000),
//! `--http-threads` sizes the keep-alive connection pool's handler
//! thread count (default 4), and `RAMP_CHAOS` arms fault injection
//! across the executor, store, WAL, workers and connection handling
//! (see DESIGN.md §8).

use std::time::Duration;

use ramp_serve::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ramp-served [--addr HOST:PORT] [--workers N] [--queue N] \
         [--deadline-ms MS] [--http-threads N] [--port-file PATH] [--smoke]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7177".to_string();
    let mut workers: Option<usize> = None;
    let mut queue: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut http_threads: Option<usize> = None;
    let mut port_file: Option<String> = None;
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => workers = value("--workers").parse().ok(),
            "--queue" => queue = value("--queue").parse().ok(),
            "--deadline-ms" => deadline_ms = value("--deadline-ms").parse().ok(),
            "--http-threads" => http_threads = value("--http-threads").parse().ok(),
            "--port-file" => port_file = Some(value("--port-file")),
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }

    let mut sim = if smoke {
        ramp_core::config::SystemConfig::smoke_test()
    } else {
        ramp_core::config::SystemConfig::table1_scaled()
    };
    if let Ok(v) = std::env::var("RAMP_INSTS") {
        if let Ok(n) = v.trim().parse::<u64>() {
            sim.insts_per_core = n.max(10_000);
        }
    }

    let mut cfg = ServerConfig::new(sim);
    if let Some(w) = workers {
        cfg.workers = w.max(1);
    }
    if let Some(q) = queue {
        cfg.queue_capacity = q.max(1);
    }
    if let Some(ms) = deadline_ms {
        cfg.deadline = Duration::from_millis(ms.max(1));
    }
    if let Some(n) = http_threads {
        cfg.http.threads = n.max(1);
    }

    let server = match Server::bind(&addr, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let bound = server.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("ramp-served listening on {bound}");
    server.run();
    eprintln!("ramp-served drained and exited");
}
