//! `ramp-store` — offline maintenance for the persistent run store.
//!
//! ```text
//! ramp-store scrub [--dir DIR]
//! ramp-store ckpt [--dir DIR] [--rm KEY]
//! ```
//!
//! `scrub` walks the store directory (default: `RAMP_STORE_DIR` or
//! `target/ramp-store`), removes stale `tmp-*` files left by
//! interrupted writes, and quarantines every entry that no longer
//! decodes (renamed `*.quarantine` with a `*.reason` file naming the
//! decode error) — including `*.ckpt` checkpoint segments, which are
//! validated against the checkpoint frame format. The summary line on
//! stdout is stable and greppable:
//!
//! ```text
//! [scrub] dir=target/ramp-store scanned=21 valid=20 quarantined=1 already=0 tmp=0 unknown=0
//! ```
//!
//! `ckpt` lists the checkpoint segments interrupted runs left behind
//! (one `[ckpt] key=... epoch=... bytes=...` line per segment plus a
//! summary), and `ckpt --rm KEY` deletes the trail of one run.

use ramp_serve::store::{RunStore, DEFAULT_DIR, ENV_STORE_DIR};

fn usage() -> ! {
    eprintln!("usage: ramp-store scrub [--dir DIR]");
    eprintln!("       ramp-store ckpt [--dir DIR] [--rm KEY]");
    std::process::exit(2);
}

fn open(dir: &str) -> RunStore {
    match RunStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ramp-store: cannot open store at {dir}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut dir = std::env::var(ENV_STORE_DIR).unwrap_or_else(|_| DEFAULT_DIR.to_string());
    let mut rm_key: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = d,
                None => usage(),
            },
            "--rm" if cmd == "ckpt" => match args.next() {
                Some(k) => rm_key = Some(k),
                None => usage(),
            },
            _ => {
                eprintln!("ramp-store: unknown flag {flag:?}");
                usage();
            }
        }
    }
    match cmd.as_str() {
        "scrub" => {
            let report = open(&dir).scrub();
            println!("[scrub] dir={dir} {report}");
        }
        "ckpt" => {
            let store = open(&dir);
            if let Some(key) = rm_key {
                let removed = store.remove_checkpoints(&key);
                println!("[ckpt] dir={dir} key={key} removed={removed}");
                return;
            }
            let segments = store.all_checkpoints();
            let mut runs = std::collections::BTreeSet::new();
            for (key, epoch, bytes) in &segments {
                runs.insert(key.clone());
                println!("[ckpt] key={key} epoch={epoch} bytes={bytes}");
            }
            println!(
                "[ckpt] dir={dir} segments={} runs={}",
                segments.len(),
                runs.len()
            );
        }
        other => {
            eprintln!("ramp-store: unknown subcommand {other:?}");
            usage();
        }
    }
}
