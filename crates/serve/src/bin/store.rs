//! `ramp-store` — offline maintenance for the persistent run store.
//!
//! ```text
//! ramp-store scrub [--dir DIR]
//! ```
//!
//! `scrub` walks the store directory (default: `RAMP_STORE_DIR` or
//! `target/ramp-store`), removes stale `tmp-*` files left by
//! interrupted writes, and quarantines every entry that no longer
//! decodes (renamed `*.quarantine` with a `*.reason` file naming the
//! decode error). The summary line on stdout is stable and greppable:
//!
//! ```text
//! [scrub] dir=target/ramp-store scanned=21 valid=20 quarantined=1 already=0 tmp=0 unknown=0
//! ```

use ramp_serve::store::{RunStore, DEFAULT_DIR, ENV_STORE_DIR};

fn usage() -> ! {
    eprintln!("usage: ramp-store scrub [--dir DIR]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    if cmd != "scrub" {
        eprintln!("ramp-store: unknown subcommand {cmd:?}");
        usage();
    }
    let mut dir = std::env::var(ENV_STORE_DIR).unwrap_or_else(|_| DEFAULT_DIR.to_string());
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = d,
                None => usage(),
            },
            _ => {
                eprintln!("ramp-store: unknown flag {flag:?}");
                usage();
            }
        }
    }
    let store = match RunStore::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ramp-store: cannot open store at {dir}: {e}");
            std::process::exit(1);
        }
    };
    let report = store.scrub();
    println!("[scrub] dir={dir} {report}");
}
