//! `ramp-store` — offline maintenance for the persistent run store.
//!
//! ```text
//! ramp-store stats   [--dir DIR] [--mode files|wal]
//! ramp-store scrub   [--dir DIR] [--mode files|wal]
//! ramp-store ckpt    [--dir DIR] [--mode files|wal] [--rm KEY]
//! ramp-store verify  [--dir DIR] [--mode files|wal]
//! ramp-store compact [--dir DIR]
//! ```
//!
//! Every subcommand targets the directory from `--dir`, `RAMP_STORE_DIR`
//! or `target/ramp-store`, and the backend from `--mode` or
//! `RAMP_STORE_MODE` (default `files`).
//!
//! `scrub` repairs: it removes stale `tmp-*` files left by interrupted
//! writes, quarantines every entry that no longer decodes (renamed
//! `*.quarantine` with a `*.reason` file naming the decode error) —
//! including `*.ckpt` checkpoint segments, which are validated against
//! the checkpoint frame format — and reclaims orphaned checkpoint
//! trails whose base run entry is missing or quarantined. The summary
//! line on stdout is stable and greppable:
//!
//! ```text
//! [scrub] dir=target/ramp-store scanned=21 valid=20 quarantined=1 already=0 tmp=0 unknown=0 orphaned=0
//! ```
//!
//! `stats` is read-only: one greppable line counting what the store
//! holds (`[stats] dir=... mode=files runs=12 annotated=1 ...`) — the
//! sweep CI stage uses it to prove a warm re-sweep added nothing.
//!
//! `ckpt` lists the checkpoint segments interrupted runs left behind
//! (one `[ckpt] key=... epoch=... bytes=...` line per segment plus a
//! summary), and `ckpt --rm KEY` deletes the trail of one run.
//!
//! `verify` is read-only: it decodes every entry (file mode) or re-scans
//! the manifest and every WAL segment from disk (WAL mode), prints one
//! line per problem and a summary, and exits 1 if anything is damaged —
//! the CI gate for "the store on disk is byte-for-byte sound".
//!
//! `compact` (WAL mode only) rewrites the live records into fresh
//! segments and retires the old ones; replay-proof ordering makes it
//! crash-safe at any point (see DESIGN.md §11).

use ramp_serve::store::{RunStore, StoreMode, DEFAULT_DIR, ENV_STORE_DIR, ENV_STORE_MODE};

fn usage() -> ! {
    eprintln!("usage: ramp-store stats   [--dir DIR] [--mode files|wal]");
    eprintln!("       ramp-store scrub   [--dir DIR] [--mode files|wal]");
    eprintln!("       ramp-store ckpt    [--dir DIR] [--mode files|wal] [--rm KEY]");
    eprintln!("       ramp-store verify  [--dir DIR] [--mode files|wal]");
    eprintln!("       ramp-store compact [--dir DIR]");
    std::process::exit(2);
}

fn open(dir: &str, mode: StoreMode) -> RunStore {
    match RunStore::open_mode(dir, mode) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "ramp-store: cannot open {} store at {dir}: {e}",
                mode.label()
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut dir = std::env::var(ENV_STORE_DIR).unwrap_or_else(|_| DEFAULT_DIR.to_string());
    let mut mode = match std::env::var(ENV_STORE_MODE) {
        Ok(v) if v.eq_ignore_ascii_case("wal") => StoreMode::Wal,
        _ => StoreMode::Files,
    };
    let mut rm_key: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = d,
                None => usage(),
            },
            "--mode" => match args.next().as_deref() {
                Some("files") => mode = StoreMode::Files,
                Some("wal") => mode = StoreMode::Wal,
                _ => usage(),
            },
            "--rm" if cmd == "ckpt" => match args.next() {
                Some(k) => rm_key = Some(k),
                None => usage(),
            },
            _ => {
                eprintln!("ramp-store: unknown flag {flag:?}");
                usage();
            }
        }
    }
    match cmd.as_str() {
        "stats" => {
            let stats = open(&dir, mode).stats();
            println!("[stats] dir={dir} {stats}");
        }
        "scrub" => {
            let report = open(&dir, mode).scrub();
            println!("[scrub] dir={dir} {report}");
        }
        "ckpt" => {
            let store = open(&dir, mode);
            if let Some(key) = rm_key {
                let removed = store.remove_checkpoints(&key);
                println!("[ckpt] dir={dir} key={key} removed={removed}");
                return;
            }
            let segments = store.all_checkpoints();
            let mut runs = std::collections::BTreeSet::new();
            for (key, epoch, bytes) in &segments {
                runs.insert(key.clone());
                println!("[ckpt] key={key} epoch={epoch} bytes={bytes}");
            }
            println!(
                "[ckpt] dir={dir} segments={} runs={}",
                segments.len(),
                runs.len()
            );
        }
        "verify" => {
            let report = open(&dir, mode).verify();
            for err in &report.errors {
                eprintln!("[verify] problem: {err}");
            }
            println!("[verify] dir={dir} {report}");
            if !report.ok() {
                std::process::exit(1);
            }
        }
        "compact" => {
            let store = open(&dir, StoreMode::Wal);
            match store.compact() {
                Some(Ok(report)) => println!("[compact] dir={dir} {report}"),
                Some(Err(e)) => {
                    eprintln!("ramp-store: compaction failed: {e}");
                    std::process::exit(1);
                }
                None => unreachable!("opened in WAL mode"),
            }
        }
        other => {
            eprintln!("ramp-store: unknown subcommand {other:?}");
            usage();
        }
    }
}
