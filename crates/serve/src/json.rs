//! Flat-JSON helpers for the serving protocol.
//!
//! The server speaks deliberately *flat* JSON objects — string, number
//! and boolean values only, no nesting — so both ends can be implemented
//! with a small hand-rolled scanner instead of a JSON dependency. (The
//! one nested document, the `/stats` telemetry snapshot, is produced by
//! `ramp_sim::telemetry::Snapshot::to_json` and consumed opaquely.)
//!
//! [`parse_flat`] accepts any standard-JSON encoding of a flat object
//! (whitespace, string escapes, scientific notation); [`ObjWriter`]
//! emits a canonical one (fields in insertion order, `"`-quoted strings
//! with minimal escapes).

use std::collections::BTreeMap;

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds one flat JSON object, fields in insertion order.
#[derive(Default)]
pub struct ObjWriter {
    body: String,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a float field (finite values only; non-finite become `null`).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.sep();
        if value.is_finite() {
            // Shortest round-trippable form, same as telemetry JSON.
            self.body
                .push_str(&format!("\"{}\":{}", escape(key), fmt_f64(value)));
        } else {
            self.body.push_str(&format!("\"{}\":null", escape(key)));
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Finishes the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Formats a finite f64 so it round-trips through `str::parse::<f64>`.
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.parse::<f64>() == Ok(v) {
        s
    } else {
        format!("{v:?}")
    }
}

/// One JSON-ish error message for 400 responses.
pub fn error_body(msg: &str) -> String {
    ObjWriter::new().str("error", msg).finish()
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        _ => return Err("unknown escape".into()),
                    }
                }
                b => {
                    // Re-decode multi-byte UTF-8 sequences in place.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return Err("invalid UTF-8 in string".into()),
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s =
                            std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn bare_token(&mut self) -> String {
        let start = self.pos;
        while self.peek().is_some_and(|b| {
            b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'+' || b == b'_'
        }) {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }
}

/// Parses one flat JSON object into string-valued fields.
///
/// Numbers, booleans and `null` are kept in their literal text form —
/// the caller parses the fields it cares about. Nested objects and
/// arrays are rejected.
pub fn parse_flat(body: &str) -> Result<BTreeMap<String, String>, String> {
    let mut sc = Scanner {
        bytes: body.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    sc.skip_ws();
    sc.expect(b'{').map_err(|_| "body must be a JSON object")?;
    sc.skip_ws();
    if sc.peek() == Some(b'}') {
        sc.pos += 1;
    } else {
        loop {
            sc.skip_ws();
            let key = sc.string()?;
            sc.skip_ws();
            sc.expect(b':')?;
            sc.skip_ws();
            let value = match sc.peek().ok_or("truncated object")? {
                b'"' => sc.string()?,
                b'{' | b'[' => return Err("nested values are not supported".into()),
                _ => {
                    let tok = sc.bare_token();
                    if tok.is_empty() {
                        return Err("empty value".into());
                    }
                    tok
                }
            };
            out.insert(key, value);
            sc.skip_ws();
            match sc.peek() {
                Some(b',') => {
                    sc.pos += 1;
                }
                Some(b'}') => {
                    sc.pos += 1;
                    break;
                }
                _ => return Err("expected ',' or '}'".into()),
            }
        }
    }
    sc.skip_ws();
    if sc.pos != sc.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let body = ObjWriter::new()
            .str("workload", "lbm")
            .str("note", "a\"b\\c\nd")
            .u64("job", 17)
            .f64("ipc", 1.25)
            .bool("cached", true)
            .finish();
        let fields = parse_flat(&body).unwrap();
        assert_eq!(fields["workload"], "lbm");
        assert_eq!(fields["note"], "a\"b\\c\nd");
        assert_eq!(fields["job"], "17");
        assert_eq!(fields["ipc"].parse::<f64>().unwrap(), 1.25);
        assert_eq!(fields["cached"], "true");
    }

    #[test]
    fn parser_accepts_standard_json_liberties() {
        let fields =
            parse_flat(" { \"a\" : \"x\\u0041\" , \"b\" : -1.5e3 , \"c\" : null } ").unwrap();
        assert_eq!(fields["a"], "xA");
        assert_eq!(fields["b"].parse::<f64>().unwrap(), -1500.0);
        assert_eq!(fields["c"], "null");
        assert_eq!(parse_flat("{}").unwrap().len(), 0);
        let uni = parse_flat("{\"w\":\"caf\u{e9}\"}").unwrap();
        assert_eq!(uni["w"], "caf\u{e9}");
    }

    #[test]
    fn parser_rejects_malformed_bodies() {
        assert!(parse_flat("").is_err());
        assert!(parse_flat("[1,2]").is_err());
        assert!(parse_flat("{\"a\":{}}").is_err());
        assert!(parse_flat("{\"a\":\"x\"").is_err());
        assert!(parse_flat("{\"a\":\"x\"} extra").is_err());
        assert!(parse_flat("{\"a\":}").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5] {
            let body = ObjWriter::new().f64("v", v).finish();
            let fields = parse_flat(&body).unwrap();
            assert_eq!(fields["v"].parse::<f64>().unwrap(), v);
        }
        let body = ObjWriter::new().f64("v", f64::NAN).finish();
        assert_eq!(parse_flat(&body).unwrap()["v"], "null");
    }
}
