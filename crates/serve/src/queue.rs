//! A bounded MPMC job queue with explicit backpressure.
//!
//! The server accepts work through [`BoundedQueue::try_push`], which
//! *fails fast* when the queue is full — that failure becomes an HTTP
//! 429, making overload visible to clients instead of letting latency
//! grow without bound. The dispatcher drains work with
//! [`BoundedQueue::pop_batch`], which blocks until at least one job is
//! available and then takes up to a whole batch, so the work-stealing
//! executor underneath always sees as much parallelism as is queued.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed load (HTTP 429).
    Full,
    /// The queue was closed for shutdown; no further work is accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex + Condvar bounded queue (std only, no channels).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, failing immediately when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max` items. Returns `None` once the queue is closed *and* empty
    /// (shutdown: all accepted work has been handed out).
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                let take = inner.items.len().min(max);
                return Some(inner.items.drain(..take).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and `pop_batch` returns `None` once the backlog drains.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_and_fifo_order() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_batch(8), Some(vec![1, 2]));
        assert!(q.is_empty());
    }

    #[test]
    fn batch_respects_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(2), Some(vec![0, 1]));
        assert_eq!(q.pop_batch(8), Some(vec![2, 3, 4]));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        assert_eq!(q.pop_batch(4), Some(vec![7]));
        assert_eq!(q.pop_batch(4), None);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn producers_and_consumers_agree_on_totals() {
        let q = Arc::new(BoundedQueue::new(16));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut pushed = 0u64;
                    for i in 0..200u64 {
                        loop {
                            match q.try_push(p * 1000 + i) {
                                Ok(()) => {
                                    pushed += 1;
                                    break;
                                }
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => unreachable!(),
                            }
                        }
                    }
                    pushed
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while let Some(batch) = q.pop_batch(8) {
                    seen += batch.len() as u64;
                }
                seen
            })
        };
        let pushed: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        q.close();
        assert_eq!(pushed, 800);
        assert_eq!(consumer.join().unwrap(), 800);
    }
}
