//! The experiment server: HTTP front end, consistent-hash job routing,
//! and a supervised pool of worker threads.
//!
//! Request handling never simulates anything inline. `POST /runs` either
//! answers straight from the [`RunStore`] (a warm result costs one disk
//! read) or routes the job to a worker and returns `202` with a job id.
//! Routing is a jump consistent hash of the run key over the worker
//! slots, so every key has exactly **one** writer — a prerequisite for
//! the WAL store backend, whose append log assumes one appender per key
//! — and duplicate submissions of the same run land on the same worker
//! instead of racing. Each worker owns a bounded queue; when a worker's
//! queue is full the server sheds load with `429` (carrying
//! `retry-after: 1`) instead of buffering without bound, and
//! `POST /shutdown` closes every queue, drains every accepted job,
//! reports the final counts, and lets [`Server::run`] return.
//!
//! Every worker thread runs under a **supervisor**: a panic that escapes
//! the per-job isolation (or is injected at the `server.worker` chaos
//! site) kills only that worker, never the server. The supervisor
//! requeues the in-flight job exactly once (a second death fails it
//! classified), then restarts the worker with doubling backoff up to
//! [`ServerConfig::restart_limit`] restarts; past the budget the slot
//! goes dark — its backlog is failed (so drain terminates) and new
//! submissions routed to it get `503`.
//!
//! Failure handling: jobs carry a submission deadline — entries that sat
//! queued past it expire (state `expired`) instead of running; a worker
//! panic inside a job is caught with its message captured into the job
//! state (and the `chaos.panics_caught` counter in `/stats`); a failed
//! store write degrades to serving the in-memory result with a warning,
//! never a 500. Under `RAMP_CHAOS` (see [`ramp_sim::chaos`]) the server
//! additionally injects slow reads, queue stalls, whole-worker kills and
//! mid-response socket resets so the entire retry/supervision machinery
//! is testable deterministically.
//!
//! | Endpoint          | Meaning                                         |
//! |-------------------|-------------------------------------------------|
//! | `GET /health`     | liveness + configured worker/queue geometry     |
//! | `POST /runs`      | submit `{"workload","kind","policy"}`           |
//! | `POST /submit-batch` | submit N specs at once (indexed flat fields) |
//! | `GET /jobs/{id}`  | poll a submitted job                            |
//! | `GET /runs/{key}` | fetch a stored result by content key            |
//! | `GET /stats`      | full telemetry document (store, queues, workers)|
//! | `POST /shutdown`  | drain in-flight jobs, then exit                 |

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ramp_core::config::SystemConfig;
use ramp_core::system::RunResult;
use ramp_sim::chaos::{self, Chaos, FaultKind};
use ramp_sim::telemetry::StatRegistry;

use crate::http::{serve_pooled, PoolPolicy, Reply, Request};
use crate::json::{error_body, parse_flat, ObjWriter};
use crate::queue::{BoundedQueue, PushError};
use crate::router::route_shard;
use crate::spec::{RunProgress, RunSpec};
use crate::store::RunStore;

/// Server tuning knobs plus the simulated system configuration.
#[derive(Debug)]
pub struct ServerConfig {
    /// The system every run simulates (also part of every store key).
    pub sim: SystemConfig,
    /// Worker threads; each owns a queue and a supervisor.
    pub workers: usize,
    /// Total queue capacity, split evenly across workers (each slot gets
    /// at least 1). Pushes beyond a slot's share get HTTP 429.
    pub queue_capacity: usize,
    /// Per-connection socket read/write timeout.
    pub request_timeout: Duration,
    /// Per-job deadline: a job still waiting past this after submission
    /// expires (state `expired`) instead of running.
    pub deadline: Duration,
    /// How many times the supervisor restarts one worker before the
    /// slot goes dark and its backlog is failed.
    pub restart_limit: u32,
    /// Backoff before the first worker restart; doubles per restart,
    /// capped at 2 s.
    pub restart_backoff: Duration,
    /// Result store; `None` disables persistence (every run simulates).
    pub store: Option<RunStore>,
    /// Fault-injection registry; defaults to the `RAMP_CHAOS` global.
    pub chaos: Option<Arc<Chaos>>,
    /// Keep-alive listener tuning (handler threads, accept backlog,
    /// idle reaping, per-connection request cap). `io_timeout` is
    /// overridden by [`ServerConfig::request_timeout`] at bind time.
    pub http: PoolPolicy,
}

impl ServerConfig {
    /// Defaults: `RAMP_THREADS`-derived workers, a 32-deep total queue,
    /// 10 s socket timeouts, a 60 s job deadline, 3 restarts per worker
    /// starting at 50 ms backoff, the environment-configured store, and
    /// the environment-configured chaos registry.
    pub fn new(sim: SystemConfig) -> Self {
        ServerConfig {
            sim,
            workers: ramp_sim::exec::default_threads(),
            queue_capacity: 32,
            request_timeout: Duration::from_secs(10),
            deadline: Duration::from_secs(60),
            restart_limit: 3,
            restart_backoff: Duration::from_millis(50),
            store: RunStore::from_env(),
            chaos: chaos::global(),
            http: PoolPolicy::default(),
        }
    }
}

/// A compact, flat-JSON-friendly view of one finished run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Content-addressed store key.
    pub key: String,
    /// Workload name.
    pub workload: String,
    /// Policy/scheme label.
    pub policy: String,
    /// Aggregate instructions per cycle.
    pub ipc: f64,
    /// Soft-error FIT rate of this placement.
    pub ser_fit: f64,
    /// SER normalized to the DDR-only baseline.
    pub ser_vs_ddr_only: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// L2 misses per kilo-instruction.
    pub mpki: f64,
    /// Demand accesses served by HBM.
    pub hbm_accesses: u64,
    /// Demand accesses served by DDR.
    pub ddr_accesses: u64,
    /// Pages migrated.
    pub migrations: u64,
}

impl RunSummary {
    fn from_run(key: &str, run: &RunResult) -> Self {
        RunSummary {
            key: key.to_string(),
            workload: run.workload.clone(),
            policy: run.policy.clone(),
            ipc: run.ipc,
            ser_fit: run.ser_fit,
            ser_vs_ddr_only: run.ser_vs_ddr_only(),
            cycles: run.cycles,
            instructions: run.instructions,
            mpki: run.mpki,
            hbm_accesses: run.hbm_accesses,
            ddr_accesses: run.ddr_accesses,
            migrations: run.migrations,
        }
    }

    fn write_fields(&self, w: &mut ObjWriter) {
        self.write_fields_prefixed(w, "");
    }

    /// Writes the summary fields under `prefix` (batch responses index
    /// fields as `0.ipc`, `1.ipc`, … — the protocol stays flat).
    fn write_fields_prefixed(&self, w: &mut ObjWriter, prefix: &str) {
        w.str(&format!("{prefix}key"), &self.key)
            .str(&format!("{prefix}workload"), &self.workload)
            .str(&format!("{prefix}policy"), &self.policy)
            .f64(&format!("{prefix}ipc"), self.ipc)
            .f64(&format!("{prefix}ser_fit"), self.ser_fit)
            .f64(&format!("{prefix}ser_vs_ddr_only"), self.ser_vs_ddr_only)
            .u64(&format!("{prefix}cycles"), self.cycles)
            .u64(&format!("{prefix}instructions"), self.instructions)
            .f64(&format!("{prefix}mpki"), self.mpki)
            .u64(&format!("{prefix}hbm_accesses"), self.hbm_accesses)
            .u64(&format!("{prefix}ddr_accesses"), self.ddr_accesses)
            .u64(&format!("{prefix}migrations"), self.migrations);
    }
}

/// Lifecycle of one submitted job, as rendered by `GET /jobs/{id}`.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted, waiting for a dispatch slot.
    Queued,
    /// Executing; carries the live progress the worker updates.
    Running(Arc<RunProgress>),
    /// Finished, with its result summary.
    Done(RunSummary),
    /// The worker panicked; the message is captured.
    Failed(String),
    /// Sat queued past its deadline and was never run.
    Expired,
}

#[derive(Clone)]
struct Job {
    id: u64,
    spec: RunSpec,
    submitted: Instant,
    /// Set when a supervisor already requeued this job after a worker
    /// death; a second death fails it instead of retrying forever.
    requeued: bool,
}

/// One worker's routing target plus its health ledger. The supervisor
/// reads `current` after a crash to recover the in-flight job.
struct WorkerSlot {
    queue: BoundedQueue<Job>,
    current: Mutex<Option<Job>>,
    processed: AtomicU64,
    deaths: AtomicU64,
    restarts: AtomicU64,
    alive: AtomicBool,
}

impl WorkerSlot {
    fn new(capacity: usize) -> Self {
        WorkerSlot {
            queue: BoundedQueue::new(capacity),
            current: Mutex::new(None),
            processed: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            alive: AtomicBool::new(true),
        }
    }
}

struct Shared {
    sim: SystemConfig,
    store: Option<RunStore>,
    chaos: Option<Arc<Chaos>>,
    deadline: Duration,
    restart_limit: u32,
    restart_backoff: Duration,
    slots: Vec<WorkerSlot>,
    jobs: Mutex<HashMap<u64, JobState>>,
    next_job: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    degraded: AtomicU64,
    panics_caught: AtomicU64,
    resumed: AtomicU64,
    restarted: AtomicU64,
    worker_deaths: AtomicU64,
    requeued: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn set_state(&self, id: u64, state: JobState) {
        self.jobs.lock().unwrap().insert(id, state);
    }

    fn fail_job(&self, id: u64, msg: String) {
        self.set_state(id, JobState::Failed(msg));
        self.failed.fetch_add(1, Ordering::SeqCst);
    }

    fn chaos_slow(&self, site: &str) {
        if let Some(c) = self.chaos.as_ref() {
            c.maybe_slow(site);
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    http: PoolPolicy,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let workers = cfg.workers.max(1);
        let per_slot = (cfg.queue_capacity / workers).max(1);
        let mut http = cfg.http;
        http.io_timeout = cfg.request_timeout;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                sim: cfg.sim,
                store: cfg.store,
                chaos: cfg.chaos,
                deadline: cfg.deadline,
                restart_limit: cfg.restart_limit,
                restart_backoff: cfg.restart_backoff.max(Duration::from_millis(1)),
                slots: (0..workers).map(|_| WorkerSlot::new(per_slot)).collect(),
                jobs: Mutex::new(HashMap::new()),
                next_job: AtomicU64::new(1),
                accepted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                expired: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                panics_caught: AtomicU64::new(0),
                resumed: AtomicU64::new(0),
                restarted: AtomicU64::new(0),
                worker_deaths: AtomicU64::new(0),
                requeued: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
            http,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Serves requests until a `POST /shutdown` drains the queues.
    ///
    /// Blocks the calling thread; each worker runs on its own supervised
    /// thread and all of them are joined before this returns, so when
    /// `run` exits every accepted job has completed (or failed, or
    /// expired) and its result — if a store is configured — is on disk.
    pub fn run(self) {
        let supervisors: Vec<_> = (0..self.shared.slots.len())
            .map(|slot| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || supervisor_loop(&shared, slot))
            })
            .collect();

        let shared = Arc::clone(&self.shared);
        serve_pooled(self.listener, self.http, move |req: &Request| {
            handle_request(&shared, req)
        });

        for slot in &self.shared.slots {
            slot.queue.close();
        }
        for sup in supervisors {
            let _ = sup.join();
        }
    }
}

/// Owns one worker slot for the lifetime of the server: runs the worker
/// loop, catches its deaths, requeues the in-flight job once, and
/// restarts with doubling backoff until the restart budget is spent.
fn supervisor_loop(shared: &Shared, slot_idx: usize) {
    let slot = &shared.slots[slot_idx];
    let mut restarts_used = 0u32;
    let mut backoff = shared.restart_backoff;
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, slot_idx))) {
            Ok(()) => break, // queue closed and fully drained
            Err(payload) => {
                let msg = chaos::panic_message(payload.as_ref());
                slot.deaths.fetch_add(1, Ordering::SeqCst);
                shared.worker_deaths.fetch_add(1, Ordering::SeqCst);

                // The job the worker died holding gets exactly one more
                // attempt; a second death fails it classified.
                if let Some(mut job) = slot.current.lock().unwrap().take() {
                    if job.requeued {
                        shared.fail_job(
                            job.id,
                            format!(
                                "worker {slot_idx} crashed on both attempts to run this job \
                                 ({msg})"
                            ),
                        );
                    } else {
                        job.requeued = true;
                        let id = job.id;
                        match slot.queue.try_push(job) {
                            Ok(()) => {
                                shared.requeued.fetch_add(1, Ordering::SeqCst);
                                shared.set_state(id, JobState::Queued);
                            }
                            Err(_) => shared.fail_job(
                                id,
                                format!(
                                    "worker {slot_idx} crashed and its queue refused the retry \
                                     attempt ({msg})"
                                ),
                            ),
                        }
                    }
                }

                if restarts_used >= shared.restart_limit {
                    // Budget spent: the slot goes dark. Fail whatever is
                    // still queued so drain terminates, and let routing
                    // answer 503 for this slot from now on.
                    slot.alive.store(false, Ordering::SeqCst);
                    slot.queue.close();
                    while let Some(batch) = slot.queue.pop_batch(usize::MAX) {
                        for job in batch {
                            shared.fail_job(
                                job.id,
                                format!(
                                    "worker {slot_idx} exhausted its restart budget after \
                                     {} attempts",
                                    restarts_used + 1
                                ),
                            );
                        }
                    }
                    eprintln!(
                        "[served] worker {slot_idx} exhausted its restart budget \
                         ({} deaths); slot disabled",
                        slot.deaths.load(Ordering::SeqCst)
                    );
                    break;
                }
                restarts_used += 1;
                slot.restarts.fetch_add(1, Ordering::SeqCst);
                eprintln!(
                    "[served] worker {slot_idx} died ({msg}); restart {restarts_used}/{} after \
                     {backoff:?}",
                    shared.restart_limit
                );
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(2));
            }
        }
    }
}

/// Pops and executes jobs until the slot's queue is closed and empty.
/// Returns normally only on clean shutdown; any panic (a job-isolation
/// escape or the injected `server.worker` kill) unwinds to the
/// supervisor with the in-flight job still recorded in `slot.current`.
fn worker_loop(shared: &Shared, slot_idx: usize) {
    let slot = &shared.slots[slot_idx];
    while let Some(batch) = slot.queue.pop_batch(1) {
        for job in batch {
            *slot.current.lock().unwrap() = Some(job.clone());
            run_one(shared, job);
            *slot.current.lock().unwrap() = None;
            slot.processed.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Executes one job to a terminal state (done / failed / expired).
fn run_one(shared: &Shared, job: Job) {
    // Jobs that sat past their deadline expire instead of running: under
    // backlog the server sheds stale work deterministically rather than
    // simulating results nobody is waiting for.
    if job.submitted.elapsed() >= shared.deadline {
        shared.set_state(job.id, JobState::Expired);
        shared.expired.fetch_add(1, Ordering::SeqCst);
        return;
    }
    // Whole-worker kill site: this panic deliberately escapes the
    // per-job isolation below, so it exercises the supervisor's
    // requeue-and-restart path rather than the in-job retry.
    if let Some(c) = shared.chaos.as_ref() {
        c.maybe_panic("server.worker");
    }
    let spec = job.spec;
    let progress = Arc::new(RunProgress::default());
    shared.set_state(job.id, JobState::Running(Arc::clone(&progress)));
    let attempt = || {
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(c) = shared.chaos.as_ref() {
                c.maybe_slow("server.job");
                c.maybe_panic("server.job");
            }
            spec.execute_with_progress(&shared.sim, shared.store.as_ref(), Some(&progress))
        }))
    };
    let mut result = attempt();
    if result.is_err() {
        shared.panics_caught.fetch_add(1, Ordering::SeqCst);
        // An interrupted job that left a checkpoint trail is
        // restartable: one retry resumes from the newest valid
        // checkpoint instead of surfacing the crash.
        let key = spec.key(&shared.sim);
        let has_trail = shared
            .store
            .as_ref()
            .is_some_and(|s| !s.list_checkpoints(&key).is_empty());
        if has_trail {
            shared.restarted.fetch_add(1, Ordering::SeqCst);
            eprintln!(
                "[served] job {} ({key}) died mid-run; restarting from checkpoint",
                job.id
            );
            result = attempt();
        }
    }
    match result {
        Ok(outcome) => {
            let key = spec.key(&shared.sim);
            if !outcome.persisted {
                // Degraded mode: the simulation succeeded but the store
                // write didn't — serve the in-memory result and warn,
                // never 500.
                shared.degraded.fetch_add(1, Ordering::SeqCst);
                eprintln!(
                    "[served] warn: job {} ({key}) could not be persisted; serving from memory",
                    job.id
                );
            }
            if outcome.resumed {
                shared.resumed.fetch_add(1, Ordering::SeqCst);
            }
            shared.set_state(
                job.id,
                JobState::Done(RunSummary::from_run(&key, &outcome.run)),
            );
            shared.completed.fetch_add(1, Ordering::SeqCst);
        }
        Err(payload) => {
            let msg = chaos::panic_message(payload.as_ref());
            shared.fail_job(job.id, format!("simulation panicked: {msg}"));
        }
    }
}

/// Handles one parsed request; parse errors and connection lifecycle
/// live in [`serve_pooled`].
fn handle_request(shared: &Shared, req: &Request) -> Reply {
    shared.chaos_slow("server.read");
    let (status, body, stop) = route(shared, req);
    let mut reply = Reply::json(status, body);
    reply.stop = stop;
    if status == 429 {
        // Back-pressured clients get an explicit retry hint.
        reply
            .headers
            .push(("retry-after".to_string(), "1".to_string()));
    }
    // Injected mid-response reset: write a torn head and hang up, so the
    // client exercises its transport-retry path. `POST /shutdown` — the
    // one non-idempotent endpoint — is exempt: resetting it would retry
    // a drain that already happened.
    let resettable = !(req.method == "POST" && req.path == "/shutdown");
    reply.reset = resettable
        && shared
            .chaos
            .as_ref()
            .is_some_and(|c| c.roll(FaultKind::Net, "server.response"));
    reply
}

fn route(shared: &Shared, req: &Request) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (200, health_body(shared), false),
        ("POST", "/runs") => {
            let (status, body) = submit(shared, &req.body);
            (status, body, false)
        }
        ("POST", "/submit-batch") => {
            let (status, body) = submit_batch(shared, &req.body);
            (status, body, false)
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let (status, body) = job_status(shared, &path["/jobs/".len()..]);
            (status, body, false)
        }
        ("GET", path) if path.starts_with("/runs/") => {
            let (status, body) = stored_run(shared, &path["/runs/".len()..]);
            (status, body, false)
        }
        ("GET", "/stats") => (200, stats_body(shared), false),
        ("POST", "/shutdown") => {
            let body = drain(shared);
            (200, body, true)
        }
        ("GET", _) | ("POST", _) => (404, error_body("no such endpoint"), false),
        _ => (405, error_body("method not allowed"), false),
    }
}

fn queue_depth(shared: &Shared) -> usize {
    shared.slots.iter().map(|s| s.queue.len()).sum()
}

fn queue_capacity(shared: &Shared) -> usize {
    shared.slots.iter().map(|s| s.queue.capacity()).sum()
}

fn health_body(shared: &Shared) -> String {
    ObjWriter::new()
        .bool("ok", true)
        .u64("workers", shared.slots.len() as u64)
        .u64("queue_capacity", queue_capacity(shared) as u64)
        .u64("queue_depth", queue_depth(shared) as u64)
        .finish()
}

/// Outcome of submitting one run spec, shared by the single and batch
/// submit endpoints so both have identical warm-path/queue semantics.
enum SubmitOutcome {
    /// The spec didn't parse.
    Invalid(String),
    /// Served warm from the store.
    Cached { key: String, run: Box<RunResult> },
    /// Routed to a worker queue.
    Queued { id: u64, key: String },
    /// The routed worker's queue is full (load shed).
    QueueFull,
    /// The routed worker's queue is closed.
    Closed { alive: bool },
}

fn submit_one(shared: &Shared, workload: &str, kind: &str, policy: &str) -> SubmitOutcome {
    let spec = match RunSpec::parse(workload, kind, policy) {
        Ok(spec) => spec,
        Err(msg) => return SubmitOutcome::Invalid(msg),
    };
    let key = spec.key(&shared.sim);

    // Warm path: answer immediately from the store, no queue slot used.
    if let Some(run) = shared.store.as_ref().and_then(|s| match spec.kind() {
        crate::store::RunKind::Annotated => s.load_annotated(&key).map(|(run, _)| run),
        _ => s.load_run(&key),
    }) {
        return SubmitOutcome::Cached {
            key,
            run: Box::new(run),
        };
    }

    shared.chaos_slow("server.queue");
    let slot = &shared.slots[route_shard(&key, shared.slots.len())];
    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    match slot.queue.try_push(Job {
        id,
        spec,
        submitted: Instant::now(),
        requeued: false,
    }) {
        Ok(()) => {
            shared.set_state(id, JobState::Queued);
            shared.accepted.fetch_add(1, Ordering::SeqCst);
            SubmitOutcome::Queued { id, key }
        }
        Err(PushError::Full) => {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            SubmitOutcome::QueueFull
        }
        Err(PushError::Closed) => SubmitOutcome::Closed {
            alive: slot.alive.load(Ordering::SeqCst),
        },
    }
}

fn submit(shared: &Shared, body: &str) -> (u16, String) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return (503, error_body("shutting down"));
    }
    let fields = match parse_flat(body) {
        Ok(f) => f,
        Err(msg) => return (400, error_body(&msg)),
    };
    let get = |k: &str| fields.get(k).map(String::as_str).unwrap_or("");
    match submit_one(shared, get("workload"), get("kind"), get("policy")) {
        SubmitOutcome::Invalid(msg) => (400, error_body(&msg)),
        SubmitOutcome::Cached { key, run } => {
            let mut w = ObjWriter::new();
            w.str("state", "done").bool("cached", true);
            RunSummary::from_run(&key, &run).write_fields(&mut w);
            (200, w.finish())
        }
        SubmitOutcome::Queued { id, key } => {
            let body = ObjWriter::new()
                .u64("job", id)
                .str("state", "queued")
                .str("key", &key)
                .finish();
            (202, body)
        }
        SubmitOutcome::QueueFull => (429, error_body("queue_full")),
        SubmitOutcome::Closed { alive: true } => (503, error_body("shutting down")),
        SubmitOutcome::Closed { alive: false } => (503, error_body("worker unavailable")),
    }
}

/// Hard cap on specs per `POST /submit-batch` request (keeps one batch
/// response within the client's read buffer and one request's work
/// bounded).
pub const MAX_BATCH: usize = 256;

/// `POST /submit-batch`: N specs in one request, indexed flat fields
/// (`count`, then `0.workload`/`0.kind`/`0.policy`, `1.…`). Each spec
/// gets the exact single-submit treatment — warm store answer, queue, or
/// shed — reported per index as `i.state` = `done`/`queued`/`rejected`
/// plus the matching fields (`i.key` always present on done/queued, so
/// a remote sweep learns every run key in one round trip).
fn submit_batch(shared: &Shared, body: &str) -> (u16, String) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return (503, error_body("shutting down"));
    }
    let fields = match parse_flat(body) {
        Ok(f) => f,
        Err(msg) => return (400, error_body(&msg)),
    };
    let Some(count) = fields.get("count").and_then(|c| c.parse::<usize>().ok()) else {
        return (400, error_body("count is required"));
    };
    if count == 0 || count > MAX_BATCH {
        return (400, error_body(&format!("count must be 1..={MAX_BATCH}")));
    }
    let mut w = ObjWriter::new();
    w.u64("count", count as u64);
    for i in 0..count {
        let get = |k: &str| {
            fields
                .get(&format!("{i}.{k}"))
                .map(String::as_str)
                .unwrap_or("")
        };
        let p = format!("{i}.");
        match submit_one(shared, get("workload"), get("kind"), get("policy")) {
            SubmitOutcome::Invalid(msg) => {
                w.str(&format!("{p}state"), "rejected")
                    .str(&format!("{p}error"), &msg);
            }
            SubmitOutcome::Cached { key, run } => {
                w.str(&format!("{p}state"), "done")
                    .bool(&format!("{p}cached"), true);
                RunSummary::from_run(&key, &run).write_fields_prefixed(&mut w, &p);
            }
            SubmitOutcome::Queued { id, key } => {
                w.str(&format!("{p}state"), "queued")
                    .u64(&format!("{p}job"), id)
                    .str(&format!("{p}key"), &key);
            }
            SubmitOutcome::QueueFull => {
                w.str(&format!("{p}state"), "rejected")
                    .str(&format!("{p}error"), "queue_full");
            }
            SubmitOutcome::Closed { alive } => {
                w.str(&format!("{p}state"), "rejected").str(
                    &format!("{p}error"),
                    if alive {
                        "shutting down"
                    } else {
                        "worker unavailable"
                    },
                );
            }
        }
    }
    (200, w.finish())
}

fn job_status(shared: &Shared, id_str: &str) -> (u16, String) {
    let Ok(id) = id_str.parse::<u64>() else {
        return (400, error_body("job id must be an integer"));
    };
    let state = shared.jobs.lock().unwrap().get(&id).cloned();
    let Some(state) = state else {
        return (404, error_body("no such job"));
    };
    (200, render_job_status(id, &state))
}

/// Renders the `GET /jobs/{id}` response body for one job state.
///
/// Public so the golden-snapshot tests can pin the poll wire format
/// (field names, order, progress semantics) without a live server.
/// Running jobs report `epochs_done` / `epochs_total` (the total is the
/// [`SystemConfig::epochs_estimate`] lower bound, so `done > total`
/// means "still running"), the last durable checkpoint epoch, and
/// whether the run resumed from a checkpoint.
pub fn render_job_status(id: u64, state: &JobState) -> String {
    let mut w = ObjWriter::new();
    w.u64("job", id);
    match state {
        JobState::Queued => {
            w.str("state", "queued");
        }
        JobState::Running(progress) => {
            w.str("state", "running")
                .u64("epochs_done", progress.epochs_done.load(Ordering::Relaxed))
                .u64(
                    "epochs_total",
                    progress.epochs_total.load(Ordering::Relaxed),
                )
                .u64("ckpt_epoch", progress.ckpt_epoch.load(Ordering::Relaxed))
                .bool("resumed", progress.resumed.load(Ordering::Relaxed));
        }
        JobState::Done(summary) => {
            w.str("state", "done");
            summary.write_fields(&mut w);
        }
        JobState::Failed(msg) => {
            w.str("state", "failed").str("error", msg);
        }
        JobState::Expired => {
            w.str("state", "expired")
                .str("error", "job deadline exceeded before execution");
        }
    }
    w.finish()
}

fn stored_run(shared: &Shared, key: &str) -> (u16, String) {
    if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return (400, error_body("key must be 32 hex digits"));
    }
    let Some(store) = shared.store.as_ref() else {
        return (404, error_body("no store configured"));
    };
    let run = store
        .load_run(key)
        .or_else(|| store.load_annotated(key).map(|(run, _)| run));
    match run {
        Some(run) => {
            let mut w = ObjWriter::new();
            w.str("state", "done").bool("cached", true);
            RunSummary::from_run(key, &run).write_fields(&mut w);
            (200, w.finish())
        }
        None => (404, error_body("no stored run under that key")),
    }
}

fn stats_body(shared: &Shared) -> String {
    let mut reg = StatRegistry::new();
    if let Some(store) = shared.store.as_ref() {
        store.export_telemetry(&mut reg, "store");
    }
    reg.gauge_set("server.queue", "depth", queue_depth(shared) as f64);
    reg.gauge_set("server.queue", "capacity", queue_capacity(shared) as f64);
    reg.counter_add(
        "server.jobs",
        "accepted",
        shared.accepted.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "rejected",
        shared.rejected.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "completed",
        shared.completed.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "failed",
        shared.failed.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "expired",
        shared.expired.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "degraded",
        shared.degraded.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "resumed",
        shared.resumed.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "restarted",
        shared.restarted.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "worker_deaths",
        shared.worker_deaths.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "requeued",
        shared.requeued.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "chaos",
        "panics_caught",
        shared.panics_caught.load(Ordering::SeqCst),
    );
    if let Some(c) = shared.chaos.as_ref() {
        c.export_telemetry(&mut reg, "chaos");
    }
    for (i, slot) in shared.slots.iter().enumerate() {
        let scope = format!("server.worker{i}");
        reg.counter_add(&scope, "processed", slot.processed.load(Ordering::SeqCst));
        reg.counter_add(&scope, "deaths", slot.deaths.load(Ordering::SeqCst));
        reg.counter_add(&scope, "restarts", slot.restarts.load(Ordering::SeqCst));
        reg.gauge_set(
            &scope,
            "alive",
            if slot.alive.load(Ordering::SeqCst) {
                1.0
            } else {
                0.0
            },
        );
        reg.gauge_set(&scope, "queue_depth", slot.queue.len() as f64);
    }
    reg.snapshot_full().to_json()
}

/// Closes every worker queue and blocks until every accepted job has
/// completed, failed or expired; returns the final-count response body.
fn drain(shared: &Shared) -> String {
    shared.shutdown.store(true, Ordering::SeqCst);
    for slot in &shared.slots {
        slot.queue.close();
    }
    loop {
        let done = shared.completed.load(Ordering::SeqCst)
            + shared.failed.load(Ordering::SeqCst)
            + shared.expired.load(Ordering::SeqCst);
        if done >= shared.accepted.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    ObjWriter::new()
        .bool("drained", true)
        .u64("accepted", shared.accepted.load(Ordering::SeqCst))
        .u64("rejected", shared.rejected.load(Ordering::SeqCst))
        .u64("completed", shared.completed.load(Ordering::SeqCst))
        .u64("failed", shared.failed.load(Ordering::SeqCst))
        .u64("expired", shared.expired.load(Ordering::SeqCst))
        .finish()
}
