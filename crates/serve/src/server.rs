//! The experiment server: HTTP front end, bounded job queue, and a
//! dispatcher that executes batches on the work-stealing executor.
//!
//! Request handling never simulates anything inline. `POST /runs` either
//! answers straight from the [`RunStore`] (a warm result costs one disk
//! read) or enqueues a job and returns `202` with a job id; the
//! dispatcher thread drains the queue in batches through
//! `ramp_sim::exec::parallel_map_metrics`, so `workers` jobs simulate
//! concurrently while the acceptor stays responsive. When the queue is
//! full the server sheds load with `429` (carrying `retry-after: 1`)
//! instead of buffering without bound, and `POST /shutdown` closes the
//! queue, drains every accepted job, reports the final counts, and lets
//! [`Server::run`] return.
//!
//! Failure handling: jobs carry a submission deadline — entries that sat
//! queued past it expire (state `expired`) instead of running; a worker
//! panic is caught with its message captured into the job state (and the
//! `chaos.panics_caught` counter in `/stats`); a failed store write
//! degrades to serving the in-memory result with a warning, never a 500.
//! Under `RAMP_CHAOS` (see [`ramp_sim::chaos`]) the server additionally
//! injects slow reads, queue stalls and mid-response socket resets so
//! the whole retry/degradation machinery is testable deterministically.
//!
//! | Endpoint          | Meaning                                         |
//! |-------------------|-------------------------------------------------|
//! | `GET /health`     | liveness + configured worker/queue geometry     |
//! | `POST /runs`      | submit `{"workload","kind","policy"}`           |
//! | `GET /jobs/{id}`  | poll a submitted job                            |
//! | `GET /runs/{key}` | fetch a stored result by content key            |
//! | `GET /stats`      | full telemetry document (store, queue, exec)    |
//! | `POST /shutdown`  | drain in-flight jobs, then exit                 |

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ramp_core::config::SystemConfig;
use ramp_core::system::RunResult;
use ramp_sim::chaos::{self, Chaos, FaultKind};
use ramp_sim::exec::{parallel_map_metrics, ExecMetrics};
use ramp_sim::telemetry::StatRegistry;

use crate::http::{read_request, write_response, write_response_with, Request};
use crate::json::{error_body, parse_flat, ObjWriter};
use crate::queue::{BoundedQueue, PushError};
use crate::spec::{RunProgress, RunSpec};
use crate::store::RunStore;

/// Server tuning knobs plus the simulated system configuration.
#[derive(Debug)]
pub struct ServerConfig {
    /// The system every run simulates (also part of every store key).
    pub sim: SystemConfig,
    /// Simulation worker threads (executor width of one dispatch batch).
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond this get HTTP 429.
    pub queue_capacity: usize,
    /// Per-connection socket read/write timeout.
    pub request_timeout: Duration,
    /// Per-job deadline: a job still waiting past this after submission
    /// expires (state `expired`) instead of running.
    pub deadline: Duration,
    /// Result store; `None` disables persistence (every run simulates).
    pub store: Option<RunStore>,
    /// Fault-injection registry; defaults to the `RAMP_CHAOS` global.
    pub chaos: Option<Arc<Chaos>>,
}

impl ServerConfig {
    /// Defaults: `RAMP_THREADS`-derived workers, a 32-deep queue, 10 s
    /// socket timeouts, a 60 s job deadline, the environment-configured
    /// store, and the environment-configured chaos registry.
    pub fn new(sim: SystemConfig) -> Self {
        ServerConfig {
            sim,
            workers: ramp_sim::exec::default_threads(),
            queue_capacity: 32,
            request_timeout: Duration::from_secs(10),
            deadline: Duration::from_secs(60),
            store: RunStore::from_env(),
            chaos: chaos::global(),
        }
    }
}

/// A compact, flat-JSON-friendly view of one finished run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Content-addressed store key.
    pub key: String,
    /// Workload name.
    pub workload: String,
    /// Policy/scheme label.
    pub policy: String,
    /// Aggregate instructions per cycle.
    pub ipc: f64,
    /// Soft-error FIT rate of this placement.
    pub ser_fit: f64,
    /// SER normalized to the DDR-only baseline.
    pub ser_vs_ddr_only: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// L2 misses per kilo-instruction.
    pub mpki: f64,
    /// Demand accesses served by HBM.
    pub hbm_accesses: u64,
    /// Demand accesses served by DDR.
    pub ddr_accesses: u64,
    /// Pages migrated.
    pub migrations: u64,
}

impl RunSummary {
    fn from_run(key: &str, run: &RunResult) -> Self {
        RunSummary {
            key: key.to_string(),
            workload: run.workload.clone(),
            policy: run.policy.clone(),
            ipc: run.ipc,
            ser_fit: run.ser_fit,
            ser_vs_ddr_only: run.ser_vs_ddr_only(),
            cycles: run.cycles,
            instructions: run.instructions,
            mpki: run.mpki,
            hbm_accesses: run.hbm_accesses,
            ddr_accesses: run.ddr_accesses,
            migrations: run.migrations,
        }
    }

    fn write_fields(&self, w: &mut ObjWriter) {
        w.str("key", &self.key)
            .str("workload", &self.workload)
            .str("policy", &self.policy)
            .f64("ipc", self.ipc)
            .f64("ser_fit", self.ser_fit)
            .f64("ser_vs_ddr_only", self.ser_vs_ddr_only)
            .u64("cycles", self.cycles)
            .u64("instructions", self.instructions)
            .f64("mpki", self.mpki)
            .u64("hbm_accesses", self.hbm_accesses)
            .u64("ddr_accesses", self.ddr_accesses)
            .u64("migrations", self.migrations);
    }
}

/// Lifecycle of one submitted job, as rendered by `GET /jobs/{id}`.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted, waiting for a dispatch slot.
    Queued,
    /// Executing; carries the live progress the worker updates.
    Running(Arc<RunProgress>),
    /// Finished, with its result summary.
    Done(RunSummary),
    /// The worker panicked; the message is captured.
    Failed(String),
    /// Sat queued past its deadline and was never run.
    Expired,
}

struct Job {
    id: u64,
    spec: RunSpec,
    submitted: Instant,
}

struct Shared {
    sim: SystemConfig,
    workers: usize,
    store: Option<RunStore>,
    chaos: Option<Arc<Chaos>>,
    deadline: Duration,
    queue: BoundedQueue<Job>,
    jobs: Mutex<HashMap<u64, JobState>>,
    next_job: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    degraded: AtomicU64,
    panics_caught: AtomicU64,
    resumed: AtomicU64,
    restarted: AtomicU64,
    shutdown: AtomicBool,
    exec_metrics: ExecMetrics,
}

impl Shared {
    fn set_state(&self, id: u64, state: JobState) {
        self.jobs.lock().unwrap().insert(id, state);
    }

    fn chaos_slow(&self, site: &str) {
        if let Some(c) = self.chaos.as_ref() {
            c.maybe_slow(site);
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    request_timeout: Duration,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                sim: cfg.sim,
                workers: cfg.workers.max(1),
                store: cfg.store,
                chaos: cfg.chaos,
                deadline: cfg.deadline,
                queue: BoundedQueue::new(cfg.queue_capacity),
                jobs: Mutex::new(HashMap::new()),
                next_job: AtomicU64::new(1),
                accepted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                expired: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                panics_caught: AtomicU64::new(0),
                resumed: AtomicU64::new(0),
                restarted: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                exec_metrics: ExecMetrics::new(),
            }),
            request_timeout: cfg.request_timeout,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Serves requests until a `POST /shutdown` drains the queue.
    ///
    /// Blocks the calling thread; the dispatcher runs on its own thread
    /// and is joined before this returns, so when `run` exits every
    /// accepted job has completed (or failed) and its result — if a
    /// store is configured — is on disk.
    pub fn run(self) {
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || dispatch_loop(&shared))
        };

        for stream in self.listener.incoming() {
            let mut stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = stream.set_read_timeout(Some(self.request_timeout));
            let _ = stream.set_write_timeout(Some(self.request_timeout));
            let stop = handle_connection(&self.shared, &mut stream);
            if stop {
                break;
            }
        }

        self.shared.queue.close();
        let _ = dispatcher.join();
    }
}

fn dispatch_loop(shared: &Shared) {
    while let Some(batch) = shared.queue.pop_batch(shared.workers) {
        // Jobs that sat past their deadline expire instead of running:
        // under backlog the server sheds stale work deterministically
        // rather than simulating results nobody is waiting for.
        let mut runnable = Vec::with_capacity(batch.len());
        for job in batch {
            if job.submitted.elapsed() >= shared.deadline {
                shared.set_state(job.id, JobState::Expired);
                shared.expired.fetch_add(1, Ordering::SeqCst);
            } else {
                runnable.push(job);
            }
        }
        let outcomes = parallel_map_metrics(
            shared.workers,
            runnable,
            &shared.exec_metrics,
            None,
            |_, job| {
                let spec = job.spec;
                let progress = Arc::new(RunProgress::default());
                shared.set_state(job.id, JobState::Running(Arc::clone(&progress)));
                let attempt = || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if let Some(c) = shared.chaos.as_ref() {
                            c.maybe_slow("server.job");
                            c.maybe_panic("server.job");
                        }
                        spec.execute_with_progress(
                            &shared.sim,
                            shared.store.as_ref(),
                            Some(&progress),
                        )
                    }))
                };
                let mut result = attempt();
                if result.is_err() {
                    shared.panics_caught.fetch_add(1, Ordering::SeqCst);
                    // An interrupted job that left a checkpoint trail is
                    // restartable: one retry resumes from the newest valid
                    // checkpoint instead of surfacing the crash.
                    let key = spec.key(&shared.sim);
                    let has_trail = shared
                        .store
                        .as_ref()
                        .is_some_and(|s| !s.list_checkpoints(&key).is_empty());
                    if has_trail {
                        shared.restarted.fetch_add(1, Ordering::SeqCst);
                        eprintln!(
                            "[served] job {} ({key}) died mid-run; restarting from checkpoint",
                            job.id
                        );
                        result = attempt();
                    }
                }
                (job.id, spec, result)
            },
        );
        for (id, spec, result) in outcomes {
            match result {
                Ok(outcome) => {
                    let key = spec.key(&shared.sim);
                    if !outcome.persisted {
                        // Degraded mode: the simulation succeeded but the
                        // store write didn't — serve the in-memory result
                        // and warn, never 500.
                        shared.degraded.fetch_add(1, Ordering::SeqCst);
                        eprintln!(
                            "[served] warn: job {id} ({key}) could not be persisted; \
                             serving from memory"
                        );
                    }
                    if outcome.resumed {
                        shared.resumed.fetch_add(1, Ordering::SeqCst);
                    }
                    shared.set_state(id, JobState::Done(RunSummary::from_run(&key, &outcome.run)));
                    shared.completed.fetch_add(1, Ordering::SeqCst);
                }
                Err(payload) => {
                    let msg = chaos::panic_message(payload.as_ref());
                    shared.set_state(id, JobState::Failed(format!("simulation panicked: {msg}")));
                    shared.failed.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }
}

/// Handles one connection; returns `true` when the server should stop.
fn handle_connection(shared: &Shared, stream: &mut TcpStream) -> bool {
    shared.chaos_slow("server.read");
    let req = match read_request(stream) {
        Ok(req) => req,
        Err(msg) => {
            let _ = write_response(stream, 400, &error_body(&msg));
            return false;
        }
    };
    let (status, body, stop) = route(shared, &req);
    // Injected mid-response reset: write a torn head and hang up, so the
    // client exercises its transport-retry path. `POST /shutdown` — the
    // one non-idempotent endpoint — is exempt: resetting it would retry
    // a drain that already happened.
    let resettable = !(req.method == "POST" && req.path == "/shutdown");
    if resettable
        && shared
            .chaos
            .as_ref()
            .is_some_and(|c| c.roll(FaultKind::Net, "server.response"))
    {
        let _ = stream.write_all(b"HTTP/1.1 ");
        let _ = stream.flush();
        return stop;
    }
    if status == 429 {
        // Back-pressured clients get an explicit retry hint.
        let _ = write_response_with(stream, status, &[("retry-after", "1")], &body);
    } else {
        let _ = write_response(stream, status, &body);
    }
    stop
}

fn route(shared: &Shared, req: &Request) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (200, health_body(shared), false),
        ("POST", "/runs") => {
            let (status, body) = submit(shared, &req.body);
            (status, body, false)
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let (status, body) = job_status(shared, &path["/jobs/".len()..]);
            (status, body, false)
        }
        ("GET", path) if path.starts_with("/runs/") => {
            let (status, body) = stored_run(shared, &path["/runs/".len()..]);
            (status, body, false)
        }
        ("GET", "/stats") => (200, stats_body(shared), false),
        ("POST", "/shutdown") => {
            let body = drain(shared);
            (200, body, true)
        }
        ("GET", _) | ("POST", _) => (404, error_body("no such endpoint"), false),
        _ => (405, error_body("method not allowed"), false),
    }
}

fn health_body(shared: &Shared) -> String {
    ObjWriter::new()
        .bool("ok", true)
        .u64("workers", shared.workers as u64)
        .u64("queue_capacity", shared.queue.capacity() as u64)
        .u64("queue_depth", shared.queue.len() as u64)
        .finish()
}

fn submit(shared: &Shared, body: &str) -> (u16, String) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return (503, error_body("shutting down"));
    }
    let fields = match parse_flat(body) {
        Ok(f) => f,
        Err(msg) => return (400, error_body(&msg)),
    };
    let get = |k: &str| fields.get(k).map(String::as_str).unwrap_or("");
    let spec = match RunSpec::parse(get("workload"), get("kind"), get("policy")) {
        Ok(spec) => spec,
        Err(msg) => return (400, error_body(&msg)),
    };
    let key = spec.key(&shared.sim);

    // Warm path: answer immediately from the store, no queue slot used.
    if let Some(run) = shared.store.as_ref().and_then(|s| match spec.kind() {
        crate::store::RunKind::Annotated => s.load_annotated(&key).map(|(run, _)| run),
        _ => s.load_run(&key),
    }) {
        let mut w = ObjWriter::new();
        w.str("state", "done").bool("cached", true);
        RunSummary::from_run(&key, &run).write_fields(&mut w);
        return (200, w.finish());
    }

    shared.chaos_slow("server.queue");
    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    match shared.queue.try_push(Job {
        id,
        spec,
        submitted: Instant::now(),
    }) {
        Ok(()) => {
            shared.set_state(id, JobState::Queued);
            shared.accepted.fetch_add(1, Ordering::SeqCst);
            let body = ObjWriter::new()
                .u64("job", id)
                .str("state", "queued")
                .str("key", &key)
                .finish();
            (202, body)
        }
        Err(PushError::Full) => {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            (429, error_body("queue_full"))
        }
        Err(PushError::Closed) => (503, error_body("shutting down")),
    }
}

fn job_status(shared: &Shared, id_str: &str) -> (u16, String) {
    let Ok(id) = id_str.parse::<u64>() else {
        return (400, error_body("job id must be an integer"));
    };
    let state = shared.jobs.lock().unwrap().get(&id).cloned();
    let Some(state) = state else {
        return (404, error_body("no such job"));
    };
    (200, render_job_status(id, &state))
}

/// Renders the `GET /jobs/{id}` response body for one job state.
///
/// Public so the golden-snapshot tests can pin the poll wire format
/// (field names, order, progress semantics) without a live server.
/// Running jobs report `epochs_done` / `epochs_total` (the total is the
/// [`SystemConfig::epochs_estimate`] lower bound, so `done > total`
/// means "still running"), the last durable checkpoint epoch, and
/// whether the run resumed from a checkpoint.
pub fn render_job_status(id: u64, state: &JobState) -> String {
    let mut w = ObjWriter::new();
    w.u64("job", id);
    match state {
        JobState::Queued => {
            w.str("state", "queued");
        }
        JobState::Running(progress) => {
            w.str("state", "running")
                .u64("epochs_done", progress.epochs_done.load(Ordering::Relaxed))
                .u64(
                    "epochs_total",
                    progress.epochs_total.load(Ordering::Relaxed),
                )
                .u64("ckpt_epoch", progress.ckpt_epoch.load(Ordering::Relaxed))
                .bool("resumed", progress.resumed.load(Ordering::Relaxed));
        }
        JobState::Done(summary) => {
            w.str("state", "done");
            summary.write_fields(&mut w);
        }
        JobState::Failed(msg) => {
            w.str("state", "failed").str("error", msg);
        }
        JobState::Expired => {
            w.str("state", "expired")
                .str("error", "job deadline exceeded before execution");
        }
    }
    w.finish()
}

fn stored_run(shared: &Shared, key: &str) -> (u16, String) {
    if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return (400, error_body("key must be 32 hex digits"));
    }
    let Some(store) = shared.store.as_ref() else {
        return (404, error_body("no store configured"));
    };
    let run = store
        .load_run(key)
        .or_else(|| store.load_annotated(key).map(|(run, _)| run));
    match run {
        Some(run) => {
            let mut w = ObjWriter::new();
            w.str("state", "done").bool("cached", true);
            RunSummary::from_run(key, &run).write_fields(&mut w);
            (200, w.finish())
        }
        None => (404, error_body("no stored run under that key")),
    }
}

fn stats_body(shared: &Shared) -> String {
    let mut reg = StatRegistry::new();
    if let Some(store) = shared.store.as_ref() {
        store.export_telemetry(&mut reg, "store");
    }
    reg.gauge_set("server.queue", "depth", shared.queue.len() as f64);
    reg.gauge_set("server.queue", "capacity", shared.queue.capacity() as f64);
    reg.counter_add(
        "server.jobs",
        "accepted",
        shared.accepted.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "rejected",
        shared.rejected.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "completed",
        shared.completed.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "failed",
        shared.failed.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "expired",
        shared.expired.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "degraded",
        shared.degraded.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "resumed",
        shared.resumed.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "server.jobs",
        "restarted",
        shared.restarted.load(Ordering::SeqCst),
    );
    reg.counter_add(
        "chaos",
        "panics_caught",
        shared.panics_caught.load(Ordering::SeqCst),
    );
    if let Some(c) = shared.chaos.as_ref() {
        c.export_telemetry(&mut reg, "chaos");
    }
    shared
        .exec_metrics
        .export_telemetry(&mut reg, "server.exec");
    reg.snapshot_full().to_json()
}

/// Closes the queue and blocks until every accepted job has completed,
/// failed or expired; returns the final-count response body.
fn drain(shared: &Shared) -> String {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue.close();
    loop {
        let done = shared.completed.load(Ordering::SeqCst)
            + shared.failed.load(Ordering::SeqCst)
            + shared.expired.load(Ordering::SeqCst);
        if done >= shared.accepted.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    ObjWriter::new()
        .bool("drained", true)
        .u64("accepted", shared.accepted.load(Ordering::SeqCst))
        .u64("rejected", shared.rejected.load(Ordering::SeqCst))
        .u64("completed", shared.completed.load(Ordering::SeqCst))
        .u64("failed", shared.failed.load(Ordering::SeqCst))
        .u64("expired", shared.expired.load(Ordering::SeqCst))
        .finish()
}
