//! The RAMP serving stack: a persistent run store and a std-only
//! experiment server.
//!
//! Every `ramp-bench` binary used to rebuild its simulation caches
//! in-process and discard them on exit. This crate converts the repro
//! into a long-lived serving system (the ROADMAP's north star) in two
//! layers:
//!
//! 1. **[`store`]** — a persistent, content-addressed run store. Results
//!    are encoded with a hand-rolled binary codec ([`wire`], built on
//!    `ramp_sim::codec`: versioned header, length-prefixed fields,
//!    checksum) and keyed by a hash of *(workload, policy/scheme, config,
//!    code-version salt)*. Writes are atomic (write-to-temp + rename)
//!    under `target/ramp-store/`, so concurrent processes can share one
//!    store. `ramp_bench::Harness` consults the store before simulating
//!    and persists misses — a second invocation of any experiment binary
//!    is served entirely from disk. The store has two interchangeable
//!    backends behind the same API: the default one-file-per-entry
//!    layout, and a [`wal`]-backed layout (`RAMP_STORE_MODE=wal`) that
//!    batches records into append-only checksummed segments with
//!    crash-consistent replay and explicit compaction.
//! 2. **[`server`]** — an HTTP/1.1 experiment server over
//!    `std::net::TcpListener` with flat-JSON request bodies, executed by
//!    a supervised pool of worker threads: run keys are consistent-hash
//!    routed so each key has exactly one writer, every worker owns a
//!    bounded job queue with explicit backpressure (HTTP 429 when full),
//!    and a supervisor restarts crashed workers with bounded backoff.
//!    Endpoints cover submitting runs, polling job status, fetching
//!    cached results, dumping the telemetry document, and a graceful
//!    shutdown that drains in-flight jobs before exiting. Both listener
//!    and client keep connections alive through a bounded pool
//!    ([`http::serve_pooled`]). [`client`] is the matching scriptable
//!    client (also shipped as the `ramp-client` binary, with a
//!    multi-endpoint fallback list). [`router`] (the `ramp-router`
//!    binary) scales the server out: a reverse proxy that
//!    consistent-hash shards run keys over a fleet of `ramp-served`
//!    processes with replication, health-checked failover and hinted
//!    handoff, so a killed shard degrades capacity, never correctness.
//!
//! Zero external dependencies, like the rest of the workspace.
//!
//! ```no_run
//! use ramp_core::config::SystemConfig;
//! use ramp_serve::client::Client;
//! use ramp_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind(
//!     "127.0.0.1:0",
//!     ServerConfig::new(SystemConfig::smoke_test()),
//! )
//! .unwrap();
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let client = Client::new(addr.to_string());
//! let submit = client.submit("lbm", "static", "perf-focused").unwrap();
//! let done = client.wait_done(submit.job.unwrap(), 60_000).unwrap();
//! println!("IPC {}", done.fields["ipc"]);
//! client.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod queue;
pub mod router;
pub mod server;
pub mod spec;
pub mod store;
pub mod wal;
pub mod wire;

pub use client::Client;
pub use router::{Router, RouterConfig};
pub use server::{render_job_status, JobState, Server, ServerConfig};
pub use spec::{RunProgress, RunSpec};
pub use store::{RunKind, RunStore};
