//! Persistent, content-addressed run store under `target/ramp-store/`.
//!
//! Every completed simulation is persisted under a key derived from
//! *everything that determines its outcome*: the full
//! [`SystemConfig::canonical_bytes`] encoding, the run kind, the workload
//! name, the policy/scheme label, plus the wire-format version and a
//! code-version salt ([`STORE_SALT`]). Change any input — or the
//! simulator itself, by bumping the salt — and the run lands in a fresh
//! slot instead of serving a stale result.
//!
//! Writes are atomic: the entry is written to a unique temp file in the
//! store directory and `rename`d into place, so concurrent experiment
//! binaries sharing one store never observe a torn entry. Reads that hit
//! a corrupt, truncated or version-skewed file count as misses (and bump
//! the `invalid` metric); the store never panics on bad bytes and never
//! trusts them.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ramp_core::annotate::AnnotationSet;
use ramp_core::config::SystemConfig;
use ramp_core::system::RunResult;
use ramp_sim::codec::{fnv1a64_seeded, ByteWriter};
use ramp_sim::telemetry::StatRegistry;

use crate::wire::{self, WIRE_VERSION};

/// Bump to invalidate every existing store entry after a simulator
/// behaviour change that [`WIRE_VERSION`] (format only) doesn't capture.
pub const STORE_SALT: u32 = 1;

/// Environment variable that disables (`off`/`0`) the store.
pub const ENV_STORE: &str = "RAMP_STORE";
/// Environment variable overriding the store directory.
pub const ENV_STORE_DIR: &str = "RAMP_STORE_DIR";
/// Default store directory, relative to the working directory.
pub const DEFAULT_DIR: &str = "target/ramp-store";

/// The four kinds of runs the store distinguishes.
///
/// The kind participates in the key so e.g. a profile run and a static
/// run of the same workload can never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunKind {
    /// A DDR-only profiling run (produces the per-page stats table).
    Profile,
    /// A static placement run under some [`PlacementPolicy`] label.
    ///
    /// [`PlacementPolicy`]: ramp_core::placement::PlacementPolicy
    Static,
    /// A dynamic migration run under some [`MigrationScheme`] label.
    ///
    /// [`MigrationScheme`]: ramp_core::migration::MigrationScheme
    Migration,
    /// A programmer-annotated run (result + annotation set).
    Annotated,
}

impl RunKind {
    fn tag(self) -> u8 {
        match self {
            RunKind::Profile => 0,
            RunKind::Static => 1,
            RunKind::Migration => 2,
            RunKind::Annotated => 3,
        }
    }

    /// Stable lower-case label, used in server responses.
    pub fn label(self) -> &'static str {
        match self {
            RunKind::Profile => "profile",
            RunKind::Static => "static",
            RunKind::Migration => "migration",
            RunKind::Annotated => "annotated",
        }
    }
}

/// Computes the content-addressed key of one run as 32 lowercase hex
/// digits (two seeded FNV-1a passes over the canonical input encoding).
pub fn run_key(cfg: &SystemConfig, kind: RunKind, workload: &str, policy: &str) -> String {
    let mut w = ByteWriter::new();
    w.u32(WIRE_VERSION);
    w.u32(STORE_SALT);
    let cfg_bytes = cfg.canonical_bytes();
    w.u32(cfg_bytes.len() as u32);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&cfg_bytes);
    let mut tail = ByteWriter::new();
    tail.u8(kind.tag());
    tail.str(workload);
    tail.str(policy);
    bytes.extend_from_slice(tail.bytes());
    let a = fnv1a64_seeded(0xcbf2_9ce4_8422_2325, &bytes);
    let b = fnv1a64_seeded(a ^ 0x9e37_79b9_7f4a_7c15, &bytes);
    format!("{a:016x}{b:016x}")
}

/// Hit/miss/write counters of one store handle.
///
/// These are *process-observability* numbers, not simulation results:
/// they differ between cold and warm runs, so they are exported only
/// into volatile-style side channels (the harness `RAMP_STATS=table`
/// epilogue, the server `/stats` document) and never into
/// [`RunResult::telemetry`].
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Entries served from disk.
    pub hits: AtomicU64,
    /// Lookups that found no (valid) entry.
    pub misses: AtomicU64,
    /// Entries persisted.
    pub writes: AtomicU64,
    /// Entries that existed but failed to decode (counted in `misses` too).
    pub invalid: AtomicU64,
}

/// A handle on one on-disk store directory.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    metrics: StoreMetrics,
    tmp_counter: AtomicU64,
}

impl RunStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<RunStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(RunStore {
            dir,
            metrics: StoreMetrics::default(),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// Opens the store configured by the environment: `RAMP_STORE=off`
    /// (or `0`) disables it, `RAMP_STORE_DIR` overrides the directory,
    /// and the default is `target/ramp-store` (store **on**).
    ///
    /// Returns `None` when disabled or when the directory cannot be
    /// created (a read-only checkout should degrade to cold runs, not
    /// fail).
    pub fn from_env() -> Option<RunStore> {
        match std::env::var(ENV_STORE) {
            Ok(v) if v.eq_ignore_ascii_case("off") || v == "0" => return None,
            _ => {}
        }
        let dir = std::env::var(ENV_STORE_DIR).unwrap_or_else(|_| DEFAULT_DIR.to_string());
        RunStore::open(dir).ok()
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live hit/miss/write counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn path_for(&self, key: &str, ext: &str) -> PathBuf {
        self.dir.join(format!("{key}.{ext}"))
    }

    fn load_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        match fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(_) => {
                self.metrics.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn note_invalid(&self) {
        self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically persists `bytes` under `path` (best effort: a full
    /// disk or read-only store silently degrades to a cold cache).
    fn store_bytes(&self, path: &Path, bytes: &[u8]) {
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!("tmp-{}-{n}", std::process::id()));
        let ok = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(bytes))
            .and_then(|_| fs::rename(&tmp, path));
        match ok {
            Ok(_) => {
                self.metrics.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// Loads the run stored under `key`, if present and valid.
    pub fn load_run(&self, key: &str) -> Option<RunResult> {
        let bytes = self.load_bytes(&self.path_for(key, "run"))?;
        match wire::decode_run(&bytes) {
            Ok(run) => {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            Err(_) => {
                self.note_invalid();
                None
            }
        }
    }

    /// Persists `run` under `key`.
    pub fn store_run(&self, key: &str, run: &RunResult) {
        self.store_bytes(&self.path_for(key, "run"), &wire::encode_run(run));
    }

    /// Loads the annotated run stored under `key`, if present and valid.
    pub fn load_annotated(&self, key: &str) -> Option<(RunResult, AnnotationSet)> {
        let bytes = self.load_bytes(&self.path_for(key, "ann"))?;
        match wire::decode_annotated(&bytes) {
            Ok(pair) => {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                Some(pair)
            }
            Err(_) => {
                self.note_invalid();
                None
            }
        }
    }

    /// Persists an annotated run under `key`.
    pub fn store_annotated(&self, key: &str, run: &RunResult, set: &AnnotationSet) {
        self.store_bytes(
            &self.path_for(key, "ann"),
            &wire::encode_annotated(run, set),
        );
    }

    /// Exports the hit/miss/write/invalid counters into `scope` of `reg`.
    ///
    /// The caller chooses the exposure context; these counters must never
    /// reach a deterministic document (see [`StoreMetrics`]).
    pub fn export_telemetry(&self, reg: &mut StatRegistry, scope: &str) {
        let m = &self.metrics;
        reg.counter_add(scope, "hits", m.hits.load(Ordering::Relaxed));
        reg.counter_add(scope, "misses", m.misses.load(Ordering::Relaxed));
        reg.counter_add(scope, "writes", m.writes.load(Ordering::Relaxed));
        reg.counter_add(scope, "invalid", m.invalid.load(Ordering::Relaxed));
    }
}

/// Test-only store fixtures shared across the crate's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A unique per-test store directory (no env vars, no external
    /// tempdir crate).
    pub(crate) fn test_store() -> RunStore {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ramp-store-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::test_store;
    use super::*;
    use crate::wire::testutil::sample_run;

    fn hits(s: &RunStore) -> u64 {
        s.metrics().hits.load(Ordering::Relaxed)
    }
    fn misses(s: &RunStore) -> u64 {
        s.metrics().misses.load(Ordering::Relaxed)
    }

    #[test]
    fn keys_are_stable_and_discriminating() {
        let cfg = SystemConfig::smoke_test();
        let k = run_key(&cfg, RunKind::Static, "lbm", "perf-focused");
        assert_eq!(k.len(), 32);
        assert!(k.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(k, run_key(&cfg, RunKind::Static, "lbm", "perf-focused"));
        // Every key ingredient discriminates.
        assert_ne!(k, run_key(&cfg, RunKind::Profile, "lbm", "perf-focused"));
        assert_ne!(k, run_key(&cfg, RunKind::Static, "mcf", "perf-focused"));
        assert_ne!(k, run_key(&cfg, RunKind::Static, "lbm", "rel-focused"));
        let other = SystemConfig {
            seed: cfg.seed ^ 1,
            ..cfg.clone()
        };
        assert_ne!(k, run_key(&other, RunKind::Static, "lbm", "perf-focused"));
    }

    #[test]
    fn round_trip_and_counters() {
        let store = test_store();
        let run = sample_run();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Static, "lbm", "x");
        assert!(store.load_run(&key).is_none());
        assert_eq!(misses(&store), 1);
        store.store_run(&key, &run);
        let back = store.load_run(&key).expect("stored entry loads");
        assert_eq!(back.ipc.to_bits(), run.ipc.to_bits());
        assert_eq!(back.telemetry, run.telemetry);
        assert_eq!(hits(&store), 1);
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn corrupt_entries_are_clean_misses() {
        let store = test_store();
        let run = sample_run();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Static, "lbm", "x");
        store.store_run(&key, &run);
        let path = store.path_for(&key, "run");
        let good = fs::read(&path).unwrap();

        // Truncated.
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(store.load_run(&key).is_none());
        // Bit flip in the payload (checksum catches it).
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(store.load_run(&key).is_none());
        // Version skew.
        let mut skewed = good.clone();
        skewed[8] ^= 0xff; // version field lives right after the magic
        fs::write(&path, &skewed).unwrap();
        assert!(store.load_run(&key).is_none());
        // Empty file.
        fs::write(&path, b"").unwrap();
        assert!(store.load_run(&key).is_none());

        assert_eq!(store.metrics().invalid.load(Ordering::Relaxed), 4);
        // A rewrite heals the slot.
        store.store_run(&key, &run);
        assert!(store.load_run(&key).is_some());
    }

    #[test]
    fn annotated_round_trip() {
        let store = test_store();
        let run = sample_run();
        let set = AnnotationSet {
            structures: vec![(ramp_trace::Benchmark::Lbm, "grid".into())],
            pinned: [ramp_sim::PageId(3)].into_iter().collect(),
        };
        let key = run_key(
            &SystemConfig::smoke_test(),
            RunKind::Annotated,
            "lbm",
            "annotations",
        );
        assert!(store.load_annotated(&key).is_none());
        store.store_annotated(&key, &run, &set);
        let (_, back_set) = store.load_annotated(&key).unwrap();
        assert_eq!(back_set.pinned, set.pinned);
        // A `.run` entry can never be read back as annotated.
        store.store_run(&key, &run);
        assert!(store.load_annotated(&key).is_some()); // different extension
    }

    #[test]
    fn from_env_respects_off_switch() {
        // Can't mutate env safely in parallel tests; just exercise the
        // default path, which must yield a usable store or None.
        if let Some(store) = RunStore::from_env() {
            assert!(store.dir().to_string_lossy().contains("ramp-store"));
        }
    }
}
