//! Persistent, content-addressed run store under `target/ramp-store/`.
//!
//! Every completed simulation is persisted under a key derived from
//! *everything that determines its outcome*: the full
//! [`SystemConfig::canonical_bytes`] encoding, the run kind, the workload
//! name, the policy/scheme label, plus the wire-format version and a
//! code-version salt ([`STORE_SALT`]). Change any input — or the
//! simulator itself, by bumping the salt — and the run lands in a fresh
//! slot instead of serving a stale result.
//!
//! Writes are atomic: the entry is written to a unique temp file in the
//! store directory and `rename`d into place, so concurrent experiment
//! binaries sharing one store never observe a torn entry — and every
//! write is read back and byte-compared before it counts as persisted.
//! Reads that hit a corrupt, truncated or version-skewed file count as
//! misses (and bump the `invalid` metric); the offending file is
//! **quarantined** — renamed `*.quarantine` next to a `*.reason` file
//! recording the decode error — so bad bytes are preserved for autopsy
//! instead of being silently overwritten. [`RunStore::scrub`] walks a
//! store offline, removes stale temp files and quarantines every entry
//! that no longer decodes (exposed as the `ramp-store scrub`
//! subcommand). The store never panics on bad bytes and never trusts
//! them.
//!
//! Under `RAMP_CHAOS` (see [`ramp_sim::chaos`]) the store injects its
//! own faults at three sites — `store.read` (read I/O error),
//! `store.write` (failed write) and `store.corrupt` (post-write bit
//! rot) — which is how the resilience test matrix exercises the
//! quarantine and degraded-mode paths deterministically.
//!
//! **Backends.** The description above is the default one-file-per-run
//! backend. `RAMP_STORE_MODE=wal` selects the append-only WAL backend
//! ([`crate::wal`]): the same content-addressed API, but entries become
//! checksummed records batched into segment files with a
//! generation-numbered manifest, replay-on-open crash recovery, and
//! explicit compaction (`ramp-store compact`). File mode supports
//! concurrent writer processes; WAL mode is single-process (the
//! multi-worker server shares one handle). Both modes are covered by
//! [`RunStore::verify`] (read-only validation) and [`RunStore::scrub`]
//! (healing walk, which also reclaims orphaned checkpoint trails whose
//! base run entry is missing or quarantined).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ramp_core::annotate::AnnotationSet;
use ramp_core::config::SystemConfig;
use ramp_core::system::{RunResult, CHECKPOINT_KIND, CHECKPOINT_VERSION};
use ramp_sim::chaos::{self, Chaos, FaultKind};
use ramp_sim::codec::{decode_framed, fnv1a64_seeded, ByteWriter};
use ramp_sim::telemetry::StatRegistry;

use crate::wal::{self, AppendError, ReplayReport, ValueKind, Wal};
use crate::wire::{self, WIRE_VERSION};

/// Bump to invalidate every existing store entry after a simulator
/// behaviour change that [`WIRE_VERSION`] (format only) doesn't capture.
pub const STORE_SALT: u32 = 1;

/// Environment variable that disables (`off`/`0`) the store.
pub const ENV_STORE: &str = "RAMP_STORE";
/// Environment variable overriding the store directory.
pub const ENV_STORE_DIR: &str = "RAMP_STORE_DIR";
/// Environment variable selecting the backend: `files` (default) or
/// `wal`. Unknown values degrade to `files`.
pub const ENV_STORE_MODE: &str = "RAMP_STORE_MODE";
/// Default store directory, relative to the working directory.
pub const DEFAULT_DIR: &str = "target/ramp-store";

/// Which backend a [`RunStore`] persists through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreMode {
    /// One file per entry, atomic tmp+rename writes (the default).
    #[default]
    Files,
    /// Append-only WAL segments with manifest + replay ([`crate::wal`]).
    Wal,
}

impl StoreMode {
    /// Stable lower-case label (the `RAMP_STORE_MODE` value).
    pub fn label(self) -> &'static str {
        match self {
            StoreMode::Files => "files",
            StoreMode::Wal => "wal",
        }
    }
}

/// The four kinds of runs the store distinguishes.
///
/// The kind participates in the key so e.g. a profile run and a static
/// run of the same workload can never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunKind {
    /// A DDR-only profiling run (produces the per-page stats table).
    Profile,
    /// A static placement run under some [`PlacementPolicy`] label.
    ///
    /// [`PlacementPolicy`]: ramp_core::placement::PlacementPolicy
    Static,
    /// A dynamic migration run under some [`MigrationScheme`] label.
    ///
    /// [`MigrationScheme`]: ramp_core::migration::MigrationScheme
    Migration,
    /// A programmer-annotated run (result + annotation set).
    Annotated,
}

impl RunKind {
    fn tag(self) -> u8 {
        match self {
            RunKind::Profile => 0,
            RunKind::Static => 1,
            RunKind::Migration => 2,
            RunKind::Annotated => 3,
        }
    }

    /// Stable lower-case label, used in server responses.
    pub fn label(self) -> &'static str {
        match self {
            RunKind::Profile => "profile",
            RunKind::Static => "static",
            RunKind::Migration => "migration",
            RunKind::Annotated => "annotated",
        }
    }
}

/// Computes the content-addressed key of one run as 32 lowercase hex
/// digits (two seeded FNV-1a passes over the canonical input encoding).
pub fn run_key(cfg: &SystemConfig, kind: RunKind, workload: &str, policy: &str) -> String {
    let mut w = ByteWriter::new();
    w.u32(WIRE_VERSION);
    w.u32(STORE_SALT);
    let cfg_bytes = cfg.canonical_bytes();
    w.u32(cfg_bytes.len() as u32);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&cfg_bytes);
    let mut tail = ByteWriter::new();
    tail.u8(kind.tag());
    tail.str(workload);
    tail.str(policy);
    bytes.extend_from_slice(tail.bytes());
    let a = fnv1a64_seeded(0xcbf2_9ce4_8422_2325, &bytes);
    let b = fnv1a64_seeded(a ^ 0x9e37_79b9_7f4a_7c15, &bytes);
    format!("{a:016x}{b:016x}")
}

/// Hit/miss/write counters of one store handle.
///
/// These are *process-observability* numbers, not simulation results:
/// they differ between cold and warm runs, so they are exported only
/// into volatile-style side channels (the harness `RAMP_STATS=table`
/// epilogue, the server `/stats` document) and never into
/// [`RunResult::telemetry`].
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Entries served from disk.
    pub hits: AtomicU64,
    /// Lookups that found no (valid) entry.
    pub misses: AtomicU64,
    /// Entries persisted (write + read-back verify both succeeded).
    pub writes: AtomicU64,
    /// Entries that existed but failed to decode (counted in `misses` too).
    pub invalid: AtomicU64,
    /// Undecodable entries renamed `*.quarantine` (by reads or scrub).
    pub quarantined: AtomicU64,
    /// Writes that failed at the I/O layer (real or injected).
    pub write_failures: AtomicU64,
    /// Writes whose read-back did not match what was written.
    pub verify_failures: AtomicU64,
}

/// A handle on one on-disk store directory.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    metrics: StoreMetrics,
    tmp_counter: AtomicU64,
    chaos: Option<Arc<Chaos>>,
    /// `Some` in WAL mode; `None` in file mode.
    wal: Option<Wal>,
    /// What replay-on-open found (WAL mode only).
    replay: Option<ReplayReport>,
}

impl RunStore {
    /// Opens (creating if needed) a file-mode store rooted at `dir`,
    /// with no fault injection attached.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<RunStore> {
        RunStore::open_mode(dir, StoreMode::Files)
    }

    /// Opens (creating if needed) a WAL-mode store rooted at `dir`:
    /// segments live under `<dir>/wal/` and every live record is
    /// replayed into memory before the handle is returned.
    pub fn open_wal(dir: impl Into<PathBuf>) -> std::io::Result<RunStore> {
        RunStore::open_mode(dir, StoreMode::Wal)
    }

    /// Opens a store rooted at `dir` with an explicit backend.
    pub fn open_mode(dir: impl Into<PathBuf>, mode: StoreMode) -> std::io::Result<RunStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let (wal, replay) = match mode {
            StoreMode::Files => (None, None),
            StoreMode::Wal => {
                let (wal, replay) = Wal::open(dir.join("wal"), None, wal::seg_bytes_from_env())?;
                (Some(wal), Some(replay))
            }
        };
        Ok(RunStore {
            dir,
            metrics: StoreMetrics::default(),
            tmp_counter: AtomicU64::new(0),
            chaos: None,
            wal,
            replay,
        })
    }

    /// Attaches a fault-injection registry: subsequent reads and writes
    /// roll the `store.read` / `store.write` / `store.corrupt` sites
    /// (file mode) and the `wal.*` sites (WAL mode).
    pub fn with_chaos(mut self, chaos: Option<Arc<Chaos>>) -> Self {
        if let Some(wal) = &mut self.wal {
            wal.set_chaos(chaos.clone());
        }
        self.chaos = chaos;
        self
    }

    fn chaos_roll(&self, site: &str) -> bool {
        self.chaos
            .as_ref()
            .is_some_and(|c| c.roll(FaultKind::Io, site))
    }

    /// Opens the store configured by the environment: `RAMP_STORE=off`
    /// (or `0`) disables it, `RAMP_STORE_DIR` overrides the directory,
    /// `RAMP_STORE_MODE=wal` selects the WAL backend, and the default
    /// is `target/ramp-store` in file mode (store **on**).
    ///
    /// Returns `None` when disabled or when the directory cannot be
    /// created (a read-only checkout should degrade to cold runs, not
    /// fail).
    pub fn from_env() -> Option<RunStore> {
        match std::env::var(ENV_STORE) {
            Ok(v) if v.eq_ignore_ascii_case("off") || v == "0" => return None,
            _ => {}
        }
        let mode = match std::env::var(ENV_STORE_MODE) {
            Ok(v) if v.eq_ignore_ascii_case("wal") => StoreMode::Wal,
            _ => StoreMode::Files,
        };
        let dir = std::env::var(ENV_STORE_DIR).unwrap_or_else(|_| DEFAULT_DIR.to_string());
        RunStore::open_mode(dir, mode)
            .ok()
            .map(|s| s.with_chaos(chaos::global()))
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Which backend this handle persists through.
    pub fn mode(&self) -> StoreMode {
        if self.wal.is_some() {
            StoreMode::Wal
        } else {
            StoreMode::Files
        }
    }

    /// What replay-on-open found and repaired (WAL mode only).
    pub fn replay_report(&self) -> Option<&ReplayReport> {
        self.replay.as_ref()
    }

    /// Rewrites the live WAL records into fresh segments and retires
    /// the old ones (see [`Wal::compact`]). In file mode there is
    /// nothing to compact and `None` is returned.
    pub fn compact(&self) -> Option<Result<wal::CompactReport, wal::AppendError>> {
        self.wal.as_ref().map(|w| w.compact())
    }

    /// Live hit/miss/write counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn path_for(&self, key: &str, ext: &str) -> PathBuf {
        self.dir.join(format!("{key}.{ext}"))
    }

    fn load_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        if self.chaos_roll("store.read") {
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            return None; // injected read I/O error: a clean miss
        }
        match fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(_) => {
                self.metrics.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Quarantines the undecodable file at `path`: renames it
    /// `<name>.quarantine` and records `why` in `<name>.reason`, so the
    /// bad bytes survive for autopsy and never serve another read.
    fn quarantine(&self, path: &Path, why: &str) {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            return;
        };
        let jail = path.with_file_name(format!("{name}.quarantine"));
        if fs::rename(path, &jail).is_ok() {
            let reason = path.with_file_name(format!("{name}.reason"));
            let _ = fs::write(&reason, format!("{name}: {why}\n"));
            self.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_invalid(&self, path: &Path, why: &str) {
        self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        self.quarantine(path, why);
    }

    /// Atomically persists `bytes` under `path` and verifies the write
    /// by reading it back. Returns `false` (best effort: a full disk or
    /// read-only store degrades to a cold cache, never an abort) when
    /// the entry did not durably land.
    fn store_bytes(&self, path: &Path, bytes: &[u8]) -> bool {
        if self.chaos_roll("store.write") {
            self.metrics.write_failures.fetch_add(1, Ordering::Relaxed);
            return false; // injected write failure
        }
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!("tmp-{}-{n}", std::process::id()));
        let ok = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(bytes))
            .and_then(|_| fs::rename(&tmp, path));
        if ok.is_err() {
            let _ = fs::remove_file(&tmp);
            self.metrics.write_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // Read-back verify: the entry only counts once the bytes on disk
        // are the bytes we meant to write.
        match fs::read(path) {
            Ok(back) if back == bytes => {}
            _ => {
                let _ = fs::remove_file(path);
                self.metrics.verify_failures.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        if self.chaos_roll("store.corrupt") {
            // Injected post-write bit rot (after verify, so the write
            // itself succeeded): future reads must quarantine this entry.
            let mut rotted = bytes.to_vec();
            if rotted.len() % 2 == 0 {
                rotted.truncate(rotted.len() / 2);
            } else {
                let mid = rotted.len() / 2;
                rotted[mid] ^= 0x40;
            }
            let _ = fs::write(path, &rotted);
        }
        true
    }

    /// Loads raw value bytes from the WAL index, with the same
    /// chaos-read and miss accounting file mode applies.
    fn wal_load(&self, wal: &Wal, kind: ValueKind, key: &str) -> Option<Vec<u8>> {
        if self.chaos_roll("store.read") {
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            return None; // injected read I/O error: a clean miss
        }
        match wal.get(kind, key) {
            Some(bytes) => Some(bytes),
            None => {
                self.metrics.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// A replayed WAL value failed to decode at the wire layer (version
    /// skew, foreign bytes): preserve it for autopsy and evict the slot
    /// so it becomes a miss, mirroring file-mode quarantine.
    fn wal_invalid(&self, wal: &Wal, kind: ValueKind, key: &str, label: &str, why: &str) {
        self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(bytes) = wal.evict(kind, key) {
            wal.quarantine_value(label, &bytes, why);
            self.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Maps one WAL append outcome onto the store metrics.
    fn wal_count_put(&self, outcome: Result<(), AppendError>) -> bool {
        match outcome {
            Ok(()) => {
                self.metrics.writes.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(AppendError::Verify) => {
                self.metrics.verify_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
            Err(_) => {
                self.metrics.write_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Loads the run stored under `key`, if present and valid.
    /// Undecodable entries are quarantined and count as misses.
    pub fn load_run(&self, key: &str) -> Option<RunResult> {
        if let Some(wal) = &self.wal {
            let bytes = self.wal_load(wal, ValueKind::Run, key)?;
            return match wire::decode_run(&bytes) {
                Ok(run) => {
                    self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                    Some(run)
                }
                Err(e) => {
                    self.wal_invalid(
                        wal,
                        ValueKind::Run,
                        key,
                        &format!("{key}.run"),
                        &format!("{e:?}"),
                    );
                    None
                }
            };
        }
        let path = self.path_for(key, "run");
        let bytes = self.load_bytes(&path)?;
        match wire::decode_run(&bytes) {
            Ok(run) => {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            Err(e) => {
                self.note_invalid(&path, &format!("{e:?}"));
                None
            }
        }
    }

    /// Persists `run` under `key`; `true` once it is verified on disk.
    pub fn store_run(&self, key: &str, run: &RunResult) -> bool {
        if let Some(wal) = &self.wal {
            return self.wal_count_put(wal.put(ValueKind::Run, key, &wire::encode_run(run)));
        }
        self.store_bytes(&self.path_for(key, "run"), &wire::encode_run(run))
    }

    /// Loads the annotated run stored under `key`, if present and valid.
    /// Undecodable entries are quarantined and count as misses.
    pub fn load_annotated(&self, key: &str) -> Option<(RunResult, AnnotationSet)> {
        if let Some(wal) = &self.wal {
            let bytes = self.wal_load(wal, ValueKind::Annotated, key)?;
            return match wire::decode_annotated(&bytes) {
                Ok(pair) => {
                    self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                    Some(pair)
                }
                Err(e) => {
                    self.wal_invalid(
                        wal,
                        ValueKind::Annotated,
                        key,
                        &format!("{key}.ann"),
                        &format!("{e:?}"),
                    );
                    None
                }
            };
        }
        let path = self.path_for(key, "ann");
        let bytes = self.load_bytes(&path)?;
        match wire::decode_annotated(&bytes) {
            Ok(pair) => {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                Some(pair)
            }
            Err(e) => {
                self.note_invalid(&path, &format!("{e:?}"));
                None
            }
        }
    }

    /// Persists an annotated run under `key`; `true` once it is
    /// verified on disk.
    pub fn store_annotated(&self, key: &str, run: &RunResult, set: &AnnotationSet) -> bool {
        if let Some(wal) = &self.wal {
            return self.wal_count_put(wal.put(
                ValueKind::Annotated,
                key,
                &wire::encode_annotated(run, set),
            ));
        }
        self.store_bytes(
            &self.path_for(key, "ann"),
            &wire::encode_annotated(run, set),
        )
    }

    fn checkpoint_path(&self, key: &str, epoch: u64) -> PathBuf {
        // Zero-padded epochs keep lexicographic file order equal to
        // numeric epoch order (handy for humans listing the directory).
        self.dir.join(format!("{key}-e{epoch:08}.ckpt"))
    }

    /// Persists a checkpoint blob for epoch `epoch` of run `key`;
    /// `true` once it is verified on disk. Earlier checkpoints of the
    /// same run are kept: they are the fallback when this one turns out
    /// torn or corrupt on resume.
    pub fn store_checkpoint(&self, key: &str, epoch: u64, bytes: &[u8]) -> bool {
        if let Some(wal) = &self.wal {
            return self.wal_count_put(wal.put_ckpt(key, epoch, bytes));
        }
        self.store_bytes(&self.checkpoint_path(key, epoch), bytes)
    }

    /// Lists the checkpoint segments of run `key`, ascending by epoch.
    ///
    /// In WAL mode checkpoints live inside log segments, not per-epoch
    /// files; the path reported there is the WAL directory itself.
    pub fn list_checkpoints(&self, key: &str) -> Vec<(u64, PathBuf)> {
        if let Some(wal) = &self.wal {
            return wal
                .ckpt_epochs(key)
                .into_iter()
                .map(|e| (e, wal.dir().to_path_buf()))
                .collect();
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .map(|e| e.path())
            .filter_map(|path| {
                let name = path.file_name()?.to_string_lossy().into_owned();
                let (k, epoch) = parse_checkpoint_name(&name)?;
                (k == key).then_some((epoch, path))
            })
            .collect();
        found.sort();
        found
    }

    /// Loads the newest *valid* checkpoint of run `key`.
    ///
    /// Walks the segments newest-first: a torn or corrupt tail (the
    /// typical kill-during-write artifact) is quarantined and the walk
    /// falls back to the previous segment, so a resume never sees
    /// garbage — at worst it restarts from an older epoch or cold.
    pub fn load_latest_checkpoint(&self, key: &str) -> Option<(u64, Vec<u8>)> {
        if let Some(wal) = &self.wal {
            for epoch in wal.ckpt_epochs(key).into_iter().rev() {
                if self.chaos_roll("store.read") {
                    self.metrics.misses.fetch_add(1, Ordering::Relaxed);
                    continue; // injected read error: fall back one epoch
                }
                let Some(bytes) = wal.get_ckpt(key, epoch) else {
                    continue;
                };
                match decode_framed(&bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
                    Ok(_) => {
                        self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                        return Some((epoch, bytes));
                    }
                    Err(e) => self.quarantine_checkpoint(key, epoch, &format!("{e:?}")),
                }
            }
            return None;
        }
        for (epoch, path) in self.list_checkpoints(key).into_iter().rev() {
            let Some(bytes) = self.load_bytes(&path) else {
                continue;
            };
            match decode_framed(&bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
                Ok(_) => {
                    self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                    return Some((epoch, bytes));
                }
                Err(e) => self.note_invalid(&path, &format!("{e:?}")),
            }
        }
        None
    }

    /// Lists every checkpoint segment in the store as
    /// `(key, epoch, size_bytes)`, sorted by key then epoch (the
    /// `ramp-store ckpt` listing).
    pub fn all_checkpoints(&self) -> Vec<(String, u64, u64)> {
        if let Some(wal) = &self.wal {
            return wal.ckpts_all();
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut found: Vec<(String, u64, u64)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_string_lossy().into_owned();
                let (key, epoch) = parse_checkpoint_name(&name)?;
                let len = fs::metadata(&path).ok()?.len();
                Some((key.to_string(), epoch, len))
            })
            .collect();
        found.sort();
        found
    }

    /// Quarantines one checkpoint segment whose *payload* failed to
    /// restore (the frame decoded, but the state inside was rejected —
    /// e.g. a checkpoint from a different run landing under this key).
    pub fn quarantine_checkpoint(&self, key: &str, epoch: u64, why: &str) {
        if let Some(wal) = &self.wal {
            self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            // Log the delete best-effort, but evict unconditionally:
            // resume must never spin on a checkpoint it just rejected.
            let _ = wal.del_ckpt(key, epoch);
            if let Some(bytes) = wal.evict_ckpt(key, epoch) {
                wal.quarantine_value(&format!("{key}-e{epoch:08}"), &bytes, why);
                self.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        self.note_invalid(&self.checkpoint_path(key, epoch), why);
    }

    /// Deletes every checkpoint segment of run `key` (a completed run
    /// no longer needs its resume trail). Returns how many were removed.
    pub fn remove_checkpoints(&self, key: &str) -> usize {
        if let Some(wal) = &self.wal {
            // Log the trail delete best-effort; evict unconditionally so
            // this process stops seeing the trail either way. If the
            // delete record did not land, replay resurrects a stale
            // trail — harmless, since the completed run is served warm
            // ahead of any resume attempt.
            let before = wal.ckpt_epochs(key).len();
            if before == 0 {
                return 0;
            }
            let _ = wal.del_ckpt_trail(key);
            wal.evict_ckpt_trail(key);
            return before;
        }
        let mut removed = 0;
        for (_, path) in self.list_checkpoints(key) {
            if fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Walks the whole store, removing stale temp files, quarantining
    /// every entry that no longer decodes, and reclaiming **orphaned
    /// checkpoint trails** — `{key}-e*.ckpt` segments whose base run
    /// entry is missing or quarantined. A trail only outlives its run
    /// when the run died and was never resumed (completed runs delete
    /// their trail); scrub is the explicit offline maintenance pass, so
    /// it treats such trails as abandoned and removes them rather than
    /// letting them accumulate. Deterministic order (sorted by file
    /// name); never panics on foreign files.
    pub fn scrub(&self) -> ScrubReport {
        if let Some(wal) = &self.wal {
            return self.scrub_wal(wal);
        }
        let mut report = ScrubReport::default();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return report;
        };
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        // Base keys with a valid run/annotated entry, and the surviving
        // checkpoint files, for the orphan-trail pass below.
        let mut bases: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut ckpt_files: Vec<(String, PathBuf)> = Vec::new();
        for path in paths {
            if !path.is_file() {
                continue;
            }
            report.scanned += 1;
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if name.starts_with("tmp-") {
                // An interrupted write that never got renamed into place.
                let _ = fs::remove_file(&path);
                report.tmp_removed += 1;
            } else if name.ends_with(".quarantine") || name.ends_with(".reason") {
                report.already_quarantined += 1;
            } else if let Some(stem) = name.strip_suffix(".run") {
                match fs::read(&path)
                    .map_err(|e| format!("read failed: {e}"))
                    .and_then(|bytes| {
                        wire::decode_run(&bytes)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}"))
                    }) {
                    Ok(()) => {
                        report.valid += 1;
                        bases.insert(stem.to_string());
                    }
                    Err(why) => {
                        self.quarantine(&path, &why);
                        report.quarantined += 1;
                    }
                }
            } else if let Some(stem) = name.strip_suffix(".ann") {
                match fs::read(&path)
                    .map_err(|e| format!("read failed: {e}"))
                    .and_then(|bytes| {
                        wire::decode_annotated(&bytes)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}"))
                    }) {
                    Ok(()) => {
                        report.valid += 1;
                        bases.insert(stem.to_string());
                    }
                    Err(why) => {
                        self.quarantine(&path, &why);
                        report.quarantined += 1;
                    }
                }
            } else if name.ends_with(".ckpt") {
                match fs::read(&path)
                    .map_err(|e| format!("read failed: {e}"))
                    .and_then(|bytes| {
                        decode_framed(&bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}"))
                    }) {
                    Ok(()) => {
                        report.valid += 1;
                        if let Some((key, _)) = parse_checkpoint_name(&name) {
                            ckpt_files.push((key.to_string(), path.clone()));
                        }
                    }
                    Err(why) => {
                        self.quarantine(&path, &why);
                        report.quarantined += 1;
                    }
                }
            } else {
                report.unknown += 1;
            }
        }
        for (key, path) in ckpt_files {
            if !bases.contains(&key) && fs::remove_file(&path).is_ok() {
                report.orphaned += 1;
            }
        }
        report
    }

    /// The WAL-mode scrub: validates every live index value, reclaims
    /// orphaned checkpoint trails, and sweeps stale manifest temp files.
    /// (Segment-level damage is healed by replay-on-open, so a live
    /// handle only ever scrubs whole records.)
    fn scrub_wal(&self, wal: &Wal) -> ScrubReport {
        let mut report = ScrubReport::default();
        for kind in [ValueKind::Run, ValueKind::Annotated] {
            for key in wal.value_keys(kind) {
                report.scanned += 1;
                let Some(bytes) = wal.get(kind, &key) else {
                    continue;
                };
                let (label, decoded) = match kind {
                    ValueKind::Run => (
                        format!("{key}.run"),
                        wire::decode_run(&bytes)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}")),
                    ),
                    ValueKind::Annotated => (
                        format!("{key}.ann"),
                        wire::decode_annotated(&bytes)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}")),
                    ),
                };
                match decoded {
                    Ok(()) => report.valid += 1,
                    Err(why) => {
                        wal.evict(kind, &key);
                        wal.quarantine_value(&label, &bytes, &why);
                        self.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
                        report.quarantined += 1;
                    }
                }
            }
        }
        for (key, epoch, _) in wal.ckpts_all() {
            report.scanned += 1;
            let Some(bytes) = wal.get_ckpt(&key, epoch) else {
                continue;
            };
            match decode_framed(&bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
                Ok(_) => report.valid += 1,
                Err(e) => {
                    let _ = wal.del_ckpt(&key, epoch);
                    wal.evict_ckpt(&key, epoch);
                    wal.quarantine_value(&format!("{key}-e{epoch:08}"), &bytes, &format!("{e:?}"));
                    self.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
                    report.quarantined += 1;
                }
            }
        }
        // Orphaned trails: checkpoints whose base entry is gone. Count
        // before deleting — the logged delete already empties the index.
        for key in wal.ckpt_keys() {
            if wal.get(ValueKind::Run, &key).is_none()
                && wal.get(ValueKind::Annotated, &key).is_none()
            {
                let trail = wal.ckpt_epochs(&key).len() as u64;
                let _ = wal.del_ckpt_trail(&key);
                wal.evict_ckpt_trail(&key);
                report.orphaned += trail;
            }
        }
        // Quarantine artifacts and stale manifest temps in the WAL dir.
        if let Ok(entries) = fs::read_dir(wal.dir()) {
            let mut names: Vec<String> = entries
                .flatten()
                .filter_map(|e| e.file_name().to_str().map(str::to_string))
                .collect();
            names.sort();
            for name in names {
                if name.ends_with(".quarantine") || name.ends_with(".reason") {
                    report.scanned += 1;
                    report.already_quarantined += 1;
                } else if name.starts_with("MANIFEST.tmp-") {
                    report.scanned += 1;
                    if fs::remove_file(wal.dir().join(&name)).is_ok() {
                        report.tmp_removed += 1;
                    }
                }
            }
        }
        report
    }

    /// Read-only validation of the whole store: decodes every entry
    /// (file mode) or re-scans the manifest and every segment from disk
    /// (WAL mode) without repairing anything. A clean store reports no
    /// errors; the `ramp-store verify` subcommand exits non-zero
    /// otherwise.
    pub fn verify(&self) -> VerifyReport {
        if let Some(wal) = &self.wal {
            let w = wal.verify();
            return VerifyReport {
                mode: StoreMode::Wal,
                entries: w.records,
                valid: w.records,
                segments: w.segments,
                errors: w.errors,
            };
        }
        let mut report = VerifyReport {
            mode: StoreMode::Files,
            ..VerifyReport::default()
        };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return report;
        };
        let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            if !path.is_file() {
                continue;
            }
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            let decoded = if name.ends_with(".run") {
                fs::read(&path)
                    .map_err(|e| format!("read failed: {e}"))
                    .and_then(|b| {
                        wire::decode_run(&b)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}"))
                    })
            } else if name.ends_with(".ann") {
                fs::read(&path)
                    .map_err(|e| format!("read failed: {e}"))
                    .and_then(|b| {
                        wire::decode_annotated(&b)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}"))
                    })
            } else if name.ends_with(".ckpt") {
                fs::read(&path)
                    .map_err(|e| format!("read failed: {e}"))
                    .and_then(|b| {
                        decode_framed(&b, CHECKPOINT_KIND, CHECKPOINT_VERSION)
                            .map(|_| ())
                            .map_err(|e| format!("{e:?}"))
                    })
            } else {
                continue; // temp/quarantine/foreign files are scrub's business
            };
            report.entries += 1;
            match decoded {
                Ok(()) => report.valid += 1,
                Err(why) => report.errors.push(format!("{name}: {why}")),
            }
        }
        report
    }

    /// Counts what the store holds on disk right now, plus this
    /// handle's live hit/miss/write counters — the one-line answer to
    /// "did that sweep actually reuse the store?". Read-only.
    pub fn stats(&self) -> StoreStats {
        let m = &self.metrics;
        let mut stats = StoreStats {
            mode: self.mode(),
            hits: m.hits.load(Ordering::Relaxed),
            misses: m.misses.load(Ordering::Relaxed),
            writes: m.writes.load(Ordering::Relaxed),
            ..StoreStats::default()
        };
        if let Some(wal) = &self.wal {
            stats.runs = wal.value_keys(wal::ValueKind::Run).len() as u64;
            stats.annotated = wal.value_keys(wal::ValueKind::Annotated).len() as u64;
            stats.checkpoints = wal.ckpt_keys().len() as u64;
            return stats;
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return stats;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".run") {
                stats.runs += 1;
            } else if name.ends_with(".ann") {
                stats.annotated += 1;
            } else if name.ends_with(".ckpt") {
                stats.checkpoints += 1;
            } else if name.ends_with(".quarantine") {
                stats.quarantined += 1;
            }
        }
        stats
    }

    /// Exports the hit/miss/write/invalid counters into `scope` of `reg`.
    ///
    /// The caller chooses the exposure context; these counters must never
    /// reach a deterministic document (see [`StoreMetrics`]).
    pub fn export_telemetry(&self, reg: &mut StatRegistry, scope: &str) {
        let m = &self.metrics;
        reg.counter_add(scope, "hits", m.hits.load(Ordering::Relaxed));
        reg.counter_add(scope, "misses", m.misses.load(Ordering::Relaxed));
        reg.counter_add(scope, "writes", m.writes.load(Ordering::Relaxed));
        reg.counter_add(scope, "invalid", m.invalid.load(Ordering::Relaxed));
        reg.counter_add(scope, "quarantined", m.quarantined.load(Ordering::Relaxed));
        reg.counter_add(
            scope,
            "write_failures",
            m.write_failures.load(Ordering::Relaxed),
        );
        reg.counter_add(
            scope,
            "verify_failures",
            m.verify_failures.load(Ordering::Relaxed),
        );
    }
}

/// Parses a `<key>-e<epoch>.ckpt` checkpoint file name.
fn parse_checkpoint_name(name: &str) -> Option<(&str, u64)> {
    let stem = name.strip_suffix(".ckpt")?;
    let (key, epoch) = stem.rsplit_once("-e")?;
    Some((key, epoch.parse().ok()?))
}

/// What [`RunStore::scrub`] found and repaired in one walk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Files examined.
    pub scanned: u64,
    /// Entries that decoded cleanly.
    pub valid: u64,
    /// Undecodable entries quarantined by this walk.
    pub quarantined: u64,
    /// Quarantine artifacts (`*.quarantine` / `*.reason`) from earlier.
    pub already_quarantined: u64,
    /// Stale `tmp-*` files removed (interrupted writes).
    pub tmp_removed: u64,
    /// Foreign files left untouched.
    pub unknown: u64,
    /// Orphaned checkpoint segments removed (trails whose base run
    /// entry is missing or quarantined).
    pub orphaned: u64,
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scanned={} valid={} quarantined={} already={} tmp={} unknown={} orphaned={}",
            self.scanned,
            self.valid,
            self.quarantined,
            self.already_quarantined,
            self.tmp_removed,
            self.unknown,
            self.orphaned
        )
    }
}

/// What [`RunStore::stats`] counted: durable contents plus the calling
/// handle's volatile hit/miss/write counters.
///
/// The `Display` form is the greppable `[stats]`-line payload the
/// `ramp-store stats` subcommand prints — CI asserts "warm re-sweep
/// performed zero simulations" from it rather than from wall-clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Which backend was counted.
    pub mode: StoreMode,
    /// Durable run entries (`.run` files / live WAL run records).
    pub runs: u64,
    /// Durable annotated entries.
    pub annotated: u64,
    /// Checkpoint trails (file mode counts segments, WAL mode counts
    /// keys with a live checkpoint).
    pub checkpoints: u64,
    /// Quarantined entries (file mode only; WAL quarantines live
    /// outside the segment set).
    pub quarantined: u64,
    /// This handle's cache hits since open (volatile).
    pub hits: u64,
    /// This handle's cache misses since open (volatile).
    pub misses: u64,
    /// This handle's completed writes since open (volatile).
    pub writes: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mode={} runs={} annotated={} checkpoints={} quarantined={} hits={} misses={} writes={}",
            self.mode.label(),
            self.runs,
            self.annotated,
            self.checkpoints,
            self.quarantined,
            self.hits,
            self.misses,
            self.writes
        )
    }
}

/// What [`RunStore::verify`] found (read-only; nothing repaired).
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Which backend was verified.
    pub mode: StoreMode,
    /// Entries (file mode) or WAL records examined.
    pub entries: u64,
    /// How many decoded cleanly.
    pub valid: u64,
    /// Live WAL segments (0 in file mode).
    pub segments: u64,
    /// Every defect, one human-readable line each. Empty == clean.
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// `true` when the store is defect-free.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mode={} entries={} valid={} segments={} errors={}",
            self.mode.label(),
            self.entries,
            self.valid,
            self.segments,
            self.errors.len()
        )
    }
}

/// Test-only store fixtures shared across the crate's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A unique per-test store directory (no env vars, no external
    /// tempdir crate).
    pub(crate) fn test_store() -> RunStore {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ramp-store-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    /// Like [`test_store`] but WAL-backed.
    pub(crate) fn test_store_wal() -> RunStore {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ramp-store-wal-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open_wal(dir).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::test_store;
    use super::*;
    use crate::wire::testutil::sample_run;

    fn hits(s: &RunStore) -> u64 {
        s.metrics().hits.load(Ordering::Relaxed)
    }
    fn misses(s: &RunStore) -> u64 {
        s.metrics().misses.load(Ordering::Relaxed)
    }

    #[test]
    fn keys_are_stable_and_discriminating() {
        let cfg = SystemConfig::smoke_test();
        let k = run_key(&cfg, RunKind::Static, "lbm", "perf-focused");
        assert_eq!(k.len(), 32);
        assert!(k.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(k, run_key(&cfg, RunKind::Static, "lbm", "perf-focused"));
        // Every key ingredient discriminates.
        assert_ne!(k, run_key(&cfg, RunKind::Profile, "lbm", "perf-focused"));
        assert_ne!(k, run_key(&cfg, RunKind::Static, "mcf", "perf-focused"));
        assert_ne!(k, run_key(&cfg, RunKind::Static, "lbm", "rel-focused"));
        let other = SystemConfig {
            seed: cfg.seed ^ 1,
            ..cfg.clone()
        };
        assert_ne!(k, run_key(&other, RunKind::Static, "lbm", "perf-focused"));
    }

    #[test]
    fn round_trip_and_counters() {
        let store = test_store();
        let run = sample_run();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Static, "lbm", "x");
        assert!(store.load_run(&key).is_none());
        assert_eq!(misses(&store), 1);
        store.store_run(&key, &run);
        let back = store.load_run(&key).expect("stored entry loads");
        assert_eq!(back.ipc.to_bits(), run.ipc.to_bits());
        assert_eq!(back.telemetry, run.telemetry);
        assert_eq!(hits(&store), 1);
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn corrupt_entries_are_clean_misses() {
        let store = test_store();
        let run = sample_run();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Static, "lbm", "x");
        store.store_run(&key, &run);
        let path = store.path_for(&key, "run");
        let good = fs::read(&path).unwrap();

        // Truncated.
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(store.load_run(&key).is_none());
        // Bit flip in the payload (checksum catches it).
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(store.load_run(&key).is_none());
        // Version skew.
        let mut skewed = good.clone();
        skewed[8] ^= 0xff; // version field lives right after the magic
        fs::write(&path, &skewed).unwrap();
        assert!(store.load_run(&key).is_none());
        // Empty file.
        fs::write(&path, b"").unwrap();
        assert!(store.load_run(&key).is_none());

        assert_eq!(store.metrics().invalid.load(Ordering::Relaxed), 4);
        // Every bad read quarantined the file instead of leaving it.
        assert_eq!(store.metrics().quarantined.load(Ordering::Relaxed), 4);
        assert!(!path.exists());
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(path.with_file_name(format!("{name}.quarantine")).exists());
        let reason = fs::read_to_string(path.with_file_name(format!("{name}.reason"))).unwrap();
        assert!(
            reason.contains(&name),
            "reason file names the entry: {reason}"
        );
        // A rewrite heals the slot.
        store.store_run(&key, &run);
        assert!(store.load_run(&key).is_some());
    }

    #[test]
    fn scrub_repairs_a_damaged_store() {
        let store = test_store();
        let run = sample_run();
        let cfg = SystemConfig::smoke_test();
        let good_key = run_key(&cfg, RunKind::Static, "lbm", "x");
        let bad_key = run_key(&cfg, RunKind::Static, "mcf", "x");
        store.store_run(&good_key, &run);
        store.store_run(&bad_key, &run);
        // Damage one entry, drop a stale temp file and a foreign file.
        let bad_path = store.path_for(&bad_key, "run");
        let good_bytes = fs::read(&bad_path).unwrap();
        fs::write(&bad_path, &good_bytes[..good_bytes.len() / 3]).unwrap();
        fs::write(store.dir().join("tmp-999-0"), b"interrupted").unwrap();
        fs::write(store.dir().join("notes.txt"), b"not ours").unwrap();

        let report = store.scrub();
        assert_eq!(report.valid, 1);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.tmp_removed, 1);
        assert_eq!(report.unknown, 1);
        assert_eq!(report.scanned, 4);
        assert!(!store.dir().join("tmp-999-0").exists());
        assert!(!bad_path.exists());
        assert!(store.load_run(&good_key).is_some());
        assert!(store.load_run(&bad_key).is_none());

        // A second walk finds the store clean, with the quarantine
        // artifacts (entry + reason) accounted separately.
        let again = store.scrub();
        assert_eq!(again.quarantined, 0);
        assert_eq!(again.valid, 1);
        assert_eq!(again.already_quarantined, 2);
        assert_eq!(
            report.to_string(),
            "scanned=4 valid=1 quarantined=1 already=0 tmp=1 unknown=1 orphaned=0"
        );
    }

    #[test]
    fn injected_write_failure_degrades_to_a_cold_cache() {
        let chaos = Arc::new(ramp_sim::chaos::Chaos::from_spec(3, "io=1.0").unwrap());
        let store = test_store().with_chaos(Some(chaos));
        let run = sample_run();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Static, "lbm", "x");
        assert!(!store.store_run(&key, &run)); // every write injected to fail
        assert!(!store.path_for(&key, "run").exists());
        assert_eq!(store.metrics().write_failures.load(Ordering::Relaxed), 1);
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 0);
        assert!(store.load_run(&key).is_none()); // injected read error: a miss
    }

    #[test]
    fn store_chaos_classifies_every_fault_and_never_serves_garbage() {
        // io=0.5 exercises all three sites (failed writes, read errors,
        // post-write rot) across 40 write+read pairs. The invariants:
        // never panic, never a wrong payload, every load is exactly one
        // of hit/miss, and some of every failure class fires.
        let chaos = Arc::new(ramp_sim::chaos::Chaos::from_spec(5, "io=0.5").unwrap());
        let store = test_store().with_chaos(Some(chaos));
        let run = sample_run();
        let cfg = SystemConfig::smoke_test();
        for i in 0..40 {
            let key = run_key(&cfg, RunKind::Static, &format!("wl{i}"), "x");
            store.store_run(&key, &run);
            if let Some(back) = store.load_run(&key) {
                // A served entry is bit-correct, chaos or not.
                assert_eq!(back.ipc.to_bits(), run.ipc.to_bits());
                assert_eq!(back.telemetry, run.telemetry);
            }
        }
        let m = store.metrics();
        let hits = m.hits.load(Ordering::Relaxed);
        let misses = m.misses.load(Ordering::Relaxed);
        assert_eq!(hits + misses, 40, "each load is exactly one of hit/miss");
        assert!(m.write_failures.load(Ordering::Relaxed) > 0);
        assert!(m.quarantined.load(Ordering::Relaxed) > 0);
        assert_eq!(
            m.quarantined.load(Ordering::Relaxed),
            m.invalid.load(Ordering::Relaxed),
            "every undecodable entry was quarantined"
        );
    }

    #[test]
    fn annotated_round_trip() {
        let store = test_store();
        let run = sample_run();
        let set = AnnotationSet {
            structures: vec![(ramp_trace::Benchmark::Lbm, "grid".into())],
            pinned: [ramp_sim::PageId(3)].into_iter().collect(),
        };
        let key = run_key(
            &SystemConfig::smoke_test(),
            RunKind::Annotated,
            "lbm",
            "annotations",
        );
        assert!(store.load_annotated(&key).is_none());
        store.store_annotated(&key, &run, &set);
        let (_, back_set) = store.load_annotated(&key).unwrap();
        assert_eq!(back_set.pinned, set.pinned);
        // A `.run` entry can never be read back as annotated.
        store.store_run(&key, &run);
        assert!(store.load_annotated(&key).is_some()); // different extension
    }

    #[test]
    fn checkpoint_namespace_round_trip_and_fallback() {
        let store = test_store();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Migration, "lbm", "x");
        assert!(store.load_latest_checkpoint(&key).is_none());

        let blob = |epoch: u8| {
            ramp_sim::codec::encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, &[epoch; 32])
        };
        assert!(store.store_checkpoint(&key, 2, &blob(2)));
        assert!(store.store_checkpoint(&key, 4, &blob(4)));
        assert!(store.store_checkpoint(&key, 10, &blob(10)));
        assert_eq!(
            store
                .list_checkpoints(&key)
                .iter()
                .map(|(e, _)| *e)
                .collect::<Vec<_>>(),
            vec![2, 4, 10]
        );
        // Another run's checkpoints don't alias.
        let other = run_key(&SystemConfig::smoke_test(), RunKind::Migration, "mcf", "x");
        assert!(store.store_checkpoint(&other, 7, &blob(7)));
        assert_eq!(store.list_checkpoints(&key).len(), 3);

        let (epoch, bytes) = store.load_latest_checkpoint(&key).unwrap();
        assert_eq!(epoch, 10);
        assert_eq!(bytes, blob(10));

        // Tear the newest segment: the load quarantines it and falls
        // back to epoch 4, never serving garbage.
        let torn = store.checkpoint_path(&key, 10);
        let good = fs::read(&torn).unwrap();
        fs::write(&torn, &good[..good.len() - 5]).unwrap();
        let (epoch, bytes) = store.load_latest_checkpoint(&key).unwrap();
        assert_eq!(epoch, 4);
        assert_eq!(bytes, blob(4));
        assert!(!torn.exists());
        assert_eq!(store.metrics().quarantined.load(Ordering::Relaxed), 1);

        // Completed runs clean up their trail.
        assert_eq!(store.remove_checkpoints(&key), 2);
        assert!(store.load_latest_checkpoint(&key).is_none());
        assert_eq!(store.list_checkpoints(&other).len(), 1);
    }

    #[test]
    fn scrub_validates_checkpoint_segments() {
        let store = test_store();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Migration, "lbm", "x");
        // A live base entry keeps the trail from counting as orphaned.
        store.store_run(&key, &sample_run());
        let good = ramp_sim::codec::encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, &[9; 16]);
        store.store_checkpoint(&key, 1, &good);
        store.store_checkpoint(&key, 2, &good);
        let bad = store.checkpoint_path(&key, 2);
        fs::write(&bad, &good[..good.len() / 2]).unwrap();

        let report = store.scrub();
        assert_eq!(report.valid, 2);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.orphaned, 0);
        assert!(!bad.exists());
        assert_eq!(store.load_latest_checkpoint(&key).unwrap().0, 1);
    }

    #[test]
    fn scrub_reclaims_orphaned_checkpoint_trails() {
        let store = test_store();
        let cfg = SystemConfig::smoke_test();
        let live = run_key(&cfg, RunKind::Migration, "lbm", "x");
        let dead = run_key(&cfg, RunKind::Migration, "mcf", "x");
        let blob = ramp_sim::codec::encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, &[7; 16]);
        store.store_run(&live, &sample_run());
        store.store_checkpoint(&live, 1, &blob);
        // `dead` has a trail but no base entry (the run died and was
        // never resumed): scrub reclaims it.
        store.store_checkpoint(&dead, 1, &blob);
        store.store_checkpoint(&dead, 2, &blob);

        let report = store.scrub();
        assert_eq!(report.orphaned, 2);
        assert!(store.list_checkpoints(&dead).is_empty());
        assert_eq!(store.list_checkpoints(&live).len(), 1);

        // A quarantined base also orphans its trail.
        let base = store.path_for(&live, "run");
        let bytes = fs::read(&base).unwrap();
        fs::write(&base, &bytes[..bytes.len() / 2]).unwrap();
        let report = store.scrub();
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.orphaned, 1);
        assert!(store.list_checkpoints(&live).is_empty());
    }

    #[test]
    fn wal_mode_round_trips_and_reopens() {
        let store = super::testutil::test_store_wal();
        assert_eq!(store.mode(), StoreMode::Wal);
        assert_eq!(store.replay_report().unwrap(), &ReplayReport::default());
        let run = sample_run();
        let cfg = SystemConfig::smoke_test();
        let key = run_key(&cfg, RunKind::Static, "lbm", "x");
        assert!(store.load_run(&key).is_none());
        assert!(store.store_run(&key, &run));
        let back = store.load_run(&key).expect("stored entry loads");
        assert_eq!(back.ipc.to_bits(), run.ipc.to_bits());
        assert_eq!(back.telemetry, run.telemetry);
        assert_eq!(hits(&store), 1);
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 1);

        let set = AnnotationSet {
            structures: vec![(ramp_trace::Benchmark::Lbm, "grid".into())],
            pinned: [ramp_sim::PageId(3)].into_iter().collect(),
        };
        assert!(store.store_annotated(&key, &run, &set));
        let blob = ramp_sim::codec::encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, &[5; 16]);
        assert!(store.store_checkpoint(&key, 1, &blob));
        assert!(store.store_checkpoint(&key, 3, &blob));
        assert_eq!(store.load_latest_checkpoint(&key).unwrap().0, 3);
        assert_eq!(store.all_checkpoints().len(), 2);

        // Reopen the same directory: everything replays.
        let dir = store.dir().to_path_buf();
        drop(store);
        let store = RunStore::open_wal(&dir).unwrap();
        assert_eq!(store.replay_report().unwrap().records, 4);
        let back = store.load_run(&key).expect("replayed entry loads");
        assert_eq!(wire::encode_run(&back), wire::encode_run(&run));
        let (_, back_set) = store.load_annotated(&key).unwrap();
        assert_eq!(back_set.pinned, set.pinned);
        assert_eq!(store.load_latest_checkpoint(&key).unwrap().0, 3);
        assert_eq!(store.remove_checkpoints(&key), 2);
        assert!(store.list_checkpoints(&key).is_empty());
        assert!(store.verify().ok());
    }

    #[test]
    fn wal_mode_chaos_classifies_every_fault() {
        // Mirror of the file-mode chaos invariants: every load is
        // exactly one of hit/miss, served entries are bit-correct, and
        // injected faults land in the failure counters — plus the WAL
        // handle survives a torn-append poisoning without panicking.
        let chaos = Arc::new(ramp_sim::chaos::Chaos::from_spec(5, "io=0.5").unwrap());
        let store = super::testutil::test_store_wal().with_chaos(Some(chaos));
        let run = sample_run();
        let cfg = SystemConfig::smoke_test();
        for i in 0..40 {
            let key = run_key(&cfg, RunKind::Static, &format!("wl{i}"), "x");
            store.store_run(&key, &run);
            if let Some(back) = store.load_run(&key) {
                assert_eq!(back.ipc.to_bits(), run.ipc.to_bits());
                assert_eq!(back.telemetry, run.telemetry);
            }
        }
        let m = store.metrics();
        let hits = m.hits.load(Ordering::Relaxed);
        let misses = m.misses.load(Ordering::Relaxed);
        assert_eq!(hits + misses, 40, "each load is exactly one of hit/miss");
        assert!(m.write_failures.load(Ordering::Relaxed) > 0);

        // Reopen without chaos: every acked write (and only those)
        // replays; the store verifies clean after the heal.
        let dir = store.dir().to_path_buf();
        let acked = m.writes.load(Ordering::Relaxed);
        drop(store);
        let store = RunStore::open_wal(&dir).unwrap();
        let replay = store.replay_report().unwrap().clone();
        assert!(replay.records >= acked, "acked {acked}, replayed {replay}");
        assert!(store.verify().ok(), "{}", store.verify());
    }

    #[test]
    fn wal_scrub_reclaims_orphaned_trails() {
        let store = super::testutil::test_store_wal();
        let cfg = SystemConfig::smoke_test();
        let live = run_key(&cfg, RunKind::Migration, "lbm", "x");
        let dead = run_key(&cfg, RunKind::Migration, "mcf", "x");
        let blob = ramp_sim::codec::encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, &[7; 16]);
        store.store_run(&live, &sample_run());
        store.store_checkpoint(&live, 1, &blob);
        store.store_checkpoint(&dead, 1, &blob);
        store.store_checkpoint(&dead, 2, &blob);

        let report = store.scrub();
        assert_eq!(report.orphaned, 2);
        assert_eq!(report.quarantined, 0);
        assert!(store.list_checkpoints(&dead).is_empty());
        assert_eq!(store.list_checkpoints(&live).len(), 1);
        // The reclamation is durable: a reopen agrees.
        let dir = store.dir().to_path_buf();
        drop(store);
        let store = RunStore::open_wal(&dir).unwrap();
        assert!(store.list_checkpoints(&dead).is_empty());
        assert_eq!(store.list_checkpoints(&live).len(), 1);
    }

    #[test]
    fn verify_is_read_only_and_classifies_damage() {
        let store = test_store();
        let run = sample_run();
        let key = run_key(&SystemConfig::smoke_test(), RunKind::Static, "lbm", "x");
        store.store_run(&key, &run);
        assert!(store.verify().ok());
        let path = store.path_for(&key, "run");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let report = store.verify();
        assert_eq!(report.mode, StoreMode::Files);
        assert_eq!(report.entries, 1);
        assert_eq!(report.valid, 0);
        assert_eq!(report.errors.len(), 1);
        // Read-only: the damaged file is still in place (scrub heals).
        assert!(path.exists());
    }

    #[test]
    fn from_env_respects_off_switch() {
        // Can't mutate env safely in parallel tests; just exercise the
        // default path, which must yield a usable store or None.
        if let Some(store) = RunStore::from_env() {
            assert!(store.dir().to_string_lossy().contains("ramp-store"));
        }
    }
}
