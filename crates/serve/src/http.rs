//! A minimal HTTP/1.1 request/response layer over `std::net`.
//!
//! Just enough protocol for the experiment server: one request per
//! connection (`Connection: close`), request line + headers +
//! `Content-Length`-delimited body, hard size limits on both, and a
//! small table of status codes. Per-request socket read/write timeouts
//! are set by the caller on the `TcpStream` before handing it here, so a
//! stalled peer can never wedge an acceptor or worker thread.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Maximum bytes of request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request: method, path, body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), upper-cased as received.
    pub method: String,
    /// Request path including any query string, e.g. `/jobs/17`.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Reads one HTTP/1.1 request, enforcing the size limits.
///
/// Errors are strings suitable for a 400 response (or for dropping the
/// connection when the peer vanished mid-request).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    if line.is_empty() {
        return Err("empty request".into());
    }
    if line.len() > MAX_HEADER_BYTES {
        return Err("request line too long".into());
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_ascii_uppercase();
    let path = parts.next().ok_or("missing path")?.to_string();

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err("headers too large".into());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| "bad content-length")?;
                if content_length > MAX_BODY_BYTES {
                    return Err("body too large".into());
                }
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response and flushes; the connection is then closed by the
/// caller dropping the stream.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(stream, status, &[], body)
}

/// [`write_response`] with extra headers (e.g. `retry-after` on a 429).
/// Header names must already be lower-case.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", status, reason(status));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "content-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A parsed response: status, headers (names lower-cased), body.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers with lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// First header value under `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `retry-after` header parsed as whole seconds, if present.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }
}

/// Reads one response off a client connection: `(status, body)`.
pub fn read_response(stream: &mut TcpStream) -> Result<(u16, String), String> {
    let r = read_response_full(stream)?;
    Ok((r.status, r.body))
}

/// Reads one full response (status + headers + body) off a client
/// connection.
pub fn read_response_full(stream: &mut TcpStream) -> Result<HttpResponse, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {line:?}"))?;
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse::<usize>().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            buf
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pump(request: &str, status: u16, body: &str) -> (Request, (u16, String)) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let request = request.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(request.as_bytes()).unwrap();
            read_response(&mut s).unwrap()
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side).unwrap();
        write_response(&mut server_side, status, body).unwrap();
        drop(server_side);
        (req, client.join().unwrap())
    }

    #[test]
    fn request_and_response_round_trip() {
        let (req, (status, body)) = pump(
            "POST /runs HTTP/1.1\r\ncontent-length: 17\r\n\r\n{\"workload\":\"x\"}!",
            202,
            "{\"job\":1}",
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/runs");
        assert_eq!(req.body, "{\"workload\":\"x\"}!");
        assert_eq!(status, 202);
        assert_eq!(body, "{\"job\":1}");
    }

    #[test]
    fn get_without_body() {
        let (req, (status, _)) = pump("GET /health HTTP/1.1\r\n\r\n", 200, "{\"ok\":true}");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
        assert_eq!(status, 200);
    }

    #[test]
    fn extra_headers_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /runs HTTP/1.1\r\n\r\n").unwrap();
            read_response_full(&mut s).unwrap()
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let _ = read_request(&mut server_side).unwrap();
        write_response_with(
            &mut server_side,
            429,
            &[("retry-after", "1")],
            "{\"error\":\"queue_full\"}",
        )
        .unwrap();
        drop(server_side);
        let resp = client.join().unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after_secs(), Some(1));
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body, "{\"error\":\"queue_full\"}");
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                format!("POST /runs HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 1 << 30).as_bytes(),
            )
            .unwrap();
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        assert!(read_request(&mut server_side).is_err());
        drop(client.join().unwrap());
    }
}
