//! A minimal HTTP/1.1 request/response layer over `std::net`.
//!
//! Just enough protocol for the experiment server and the shard router:
//! request line + headers + `Content-Length`-delimited bodies, hard
//! size limits on every dimension an untrusted peer controls (header
//! bytes, header count, line length, body bytes — oversized input is
//! rejected with `431`/`400` instead of allocated), HTTP/1.1 keep-alive
//! with an explicit `Connection:` header on every response, and a small
//! table of status codes.
//!
//! [`serve_pooled`] is the shared listener front end: a bounded queue of
//! accepted connections drained by a fixed pool of handler threads, each
//! serving many requests per connection (persistent connections with a
//! per-connection request cap and idle reaping) instead of the old
//! thread-per-connection / one-request-per-connection discipline.
//! Per-request socket read/write timeouts are set on the `TcpStream`
//! before parsing, so a stalled peer can never wedge a handler thread
//! for longer than the idle timeout.
//!
//! The layer does not implement pipelining: both our client and the
//! router send request N+1 only after reading response N, which is what
//! makes a fresh `BufReader` per exchange safe on a reused connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::json::error_body;
use crate::queue::BoundedQueue;

/// Maximum bytes of request line + headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Maximum bytes of request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADER_COUNT: usize = 64;

/// A parsed request: method, path, body, and connection disposition.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), upper-cased as received.
    pub method: String,
    /// Request path including any query string, e.g. `/jobs/17`.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the peer is willing to keep the connection open
    /// (HTTP/1.1 default unless `Connection: close` was sent).
    pub keep_alive: bool,
}

/// Why a request could not be parsed, carrying the response status the
/// peer should see (or `None` when the connection should be dropped
/// silently, e.g. a clean EOF between keep-alive requests).
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection, timed out, or vanished
    /// mid-request; there is nobody to answer.
    Closed(String),
    /// The request is malformed — answer `400`.
    Malformed(String),
    /// The request line or header section exceeds a hard bound — answer
    /// `431` without having allocated the oversized input.
    TooLarge(String),
}

impl RequestError {
    /// The HTTP status to answer with, if the peer is still there.
    pub fn status(&self) -> Option<u16> {
        match self {
            RequestError::Closed(_) => None,
            RequestError::Malformed(_) => Some(400),
            RequestError::TooLarge(_) => Some(431),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed(msg)
            | RequestError::Malformed(msg)
            | RequestError::TooLarge(msg) => write!(f, "{msg}"),
        }
    }
}

/// Reads one line of at most `cap` bytes. The read is bounded *before*
/// buffering (`Take`), so a hostile peer streaming an endless line costs
/// at most `cap + 1` bytes of allocation, not unbounded growth.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    cap: usize,
    what: &str,
) -> Result<String, RequestError> {
    let mut buf = Vec::new();
    reader
        .by_ref()
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| RequestError::Closed(format!("read {what}: {e}")))?;
    if buf.len() > cap {
        return Err(RequestError::TooLarge(format!(
            "{what} exceeds {cap} bytes"
        )));
    }
    String::from_utf8(buf).map_err(|_| RequestError::Malformed(format!("{what} is not UTF-8")))
}

/// Reads one HTTP/1.1 request, enforcing every size bound.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let line = read_line_bounded(&mut reader, MAX_HEADER_BYTES, "request line")?;
    if line.is_empty() {
        return Err(RequestError::Closed("empty request".into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1").to_ascii_uppercase();

    let mut content_length = 0usize;
    let mut keep_alive = version != "HTTP/1.0";
    let mut header_bytes = line.len();
    let mut header_count = 0usize;
    loop {
        let header = read_line_bounded(&mut reader, MAX_HEADER_BYTES, "header")?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge(format!(
                "headers exceed {MAX_HEADER_BYTES} bytes"
            )));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADER_COUNT {
            return Err(RequestError::TooLarge(format!(
                "more than {MAX_HEADER_COUNT} headers"
            )));
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| RequestError::Malformed("bad content-length".into()))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(RequestError::Malformed("body too large".into()));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| RequestError::Closed(format!("read body: {e}")))?;
    let body =
        String::from_utf8(body).map_err(|_| RequestError::Malformed("body is not UTF-8".into()))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response with `Connection: close` and flushes.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_keep(stream, status, &[], body, false)
}

/// [`write_response`] with extra headers (e.g. `retry-after` on a 429).
/// Header names must already be lower-case.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    write_response_keep(stream, status, extra_headers, body, false)
}

/// Writes one response, advertising whether the connection stays open.
pub fn write_response_keep(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", status, reason(status));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "content-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A parsed response: status, headers (names lower-cased), body.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers with lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// First header value under `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `retry-after` header parsed as whole seconds, if present.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }

    /// Whether the sender left the connection open for reuse.
    pub fn keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

/// Reads one response off a client connection: `(status, body)`.
pub fn read_response(stream: &mut TcpStream) -> Result<(u16, String), String> {
    let r = read_response_full(stream)?;
    Ok((r.status, r.body))
}

/// Reads one full response (status + headers + body) off a client
/// connection. Safe on a reused keep-alive connection: the body is
/// `Content-Length`-delimited and fully consumed, so nothing of the
/// next exchange is buffered away.
pub fn read_response_full(stream: &mut TcpStream) -> Result<HttpResponse, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {line:?}"))?;
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse::<usize>().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            buf
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Tuning for the pooled-connection listener.
#[derive(Clone, Copy, Debug)]
pub struct PoolPolicy {
    /// Handler threads draining the accepted-connection queue.
    pub threads: usize,
    /// Accepted connections queued beyond the handler pool; further
    /// arrivals are shed with `503`.
    pub backlog: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before it is reaped.
    pub idle_timeout: Duration,
    /// Requests served per connection before it is closed (bounds how
    /// long one peer can monopolize a handler thread).
    pub max_requests: u32,
    /// Socket write timeout (and the bound on one request's read once
    /// bytes are flowing).
    pub io_timeout: Duration,
}

impl Default for PoolPolicy {
    fn default() -> Self {
        PoolPolicy {
            threads: 4,
            backlog: 64,
            idle_timeout: Duration::from_secs(2),
            max_requests: 128,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// What a [`serve_pooled`] handler answers for one request.
#[derive(Debug)]
pub struct Reply {
    /// Response status.
    pub status: u16,
    /// Extra response headers (lower-case names).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
    /// Force-close this connection after the response.
    pub close: bool,
    /// Stop the whole listener after the response is written (graceful
    /// shutdown).
    pub stop: bool,
    /// Write a torn response head and hang up instead (chaos
    /// injection: exercises client transport retries).
    pub reset: bool,
}

impl Reply {
    /// A plain JSON reply with no special disposition.
    pub fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            headers: Vec::new(),
            body,
            close: false,
            stop: false,
            reset: false,
        }
    }
}

/// Serves `listener` with a bounded keep-alive connection pool until a
/// handler returns [`Reply::stop`].
///
/// The accept thread (the caller) pushes connections onto a bounded
/// queue drained by `policy.threads` handler threads. Each connection
/// is served up to `policy.max_requests` requests; between requests the
/// socket read timeout is the idle timeout, so an abandoned keep-alive
/// connection is reaped instead of pinning its handler. Under
/// contention (connections waiting in the queue) responses advertise
/// `Connection: close`, shedding persistence so waiting peers are
/// served promptly. Oversized or malformed requests are answered
/// `431`/`400` and the connection dropped.
///
/// Blocks until the listener stops and every handler thread has
/// finished; all accepted connections are served or closed by then.
pub fn serve_pooled<H>(listener: TcpListener, policy: PoolPolicy, handler: H)
where
    H: Fn(&Request) -> Reply + Send + Sync + 'static,
{
    let local = listener.local_addr().ok();
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::new(policy.backlog.max(1)));
    let handler = Arc::new(handler);
    let handlers: Vec<_> = (0..policy.threads.max(1))
        .map(|_| {
            let conns = Arc::clone(&conns);
            let stop = Arc::clone(&stop);
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || {
                while let Some(batch) = conns.pop_batch(1) {
                    for mut stream in batch {
                        serve_connection(&mut stream, &policy, &stop, &conns, &*handler, local);
                    }
                }
            })
        })
        .collect();

    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if conns.len() >= policy.backlog {
            // Shed: answering 503 here keeps overload visible instead of
            // letting the accept backlog grow without bound.
            let _ = stream.set_write_timeout(Some(policy.io_timeout));
            let _ = write_response_keep(
                &mut stream,
                503,
                &[("retry-after", "1")],
                &error_body("connection backlog full"),
                false,
            );
            continue;
        }
        // A race past the depth check just drops the connection; the
        // client's transport retry covers it.
        let _ = conns.try_push(stream);
    }

    conns.close();
    for h in handlers {
        let _ = h.join();
    }
}

/// Serves one connection until close, error, request cap, or stop.
fn serve_connection<H>(
    stream: &mut TcpStream,
    policy: &PoolPolicy,
    stop: &AtomicBool,
    conns: &BoundedQueue<TcpStream>,
    handler: &H,
    local: Option<std::net::SocketAddr>,
) where
    H: Fn(&Request) -> Reply,
{
    let _ = stream.set_write_timeout(Some(policy.io_timeout));
    let _ = stream.set_read_timeout(Some(policy.idle_timeout));
    let mut served = 0u32;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let req = match read_request(stream) {
            Ok(req) => req,
            Err(err) => {
                if let Some(status) = err.status() {
                    let _ = write_response_keep(
                        stream,
                        status,
                        &[],
                        &error_body(&err.to_string()),
                        false,
                    );
                }
                break;
            }
        };
        served += 1;
        let reply = handler(&req);
        if reply.reset {
            let _ = stream.write_all(b"HTTP/1.1 ");
            let _ = stream.flush();
            break;
        }
        // Keep the connection only while nothing else is waiting: under
        // contention persistence is shed so queued peers get a thread.
        let keep = req.keep_alive
            && !reply.close
            && !reply.stop
            && served < policy.max_requests
            && !stop.load(Ordering::SeqCst)
            && conns.is_empty();
        let headers: Vec<(&str, &str)> = reply
            .headers
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        let _ = write_response_keep(stream, reply.status, &headers, &reply.body, keep);
        if reply.stop {
            stop.store(true, Ordering::SeqCst);
            conns.close();
            // Wake the accept loop so it observes the stop flag.
            if let Some(addr) = local {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
        if !keep {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pump(request: &str, status: u16, body: &str) -> (Request, (u16, String)) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let request = request.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(request.as_bytes()).unwrap();
            read_response(&mut s).unwrap()
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side).unwrap();
        write_response(&mut server_side, status, body).unwrap();
        drop(server_side);
        (req, client.join().unwrap())
    }

    /// Parses `request` server-side and returns the outcome.
    fn parse(request: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let request = request.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = s.write_all(&request);
            // FIN the write side so a server waiting for bytes that will
            // never come (e.g. the empty request) sees EOF, not a hang.
            let _ = s.shutdown(std::net::Shutdown::Write);
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let result = read_request(&mut server_side);
        drop(client.join().unwrap());
        result
    }

    #[test]
    fn request_and_response_round_trip() {
        let (req, (status, body)) = pump(
            "POST /runs HTTP/1.1\r\ncontent-length: 17\r\n\r\n{\"workload\":\"x\"}!",
            202,
            "{\"job\":1}",
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/runs");
        assert_eq!(req.body, "{\"workload\":\"x\"}!");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(status, 202);
        assert_eq!(body, "{\"job\":1}");
    }

    #[test]
    fn get_without_body() {
        let (req, (status, _)) = pump("GET /health HTTP/1.1\r\n\r\n", 200, "{\"ok\":true}");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
        assert_eq!(status, 200);
    }

    #[test]
    fn connection_close_is_honored() {
        let (req, _) = pump(
            "GET /health HTTP/1.1\r\nconnection: close\r\n\r\n",
            200,
            "{}",
        );
        assert!(!req.keep_alive);
        let (req, _) = pump(
            "GET /health HTTP/1.0\r\nconnection: keep-alive\r\n\r\n",
            200,
            "{}",
        );
        assert!(req.keep_alive, "explicit keep-alive upgrades HTTP/1.0");
    }

    #[test]
    fn extra_headers_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /runs HTTP/1.1\r\n\r\n").unwrap();
            read_response_full(&mut s).unwrap()
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let _ = read_request(&mut server_side).unwrap();
        write_response_with(
            &mut server_side,
            429,
            &[("retry-after", "1")],
            "{\"error\":\"queue_full\"}",
        )
        .unwrap();
        drop(server_side);
        let resp = client.join().unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after_secs(), Some(1));
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert!(!resp.keep_alive());
        assert_eq!(resp.body, "{\"error\":\"queue_full\"}");
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let req = format!("POST /runs HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 1 << 30);
        match parse(req.as_bytes()) {
            Err(e @ RequestError::Malformed(_)) => assert_eq!(e.status(), Some(400)),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn endless_request_line_is_bounded() {
        // A request line streamed without a newline must be cut off at
        // the bound, not buffered until memory runs out.
        let mut req = b"GET /".to_vec();
        req.extend(std::iter::repeat_n(b'a', 2 * MAX_HEADER_BYTES));
        match parse(&req) {
            Err(e @ RequestError::TooLarge(_)) => assert_eq!(e.status(), Some(431)),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_header_section_is_bounded() {
        let mut req = b"GET /health HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            req.extend(format!("x-filler-{i}: {}\r\n", "y".repeat(100)).into_bytes());
        }
        req.extend(b"\r\n");
        match parse(&req) {
            Err(e @ RequestError::TooLarge(_)) => assert_eq!(e.status(), Some(431)),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn too_many_headers_are_rejected() {
        // Many tiny headers stay under the byte bound but blow the
        // header-count bound.
        let mut req = b"GET /health HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADER_COUNT + 10) {
            req.extend(format!("h{i}: v\r\n").into_bytes());
        }
        req.extend(b"\r\n");
        match parse(&req) {
            Err(e @ RequestError::TooLarge(_)) => assert_eq!(e.status(), Some(431)),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn bad_content_length_is_malformed() {
        match parse(b"POST /runs HTTP/1.1\r\ncontent-length: banana\r\n\r\n") {
            Err(e @ RequestError::Malformed(_)) => assert_eq!(e.status(), Some(400)),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn empty_connection_is_closed_not_answered() {
        match parse(b"") {
            Err(e @ RequestError::Closed(_)) => assert_eq!(e.status(), None),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn serve_pooled_keeps_connections_alive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_pooled(listener, PoolPolicy::default(), |req: &Request| {
                let mut reply = Reply::json(200, format!("{{\"path\":\"{}\"}}", req.path));
                reply.stop = req.path == "/stop";
                reply
            });
        });

        // Three requests over ONE connection, then a stop request.
        let mut s = TcpStream::connect(addr).unwrap();
        for i in 0..3 {
            let head = format!("GET /r{i} HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
            s.write_all(head.as_bytes()).unwrap();
            let resp = read_response_full(&mut s).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, format!("{{\"path\":\"/r{i}\"}}"));
            assert!(resp.keep_alive(), "request {i} should keep the connection");
        }
        s.write_all(b"GET /stop HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
            .unwrap();
        let resp = read_response_full(&mut s).unwrap();
        assert!(!resp.keep_alive(), "stop reply must close");
        server.join().unwrap();
    }

    #[test]
    fn serve_pooled_answers_431_for_hostile_input() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_pooled(listener, PoolPolicy::default(), |req: &Request| {
                let mut reply = Reply::json(200, "{}".into());
                reply.stop = req.path == "/stop";
                reply
            });
        });

        let mut s = TcpStream::connect(addr).unwrap();
        let mut hostile = b"GET /".to_vec();
        hostile.extend(std::iter::repeat_n(b'a', 2 * MAX_HEADER_BYTES));
        s.write_all(&hostile).unwrap();
        let resp = read_response_full(&mut s).unwrap();
        assert_eq!(resp.status, 431);

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /stop HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
            .unwrap();
        assert_eq!(read_response_full(&mut s).unwrap().status, 200);
        server.join().unwrap();
    }
}
