//! Parsed run requests and their store-aware execution.
//!
//! A [`RunSpec`] is the validated form of a client request ("run `lbm`
//! under the `perf-focused` static policy"). [`RunSpec::execute`] is the
//! single choke point between the serving layer and the simulator: it
//! consults the [`RunStore`] first, simulates only on a miss, and
//! persists what it simulated — including the intermediate DDR-only
//! profile that static/migration/annotated runs depend on, so a later
//! request for any run of the same workload starts from a warm profile.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ramp_core::config::SystemConfig;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_core::runner;
use ramp_core::system::{RunHooks, RunResult, SystemSim};
use ramp_trace::Workload;

use crate::store::{run_key, RunKind, RunStore};

/// Policy label recorded for profile runs (a profile *is* a DDR-only run).
pub const PROFILE_POLICY: &str = "ddr-only";
/// Policy label recorded for annotated runs.
pub const ANNOTATED_POLICY: &str = "annotations";
/// Environment variable: checkpoint every K FC-interval epochs
/// (`0`/unset disables checkpointing).
pub const ENV_CKPT_EPOCHS: &str = "RAMP_CKPT_EPOCHS";

/// Reads the [`ENV_CKPT_EPOCHS`] knob: checkpoint every K epochs, 0 = off.
/// The simulator core never reads the environment; this serving-layer
/// shim is the only place the knob is interpreted.
pub fn ckpt_epochs_from_env() -> u64 {
    std::env::var(ENV_CKPT_EPOCHS)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Live progress of one executing run, shared lock-free between the
/// worker thread driving the simulation and poll responses reading it.
#[derive(Debug, Default)]
pub struct RunProgress {
    /// FC-interval epochs completed so far.
    pub epochs_done: AtomicU64,
    /// Lower-bound estimate of the run's total epochs
    /// ([`SystemConfig::epochs_estimate`]); real runs overshoot it, so
    /// `done > total` means "still running", not an error.
    pub epochs_total: AtomicU64,
    /// Epoch of the last durable checkpoint (0 = none yet).
    pub ckpt_epoch: AtomicU64,
    /// Whether this execution resumed from a checkpoint.
    pub resumed: AtomicBool,
}

/// What [`RunSpec::execute_with_progress`] produced.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The simulation result.
    pub run: RunResult,
    /// `false` when any store write of this execution failed, i.e. the
    /// result is correct but served from memory only.
    pub persisted: bool,
    /// `true` when any simulated phase of this execution (the run
    /// itself or its intermediate profile) resumed from a checkpoint
    /// instead of starting cold.
    pub resumed: bool,
}

/// Runs `build()`'s simulator to completion with epoch-granular
/// checkpointing into `store` under `key`, resuming from the newest
/// restorable checkpoint when one exists.
///
/// Torn or corrupt segments are filtered (and quarantined) by
/// [`RunStore::load_latest_checkpoint`]; a segment that *frames*
/// cleanly but fails to restore — e.g. one written for a different run
/// — is quarantined here and the walk falls back further, so worst
/// case the run simply starts cold. On completion the run's checkpoint
/// trail is removed. Returns the result and whether the run resumed.
///
/// Public because the `ramp-bench` harness drives its simulations
/// through the same path: any process that can reach the run store gets
/// kill-and-resume for free.
pub fn run_with_recovery(
    build: impl Fn() -> SystemSim,
    key: &str,
    label: &str,
    store: Option<&RunStore>,
    progress: Option<&RunProgress>,
) -> (RunResult, bool) {
    run_with_recovery_every(build, key, label, store, progress, ckpt_epochs_from_env())
}

/// [`run_with_recovery`] with an explicit checkpoint interval instead of
/// the environment knob (0 disables checkpointing). The recovery test
/// suite uses this to exercise kill/resume without mutating process env.
pub fn run_with_recovery_every(
    build: impl Fn() -> SystemSim,
    key: &str,
    label: &str,
    store: Option<&RunStore>,
    progress: Option<&RunProgress>,
    ckpt_every: u64,
) -> (RunResult, bool) {
    let mut sim = build();
    let mut resumed = false;
    if ckpt_every > 0 {
        if let Some(s) = store {
            while let Some((epoch, bytes)) = s.load_latest_checkpoint(key) {
                match sim.restore_state(&bytes) {
                    Ok(()) => {
                        if let Some(p) = progress {
                            p.epochs_done.store(epoch, Ordering::Relaxed);
                            p.ckpt_epoch.store(epoch, Ordering::Relaxed);
                            p.resumed.store(true, Ordering::Relaxed);
                        }
                        // Stderr only: stdout of a resumed run must stay
                        // byte-identical to an uninterrupted one.
                        eprintln!("[ckpt] resumed {label} from epoch {epoch}");
                        resumed = true;
                        break;
                    }
                    Err(e) => {
                        s.quarantine_checkpoint(key, epoch, &format!("{e:?}"));
                        sim = build(); // restore may have partially mutated it
                    }
                }
            }
        }
    }
    let mut on_epoch = |epoch: u64| {
        if let Some(p) = progress {
            p.epochs_done.store(epoch, Ordering::Relaxed);
        }
    };
    let mut on_checkpoint = |epoch: u64, blob: Vec<u8>| {
        if let Some(s) = store {
            if s.store_checkpoint(key, epoch, &blob) {
                if let Some(p) = progress {
                    p.ckpt_epoch.store(epoch, Ordering::Relaxed);
                }
            }
        }
    };
    let run = sim.run_with_hooks(RunHooks {
        checkpoint_every: if store.is_some() { ckpt_every } else { 0 },
        on_epoch: Some(&mut on_epoch),
        on_checkpoint: Some(&mut on_checkpoint),
    });
    if ckpt_every > 0 {
        if let Some(s) = store {
            s.remove_checkpoints(key);
        }
    }
    (run, resumed)
}

/// What to do with the workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunAction {
    /// DDR-only profiling run.
    Profile,
    /// Static placement under a policy.
    Static(PlacementPolicy),
    /// Dynamic migration under a scheme.
    Migration(MigrationScheme),
    /// Programmer-annotated placement.
    Annotated,
}

/// A validated, executable run request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSpec {
    /// The workload to run.
    pub workload: Workload,
    /// The kind of run and its policy/scheme, if any.
    pub action: RunAction,
}

impl RunSpec {
    /// Parses the `(workload, kind, policy)` triple of a client request.
    ///
    /// `kind` is one of `profile`, `static`, `migration`, `annotated`;
    /// `policy` names a [`PlacementPolicy`] for `static` runs and a
    /// [`MigrationScheme`] for `migration` runs (and must be empty
    /// otherwise). Errors are human-readable strings for 400 responses.
    pub fn parse(workload: &str, kind: &str, policy: &str) -> Result<RunSpec, String> {
        let wl = Workload::from_name(workload)
            .ok_or_else(|| format!("unknown workload '{workload}'"))?;
        let action = match kind {
            "profile" | "annotated" => {
                if !policy.is_empty() {
                    return Err(format!("kind '{kind}' takes no policy"));
                }
                if kind == "profile" {
                    RunAction::Profile
                } else {
                    RunAction::Annotated
                }
            }
            "static" => RunAction::Static(
                PlacementPolicy::from_name(policy)
                    .ok_or_else(|| format!("unknown placement policy '{policy}'"))?,
            ),
            "migration" => RunAction::Migration(
                MigrationScheme::from_name(policy)
                    .ok_or_else(|| format!("unknown migration scheme '{policy}'"))?,
            ),
            _ => return Err(format!("unknown run kind '{kind}'")),
        };
        Ok(RunSpec {
            workload: wl,
            action,
        })
    }

    /// The store kind of this spec.
    pub fn kind(&self) -> RunKind {
        match self.action {
            RunAction::Profile => RunKind::Profile,
            RunAction::Static(_) => RunKind::Static,
            RunAction::Migration(_) => RunKind::Migration,
            RunAction::Annotated => RunKind::Annotated,
        }
    }

    /// The policy/scheme label recorded in results and keys.
    pub fn policy_label(&self) -> String {
        match self.action {
            RunAction::Profile => PROFILE_POLICY.to_string(),
            RunAction::Static(p) => p.name(),
            RunAction::Migration(s) => s.name().to_string(),
            RunAction::Annotated => ANNOTATED_POLICY.to_string(),
        }
    }

    /// The content-addressed store key of this run under `cfg`.
    pub fn key(&self, cfg: &SystemConfig) -> String {
        run_key(cfg, self.kind(), self.workload.name(), &self.policy_label())
    }

    /// Executes the spec, serving from `store` when possible and
    /// persisting whatever had to be simulated.
    pub fn execute(&self, cfg: &SystemConfig, store: Option<&RunStore>) -> RunResult {
        self.execute_tracked(cfg, store).0
    }

    /// [`RunSpec::execute`] that also reports persistence: the second
    /// element is `false` when any store write of this execution (the
    /// run itself or an intermediate profile) failed, i.e. the result is
    /// correct but served from memory only — the caller can degrade
    /// gracefully instead of erroring.
    pub fn execute_tracked(
        &self,
        cfg: &SystemConfig,
        store: Option<&RunStore>,
    ) -> (RunResult, bool) {
        let outcome = self.execute_with_progress(cfg, store, None);
        (outcome.run, outcome.persisted)
    }

    /// [`RunSpec::execute_tracked`] with live progress reporting and
    /// epoch-granular checkpoint/resume.
    ///
    /// When `RAMP_CKPT_EPOCHS` is set (and a store is attached), every
    /// simulated phase checkpoints its full state every K epochs and —
    /// if a previous process died mid-run — resumes from the newest
    /// valid checkpoint, producing a byte-identical result to an
    /// uninterrupted run. `progress` (shared with poll responses) tracks
    /// the *requested* run; intermediate profile phases keep
    /// `epochs_done` at zero rather than reporting a misleading reset.
    pub fn execute_with_progress(
        &self,
        cfg: &SystemConfig,
        store: Option<&RunStore>,
        progress: Option<&RunProgress>,
    ) -> ExecOutcome {
        if let Some(p) = progress {
            p.epochs_total
                .store(cfg.epochs_estimate(), Ordering::Relaxed);
        }
        let key = self.key(cfg);
        let label = format!("{}/{}", self.workload.name(), self.policy_label());
        if let Some(s) = store {
            if self.kind() == RunKind::Annotated {
                if let Some((run, _)) = s.load_annotated(&key) {
                    return ExecOutcome {
                        run,
                        persisted: true,
                        resumed: false,
                    };
                }
            } else if let Some(run) = s.load_run(&key) {
                return ExecOutcome {
                    run,
                    persisted: true,
                    resumed: false,
                };
            }
        }
        let wl = self.workload;
        if let RunAction::Profile = self.action {
            let (run, resumed) = run_with_recovery(
                || runner::build_profile_sim(cfg, &wl),
                &key,
                &label,
                store,
                progress,
            );
            let persisted = match store {
                Some(s) => s.store_run(&key, &run),
                None => true,
            };
            return ExecOutcome {
                run,
                persisted,
                resumed,
            };
        }
        let profile_outcome = RunSpec {
            workload: self.workload,
            action: RunAction::Profile,
        }
        .execute_with_progress(cfg, store, None);
        let mut persisted = profile_outcome.persisted;
        let profile = profile_outcome.run;
        let (run, resumed) = match self.action {
            RunAction::Static(policy) => {
                let (run, resumed) = run_with_recovery(
                    || runner::build_static_sim(cfg, &wl, policy, &profile.table),
                    &key,
                    &label,
                    store,
                    progress,
                );
                if let Some(s) = store {
                    persisted &= s.store_run(&key, &run);
                }
                (run, resumed)
            }
            RunAction::Migration(scheme) => {
                let (run, resumed) = run_with_recovery(
                    || runner::build_migration_sim(cfg, &wl, scheme, &profile.table),
                    &key,
                    &label,
                    store,
                    progress,
                );
                if let Some(s) = store {
                    persisted &= s.store_run(&key, &run);
                }
                (run, resumed)
            }
            RunAction::Annotated => {
                let set = runner::build_annotated_sim(cfg, &wl, &profile.table).1;
                let (run, resumed) = run_with_recovery(
                    || runner::build_annotated_sim(cfg, &wl, &profile.table).0,
                    &key,
                    &label,
                    store,
                    progress,
                );
                if let Some(s) = store {
                    persisted &= s.store_annotated(&key, &run, &set);
                }
                (run, resumed)
            }
            RunAction::Profile => unreachable!("handled above"),
        };
        ExecOutcome {
            run,
            persisted,
            resumed: profile_outcome.resumed || resumed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn parse_accepts_all_kinds() {
        assert_eq!(
            RunSpec::parse("lbm", "profile", "").unwrap().action,
            RunAction::Profile
        );
        assert_eq!(
            RunSpec::parse("lbm", "static", "perf-focused")
                .unwrap()
                .action,
            RunAction::Static(PlacementPolicy::PerfFocused)
        );
        assert_eq!(
            RunSpec::parse("mcf", "migration", "rel-fc").unwrap().action,
            RunAction::Migration(MigrationScheme::RelFc)
        );
        assert_eq!(
            RunSpec::parse("mcf", "annotated", "").unwrap().action,
            RunAction::Annotated
        );
        assert!(matches!(
            RunSpec::parse("lbm", "static", "frac-hottest-0.25").unwrap().action,
            RunAction::Static(PlacementPolicy::FracHottest(f)) if (f - 0.25).abs() < 1e-12
        ));
    }

    #[test]
    fn parse_rejects_bad_triples() {
        assert!(RunSpec::parse("nope", "profile", "").is_err());
        assert!(RunSpec::parse("lbm", "profile", "perf-focused").is_err());
        assert!(RunSpec::parse("lbm", "static", "").is_err());
        assert!(RunSpec::parse("lbm", "static", "rel-fc").is_err());
        assert!(RunSpec::parse("lbm", "migration", "perf-focused").is_err());
        assert!(RunSpec::parse("lbm", "sweep", "x").is_err());
    }

    #[test]
    fn execute_hits_store_on_second_call() {
        let store = crate::store::testutil::test_store();
        let cfg = SystemConfig {
            insts_per_core: 20_000,
            ..SystemConfig::smoke_test()
        };
        let spec = RunSpec::parse("lbm", "static", "perf-focused").unwrap();
        let cold = spec.execute(&cfg, Some(&store));
        // Cold run persisted the profile and the static run.
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 2);
        let warm = spec.execute(&cfg, Some(&store));
        assert_eq!(store.metrics().hits.load(Ordering::Relaxed), 1);
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 2);
        assert_eq!(cold.ipc.to_bits(), warm.ipc.to_bits());
        assert_eq!(cold.telemetry, warm.telemetry);
        // The cached profile also serves other policies' dependency.
        let other = RunSpec::parse("lbm", "static", "rel-focused").unwrap();
        other.execute(&cfg, Some(&store));
        assert_eq!(store.metrics().hits.load(Ordering::Relaxed), 2);
    }
}
