//! Parsed run requests and their store-aware execution.
//!
//! A [`RunSpec`] is the validated form of a client request ("run `lbm`
//! under the `perf-focused` static policy"). [`RunSpec::execute`] is the
//! single choke point between the serving layer and the simulator: it
//! consults the [`RunStore`] first, simulates only on a miss, and
//! persists what it simulated — including the intermediate DDR-only
//! profile that static/migration/annotated runs depend on, so a later
//! request for any run of the same workload starts from a warm profile.

use ramp_core::config::SystemConfig;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_core::runner;
use ramp_core::system::RunResult;
use ramp_trace::Workload;

use crate::store::{run_key, RunKind, RunStore};

/// Policy label recorded for profile runs (a profile *is* a DDR-only run).
pub const PROFILE_POLICY: &str = "ddr-only";
/// Policy label recorded for annotated runs.
pub const ANNOTATED_POLICY: &str = "annotations";

/// What to do with the workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunAction {
    /// DDR-only profiling run.
    Profile,
    /// Static placement under a policy.
    Static(PlacementPolicy),
    /// Dynamic migration under a scheme.
    Migration(MigrationScheme),
    /// Programmer-annotated placement.
    Annotated,
}

/// A validated, executable run request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSpec {
    /// The workload to run.
    pub workload: Workload,
    /// The kind of run and its policy/scheme, if any.
    pub action: RunAction,
}

impl RunSpec {
    /// Parses the `(workload, kind, policy)` triple of a client request.
    ///
    /// `kind` is one of `profile`, `static`, `migration`, `annotated`;
    /// `policy` names a [`PlacementPolicy`] for `static` runs and a
    /// [`MigrationScheme`] for `migration` runs (and must be empty
    /// otherwise). Errors are human-readable strings for 400 responses.
    pub fn parse(workload: &str, kind: &str, policy: &str) -> Result<RunSpec, String> {
        let wl = Workload::from_name(workload)
            .ok_or_else(|| format!("unknown workload '{workload}'"))?;
        let action = match kind {
            "profile" | "annotated" => {
                if !policy.is_empty() {
                    return Err(format!("kind '{kind}' takes no policy"));
                }
                if kind == "profile" {
                    RunAction::Profile
                } else {
                    RunAction::Annotated
                }
            }
            "static" => RunAction::Static(
                PlacementPolicy::from_name(policy)
                    .ok_or_else(|| format!("unknown placement policy '{policy}'"))?,
            ),
            "migration" => RunAction::Migration(
                MigrationScheme::from_name(policy)
                    .ok_or_else(|| format!("unknown migration scheme '{policy}'"))?,
            ),
            _ => return Err(format!("unknown run kind '{kind}'")),
        };
        Ok(RunSpec {
            workload: wl,
            action,
        })
    }

    /// The store kind of this spec.
    pub fn kind(&self) -> RunKind {
        match self.action {
            RunAction::Profile => RunKind::Profile,
            RunAction::Static(_) => RunKind::Static,
            RunAction::Migration(_) => RunKind::Migration,
            RunAction::Annotated => RunKind::Annotated,
        }
    }

    /// The policy/scheme label recorded in results and keys.
    pub fn policy_label(&self) -> String {
        match self.action {
            RunAction::Profile => PROFILE_POLICY.to_string(),
            RunAction::Static(p) => p.name(),
            RunAction::Migration(s) => s.name().to_string(),
            RunAction::Annotated => ANNOTATED_POLICY.to_string(),
        }
    }

    /// The content-addressed store key of this run under `cfg`.
    pub fn key(&self, cfg: &SystemConfig) -> String {
        run_key(cfg, self.kind(), self.workload.name(), &self.policy_label())
    }

    /// Executes the spec, serving from `store` when possible and
    /// persisting whatever had to be simulated.
    pub fn execute(&self, cfg: &SystemConfig, store: Option<&RunStore>) -> RunResult {
        self.execute_tracked(cfg, store).0
    }

    /// [`RunSpec::execute`] that also reports persistence: the second
    /// element is `false` when any store write of this execution (the
    /// run itself or an intermediate profile) failed, i.e. the result is
    /// correct but served from memory only — the caller can degrade
    /// gracefully instead of erroring.
    pub fn execute_tracked(
        &self,
        cfg: &SystemConfig,
        store: Option<&RunStore>,
    ) -> (RunResult, bool) {
        let key = self.key(cfg);
        if let Some(s) = store {
            if self.kind() == RunKind::Annotated {
                if let Some((run, _)) = s.load_annotated(&key) {
                    return (run, true);
                }
            } else if let Some(run) = s.load_run(&key) {
                return (run, true);
            }
        }
        if let RunAction::Profile = self.action {
            let run = runner::profile_workload(cfg, &self.workload);
            let persisted = match store {
                Some(s) => s.store_run(&key, &run),
                None => true,
            };
            return (run, persisted);
        }
        let (profile, mut persisted) = RunSpec {
            workload: self.workload,
            action: RunAction::Profile,
        }
        .execute_tracked(cfg, store);
        let run = match self.action {
            RunAction::Static(policy) => {
                let run = runner::run_static(cfg, &self.workload, policy, &profile.table);
                if let Some(s) = store {
                    persisted &= s.store_run(&key, &run);
                }
                run
            }
            RunAction::Migration(scheme) => {
                let run = runner::run_migration(cfg, &self.workload, scheme, &profile.table);
                if let Some(s) = store {
                    persisted &= s.store_run(&key, &run);
                }
                run
            }
            RunAction::Annotated => {
                let (run, set) = runner::run_annotated(cfg, &self.workload, &profile.table);
                if let Some(s) = store {
                    persisted &= s.store_annotated(&key, &run, &set);
                }
                run
            }
            RunAction::Profile => unreachable!("handled above"),
        };
        (run, persisted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn parse_accepts_all_kinds() {
        assert_eq!(
            RunSpec::parse("lbm", "profile", "").unwrap().action,
            RunAction::Profile
        );
        assert_eq!(
            RunSpec::parse("lbm", "static", "perf-focused")
                .unwrap()
                .action,
            RunAction::Static(PlacementPolicy::PerfFocused)
        );
        assert_eq!(
            RunSpec::parse("mcf", "migration", "rel-fc").unwrap().action,
            RunAction::Migration(MigrationScheme::RelFc)
        );
        assert_eq!(
            RunSpec::parse("mcf", "annotated", "").unwrap().action,
            RunAction::Annotated
        );
        assert!(matches!(
            RunSpec::parse("lbm", "static", "frac-hottest-0.25").unwrap().action,
            RunAction::Static(PlacementPolicy::FracHottest(f)) if (f - 0.25).abs() < 1e-12
        ));
    }

    #[test]
    fn parse_rejects_bad_triples() {
        assert!(RunSpec::parse("nope", "profile", "").is_err());
        assert!(RunSpec::parse("lbm", "profile", "perf-focused").is_err());
        assert!(RunSpec::parse("lbm", "static", "").is_err());
        assert!(RunSpec::parse("lbm", "static", "rel-fc").is_err());
        assert!(RunSpec::parse("lbm", "migration", "perf-focused").is_err());
        assert!(RunSpec::parse("lbm", "sweep", "x").is_err());
    }

    #[test]
    fn execute_hits_store_on_second_call() {
        let store = crate::store::testutil::test_store();
        let cfg = SystemConfig {
            insts_per_core: 20_000,
            ..SystemConfig::smoke_test()
        };
        let spec = RunSpec::parse("lbm", "static", "perf-focused").unwrap();
        let cold = spec.execute(&cfg, Some(&store));
        // Cold run persisted the profile and the static run.
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 2);
        let warm = spec.execute(&cfg, Some(&store));
        assert_eq!(store.metrics().hits.load(Ordering::Relaxed), 1);
        assert_eq!(store.metrics().writes.load(Ordering::Relaxed), 2);
        assert_eq!(cold.ipc.to_bits(), warm.ipc.to_bits());
        assert_eq!(cold.telemetry, warm.telemetry);
        // The cached profile also serves other policies' dependency.
        let other = RunSpec::parse("lbm", "static", "rel-focused").unwrap();
        other.execute(&cfg, Some(&store));
        assert_eq!(store.metrics().hits.load(Ordering::Relaxed), 2);
    }
}
