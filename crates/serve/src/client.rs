//! A scriptable client for the experiment server.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` discipline. Typed helpers wrap each endpoint and
//! return the response's flat JSON object as a string→string field map;
//! [`smoke`] drives the full serving choreography (warm-cache replay,
//! backpressure, graceful drain) and is what `scripts/ci.sh` runs.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::http::read_response;
use crate::json::{parse_flat, ObjWriter};

/// Default per-request socket timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed server response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Flat JSON fields of the body (empty when the body wasn't flat
    /// JSON, e.g. the nested `/stats` document).
    pub fields: BTreeMap<String, String>,
    /// Raw body text.
    pub body: String,
}

impl Response {
    fn parse(status: u16, body: String) -> Response {
        let fields = parse_flat(&body).unwrap_or_default();
        Response {
            status,
            fields,
            body,
        }
    }

    /// The job state field, if present.
    pub fn state(&self) -> Option<&str> {
        self.fields.get("state").map(String::as_str)
    }
}

/// Outcome of a `POST /runs`.
#[derive(Clone, Debug)]
pub struct Submit {
    /// HTTP status (200 cached, 202 queued, 429 shed, 400 invalid).
    pub status: u16,
    /// Job id when the run was queued.
    pub job: Option<u64>,
    /// Content-addressed result key, when known.
    pub key: Option<String>,
    /// True when the response carried a cached result.
    pub cached: bool,
    /// The full response.
    pub response: Response,
}

/// A client bound to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:7177"`).
    pub fn new(addr: String) -> Client {
        Client {
            addr,
            timeout: DEFAULT_TIMEOUT,
        }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|_| stream.write_all(body.as_bytes()))
            .map_err(|e| format!("send request: {e}"))?;
        let (status, body) = read_response(&mut stream)?;
        Ok(Response::parse(status, body))
    }

    /// `GET /health`.
    pub fn health(&self) -> Result<Response, String> {
        self.request("GET", "/health", "")
    }

    /// `POST /runs` with the given triple; `policy` may be empty for
    /// `profile`/`annotated` runs.
    pub fn submit(&self, workload: &str, kind: &str, policy: &str) -> Result<Submit, String> {
        let mut w = ObjWriter::new();
        w.str("workload", workload).str("kind", kind);
        if !policy.is_empty() {
            w.str("policy", policy);
        }
        let response = self.request("POST", "/runs", &w.finish())?;
        let job = response.fields.get("job").and_then(|j| j.parse().ok());
        let key = response.fields.get("key").cloned();
        let cached = response.fields.get("cached").map(String::as_str) == Some("true");
        Ok(Submit {
            status: response.status,
            job,
            key,
            cached,
            response,
        })
    }

    /// `GET /jobs/{id}`.
    pub fn job_status(&self, id: u64) -> Result<Response, String> {
        self.request("GET", &format!("/jobs/{id}"), "")
    }

    /// Polls `GET /jobs/{id}` until the job leaves the queue/run states.
    ///
    /// Returns the terminal response (`state` is `done` or `failed`) or
    /// an error after `timeout_ms` milliseconds.
    pub fn wait_done(&self, id: u64, timeout_ms: u64) -> Result<Response, String> {
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            let response = self.job_status(id)?;
            match response.state() {
                Some("done") | Some("failed") => return Ok(response),
                _ if Instant::now() >= deadline => {
                    return Err(format!("job {id} still pending after {timeout_ms} ms"))
                }
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// `GET /runs/{key}` — fetch a stored result by content key.
    pub fn run_summary(&self, key: &str) -> Result<Response, String> {
        self.request("GET", &format!("/runs/{key}"), "")
    }

    /// `GET /stats` — the raw telemetry JSON document.
    pub fn stats(&self) -> Result<String, String> {
        let response = self.request("GET", "/stats", "")?;
        if response.status != 200 {
            return Err(format!("stats returned {}", response.status));
        }
        Ok(response.body)
    }

    /// `POST /shutdown` — drains the server and returns the final counts.
    pub fn shutdown(&self) -> Result<Response, String> {
        self.request("POST", "/shutdown", "")
    }
}

/// Extracts the first counter named `name` from a (possibly nested)
/// JSON document: either the bare form `"name":7` or the telemetry
/// snapshot form `"name":{"type":"counter","value":7}`.
///
/// Good enough for picking single counters out of the `/stats` snapshot
/// without a JSON tree parser.
pub fn scan_counter(doc: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let digits = if let Some(obj) = rest.strip_prefix('{') {
        // Typed-stat form: read the "value" field of this object only.
        let end = obj.find('}')?;
        let inner = &obj[..end];
        let v = inner.find("\"value\":")? + "\"value\":".len();
        inner[v..].trim_start()
    } else {
        rest
    };
    let digits: String = digits.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Drives the full serving choreography against a live server; used by
/// the CI smoke stage (`ramp-client smoke`) and the integration tests.
///
/// Expects a server with **workers = 1, queue_capacity = 1** so that
/// backpressure is provokable, and a configured store. Verifies:
///
/// 1. liveness (`/health`),
/// 2. submit → poll → done → fetch-by-key round trip,
/// 3. a resubmit of the same run is served from the store (`cached`),
///    and `/stats` shows `store.hits > 0`,
/// 4. a burst of concurrent submits on distinct workloads gets at least
///    one `202` *and* at least one `429` (bounded queue sheds load),
/// 5. `POST /shutdown` drains: accepted == completed + failed, and the
///    server really exits (subsequent connects fail).
///
/// Returns a human-readable transcript of what was checked.
pub fn smoke(addr: &str) -> Result<String, String> {
    let client = Client::new(addr.to_string());
    let mut transcript = String::new();
    let mut note = |line: String| {
        transcript.push_str(&line);
        transcript.push('\n');
    };

    let health = client.health()?;
    if health.status != 200 {
        return Err(format!("health returned {}", health.status));
    }
    note(format!("health ok: {}", health.body));

    // Round trip one run.
    let submit = client.submit("lbm", "static", "perf-focused")?;
    let key = match (submit.status, submit.cached) {
        (202, _) => {
            let job = submit.job.ok_or("202 without job id")?;
            let done = client.wait_done(job, 120_000)?;
            if done.state() != Some("done") {
                return Err(format!("job {job} ended as {:?}", done.state()));
            }
            note(format!("job {job} done: ipc={}", done.fields["ipc"]));
            done.fields["key"].clone()
        }
        (200, true) => submit.key.clone().ok_or("cached response without key")?,
        (status, _) => return Err(format!("submit returned {status}")),
    };
    let fetched = client.run_summary(&key)?;
    if fetched.status != 200 {
        return Err(format!("fetch by key returned {}", fetched.status));
    }
    note(format!("fetched {key}: ipc={}", fetched.fields["ipc"]));

    // Resubmit: must be served from the store, no new job.
    let resubmit = client.submit("lbm", "static", "perf-focused")?;
    if !(resubmit.status == 200 && resubmit.cached) {
        return Err(format!(
            "resubmit was not cached (status {})",
            resubmit.status
        ));
    }
    let stats = client.stats()?;
    let hits = scan_counter(&stats, "hits").unwrap_or(0);
    if hits == 0 {
        return Err("store.hits is 0 after a cached resubmit".into());
    }
    note(format!("warm resubmit served from store (hits={hits})"));

    // Backpressure: burst concurrent submits of *distinct* uncached runs.
    let workloads = [
        "mcf", "milc", "omnetpp", "astar", "sphinx", "soplex", "gcc", "lbm",
    ];
    let burst: Vec<_> = workloads
        .iter()
        .map(|wl| {
            let client = client.clone();
            let wl = wl.to_string();
            std::thread::spawn(move || client.submit(&wl, "profile", ""))
        })
        .collect();
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    let mut cached = 0u64;
    for handle in burst {
        let submit = handle.join().map_err(|_| "burst thread panicked")??;
        match submit.status {
            202 => accepted.push(submit.job.ok_or("202 without job id")?),
            429 => rejected += 1,
            200 if submit.cached => cached += 1,
            status => return Err(format!("burst submit returned {status}")),
        }
    }
    if accepted.is_empty() {
        return Err("burst: nothing accepted".into());
    }
    if rejected == 0 {
        return Err("burst: no 429 — backpressure never engaged".into());
    }
    note(format!(
        "burst of {}: {} accepted, {rejected} rejected (429), {cached} cached",
        workloads.len(),
        accepted.len()
    ));

    // Graceful shutdown: all accepted jobs drain before the reply.
    let drained = client.shutdown()?;
    if drained.status != 200 {
        return Err(format!("shutdown returned {}", drained.status));
    }
    let count = |k: &str| -> u64 {
        drained
            .fields
            .get(k)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    if count("completed") + count("failed") < count("accepted") {
        return Err(format!("shutdown did not drain: {}", drained.body));
    }
    note(format!("graceful shutdown: {}", drained.body));

    // The server must actually be gone.
    std::thread::sleep(Duration::from_millis(50));
    if TcpStream::connect(addr).is_ok() {
        return Err("server still accepting connections after shutdown".into());
    }
    note("server exited".into());
    Ok(transcript)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counter_reads_nested_docs() {
        let doc = "{\"store\":{\"hits\":7,\"misses\":2},\"x\":{\"hits\":9}}";
        assert_eq!(scan_counter(doc, "hits"), Some(7));
        assert_eq!(scan_counter(doc, "misses"), Some(2));
        assert_eq!(scan_counter(doc, "absent"), None);
    }

    #[test]
    fn scan_counter_reads_typed_stats() {
        let doc = "{\"store\":{\"hits\":{\"type\":\"counter\",\"value\":4},\
                    \"misses\":{\"type\":\"counter\",\"value\":0}}}";
        assert_eq!(scan_counter(doc, "hits"), Some(4));
        assert_eq!(scan_counter(doc, "misses"), Some(0));
    }
}
