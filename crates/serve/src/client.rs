//! A scriptable client for the experiment server and the shard router.
//!
//! Requests ride HTTP/1.1 keep-alive: the client holds one pooled
//! connection (request-capped, shared across clones) and reuses it
//! while the server advertises `Connection: keep-alive`; a stale pooled
//! connection gets one silent fresh-dial retry, so reuse never costs a
//! retry-budget attempt. Typed helpers wrap each endpoint and return
//! the response's flat JSON object as a string→string field map;
//! [`smoke`] drives the full serving choreography (warm-cache replay,
//! backpressure, graceful drain) and is what `scripts/ci.sh` runs.
//!
//! The client owns an ordered **endpoint list** ([`Client::new`] plus
//! [`Client::with_fallbacks`]): transport failures rotate to the next
//! endpoint, and the first endpoint that answers stays sticky — the CLI
//! survives a dead front end as long as any fallback is alive.
//! Transport faults (connect refused, reset mid-response) are retried
//! with exponential backoff and decorrelated jitter up to a configurable
//! budget; `429` responses honor the server's `retry-after` hint when
//! [`Client::with_retry_429`] opts in. Retrying a `POST /runs` is safe —
//! runs are idempotent by construction, keyed by the content-addressed
//! run key, so a resubmit either hits the warm store or re-enqueues the
//! byte-identical computation. Failures surface as classified
//! [`ClientError`] values, never bare strings or panics.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ramp_sim::codec::fnv1a64;
use ramp_sim::rng::mix64;

use crate::http::{read_response_full, HttpResponse};
use crate::json::{parse_flat, ObjWriter};

/// Default per-request socket timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);
/// Default transport retry budget (attempts = 1 + retries).
pub const DEFAULT_RETRIES: u32 = 3;
/// Default base backoff between retried attempts.
pub const DEFAULT_BACKOFF: Duration = Duration::from_millis(50);
/// Default backoff ceiling.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_secs(2);
/// Requests sent per pooled connection before it is retired.
const CLIENT_MAX_REQUESTS: u32 = 128;

/// A classified client-side failure.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// TCP connect failed on every attempt.
    Connect {
        /// Server address dialed.
        addr: String,
        /// Attempts made.
        attempts: u32,
        /// Last OS error text.
        last: String,
    },
    /// The request or response failed in flight on every attempt.
    Transport {
        /// What failed (send/read detail).
        what: String,
        /// Attempts made.
        attempts: u32,
    },
    /// A job did not reach a terminal state within the wait budget.
    Timeout {
        /// Job id being polled.
        job: u64,
        /// Milliseconds waited.
        waited_ms: u64,
        /// Last observed job state.
        last_state: String,
    },
    /// The server answered, but not in a way the caller can use.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "connect {addr} failed after {attempts} attempt(s): {last}"
            ),
            ClientError::Transport { what, attempts } => {
                write!(f, "transport failed after {attempts} attempt(s): {what}")
            }
            ClientError::Timeout {
                job,
                waited_ms,
                last_state,
            } => write!(
                f,
                "job {job} not terminal after {waited_ms} ms (last state: {last_state})"
            ),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for String {
    fn from(e: ClientError) -> String {
        e.to_string()
    }
}

/// One parsed server response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Flat JSON fields of the body (empty when the body wasn't flat
    /// JSON, e.g. the nested `/stats` document).
    pub fields: BTreeMap<String, String>,
    /// Raw body text.
    pub body: String,
    /// The `retry-after` header in whole seconds, when sent (429s).
    pub retry_after: Option<u64>,
}

impl Response {
    fn parse(status: u16, body: String, retry_after: Option<u64>) -> Response {
        let fields = parse_flat(&body).unwrap_or_default();
        Response {
            status,
            fields,
            body,
            retry_after,
        }
    }

    /// The job state field, if present.
    pub fn state(&self) -> Option<&str> {
        self.fields.get("state").map(String::as_str)
    }
}

/// Outcome of a `POST /runs`.
#[derive(Clone, Debug)]
pub struct Submit {
    /// HTTP status (200 cached, 202 queued, 429 shed, 400 invalid).
    pub status: u16,
    /// Job id when the run was queued.
    pub job: Option<u64>,
    /// Content-addressed result key, when known.
    pub key: Option<String>,
    /// True when the response carried a cached result.
    pub cached: bool,
    /// The full response.
    pub response: Response,
}

/// Outcome of one spec inside a `POST /submit-batch` response.
#[derive(Clone, Debug)]
pub struct BatchSubmit {
    /// Per-spec state: `done` (served warm), `queued`, or `rejected`.
    pub state: String,
    /// Job id when the spec was queued.
    pub job: Option<u64>,
    /// Content-addressed run key, when known.
    pub key: Option<String>,
    /// True when the spec was answered from the store.
    pub cached: bool,
    /// Rejection reason (`queue_full`, a parse error, …).
    pub error: Option<String>,
    /// All fields of this spec's slice of the response, index prefix
    /// stripped (cached entries carry the full run summary).
    pub fields: BTreeMap<String, String>,
}

/// One kept-alive connection, pooled between requests.
#[derive(Debug)]
struct PooledConn {
    addr: String,
    stream: TcpStream,
    served: u32,
}

/// A client bound to an ordered list of server endpoints (the primary
/// plus fallbacks). Clones share the endpoint stickiness and the pooled
/// connection.
#[derive(Clone, Debug)]
pub struct Client {
    endpoints: Vec<String>,
    /// Index of the endpoint that last answered; requests start here.
    active: Arc<AtomicUsize>,
    /// At most one kept-alive connection, reused across requests.
    pool: Arc<Mutex<Option<PooledConn>>>,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
    backoff_cap: Duration,
    retry_429: bool,
}

impl Client {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:7177"`).
    pub fn new(addr: String) -> Client {
        Client {
            endpoints: vec![addr],
            active: Arc::new(AtomicUsize::new(0)),
            pool: Arc::new(Mutex::new(None)),
            timeout: DEFAULT_TIMEOUT,
            retries: DEFAULT_RETRIES,
            backoff: DEFAULT_BACKOFF,
            backoff_cap: DEFAULT_BACKOFF_CAP,
            retry_429: false,
        }
    }

    /// Appends fallback endpoints tried (in order) when the active one
    /// fails; the first endpoint that answers becomes sticky.
    pub fn with_fallbacks(mut self, fallbacks: Vec<String>) -> Client {
        self.endpoints.extend(fallbacks);
        self
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Overrides the transport retry budget (`0` fails fast).
    pub fn with_retries(mut self, retries: u32) -> Client {
        self.retries = retries;
        self
    }

    /// Overrides the base backoff (the cap scales to `40×` base, at
    /// least the default cap).
    pub fn with_backoff(mut self, backoff: Duration) -> Client {
        self.backoff = backoff;
        self.backoff_cap = DEFAULT_BACKOFF_CAP.max(backoff * 40);
        self
    }

    /// Also retry `429` responses (honoring `retry-after`). Off by
    /// default: shed load is a meaningful answer for load probes like
    /// the smoke choreography's backpressure burst.
    pub fn with_retry_429(mut self, retry: bool) -> Client {
        self.retry_429 = retry;
        self
    }

    /// The server address this client currently talks to (the endpoint
    /// that last answered, or the primary before any request).
    pub fn addr(&self) -> &str {
        &self.endpoints[self.active.load(Ordering::Relaxed) % self.endpoints.len()]
    }

    /// The deterministic decorrelated-jitter delay before retry
    /// `attempt`: `base + unit * (3·prev − base)`, capped. The jitter
    /// unit is hashed from `(primary addr, path, attempt)`, so a replay
    /// backs off identically while distinct callers decorrelate.
    fn backoff_delay(&self, path: &str, attempt: u32, prev: Duration) -> Duration {
        let seed = fnv1a64(self.endpoints[0].as_bytes()) ^ fnv1a64(path.as_bytes()).rotate_left(17);
        let h = mix64(seed ^ mix64(attempt as u64 + 1));
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let base = self.backoff.as_secs_f64();
        let spread = (prev.as_secs_f64() * 3.0 - base).max(0.0);
        Duration::from_secs_f64((base + unit * spread).min(self.backoff_cap.as_secs_f64()))
    }

    fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, ClientError> {
        // Enough attempts to retry the retry budget *and* to visit
        // every fallback endpoint at least once.
        let budget = (self.retries + 1).max(self.endpoints.len() as u32);
        let start = self.active.load(Ordering::Relaxed);
        let mut prev_delay = self.backoff;
        let mut attempt: u32 = 0;
        loop {
            let idx = (start + attempt as usize) % self.endpoints.len();
            let addr = &self.endpoints[idx];
            attempt += 1;
            match self.request_once(addr, method, path, body) {
                Ok(resp) => {
                    // This endpoint answered: stick to it.
                    self.active.store(idx, Ordering::Relaxed);
                    if resp.status == 429 && self.retry_429 && attempt <= self.retries {
                        // Honor the server's hint, floor it at our own
                        // jittered backoff so tight hints still spread.
                        let hinted = Duration::from_secs(resp.retry_after.unwrap_or(0));
                        let delay = self.backoff_delay(path, attempt, prev_delay).max(hinted);
                        std::thread::sleep(delay);
                        prev_delay = delay;
                        continue;
                    }
                    return Ok(resp);
                }
                Err(_) if attempt < budget => {
                    let delay = self.backoff_delay(path, attempt, prev_delay);
                    std::thread::sleep(delay);
                    prev_delay = delay;
                }
                Err((connect_phase, last)) => {
                    return Err(if connect_phase {
                        ClientError::Connect {
                            addr: addr.clone(),
                            attempts: attempt,
                            last,
                        }
                    } else {
                        ClientError::Transport {
                            what: last,
                            attempts: attempt,
                        }
                    });
                }
            }
        }
    }

    /// One keep-alive exchange against `addr`; the error side carries
    /// whether the failure was in the connect phase. A pooled
    /// connection that fails gets one silent fresh-dial retry — the
    /// server may simply have reaped it — so reuse never consumes a
    /// retry-budget attempt.
    fn request_once(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<Response, (bool, String)> {
        let pooled = {
            let mut slot = self.pool.lock().unwrap();
            slot.take().filter(|p| p.addr == addr)
        };
        if let Some(mut p) = pooled {
            if let Ok(resp) = Self::exchange(&mut p.stream, addr, method, path, body) {
                self.repool(p.stream, addr, p.served + 1, &resp);
                let retry_after = resp.retry_after_secs();
                return Ok(Response::parse(resp.status, resp.body, retry_after));
            }
            // Stale: fall through to a fresh connection.
        }
        let mut stream =
            TcpStream::connect(addr).map_err(|e| (true, format!("connect {addr}: {e}")))?;
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));
        let resp = Self::exchange(&mut stream, addr, method, path, body).map_err(|e| (false, e))?;
        self.repool(stream, addr, 1, &resp);
        let retry_after = resp.retry_after_secs();
        Ok(Response::parse(resp.status, resp.body, retry_after))
    }

    /// Sends one request (advertising keep-alive) and reads the reply.
    fn exchange(
        stream: &mut TcpStream,
        addr: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<HttpResponse, String> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|_| stream.write_all(body.as_bytes()))
            .map_err(|e| format!("send request: {e}"))?;
        read_response_full(stream)
    }

    /// Keeps the connection for the next request if the server left it
    /// open and the per-connection request cap allows.
    fn repool(&self, stream: TcpStream, addr: &str, served: u32, resp: &HttpResponse) {
        if resp.keep_alive() && served < CLIENT_MAX_REQUESTS {
            *self.pool.lock().unwrap() = Some(PooledConn {
                addr: addr.to_string(),
                stream,
                served,
            });
        }
    }

    /// `GET /health`.
    pub fn health(&self) -> Result<Response, ClientError> {
        self.request("GET", "/health", "")
    }

    /// `POST /runs` with the given triple; `policy` may be empty for
    /// `profile`/`annotated` runs.
    ///
    /// Safe to retry (and retried automatically on transport faults):
    /// the run is identified by its content-addressed key, so a
    /// resubmit after a torn response is idempotent — it is served warm
    /// from the store or re-enqueues the identical computation.
    pub fn submit(&self, workload: &str, kind: &str, policy: &str) -> Result<Submit, ClientError> {
        let mut w = ObjWriter::new();
        w.str("workload", workload).str("kind", kind);
        if !policy.is_empty() {
            w.str("policy", policy);
        }
        let response = self.request("POST", "/runs", &w.finish())?;
        let job = response.fields.get("job").and_then(|j| j.parse().ok());
        let key = response.fields.get("key").cloned();
        let cached = response.fields.get("cached").map(String::as_str) == Some("true");
        Ok(Submit {
            status: response.status,
            job,
            key,
            cached,
            response,
        })
    }

    /// `POST /submit-batch` with `(workload, kind, policy)` triples;
    /// `policy` may be empty for `profile`/`annotated` runs.
    ///
    /// One request submits every spec and returns one [`BatchSubmit`]
    /// per spec, in order — the round-trip saver the sweep engine's
    /// remote fan-out uses. Like [`Client::submit`], safe to retry:
    /// every spec is idempotent under its content-addressed key.
    pub fn submit_batch(
        &self,
        specs: &[(String, String, String)],
    ) -> Result<Vec<BatchSubmit>, ClientError> {
        let mut w = ObjWriter::new();
        w.u64("count", specs.len() as u64);
        for (i, (workload, kind, policy)) in specs.iter().enumerate() {
            w.str(&format!("{i}.workload"), workload)
                .str(&format!("{i}.kind"), kind);
            if !policy.is_empty() {
                w.str(&format!("{i}.policy"), policy);
            }
        }
        let response = self.request("POST", "/submit-batch", &w.finish())?;
        if response.status != 200 {
            return Err(ClientError::Protocol(format!(
                "submit-batch returned {}: {}",
                response.status, response.body
            )));
        }
        let count: usize = response
            .fields
            .get("count")
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| ClientError::Protocol("submit-batch response without count".into()))?;
        if count != specs.len() {
            return Err(ClientError::Protocol(format!(
                "submit-batch answered {count} specs for {} submitted",
                specs.len()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let prefix = format!("{i}.");
            let fields: BTreeMap<String, String> = response
                .fields
                .iter()
                .filter_map(|(k, v)| {
                    k.strip_prefix(&prefix)
                        .map(|rest| (rest.to_string(), v.clone()))
                })
                .collect();
            let state = fields
                .get("state")
                .cloned()
                .ok_or_else(|| ClientError::Protocol(format!("spec {i} without a state")))?;
            out.push(BatchSubmit {
                state,
                job: fields.get("job").and_then(|j| j.parse().ok()),
                key: fields.get("key").cloned(),
                cached: fields.get("cached").map(String::as_str) == Some("true"),
                error: fields.get("error").cloned(),
                fields,
            });
        }
        Ok(out)
    }

    /// `GET /jobs/{id}`.
    pub fn job_status(&self, id: u64) -> Result<Response, ClientError> {
        self.request("GET", &format!("/jobs/{id}"), "")
    }

    /// Polls `GET /jobs/{id}` until the job leaves the queue/run states.
    ///
    /// Returns the terminal response (`state` is `done`, `failed` or
    /// `expired`) or [`ClientError::Timeout`] after `timeout_ms`
    /// milliseconds. Polling sleeps between attempts with a growing
    /// interval (10 ms doubling to 500 ms), so a slow job — or a server
    /// that refuses connections while restarting — is never busy-spun.
    pub fn wait_done(&self, id: u64, timeout_ms: u64) -> Result<Response, ClientError> {
        let started = Instant::now();
        let deadline = started + Duration::from_millis(timeout_ms);
        let mut interval = Duration::from_millis(10);
        loop {
            let response = self.job_status(id)?;
            match response.state() {
                Some("done") | Some("failed") | Some("expired") => return Ok(response),
                state => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout {
                            job: id,
                            waited_ms: started.elapsed().as_millis() as u64,
                            last_state: state.unwrap_or("unknown").to_string(),
                        });
                    }
                    std::thread::sleep(
                        interval.min(deadline.saturating_duration_since(Instant::now())),
                    );
                    interval = (interval * 2).min(Duration::from_millis(500));
                }
            }
        }
    }

    /// `GET /runs/{key}` — fetch a stored result by content key.
    pub fn run_summary(&self, key: &str) -> Result<Response, ClientError> {
        self.request("GET", &format!("/runs/{key}"), "")
    }

    /// `GET /stats` — the raw telemetry JSON document.
    pub fn stats(&self) -> Result<String, ClientError> {
        let response = self.request("GET", "/stats", "")?;
        if response.status != 200 {
            return Err(ClientError::Protocol(format!(
                "stats returned {}",
                response.status
            )));
        }
        Ok(response.body)
    }

    /// `POST /shutdown` — drains the server and returns the final counts.
    ///
    /// The one non-idempotent endpoint: it is still transport-retried
    /// (the server exempts it from injected resets, and a repeat drain
    /// of a drained server is a no-op answered after the first).
    pub fn shutdown(&self) -> Result<Response, ClientError> {
        self.request("POST", "/shutdown", "")
    }
}

/// Extracts the first counter named `name` from a (possibly nested)
/// JSON document: either the bare form `"name":7` or the telemetry
/// snapshot form `"name":{"type":"counter","value":7}`.
///
/// Good enough for picking single counters out of the `/stats` snapshot
/// without a JSON tree parser.
pub fn scan_counter(doc: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let digits = if let Some(obj) = rest.strip_prefix('{') {
        // Typed-stat form: read the "value" field of this object only.
        let end = obj.find('}')?;
        let inner = &obj[..end];
        let v = inner.find("\"value\":")? + "\"value\":".len();
        inner[v..].trim_start()
    } else {
        rest
    };
    let digits: String = digits.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Drives the full serving choreography against a live server; used by
/// the CI smoke stage (`ramp-client smoke`) and the integration tests.
///
/// Expects a server with **workers = 1, queue_capacity = 1** so that
/// backpressure is provokable, and a configured store. Verifies:
///
/// 1. liveness (`/health`),
/// 2. submit → poll → done → fetch-by-key round trip,
/// 3. a resubmit of the same run is served from the store (`cached`),
///    and `/stats` shows `store.hits > 0`,
/// 4. a burst of concurrent submits on distinct workloads gets at least
///    one `202` *and* at least one `429` (bounded queue sheds load),
/// 5. `POST /shutdown` drains: accepted == completed + failed + expired,
///    and the server really exits (subsequent connects fail).
///
/// Returns a human-readable transcript of what was checked.
pub fn smoke(addr: &str) -> Result<String, String> {
    smoke_with(&Client::new(addr.to_string()))
}

/// [`smoke`] with a caller-configured client — the chaos CI stage passes
/// one with a larger retry budget so the choreography stays green under
/// injected socket resets. The backpressure burst still requires raw
/// `429`s, so the client must not have [`Client::with_retry_429`] set.
pub fn smoke_with(client: &Client) -> Result<String, String> {
    let client = client.clone();
    let addr = client.addr().to_string();
    let addr = addr.as_str();
    let mut transcript = String::new();
    let mut note = |line: String| {
        transcript.push_str(&line);
        transcript.push('\n');
    };

    let health = client.health()?;
    if health.status != 200 {
        return Err(format!("health returned {}", health.status));
    }
    note(format!("health ok: {}", health.body));

    // Round trip one run.
    let submit = client.submit("lbm", "static", "perf-focused")?;
    let key = match (submit.status, submit.cached) {
        (202, _) => {
            let job = submit.job.ok_or("202 without job id")?;
            let done = client.wait_done(job, 120_000)?;
            if done.state() != Some("done") {
                return Err(format!("job {job} ended as {:?}", done.state()));
            }
            note(format!("job {job} done: ipc={}", done.fields["ipc"]));
            done.fields["key"].clone()
        }
        (200, true) => submit.key.clone().ok_or("cached response without key")?,
        (status, _) => return Err(format!("submit returned {status}")),
    };
    let fetched = client.run_summary(&key)?;
    if fetched.status != 200 {
        return Err(format!("fetch by key returned {}", fetched.status));
    }
    note(format!("fetched {key}: ipc={}", fetched.fields["ipc"]));

    // Resubmit: must be served from the store, no new job.
    let resubmit = client.submit("lbm", "static", "perf-focused")?;
    if !(resubmit.status == 200 && resubmit.cached) {
        return Err(format!(
            "resubmit was not cached (status {})",
            resubmit.status
        ));
    }
    let stats = client.stats()?;
    let hits = scan_counter(&stats, "hits").unwrap_or(0);
    if hits == 0 {
        return Err("store.hits is 0 after a cached resubmit".into());
    }
    note(format!("warm resubmit served from store (hits={hits})"));

    // Backpressure: burst concurrent submits of *distinct* uncached runs.
    let workloads = [
        "mcf", "milc", "omnetpp", "astar", "sphinx", "soplex", "gcc", "lbm",
    ];
    let burst: Vec<_> = workloads
        .iter()
        .map(|wl| {
            let client = client.clone();
            let wl = wl.to_string();
            std::thread::spawn(move || client.submit(&wl, "profile", ""))
        })
        .collect();
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    let mut cached = 0u64;
    for handle in burst {
        let submit = handle.join().map_err(|_| "burst thread panicked")??;
        match submit.status {
            202 => accepted.push(submit.job.ok_or("202 without job id")?),
            429 => rejected += 1,
            200 if submit.cached => cached += 1,
            status => return Err(format!("burst submit returned {status}")),
        }
    }
    if accepted.is_empty() {
        return Err("burst: nothing accepted".into());
    }
    if rejected == 0 {
        return Err("burst: no 429 — backpressure never engaged".into());
    }
    note(format!(
        "burst of {}: {} accepted, {rejected} rejected (429), {cached} cached",
        workloads.len(),
        accepted.len()
    ));

    // Graceful shutdown: all accepted jobs drain before the reply.
    let drained = client.shutdown()?;
    if drained.status != 200 {
        return Err(format!("shutdown returned {}", drained.status));
    }
    let count = |k: &str| -> u64 {
        drained
            .fields
            .get(k)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    if count("completed") + count("failed") + count("expired") < count("accepted") {
        return Err(format!("shutdown did not drain: {}", drained.body));
    }
    note(format!("graceful shutdown: {}", drained.body));

    // The server must actually be gone.
    std::thread::sleep(Duration::from_millis(50));
    if TcpStream::connect(addr).is_ok() {
        return Err("server still accepting connections after shutdown".into());
    }
    note("server exited".into());
    Ok(transcript)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counter_reads_nested_docs() {
        let doc = "{\"store\":{\"hits\":7,\"misses\":2},\"x\":{\"hits\":9}}";
        assert_eq!(scan_counter(doc, "hits"), Some(7));
        assert_eq!(scan_counter(doc, "misses"), Some(2));
        assert_eq!(scan_counter(doc, "absent"), None);
    }

    #[test]
    fn scan_counter_reads_typed_stats() {
        let doc = "{\"store\":{\"hits\":{\"type\":\"counter\",\"value\":4},\
                    \"misses\":{\"type\":\"counter\",\"value\":0}}}";
        assert_eq!(scan_counter(doc, "hits"), Some(4));
        assert_eq!(scan_counter(doc, "misses"), Some(0));
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let client = Client::new("127.0.0.1:7177".to_string());
        let mut prev = DEFAULT_BACKOFF;
        let mut delays = Vec::new();
        for attempt in 1..12 {
            let d = client.backoff_delay("/runs", attempt, prev);
            assert!(d >= DEFAULT_BACKOFF, "never below base: {d:?}");
            assert!(d <= DEFAULT_BACKOFF_CAP, "never above cap: {d:?}");
            delays.push(d);
            prev = d;
        }
        // Bit-identical on replay.
        let replay = Client::new("127.0.0.1:7177".to_string());
        let mut prev = DEFAULT_BACKOFF;
        for (attempt, d) in delays.iter().enumerate() {
            let r = replay.backoff_delay("/runs", attempt as u32 + 1, prev);
            assert_eq!(&r, d);
            prev = r;
        }
        // A different path draws a different jitter stream.
        let other = client.backoff_delay("/jobs/1", 3, DEFAULT_BACKOFF);
        assert_ne!(other, delays[2]);
    }

    #[test]
    fn fallback_endpoint_survives_a_dead_primary() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let live = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = crate::http::read_request(&mut s).unwrap();
            assert_eq!(req.path, "/health");
            crate::http::write_response(&mut s, 200, "{\"ok\":true}").unwrap();
        });
        let client = Client::new(dead)
            .with_fallbacks(vec![live.clone()])
            .with_retries(0)
            .with_backoff(Duration::from_millis(1));
        let resp = client.health().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.addr(), live, "the answering fallback is sticky");
        server.join().unwrap();
    }

    #[test]
    fn client_reuses_a_kept_alive_connection() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Exactly ONE accepted connection serves both requests; a
            // client that re-dialed would leave the second read timing
            // out on the idle first connection.
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            for _ in 0..2 {
                let req = crate::http::read_request(&mut s).expect("request on pooled conn");
                assert_eq!(req.path, "/health");
                crate::http::write_response_keep(&mut s, 200, &[], "{\"ok\":true}", true).unwrap();
            }
        });
        let client = Client::new(addr);
        assert_eq!(client.health().unwrap().status, 200);
        assert_eq!(client.health().unwrap().status, 200);
        server.join().unwrap();
    }

    #[test]
    fn connect_refusal_classifies_after_the_retry_budget() {
        // Bind then drop a listener: the port is very likely refused.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let client = Client::new(addr.clone())
            .with_retries(1)
            .with_backoff(Duration::from_millis(1));
        match client.health() {
            Err(ClientError::Connect { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected classified connect failure, got {other:?}"),
        }
    }

    #[test]
    fn client_error_display_is_informative() {
        let e = ClientError::Timeout {
            job: 4,
            waited_ms: 1500,
            last_state: "running".into(),
        };
        assert_eq!(
            e.to_string(),
            "job 4 not terminal after 1500 ms (last state: running)"
        );
        let s: String = ClientError::Protocol("bad".into()).into();
        assert_eq!(s, "protocol: bad");
    }
}
