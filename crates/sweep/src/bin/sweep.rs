//! `ramp-sweep` — declarative design-space sweeps with Pareto search.
//!
//! ```text
//! ramp-sweep run SPEC.toml [--out FILE] [--threads N]
//!                          [--remote HOST:PORT ...] [--batch N] [--timeout-ms MS]
//! ramp-sweep points SPEC.toml
//! ramp-sweep frontier ARTIFACT.json
//! ```
//!
//! `run` parses the sweep spec, executes every point — locally on the
//! work-stealing executor (store-deduped through `RAMP_STORE_DIR` /
//! `RAMP_STORE_MODE`, thread count from `--threads` or `RAMP_THREADS`),
//! or fanned out to a running `ramp-served` or `ramp-router` with
//! `--remote` (repeatable: the first endpoint is the primary, the rest
//! are fallbacks the client rotates to when it is dead) — and
//! writes the schema-versioned artifact (default `SWEEP_<name>.json`).
//! Stdout gets the deterministic frontier table followed by one
//! volatile `[sweep] ...` summary line with the cache/simulation
//! counters; the artifact itself never contains volatile data, so a
//! warm or resumed re-run reproduces it byte-for-byte.
//!
//! `points` is the dry run: it lists every enumerated point with its
//! store key and exits without simulating. `frontier` re-reads a
//! written artifact and prints its frontier table, so inspecting an old
//! sweep costs no simulation either.

use std::path::PathBuf;

use ramp_serve::json::parse_flat;
use ramp_serve::store::RunStore;
use ramp_sweep::artifact;
use ramp_sweep::engine::{self, SweepRun};
use ramp_sweep::spec::SweepSpec;

fn usage() -> ! {
    eprintln!(
        "usage: ramp-sweep run SPEC.toml [--out FILE] [--threads N] [--remote HOST:PORT ...] \
         [--batch N] [--timeout-ms MS]"
    );
    eprintln!("       ramp-sweep points SPEC.toml");
    eprintln!("       ramp-sweep frontier ARTIFACT.json");
    std::process::exit(2);
}

fn fail(err: impl std::fmt::Display) -> ! {
    eprintln!("ramp-sweep: {err}");
    std::process::exit(1);
}

fn load_spec(path: &str) -> SweepSpec {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("reading {path}: {e}")));
    SweepSpec::parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")))
}

/// The deterministic frontier table: one line per frontier point, in
/// point order, knobs inlined.
fn frontier_table(run: &SweepRun) -> String {
    let mut out = String::new();
    out.push_str("frontier (rank 0, IPC max / FIT min):\n");
    out.push_str("  idx  workload     policy                 ipc        ser_fit\n");
    for i in run.frontier() {
        let row = &run.rows[i];
        let mut label = row.policy.clone();
        for (knob, value) in &row.knobs {
            label.push_str(&format!(" {knob}={value}"));
        }
        out.push_str(&format!(
            "  {i:<4} {:<12} {label:<22} {:<10.4} {:.6}\n",
            row.workload, row.ipc, row.ser_fit
        ));
    }
    out
}

fn cmd_run(args: &[String]) {
    let mut spec_path: Option<&str> = None;
    let mut out_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut remote: Vec<String> = Vec::new();
    let mut batch: usize = 32;
    let mut timeout_ms: u64 = 300_000;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).or_else(|| usage()),
            "--remote" => remote.push(it.next().cloned().unwrap_or_else(|| usage())),
            "--batch" => {
                batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--timeout-ms" => {
                timeout_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            path if spec_path.is_none() && !path.starts_with('-') => {
                spec_path = Some(path);
            }
            _ => usage(),
        }
    }
    let Some(spec_path) = spec_path else { usage() };
    let spec = load_spec(spec_path);
    let out = PathBuf::from(out_path.unwrap_or_else(|| format!("SWEEP_{}.json", spec.name)));

    let (run, store) = if !remote.is_empty() {
        let mut remote = remote;
        let client = ramp_serve::client::Client::new(remote.remove(0)).with_fallbacks(remote);
        let run = engine::run_remote(&spec, &client, batch, timeout_ms).unwrap_or_else(|e| fail(e));
        (run, None)
    } else {
        let store = RunStore::from_env();
        let threads = threads.unwrap_or_else(ramp_sim::exec::default_threads);
        let run = engine::run_local(&spec, store.as_ref(), threads).unwrap_or_else(|e| fail(e));
        (run, store)
    };

    let doc = artifact::render(&spec, &run);
    artifact::write_atomic(&out, &doc, ramp_sim::chaos::global().as_ref())
        .unwrap_or_else(|e| fail(e));
    print!("{}", frontier_table(&run));
    println!("artifact: {} ({} bytes)", out.display(), doc.len());
    println!("{}", engine::summary_line(&run, store.as_ref()));
}

fn cmd_points(args: &[String]) {
    let [spec_path] = args else { usage() };
    let spec = load_spec(spec_path);
    let points = spec.points().unwrap_or_else(|e| fail(e));
    for (i, point) in points.iter().enumerate() {
        let mut line = format!("{i} {} key={}", point.label(), point.key());
        for (knob, value) in &point.knobs {
            line.push_str(&format!(" {knob}={value}"));
        }
        println!("{line}");
    }
    println!(
        "[points] spec={} strategy={} grid={} selected={}",
        spec.name,
        spec.strategy.label(),
        spec.grid_len(),
        points.len()
    );
}

fn cmd_frontier(args: &[String]) {
    let [artifact_path] = args else { usage() };
    let text = std::fs::read_to_string(artifact_path)
        .unwrap_or_else(|e| fail(format!("reading {artifact_path}: {e}")));
    let fields =
        parse_flat(text.trim_end()).unwrap_or_else(|e| fail(format!("{artifact_path}: {e}")));
    let get = |k: &str| -> &str { fields.get(k).map(String::as_str).unwrap_or("") };
    if get("schema") != artifact::SCHEMA {
        fail(format!(
            "{artifact_path}: schema {:?} (expected {:?})",
            get("schema"),
            artifact::SCHEMA
        ));
    }
    println!(
        "sweep {} strategy={} points={}",
        get("sweep.name"),
        get("sweep.strategy"),
        get("sweep.points")
    );
    println!("frontier (rank 0, IPC max / FIT min):");
    println!("  idx  workload     policy                 ipc        ser_fit");
    for idx in get("frontier.points").split(',').filter(|s| !s.is_empty()) {
        let p = format!("point.{idx}.");
        let pf = |k: &str| get(&format!("{p}{k}")).to_string();
        let ipc: f64 = pf("ipc").parse().unwrap_or(f64::NAN);
        let fit: f64 = pf("ser_fit").parse().unwrap_or(f64::NAN);
        println!(
            "  {idx:<4} {:<12} {:<22} {ipc:<10.4} {fit:.6}",
            pf("workload"),
            pf("policy")
        );
    }
    println!("frontier.size={}", get("frontier.size"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "points" => cmd_points(&args[1..]),
        "frontier" => cmd_frontier(&args[1..]),
        _ => usage(),
    }
}
