//! The schema-versioned sweep artifact: one flat JSON document per
//! completed sweep, modeled on the `BENCH_*.json` scorecard.
//!
//! Everything in the artifact is deterministic simulation output — the
//! spec echo, the per-point metrics, the dominance ranks, the frontier —
//! so the bytes are identical across thread counts, cold/warm runs, and
//! chaos-killed-then-resumed runs. Volatile counters (cache hits,
//! simulation counts) are deliberately excluded; they go to the stdout
//! summary line instead.
//!
//! Writes are atomic (temp file + rename) and retried under the
//! `sweep.artifact` chaos site, so a fault injected mid-write can never
//! leave a torn artifact behind.

use std::path::Path;
use std::sync::Arc;

use ramp_serve::json::ObjWriter;
use ramp_sim::chaos::{Chaos, FaultKind};

use crate::engine::SweepRun;
use crate::spec::{Strategy, SweepSpec};

/// Schema tag of the artifact format this module writes.
pub const SCHEMA: &str = "ramp-sweep-v1";

/// Chaos site rolled per artifact write attempt.
pub const SITE_ARTIFACT: &str = "sweep.artifact";

/// Renders the artifact document for one completed sweep.
///
/// Layout (flat keys, insertion order): `schema`, the `sweep.*` spec
/// echo, the `axes.*` axis values, `rung.<r>.*` statistics when the
/// strategy was halving, then `point.<i>.*` per evaluated point —
/// identity, varied knob values under `point.<i>.cfg.*`, metrics,
/// dominance `rank` and `frontier` membership — and finally the
/// `frontier.*` summary (`frontier.points` is the comma-joined point
/// indices).
pub fn render(spec: &SweepSpec, run: &SweepRun) -> String {
    let mut w = ObjWriter::new();
    w.str("schema", SCHEMA)
        .str("sweep.name", &spec.name)
        .str("sweep.strategy", spec.strategy.label())
        .u64("sweep.seed", spec.seed)
        .u64("sweep.samples", spec.samples as u64)
        .u64("sweep.rungs", u64::from(spec.rungs))
        .str("sweep.base", &spec.base_label);
    w.str("axes.workload", &spec.workload_axis())
        .str("axes.policy", &spec.policy_axis());
    for axis in &spec.knobs {
        let values: Vec<String> = axis.values.iter().map(u64::to_string).collect();
        w.str(&format!("axes.{}", axis.knob.name()), &values.join(","));
    }
    if spec.strategy == Strategy::Halving {
        for (r, stat) in run.rungs.iter().enumerate() {
            w.u64(&format!("rung.{r}.divisor"), stat.divisor)
                .u64(&format!("rung.{r}.points"), stat.entered as u64)
                .u64(&format!("rung.{r}.survivors"), stat.survivors as u64);
        }
    }
    w.u64("sweep.points", run.rows.len() as u64);
    for (i, row) in run.rows.iter().enumerate() {
        let p = format!("point.{i}.");
        w.str(&format!("{p}workload"), &row.workload)
            .str(&format!("{p}policy"), &row.policy)
            .str(&format!("{p}kind"), &row.kind)
            .str(&format!("{p}key"), &row.key);
        for (knob, value) in &row.knobs {
            w.u64(&format!("{p}cfg.{knob}"), *value);
        }
        w.f64(&format!("{p}ipc"), row.ipc)
            .f64(&format!("{p}ser_fit"), row.ser_fit)
            .f64(&format!("{p}ser_vs_ddr_only"), row.ser_vs_ddr_only)
            .f64(&format!("{p}mpki"), row.mpki)
            .u64(&format!("{p}cycles"), row.cycles)
            .u64(&format!("{p}instructions"), row.instructions)
            .u64(&format!("{p}hbm_accesses"), row.hbm_accesses)
            .u64(&format!("{p}ddr_accesses"), row.ddr_accesses)
            .u64(&format!("{p}migrations"), row.migrations)
            .f64(
                &format!("{p}mig_pages_per_mcycle"),
                row.mig_pages_per_mcycle(),
            )
            .u64(&format!("{p}rank"), u64::from(run.ranks[i]))
            .bool(&format!("{p}frontier"), run.ranks[i] == 0);
    }
    let frontier = run.frontier();
    let indices: Vec<String> = frontier.iter().map(usize::to_string).collect();
    w.u64("frontier.size", frontier.len() as u64)
        .str("frontier.points", &indices.join(","));
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

/// Atomically writes `content` to `path` (temp file + rename in the
/// destination directory), retrying up to 3 attempts with the
/// `sweep.artifact` chaos site rolled per attempt — an injected I/O
/// fault or slow write surfaces as a retried attempt, never a torn file.
pub fn write_atomic(path: &Path, content: &str, chaos: Option<&Arc<Chaos>>) -> Result<(), String> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let tmp = path.with_extension("tmp");
    let mut last = String::new();
    for attempt in 0..3 {
        if let Some(c) = chaos {
            c.maybe_slow(SITE_ARTIFACT);
            if c.roll(FaultKind::Io, SITE_ARTIFACT) {
                last = format!("injected I/O fault (attempt {})", attempt + 1);
                continue;
            }
        }
        let write = || -> std::io::Result<()> {
            if let Some(d) = dir {
                std::fs::create_dir_all(d)?;
            }
            std::fs::write(&tmp, content)?;
            std::fs::rename(&tmp, path)
        };
        match write() {
            Ok(()) => return Ok(()),
            Err(e) => last = format!("{e} (attempt {})", attempt + 1),
        }
    }
    let _ = std::fs::remove_file(&tmp);
    Err(format!("writing {}: {last}", path.display()))
}
