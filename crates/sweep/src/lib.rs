//! Deterministic design-space sweeps with Pareto-frontier search.
//!
//! The paper's central artifact is a perf×reliability trade-off
//! frontier across placement policies. This crate makes that frontier a
//! first-class, declarative workload instead of a hand-written binary:
//!
//! 1. **[`spec`]** — a TOML-subset sweep specification: axes over
//!    workload, policy, and numeric [`ramp_core::config::SystemConfig`]
//!    knobs, expanded into a canonical cartesian grid, a seeded random
//!    subsample, or an adaptive successive-halving schedule.
//! 2. **[`engine`]** — executes the points through
//!    [`ramp_serve::spec::RunSpec::execute`], the same store-first choke
//!    point the bench harness and the server use, on the
//!    `ramp_sim::exec` work-stealing executor. Every point is keyed into
//!    the content-addressed run store, so a repeated or overlapping
//!    sweep re-simulates nothing and a chaos-killed sweep resumes by
//!    re-running only the missing points. Remote mode fans the same
//!    points out to a running `ramp-served` through batch submit.
//! 3. **[`pareto`]** — non-dominated sorting over (IPC ↑, FIT ↓):
//!    dominance ranks and the frontier, a pure function of the metric
//!    multiset.
//! 4. **[`artifact`]** — the schema-versioned flat-JSON sweep artifact
//!    (`ramp-sweep-v1`), byte-identical at any thread count, written
//!    atomically under the `sweep.artifact` chaos site.
//!
//! The `ramp-sweep` binary wraps all of it:
//! `ramp-sweep run examples/sweep_frontier.toml`.
//!
//! Zero external dependencies, like the rest of the workspace.

#![warn(missing_docs)]

pub mod artifact;
pub mod engine;
pub mod pareto;
pub mod spec;

pub use engine::{run_local, run_remote, PointRow, SweepRun};
pub use pareto::{dominates, frontier, ranks, Objective};
pub use spec::{Strategy, SweepSpec};
