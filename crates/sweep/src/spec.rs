//! The declarative sweep specification and its point enumeration.
//!
//! A sweep spec is a small TOML-subset document with two sections:
//!
//! ```toml
//! [sweep]
//! name = "frontier"        # artifact name (required)
//! strategy = "grid"        # grid | random | halving (default grid)
//! seed = 42                # random-subsample seed (default 0)
//! samples = 32             # random only: points to keep
//! rungs = 3                # halving only: budget rungs (default 3)
//! base = "table1"          # table1 | smoke base config (default table1)
//! insts = 200000           # override base insts_per_core (optional)
//!
//! [axes]
//! workload = ["lbm", "mcf"]
//! policy = ["perf-focused", "balanced", "migration:rel-fc", "profile"]
//! fc_interval_cycles = [400000, 200000]
//! ```
//!
//! The `workload` and `policy` axes are required; any further axis names
//! a numeric [`SystemConfig`] knob (see [`Knob`]). The cartesian grid is
//! enumerated in a canonical nesting order — workload outermost, then
//! policy, then the knob axes in the order the spec lists them, last
//! axis fastest — so point indices are a pure function of the spec text.
//! Every knob flows through [`SystemConfig::canonical_bytes`], so each
//! point lands in its own content-addressed store slot.
//!
//! The TOML subset is deliberately tiny (the workspace is hermetic):
//! `[section]` headers, `key = value` lines, strings, integers,
//! booleans, one-line arrays, and `#` comments. That covers every sweep
//! spec this repository ships; anything else is a parse error.

use ramp_core::config::SystemConfig;
use ramp_core::migration::MigrationScheme;
use ramp_core::placement::PlacementPolicy;
use ramp_serve::spec::{RunAction, RunSpec};
use ramp_sim::SimRng;
use ramp_trace::Workload;

/// How the sweep walks its grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The full cartesian grid.
    Grid,
    /// A seeded random subsample of the grid (`samples` points).
    Random,
    /// Adaptive successive halving: every rung runs the surviving
    /// points at a doubled instruction budget and prunes the
    /// Pareto-dominated ones; only the final rung runs at full budget.
    Halving,
}

impl Strategy {
    /// Stable lower-case label (spec value and artifact field).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Grid => "grid",
            Strategy::Random => "random",
            Strategy::Halving => "halving",
        }
    }

    /// Parses a spec `strategy` value.
    pub fn from_label(s: &str) -> Option<Strategy> {
        match s {
            "grid" => Some(Strategy::Grid),
            "random" => Some(Strategy::Random),
            "halving" => Some(Strategy::Halving),
            _ => None,
        }
    }
}

/// A numeric [`SystemConfig`] knob a sweep axis can vary.
///
/// Every variant maps onto a field covered by
/// [`SystemConfig::canonical_bytes`], so distinct knob values always
/// produce distinct store keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Knob {
    /// Per-core instruction budget (`insts_per_core`).
    InstsPerCore,
    /// Trace-generation root seed (`seed`).
    Seed,
    /// HBM capacity in pages (`hbm_capacity_pages`).
    HbmCapacityPages,
    /// Full-Counter migration interval in cycles (`fc_interval_cycles`).
    FcIntervalCycles,
    /// MEA migration interval in cycles (`mea_interval_cycles`).
    MeaIntervalCycles,
    /// Maximum page swaps per FC interval (`max_swaps_per_interval`).
    MaxSwapsPerInterval,
    /// Maximum MEA pages per interval (`mea_max_pages_per_interval`).
    MeaMaxPagesPerInterval,
}

/// Every sweepable knob, in canonical order.
pub const KNOBS: [Knob; 7] = [
    Knob::InstsPerCore,
    Knob::Seed,
    Knob::HbmCapacityPages,
    Knob::FcIntervalCycles,
    Knob::MeaIntervalCycles,
    Knob::MaxSwapsPerInterval,
    Knob::MeaMaxPagesPerInterval,
];

impl Knob {
    /// The axis name in spec files and artifact fields — identical to
    /// the `SystemConfig` field name.
    pub fn name(self) -> &'static str {
        match self {
            Knob::InstsPerCore => "insts_per_core",
            Knob::Seed => "seed",
            Knob::HbmCapacityPages => "hbm_capacity_pages",
            Knob::FcIntervalCycles => "fc_interval_cycles",
            Knob::MeaIntervalCycles => "mea_interval_cycles",
            Knob::MaxSwapsPerInterval => "max_swaps_per_interval",
            Knob::MeaMaxPagesPerInterval => "mea_max_pages_per_interval",
        }
    }

    /// Resolves an axis name to its knob.
    pub fn from_name(name: &str) -> Option<Knob> {
        KNOBS.into_iter().find(|k| k.name() == name)
    }

    /// Applies `value` to `cfg`.
    pub fn apply(self, cfg: &mut SystemConfig, value: u64) {
        match self {
            Knob::InstsPerCore => cfg.insts_per_core = value,
            Knob::Seed => cfg.seed = value,
            Knob::HbmCapacityPages => cfg.hbm_capacity_pages = value,
            Knob::FcIntervalCycles => cfg.fc_interval_cycles = value,
            Knob::MeaIntervalCycles => cfg.mea_interval_cycles = value,
            Knob::MaxSwapsPerInterval => cfg.max_swaps_per_interval = value as usize,
            Knob::MeaMaxPagesPerInterval => cfg.mea_max_pages_per_interval = value as usize,
        }
    }
}

/// One config axis: a knob and the values it sweeps.
#[derive(Clone, Debug)]
pub struct KnobAxis {
    /// Which knob varies.
    pub knob: Knob,
    /// The values, in spec order.
    pub values: Vec<u64>,
}

/// A parsed, validated sweep specification.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Artifact/sweep name.
    pub name: String,
    /// Search strategy.
    pub strategy: Strategy,
    /// Seed of the random subsample (unused by grid/halving).
    pub seed: u64,
    /// Random subsample size (random strategy only).
    pub samples: usize,
    /// Successive-halving rung count (halving strategy only).
    pub rungs: u32,
    /// Label of the base config (`table1` or `smoke`).
    pub base_label: String,
    /// The base config every point derives from.
    pub base: SystemConfig,
    /// The workload axis.
    pub workloads: Vec<Workload>,
    /// The policy axis: `(spec token, parsed action)` pairs.
    pub policies: Vec<(String, RunAction)>,
    /// Config-knob axes, in spec order.
    pub knobs: Vec<KnobAxis>,
}

/// One enumerated point of a sweep: a concrete config and run spec.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The point's config (base + knob-axis values).
    pub cfg: SystemConfig,
    /// What to run.
    pub spec: RunSpec,
    /// The knob-axis values of this point, in axis order.
    pub knobs: Vec<(&'static str, u64)>,
}

impl SweepPoint {
    /// The content-addressed store key of this point.
    pub fn key(&self) -> String {
        self.spec.key(&self.cfg)
    }

    /// `workload/policy` label for progress and error messages.
    pub fn label(&self) -> String {
        format!("{}/{}", self.spec.workload.name(), self.spec.policy_label())
    }
}

/// Parses a policy-axis token into a run action.
///
/// Accepted forms: `profile`, `annotated`, `static:<placement>`,
/// `migration:<scheme>`, or a bare name tried first as a placement
/// policy, then as a migration scheme (`perf-focused` → static,
/// `rel-fc` → migration).
pub fn parse_action(token: &str) -> Result<RunAction, String> {
    match token {
        "profile" => return Ok(RunAction::Profile),
        "annotated" | "annotations" => return Ok(RunAction::Annotated),
        _ => {}
    }
    if let Some(name) = token.strip_prefix("static:") {
        return PlacementPolicy::from_name(name)
            .map(RunAction::Static)
            .ok_or_else(|| format!("unknown placement policy '{name}'"));
    }
    if let Some(name) = token.strip_prefix("migration:") {
        return MigrationScheme::from_name(name)
            .map(RunAction::Migration)
            .ok_or_else(|| format!("unknown migration scheme '{name}'"));
    }
    if let Some(p) = PlacementPolicy::from_name(token) {
        return Ok(RunAction::Static(p));
    }
    if let Some(s) = MigrationScheme::from_name(token) {
        return Ok(RunAction::Migration(s));
    }
    Err(format!(
        "unknown policy token '{token}' (try profile, annotated, static:<name>, migration:<name>)"
    ))
}

impl SweepSpec {
    /// Parses a sweep spec document (see the module docs for the format).
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let doc = parse_toml_subset(text)?;
        let sweep_str = |key: &str| -> Option<&str> {
            doc.iter()
                .find(|e| e.section == "sweep" && e.key == key)
                .map(|e| e.value.as_str())
        };
        for entry in &doc {
            match entry.section.as_str() {
                "sweep" => {
                    if !matches!(
                        entry.key.as_str(),
                        "name" | "strategy" | "seed" | "samples" | "rungs" | "base" | "insts"
                    ) {
                        return Err(format!("[sweep]: unknown key '{}'", entry.key));
                    }
                }
                "axes" => {}
                other => return Err(format!("unknown section '[{other}]'")),
            }
        }
        let name = sweep_str("name")
            .ok_or("[sweep] name is required")?
            .to_string();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
            return Err(format!(
                "[sweep] name '{name}' must be non-empty [a-zA-Z0-9-]"
            ));
        }
        let strategy = match sweep_str("strategy") {
            None => Strategy::Grid,
            Some(s) => Strategy::from_label(s)
                .ok_or_else(|| format!("[sweep] unknown strategy '{s}' (grid|random|halving)"))?,
        };
        let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
            match sweep_str(key) {
                None => Ok(None),
                Some(v) => v
                    .parse()
                    .map(Some)
                    .map_err(|_| format!("[sweep] {key}: bad integer '{v}'")),
            }
        };
        let seed = parse_u64("seed")?.unwrap_or(0);
        let samples = parse_u64("samples")?.unwrap_or(0) as usize;
        if strategy == Strategy::Random && samples == 0 {
            return Err("[sweep] strategy 'random' requires samples > 0".into());
        }
        let rungs = parse_u64("rungs")?.unwrap_or(3) as u32;
        if strategy == Strategy::Halving && rungs == 0 {
            return Err("[sweep] strategy 'halving' requires rungs > 0".into());
        }
        let base_label = sweep_str("base").unwrap_or("table1").to_string();
        let mut base = match base_label.as_str() {
            "table1" => SystemConfig::table1_scaled(),
            "smoke" => SystemConfig::smoke_test(),
            other => return Err(format!("[sweep] unknown base config '{other}'")),
        };
        if let Some(insts) = parse_u64("insts")? {
            base.insts_per_core = insts;
        }

        let mut workloads = Vec::new();
        let mut policies = Vec::new();
        let mut knobs: Vec<KnobAxis> = Vec::new();
        for entry in doc.iter().filter(|e| e.section == "axes") {
            let values = entry
                .list
                .as_ref()
                .ok_or_else(|| format!("[axes] {} must be an array", entry.key))?;
            if values.is_empty() {
                return Err(format!("[axes] {} must be non-empty", entry.key));
            }
            match entry.key.as_str() {
                "workload" => {
                    for v in values {
                        workloads.push(
                            Workload::from_name(v)
                                .ok_or_else(|| format!("[axes] unknown workload '{v}'"))?,
                        );
                    }
                }
                "policy" => {
                    for v in values {
                        let action = parse_action(v).map_err(|e| format!("[axes] policy: {e}"))?;
                        policies.push((v.clone(), action));
                    }
                }
                other => {
                    let knob = Knob::from_name(other).ok_or_else(|| {
                        format!(
                            "[axes] unknown axis '{other}' (workload, policy, or one of: {})",
                            KNOBS.map(|k| k.name()).join(", ")
                        )
                    })?;
                    if knobs.iter().any(|a| a.knob == knob) {
                        return Err(format!("[axes] duplicate axis '{other}'"));
                    }
                    let mut parsed = Vec::new();
                    for v in values {
                        parsed.push(
                            v.parse::<u64>()
                                .map_err(|_| format!("[axes] {other}: bad integer '{v}'"))?,
                        );
                    }
                    knobs.push(KnobAxis {
                        knob,
                        values: parsed,
                    });
                }
            }
        }
        if workloads.is_empty() {
            return Err("[axes] workload axis is required".into());
        }
        if policies.is_empty() {
            return Err("[axes] policy axis is required".into());
        }
        Ok(SweepSpec {
            name,
            strategy,
            seed,
            samples,
            rungs,
            base_label,
            base,
            workloads,
            policies,
            knobs,
        })
    }

    /// The size of the full cartesian grid.
    pub fn grid_len(&self) -> usize {
        self.knobs
            .iter()
            .fold(self.workloads.len() * self.policies.len(), |n, axis| {
                n * axis.values.len()
            })
    }

    /// Enumerates the selected points of this sweep, in canonical order:
    /// the full grid for `grid`/`halving`, a seeded subsample for
    /// `random`. Duplicate store keys (identical points) are dropped,
    /// keeping the first occurrence. Every point's config is validated.
    pub fn points(&self) -> Result<Vec<SweepPoint>, String> {
        let mut out = Vec::with_capacity(self.grid_len());
        for wl in &self.workloads {
            for (_, action) in &self.policies {
                let mut knob_values = vec![0u64; self.knobs.len()];
                self.expand_knobs(0, &mut knob_values, *wl, *action, &mut out)?;
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        out.retain(|p| seen.insert(p.key()));
        if self.strategy == Strategy::Random && self.samples < out.len() {
            // Seeded partial Fisher-Yates over the point indices, then
            // back to canonical order — which points are kept depends
            // only on (seed, samples, grid), never on thread count.
            let mut rng = SimRng::from_seed(self.seed);
            let n = out.len();
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..self.samples {
                let j = i + (rng.next_u64() as usize) % (n - i);
                idx.swap(i, j);
            }
            idx.truncate(self.samples);
            idx.sort_unstable();
            out = idx.into_iter().map(|i| out[i].clone()).collect();
        }
        Ok(out)
    }

    fn expand_knobs(
        &self,
        depth: usize,
        knob_values: &mut [u64],
        wl: Workload,
        action: RunAction,
        out: &mut Vec<SweepPoint>,
    ) -> Result<(), String> {
        if depth == self.knobs.len() {
            let mut cfg = self.base.clone();
            let mut knobs = Vec::with_capacity(self.knobs.len());
            for (axis, value) in self.knobs.iter().zip(knob_values.iter()) {
                axis.knob.apply(&mut cfg, *value);
                knobs.push((axis.knob.name(), *value));
            }
            check_config(&cfg).map_err(|e| {
                let combo: Vec<String> = knobs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("invalid point config ({}): {e}", combo.join(", "))
            })?;
            out.push(SweepPoint {
                cfg,
                spec: RunSpec {
                    workload: wl,
                    action,
                },
                knobs,
            });
            return Ok(());
        }
        for i in 0..self.knobs[depth].values.len() {
            knob_values[depth] = self.knobs[depth].values[i];
            self.expand_knobs(depth + 1, knob_values, wl, action, out)?;
        }
        Ok(())
    }

    /// Comma-joined workload axis (artifact field).
    pub fn workload_axis(&self) -> String {
        let names: Vec<&str> = self.workloads.iter().map(|w| w.name()).collect();
        names.join(",")
    }

    /// Comma-joined policy axis tokens (artifact field).
    pub fn policy_axis(&self) -> String {
        let names: Vec<&str> = self.policies.iter().map(|(t, _)| t.as_str()).collect();
        names.join(",")
    }
}

/// Validates a point config without panicking (unlike
/// [`SystemConfig::validate`], which asserts).
fn check_config(cfg: &SystemConfig) -> Result<(), String> {
    if cfg.insts_per_core == 0 {
        return Err("insts_per_core must be > 0".into());
    }
    if cfg.hbm_capacity_pages == 0 {
        return Err("hbm_capacity_pages must be > 0".into());
    }
    if cfg.max_swaps_per_interval == 0 {
        return Err("max_swaps_per_interval must be > 0".into());
    }
    if cfg.mea_max_pages_per_interval == 0 {
        return Err("mea_max_pages_per_interval must be > 0".into());
    }
    if cfg.mea_interval_cycles >= cfg.fc_interval_cycles {
        return Err(format!(
            "mea_interval_cycles ({}) must be shorter than fc_interval_cycles ({})",
            cfg.mea_interval_cycles, cfg.fc_interval_cycles
        ));
    }
    Ok(())
}

/// One `key = value` entry of the TOML-subset document.
struct Entry {
    section: String,
    key: String,
    /// Scalar value (empty when the entry is an array).
    value: String,
    /// Array values, when the entry is `key = [..]`.
    list: Option<Vec<String>>,
}

/// Parses the TOML subset: `[section]` headers, `key = value` lines
/// with string/integer/float/bool scalars or one-line arrays, and `#`
/// comments. Returns entries in document order (axis order matters).
fn parse_toml_subset(text: &str) -> Result<Vec<Entry>, String> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if let Some(h) = line.strip_prefix('[') {
            let name = h
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated section header"))?
                .trim();
            if name.is_empty() {
                return Err(err("empty section name"));
            }
            section = name.to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected 'key = value'"))?;
        let (key, value) = (key.trim(), value.trim());
        if key.is_empty() {
            return Err(err("empty key"));
        }
        if section.is_empty() {
            return Err(err("entry before any [section] header"));
        }
        if let Some(inner) = value.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| err("arrays must open and close on one line"))?;
            let mut list = Vec::new();
            for item in split_array_items(inner) {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                list.push(parse_scalar(item).map_err(|e| err(&e))?);
            }
            out.push(Entry {
                section: section.clone(),
                key: key.to_string(),
                value: String::new(),
                list: Some(list),
            });
        } else {
            out.push(Entry {
                section: section.clone(),
                key: key.to_string(),
                value: parse_scalar(value).map_err(|e| err(&e))?,
                list: None,
            });
        }
    }
    Ok(out)
}

/// Strips a `#` comment, honoring `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits array items on commas outside quoted strings.
fn split_array_items(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Parses a scalar: `"string"`, integer, float, or bool — all kept as
/// their text form (callers parse the fields they care about, the
/// flat-JSON convention).
fn parse_scalar(s: &str) -> Result<String, String> {
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {s:?}"))?;
        if inner.contains('"') {
            return Err(format!("embedded quote in string {s:?}"));
        }
        return Ok(inner.to_string());
    }
    if s == "true" || s == "false" || s.parse::<i64>().is_ok() || s.parse::<f64>().is_ok() {
        return Ok(s.to_string());
    }
    Err(format!(
        "bad value {s:?} (expected \"string\", number, bool, or [array])"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_serve::store::RunKind;

    const EXAMPLE: &str = r#"
        # a comment
        [sweep]
        name = "demo"          # trailing comment
        strategy = "grid"
        base = "smoke"
        insts = 20000

        [axes]
        workload = ["lbm", "mcf"]
        policy = ["perf-focused", "migration:rel-fc", "profile"]
        fc_interval_cycles = [60000, 80000]
    "#;

    #[test]
    fn parses_the_example_spec() {
        let spec = SweepSpec::parse(EXAMPLE).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.strategy, Strategy::Grid);
        assert_eq!(spec.base.insts_per_core, 20_000);
        assert_eq!(spec.workloads.len(), 2);
        assert_eq!(spec.policies.len(), 3);
        assert_eq!(spec.knobs.len(), 1);
        assert_eq!(spec.grid_len(), 12);
        let points = spec.points().unwrap();
        assert_eq!(points.len(), 12);
        // Canonical nesting: workload outermost, knob axis fastest.
        assert_eq!(points[0].spec.workload.name(), "lbm");
        assert_eq!(points[0].cfg.fc_interval_cycles, 60_000);
        assert_eq!(points[1].cfg.fc_interval_cycles, 80_000);
        assert_eq!(points[2].spec.kind(), RunKind::Migration);
        // Every key is distinct.
        let keys: std::collections::BTreeSet<String> = points.iter().map(|p| p.key()).collect();
        assert_eq!(keys.len(), 12);
    }

    #[test]
    fn policy_tokens_cover_every_kind() {
        assert_eq!(parse_action("profile").unwrap(), RunAction::Profile);
        assert_eq!(parse_action("annotated").unwrap(), RunAction::Annotated);
        assert!(matches!(
            parse_action("perf-focused").unwrap(),
            RunAction::Static(_)
        ));
        assert!(matches!(
            parse_action("static:wr2-ratio").unwrap(),
            RunAction::Static(_)
        ));
        assert!(matches!(
            parse_action("rel-fc").unwrap(),
            RunAction::Migration(_)
        ));
        assert!(matches!(
            parse_action("migration:cross-counter").unwrap(),
            RunAction::Migration(_)
        ));
        assert!(parse_action("static:rel-fc").is_err());
        assert!(parse_action("migration:balanced").is_err());
        assert!(parse_action("bogus").is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        for (text, needle) in [
            ("", "name is required"),
            ("[sweep]\nname = \"x\"", "workload axis is required"),
            (
                "[sweep]\nname = \"x\"\n[axes]\nworkload = [\"lbm\"]",
                "policy axis is required",
            ),
            (
                "[sweep]\nname = \"x\"\nstrategy = \"random\"\n[axes]\nworkload = [\"lbm\"]\npolicy = [\"profile\"]",
                "requires samples",
            ),
            (
                "[sweep]\nname = \"x\"\nbogus = 1\n[axes]\nworkload = [\"lbm\"]\npolicy = [\"profile\"]",
                "unknown key",
            ),
            (
                "[sweep]\nname = \"x\"\n[axes]\nworkload = [\"lbm\"]\npolicy = [\"profile\"]\ncores = [4]",
                "unknown axis",
            ),
            (
                "[sweep]\nname = \"x\"\n[axes]\nworkload = [\"nope\"]\npolicy = [\"profile\"]",
                "unknown workload",
            ),
            ("[bogus]\nx = 1", "unknown section"),
            ("x = 1", "before any"),
            ("[sweep]\nname = \"has space\"", "must be non-empty"),
            ("[sweep]\nname = [\"x\"", "one line"),
        ] {
            let err = SweepSpec::parse(text).unwrap_err();
            assert!(
                err.contains(needle),
                "spec {text:?}: error {err:?} missing {needle:?}"
            );
        }
    }

    #[test]
    fn invalid_point_configs_are_rejected_with_context() {
        let text = "[sweep]\nname = \"x\"\nbase = \"smoke\"\n[axes]\nworkload = [\"lbm\"]\npolicy = [\"profile\"]\nmea_interval_cycles = [60000]";
        let err = SweepSpec::parse(text).unwrap().points().unwrap_err();
        assert!(err.contains("mea_interval_cycles"), "{err}");
    }

    #[test]
    fn random_subsample_is_seeded_and_canonical() {
        let text = |seed: u64| {
            format!(
                "[sweep]\nname = \"x\"\nstrategy = \"random\"\nseed = {seed}\nsamples = 5\nbase = \"smoke\"\n\
                 [axes]\nworkload = [\"lbm\", \"mcf\", \"astar\"]\npolicy = [\"perf-focused\", \"balanced\", \"profile\", \"wr2-ratio\"]"
            )
        };
        let a = SweepSpec::parse(&text(7)).unwrap().points().unwrap();
        let b = SweepSpec::parse(&text(7)).unwrap().points().unwrap();
        let c = SweepSpec::parse(&text(8)).unwrap().points().unwrap();
        assert_eq!(a.len(), 5);
        let keys = |pts: &[SweepPoint]| pts.iter().map(|p| p.key()).collect::<Vec<_>>();
        assert_eq!(keys(&a), keys(&b));
        assert_ne!(keys(&a), keys(&c));
        // Subsample preserves canonical enumeration order.
        let full = {
            let t = text(7).replace("strategy = \"random\"", "strategy = \"grid\"");
            SweepSpec::parse(&t).unwrap().points().unwrap()
        };
        let order: Vec<usize> = keys(&a)
            .iter()
            .map(|k| full.iter().position(|p| &p.key() == k).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicate_points_are_deduped_by_key() {
        let text = "[sweep]\nname = \"x\"\nbase = \"smoke\"\n[axes]\nworkload = [\"lbm\", \"lbm\"]\npolicy = [\"profile\"]";
        let points = SweepSpec::parse(text).unwrap().points().unwrap();
        assert_eq!(points.len(), 1);
    }
}
