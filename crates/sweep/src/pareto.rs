//! Pareto dominance over the perf×reliability plane.
//!
//! The paper's Figure 1 frontier is a two-objective trade-off: maximize
//! IPC, minimize the soft-error FIT rate. A point *dominates* another
//! when it is at least as good on both objectives and strictly better
//! on one; the *frontier* is the set of non-dominated points, and the
//! *dominance rank* of a point is the frontier layer it falls into
//! (rank 0 = the frontier, rank 1 = the frontier after removing rank 0,
//! and so on — classic non-dominated sorting).
//!
//! Ranks are a pure function of the objective multiset: invariant under
//! point reordering and duplicate insertion (ties on both objectives
//! never dominate each other, so exact duplicates share a rank).

/// One point in objective space: IPC is maximized, FIT minimized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective {
    /// Instructions per cycle (higher is better).
    pub ipc: f64,
    /// Soft-error FIT rate (lower is better).
    pub ser_fit: f64,
}

/// Whether `a` dominates `b`: at least as good on both objectives and
/// strictly better on one. Comparisons involving NaN are `false`, so a
/// NaN point neither dominates nor is dominated (it surfaces at rank 0
/// rather than silently vanishing — sweeps only emit finite metrics).
pub fn dominates(a: Objective, b: Objective) -> bool {
    a.ipc >= b.ipc && a.ser_fit <= b.ser_fit && (a.ipc > b.ipc || a.ser_fit < b.ser_fit)
}

/// Non-dominated sorting: the dominance rank of every point.
///
/// O(n² · layers) peeling — fine for the ≤ thousands of points a sweep
/// evaluates. Deterministic and order-invariant: the rank of a point
/// depends only on the multiset of objectives.
pub fn ranks(points: &[Objective]) -> Vec<u32> {
    let n = points.len();
    let mut rank = vec![u32::MAX; n];
    let mut assigned = 0;
    let mut layer = 0u32;
    while assigned < n {
        let mut this_layer = Vec::new();
        for i in 0..n {
            if rank[i] != u32::MAX {
                continue;
            }
            let dominated =
                (0..n).any(|j| j != i && rank[j] == u32::MAX && dominates(points[j], points[i]));
            if !dominated {
                this_layer.push(i);
            }
        }
        debug_assert!(!this_layer.is_empty(), "peeling must make progress");
        for i in this_layer {
            rank[i] = layer;
            assigned += 1;
        }
        layer += 1;
    }
    rank
}

/// Indices of the frontier (rank-0) points, in input order.
pub fn frontier(points: &[Objective]) -> Vec<usize> {
    ranks(points)
        .into_iter()
        .enumerate()
        .filter(|(_, r)| *r == 0)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(ipc: f64, ser: f64) -> Objective {
        Objective { ipc, ser_fit: ser }
    }

    #[test]
    fn dominance_is_strict_and_asymmetric() {
        assert!(dominates(o(2.0, 1.0), o(1.0, 2.0)));
        assert!(dominates(o(2.0, 1.0), o(2.0, 2.0)));
        assert!(dominates(o(2.0, 1.0), o(1.0, 1.0)));
        assert!(!dominates(o(2.0, 1.0), o(2.0, 1.0))); // ties never dominate
        assert!(!dominates(o(1.0, 1.0), o(2.0, 0.5)));
        // Trade-off points are mutually non-dominating.
        assert!(!dominates(o(2.0, 2.0), o(1.0, 1.0)));
        assert!(!dominates(o(1.0, 1.0), o(2.0, 2.0)));
    }

    #[test]
    fn ranks_peel_layers() {
        // Two frontier points, one dominated once, one dominated twice.
        let pts = [o(2.0, 1.0), o(1.0, 0.5), o(1.5, 1.5), o(1.0, 2.0)];
        assert_eq!(ranks(&pts), vec![0, 0, 1, 2]);
        assert_eq!(frontier(&pts), vec![0, 1]);
    }

    #[test]
    fn single_point_is_frontier() {
        assert_eq!(ranks(&[o(1.0, 1.0)]), vec![0]);
    }
}
