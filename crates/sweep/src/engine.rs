//! Sweep execution: local (parallel, store-deduped) and remote
//! (fanned out through a running `ramp-served`).
//!
//! Every point executes through [`RunSpec::execute`] — the same choke
//! point the bench harness and the server use — so each point is keyed
//! into the content-addressed run store and a repeated or overlapping
//! sweep re-simulates nothing. A killed sweep resumes the same way:
//! completed points are already persisted, so re-running the sweep
//! re-executes only the missing ones and the final artifact bytes are
//! identical to an uninterrupted run.
//!
//! Chaos site `sweep.point` fires per point task (injected delays and
//! panics, under the executor's retry budget); results are collected in
//! point-enumeration order, so output is byte-identical at any thread
//! count.

use std::collections::BTreeMap;
use std::sync::Arc;

use ramp_core::system::RunResult;
use ramp_serve::client::Client;
use ramp_serve::spec::{RunAction, RunSpec};
use ramp_serve::store::{RunKind, RunStore};
use ramp_sim::chaos::{self, Chaos};
use ramp_sim::exec::{try_parallel_map, TaskOptions};

use crate::pareto::{self, Objective};
use crate::spec::{Strategy, SweepPoint, SweepSpec};

/// Chaos site rolled once per executed point task.
pub const SITE_POINT: &str = "sweep.point";

/// One evaluated sweep point: identity plus the metrics the artifact
/// records. Everything here is deterministic simulation output.
#[derive(Clone, Debug)]
pub struct PointRow {
    /// Workload name.
    pub workload: String,
    /// Policy/scheme label.
    pub policy: String,
    /// Run kind label (`profile`/`static`/`migration`/`annotated`).
    pub kind: String,
    /// Content-addressed store key.
    pub key: String,
    /// Knob-axis values of this point, in axis order.
    pub knobs: Vec<(&'static str, u64)>,
    /// Aggregate instructions per cycle.
    pub ipc: f64,
    /// Soft-error FIT rate of this placement (the AVF-weighted SER).
    pub ser_fit: f64,
    /// SER normalized to the DDR-only baseline.
    pub ser_vs_ddr_only: f64,
    /// L2 misses per kilo-instruction.
    pub mpki: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Demand accesses served by HBM.
    pub hbm_accesses: u64,
    /// Demand accesses served by DDR.
    pub ddr_accesses: u64,
    /// Pages migrated.
    pub migrations: u64,
}

impl PointRow {
    fn from_run(point: &SweepPoint, key: String, run: &RunResult) -> PointRow {
        PointRow {
            workload: run.workload.clone(),
            policy: run.policy.clone(),
            kind: point.spec.kind().label().to_string(),
            key,
            knobs: point.knobs.clone(),
            ipc: run.ipc,
            ser_fit: run.ser_fit,
            ser_vs_ddr_only: run.ser_vs_ddr_only(),
            mpki: run.mpki,
            cycles: run.cycles,
            instructions: run.instructions,
            hbm_accesses: run.hbm_accesses,
            ddr_accesses: run.ddr_accesses,
            migrations: run.migrations,
        }
    }

    /// Builds a row from the flat fields of a server run summary.
    fn from_fields(
        point: &SweepPoint,
        fields: &BTreeMap<String, String>,
    ) -> Result<PointRow, String> {
        let get = |k: &str| -> Result<&str, String> {
            fields
                .get(k)
                .map(String::as_str)
                .ok_or_else(|| format!("server summary missing field '{k}'"))
        };
        let f = |k: &str| -> Result<f64, String> {
            get(k)?
                .parse()
                .map_err(|_| format!("server summary field '{k}' not a number"))
        };
        let u = |k: &str| -> Result<u64, String> {
            get(k)?
                .parse()
                .map_err(|_| format!("server summary field '{k}' not an integer"))
        };
        Ok(PointRow {
            workload: get("workload")?.to_string(),
            policy: get("policy")?.to_string(),
            kind: point.spec.kind().label().to_string(),
            key: get("key")?.to_string(),
            knobs: point.knobs.clone(),
            ipc: f("ipc")?,
            ser_fit: f("ser_fit")?,
            ser_vs_ddr_only: f("ser_vs_ddr_only")?,
            mpki: f("mpki")?,
            cycles: u("cycles")?,
            instructions: u("instructions")?,
            hbm_accesses: u("hbm_accesses")?,
            ddr_accesses: u("ddr_accesses")?,
            migrations: u("migrations")?,
        })
    }

    /// Migration copy traffic normalized to runtime: pages migrated per
    /// million cycles (0 for static/profile runs).
    pub fn mig_pages_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.migrations as f64 * 1.0e6 / self.cycles as f64
    }

    /// This row's position in objective space.
    pub fn objective(&self) -> Objective {
        Objective {
            ipc: self.ipc,
            ser_fit: self.ser_fit,
        }
    }
}

/// Volatile execution counters of one sweep run.
///
/// These distinguish warm from cold sweeps, so they go to the summary
/// line on stdout — never into the artifact, which must be
/// byte-identical across cold/warm/resumed runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepCounters {
    /// Points served straight from the run store.
    pub cached: u64,
    /// Points that had to be simulated (any rung).
    pub simulated: u64,
    /// Intermediate DDR-only profiles simulated by the prewarm phase.
    pub profile_sims: u64,
}

/// Per-rung statistics of a successive-halving sweep (deterministic:
/// pruning decisions depend only on simulation results).
#[derive(Clone, Copy, Debug)]
pub struct RungStat {
    /// Instruction-budget divisor of this rung (1 = full budget).
    pub divisor: u64,
    /// Points entering the rung.
    pub entered: usize,
    /// Non-dominated points surviving into the next rung.
    pub survivors: usize,
}

/// A completed sweep: evaluated rows, their dominance ranks, and the
/// volatile execution counters.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// Final evaluated points, in enumeration order.
    pub rows: Vec<PointRow>,
    /// Dominance rank of each row (0 = Pareto frontier).
    pub ranks: Vec<u32>,
    /// Rung statistics (empty unless the strategy was halving).
    pub rungs: Vec<RungStat>,
    /// Volatile cold/warm counters.
    pub counters: SweepCounters,
}

impl SweepRun {
    /// Indices of the frontier rows.
    pub fn frontier(&self) -> Vec<usize> {
        self.ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == 0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs the sweep locally on `threads` workers, chaos-armed from the
/// process-wide `RAMP_CHAOS` registry.
pub fn run_local(
    spec: &SweepSpec,
    store: Option<&RunStore>,
    threads: usize,
) -> Result<SweepRun, String> {
    run_local_with(spec, store, threads, chaos::global())
}

/// [`run_local`] with an explicit chaos registry (tests inject faults
/// here without touching process environment).
pub fn run_local_with(
    spec: &SweepSpec,
    store: Option<&RunStore>,
    threads: usize,
    chaos: Option<Arc<Chaos>>,
) -> Result<SweepRun, String> {
    let mut points = spec.points()?;
    let mut counters = SweepCounters::default();
    let mut rungs = Vec::new();
    if spec.strategy == Strategy::Halving {
        for rung in 0..spec.rungs.saturating_sub(1) {
            let divisor = 1u64 << (spec.rungs - 1 - rung);
            let scaled: Vec<SweepPoint> = points
                .iter()
                .map(|p| {
                    let mut q = p.clone();
                    q.cfg.insts_per_core = (q.cfg.insts_per_core / divisor).max(1);
                    q
                })
                .collect();
            let rows = execute_points(&scaled, store, threads, chaos.clone(), &mut counters)?;
            let objectives: Vec<Objective> = rows.iter().map(|r| r.objective()).collect();
            let ranks = pareto::ranks(&objectives);
            let survivors: Vec<SweepPoint> = points
                .iter()
                .zip(ranks.iter())
                .filter(|(_, r)| **r == 0)
                .map(|(p, _)| p.clone())
                .collect();
            rungs.push(RungStat {
                divisor,
                entered: points.len(),
                survivors: survivors.len(),
            });
            points = survivors;
        }
    }
    let rows = execute_points(&points, store, threads, chaos, &mut counters)?;
    if spec.strategy == Strategy::Halving {
        rungs.push(RungStat {
            divisor: 1,
            entered: rows.len(),
            survivors: rows.len(),
        });
    }
    let objectives: Vec<Objective> = rows.iter().map(|r| r.objective()).collect();
    let ranks = pareto::ranks(&objectives);
    Ok(SweepRun {
        rows,
        ranks,
        rungs,
        counters,
    })
}

/// Executes one batch of points in parallel, serving from the store
/// where possible; returns rows in point order or the joined failure
/// messages (completed points stay persisted, so a re-run resumes).
fn execute_points(
    points: &[SweepPoint],
    store: Option<&RunStore>,
    threads: usize,
    chaos: Option<Arc<Chaos>>,
    counters: &mut SweepCounters,
) -> Result<Vec<PointRow>, String> {
    let mut rows: Vec<Option<PointRow>> = vec![None; points.len()];
    let mut pending: Vec<(usize, &SweepPoint)> = Vec::new();
    for (i, point) in points.iter().enumerate() {
        let key = point.key();
        let cached = store.and_then(|s| match point.spec.kind() {
            RunKind::Annotated => s.load_annotated(&key).map(|(run, _)| run),
            _ => s.load_run(&key),
        });
        match cached {
            Some(run) => {
                counters.cached += 1;
                rows[i] = Some(PointRow::from_run(point, key, &run));
            }
            None => pending.push((i, point)),
        }
    }

    let opts = TaskOptions {
        retries: chaos.as_ref().map_or(0, |c| c.retries()),
        chaos: None, // the sweep rolls its own site below
    };

    // Prewarm the distinct DDR-only profiles the pending points depend
    // on, so concurrent points of one workload don't race to simulate
    // the same profile. Best-effort: a failed prewarm resurfaces (and
    // retries) when the dependent point executes.
    if store.is_some() {
        let mut profiles: Vec<SweepPoint> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for (_, point) in &pending {
            if point.spec.action == RunAction::Profile {
                continue;
            }
            let profile = SweepPoint {
                cfg: point.cfg.clone(),
                spec: RunSpec {
                    workload: point.spec.workload,
                    action: RunAction::Profile,
                },
                knobs: Vec::new(),
            };
            let key = profile.key();
            if seen.insert(key.clone()) && store.is_some_and(|s| s.load_run(&key).is_none()) {
                profiles.push(profile);
            }
        }
        let warmed = try_parallel_map(threads, profiles, &opts, |_, p| {
            roll_point_site(&chaos);
            p.spec.execute(&p.cfg, store);
        });
        counters.profile_sims += warmed.iter().filter(|r| r.is_ok()).count() as u64;
    }

    let outcomes = try_parallel_map(threads, pending.clone(), &opts, |_, (_, point)| {
        roll_point_site(&chaos);
        let run = point.spec.execute(&point.cfg, store);
        PointRow::from_run(point, point.key(), &run)
    });
    let mut failures = Vec::new();
    for ((i, point), outcome) in pending.iter().zip(outcomes) {
        match outcome {
            Ok(row) => {
                counters.simulated += 1;
                rows[*i] = Some(row);
            }
            Err(e) => failures.push(format!("{}: {e}", point.label())),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} of {} point(s) failed (completed points are persisted; re-run the sweep to \
             resume): {}",
            failures.len(),
            points.len(),
            failures.join("; ")
        ));
    }
    Ok(rows
        .into_iter()
        .map(|r| r.expect("all points filled"))
        .collect())
}

fn roll_point_site(chaos: &Option<Arc<Chaos>>) {
    if let Some(c) = chaos {
        c.maybe_slow(SITE_POINT);
        c.maybe_panic(SITE_POINT);
    }
}

/// Fans the sweep out to a running `ramp-served` through the batch
/// submit endpoint, `batch` specs per request.
///
/// Remote sweeps walk the policy×workload plane only: the server owns
/// its simulation config, so config-knob axes and the halving strategy
/// (which rescales budgets per rung) are rejected here. Metrics come
/// back through the same flat-JSON summaries the server persists, so a
/// remote sweep of a server sharing this process's config produces the
/// identical artifact.
pub fn run_remote(
    spec: &SweepSpec,
    client: &Client,
    batch: usize,
    timeout_ms: u64,
) -> Result<SweepRun, String> {
    if !spec.knobs.is_empty() {
        return Err(
            "remote sweeps cannot vary config knobs (the server owns its config); \
             drop the knob axes or run locally"
                .into(),
        );
    }
    if spec.strategy == Strategy::Halving {
        return Err(
            "the halving strategy rescales instruction budgets per rung; run locally".into(),
        );
    }
    let points = spec.points()?;
    let mut counters = SweepCounters::default();
    let mut rows: Vec<Option<PointRow>> = vec![None; points.len()];
    let mut failures = Vec::new();
    let batch = batch.max(1);
    for (chunk_idx, chunk) in points.chunks(batch).enumerate() {
        let specs: Vec<(String, String, String)> = chunk
            .iter()
            .map(|p| {
                let policy = match p.spec.action {
                    RunAction::Profile | RunAction::Annotated => String::new(),
                    _ => p.spec.policy_label(),
                };
                (
                    p.spec.workload.name().to_string(),
                    p.spec.kind().label().to_string(),
                    policy,
                )
            })
            .collect();
        let submits = client
            .submit_batch(&specs)
            .map_err(|e| format!("batch submit failed: {e}"))?;
        if submits.len() != chunk.len() {
            return Err(format!(
                "batch submit answered {} specs for {} submitted",
                submits.len(),
                chunk.len()
            ));
        }
        for (j, item) in submits.into_iter().enumerate() {
            let i = chunk_idx * batch + j;
            let point = &points[i];
            match item.state.as_str() {
                "done" => {
                    counters.cached += 1;
                    rows[i] = Some(PointRow::from_fields(point, &item.fields)?);
                }
                "queued" => {
                    let job = item
                        .job
                        .ok_or_else(|| format!("{}: queued without a job id", point.label()))?;
                    let response = client
                        .wait_done(job, timeout_ms)
                        .map_err(|e| format!("{}: {e}", point.label()))?;
                    match response.state() {
                        Some("done") => {
                            counters.simulated += 1;
                            rows[i] = Some(PointRow::from_fields(point, &response.fields)?);
                        }
                        other => failures.push(format!(
                            "{}: job {job} ended {}",
                            point.label(),
                            other.unwrap_or("unknown")
                        )),
                    }
                }
                other => failures.push(format!(
                    "{}: {}",
                    point.label(),
                    item.error.unwrap_or_else(|| format!("state '{other}'"))
                )),
            }
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} of {} point(s) failed remotely (the server keeps completed runs; re-run to \
             resume): {}",
            failures.len(),
            points.len(),
            failures.join("; ")
        ));
    }
    let rows: Vec<PointRow> = rows.into_iter().map(|r| r.expect("all filled")).collect();
    let objectives: Vec<Objective> = rows.iter().map(|r| r.objective()).collect();
    let ranks = pareto::ranks(&objectives);
    Ok(SweepRun {
        rows,
        ranks,
        rungs: Vec::new(),
        counters,
    })
}

/// The volatile one-line execution summary printed to stdout after a
/// sweep: point/cache/simulation counters plus the store handle's
/// hit/miss/write counters, so "a warm re-sweep performed zero
/// simulations" is assertable by grepping `simulated=0 profile_sims=0`.
pub fn summary_line(run: &SweepRun, store: Option<&RunStore>) -> String {
    let c = run.counters;
    let mut line = format!(
        "[sweep] points={} frontier={} cached={} simulated={} profile_sims={}",
        run.rows.len(),
        run.frontier().len(),
        c.cached,
        c.simulated,
        c.profile_sims,
    );
    if let Some(s) = store {
        use std::sync::atomic::Ordering;
        let m = s.metrics();
        line.push_str(&format!(
            " store_hits={} store_misses={} store_writes={}",
            m.hits.load(Ordering::Relaxed),
            m.misses.load(Ordering::Relaxed),
            m.writes.load(Ordering::Relaxed),
        ));
    }
    line
}
