//! Kill-mid-sweep resume: a chaos-injected panic aborts a sweep partway,
//! the completed points stay persisted in the run store, and re-running
//! the same spec simulates only the missing points — producing an
//! artifact byte-identical to an uninterrupted run.
//!
//! Chaos rolls are seeded but their assignment to tasks depends on
//! execution order, so every run here is single-threaded.

use std::path::PathBuf;
use std::sync::Arc;

use ramp_core::config::SystemConfig;
use ramp_serve::store::RunStore;
use ramp_sim::chaos::Chaos;
use ramp_sweep::engine::run_local_with;
use ramp_sweep::spec::{parse_action, Strategy, SweepSpec};
use ramp_sweep::{artifact, SweepRun};
use ramp_trace::Workload;

/// A fresh scratch directory per call (unique across tests and runs).
fn scratch(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "ramp-sweep-chaos-{}-{tag}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 6-point grid (2 workloads × {profile, balanced, wr2-ratio}) over a
/// shrunk smoke config, small enough for dev-profile test runs.
fn small_spec() -> SweepSpec {
    let mut base = SystemConfig::smoke_test();
    base.insts_per_core = 20_000;
    let tokens = ["profile", "balanced", "wr2-ratio"];
    SweepSpec {
        name: "chaos-sweep".to_string(),
        strategy: Strategy::Grid,
        seed: 0,
        samples: 0,
        rungs: 3,
        base_label: "smoke".to_string(),
        base,
        workloads: vec![
            Workload::from_name("astar").unwrap(),
            Workload::from_name("lbm").unwrap(),
        ],
        policies: tokens
            .iter()
            .map(|t| (t.to_string(), parse_action(t).unwrap()))
            .collect(),
        knobs: Vec::new(),
    }
}

fn render(spec: &SweepSpec, run: &SweepRun) -> String {
    artifact::render(spec, run)
}

#[test]
fn killed_sweep_resumes_from_store_with_identical_artifact() {
    let spec = small_spec();
    let total = spec.points().unwrap().len() as u64;
    assert_eq!(total, 6);

    // Uninterrupted baseline in its own store: the reference bytes.
    let baseline_dir = scratch("baseline");
    let baseline_store = RunStore::open(&baseline_dir).unwrap();
    let baseline = run_local_with(&spec, Some(&baseline_store), 1, None).unwrap();
    assert_eq!(baseline.counters.cached, 0);
    assert_eq!(baseline.counters.simulated, total);
    let golden = render(&spec, &baseline);

    // Chaos run: injected panics with a zero retry budget kill points
    // mid-sweep. Rolls are a deterministic function of the seed and the
    // roll sequence, so scan seeds for one that kills at least one point
    // whose run was never persisted (a killed profile point can still be
    // persisted as a sibling static point's intermediate, which is the
    // resume working as designed — but this test wants real gaps).
    let mut killed = None;
    for seed in 0..16u64 {
        let dir = scratch(&format!("killed-{seed}"));
        let store = RunStore::open(&dir).unwrap();
        let chaos = Arc::new(Chaos::from_spec(seed, "panic=0.5,retries=0").unwrap());
        match run_local_with(&spec, Some(&store), 1, Some(chaos)) {
            Err(e) if (store.stats().runs as u64) < total => {
                killed = Some((dir, store, e));
                break;
            }
            _ => {
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    let (dir, store, err) = killed.expect("no seed in 0..16 left a persistence gap at panic=0.5");
    assert!(
        err.contains("point(s) failed") && err.contains("re-run the sweep to resume"),
        "unexpected failure message: {err}"
    );
    let failed: u64 = err
        .split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .expect("failure message leads with the failed-point count");
    assert!((1..=total).contains(&failed), "failed={failed} of {total}");

    // Every point key is a distinct run key in this grid (the profile
    // points double as the static points' intermediates), so the store's
    // run count says exactly how many points survived the kill.
    let persisted = store.stats().runs as u64;
    assert!(
        persisted < total,
        "no persistence gap: {persisted} of {total}"
    );

    // Resume without chaos: only the missing points simulate, and the
    // artifact is byte-identical to the uninterrupted baseline.
    let resumed = run_local_with(&spec, Some(&store), 1, None).unwrap();
    assert_eq!(
        resumed.counters.simulated,
        total - persisted,
        "resume re-ran persisted points"
    );
    assert_eq!(resumed.counters.cached, persisted);
    assert!(
        resumed.counters.simulated <= failed,
        "resume simulated more points than the kill failed"
    );
    assert_eq!(render(&spec, &resumed), golden, "resumed artifact differs");

    // And a warm repeat simulates nothing at all.
    let warm = run_local_with(&spec, Some(&store), 1, None).unwrap();
    assert_eq!(warm.counters.simulated, 0);
    assert_eq!(warm.counters.profile_sims, 0);
    assert_eq!(warm.counters.cached, total);
    assert_eq!(render(&spec, &warm), golden, "warm artifact differs");

    drop(store);
    drop(baseline_store);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&baseline_dir);
}
