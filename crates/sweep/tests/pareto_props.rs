//! Property tests for Pareto dominance and non-dominated sorting: the
//! frontier must be mutually non-dominated, every non-frontier point
//! must be dominated by some frontier point, and both ranks and the
//! frontier must be invariant under point reordering and duplicate
//! insertion — the guarantees the sweep artifact's `rank`/`frontier`
//! fields stand on.

use ramp_sim::check::{check, Gen};
use ramp_sweep::pareto::{dominates, frontier, ranks, Objective};

/// Random objective clouds, deliberately including exact ties on one or
/// both axes (a small value grid makes collisions common).
fn gen_points(g: &mut Gen, min: usize, max: usize) -> Vec<Objective> {
    let n = g.usize_in(min, max);
    (0..n)
        .map(|_| Objective {
            ipc: g.u64_below(8) as f64 * 0.25,
            ser_fit: g.u64_below(8) as f64 * 0.5,
        })
        .collect()
}

#[test]
fn frontier_is_mutually_non_dominated() {
    check("frontier_mutually_non_dominated", |g| {
        let pts = gen_points(g, 1, 24);
        let front = frontier(&pts);
        for &a in &front {
            for &b in &front {
                assert!(
                    !dominates(pts[a], pts[b]),
                    "frontier point {a} dominates frontier point {b}: {pts:?}"
                );
            }
        }
    });
}

#[test]
fn every_non_frontier_point_is_dominated_by_a_frontier_point() {
    check("non_frontier_dominated_by_frontier", |g| {
        let pts = gen_points(g, 1, 24);
        let r = ranks(&pts);
        let front: Vec<usize> = (0..pts.len()).filter(|&i| r[i] == 0).collect();
        for i in 0..pts.len() {
            if r[i] == 0 {
                continue;
            }
            assert!(
                front.iter().any(|&f| dominates(pts[f], pts[i])),
                "point {i} (rank {}) not dominated by any frontier point: {pts:?}",
                r[i]
            );
        }
    });
}

#[test]
fn ranks_are_invariant_under_reordering() {
    check("ranks_invariant_under_reordering", |g| {
        let pts = gen_points(g, 1, 16);
        let base = ranks(&pts);
        // A seeded Fisher-Yates permutation of the same multiset.
        let mut perm: Vec<usize> = (0..pts.len()).collect();
        for i in 0..perm.len() {
            let j = i + g.usize_in(0, perm.len() - i);
            perm.swap(i, j);
        }
        let shuffled: Vec<Objective> = perm.iter().map(|&i| pts[i]).collect();
        let shuffled_ranks = ranks(&shuffled);
        for (pos, &orig) in perm.iter().enumerate() {
            assert_eq!(
                shuffled_ranks[pos], base[orig],
                "rank of point {orig} changed under permutation: {pts:?}"
            );
        }
    });
}

#[test]
fn ranks_are_invariant_under_duplicate_insertion() {
    check("ranks_invariant_under_duplicates", |g| {
        let pts = gen_points(g, 1, 12);
        let base = ranks(&pts);
        // Duplicate a random point; every original keeps its rank and
        // the duplicate shares its original's (ties never dominate).
        let dup = g.usize_in(0, pts.len());
        let mut with_dup = pts.clone();
        with_dup.push(pts[dup]);
        let r = ranks(&with_dup);
        assert_eq!(
            &r[..pts.len()],
            &base[..],
            "original ranks changed: {pts:?}"
        );
        assert_eq!(r[pts.len()], base[dup], "duplicate rank differs: {pts:?}");
    });
}

#[test]
fn layers_partition_and_make_progress() {
    check("layers_partition", |g| {
        let pts = gen_points(g, 1, 24);
        let r = ranks(&pts);
        let max = *r.iter().max().unwrap();
        // Every layer up to the max is populated (peeling never skips).
        for layer in 0..=max {
            assert!(
                r.iter().any(|&x| x == layer),
                "layer {layer} empty: {pts:?}"
            );
        }
        // Each point of layer L>0 is dominated by some point of layer L-1.
        for i in 0..pts.len() {
            if r[i] == 0 {
                continue;
            }
            assert!(
                (0..pts.len()).any(|j| r[j] == r[i] - 1 && dominates(pts[j], pts[i])),
                "point {i} not dominated from the previous layer: {pts:?}"
            );
        }
    });
}
