//! Golden-snapshot test pinning the sweep artifact schema end to end:
//! a small pinned spec is parsed from the TOML subset, executed cold,
//! rendered, and compared byte-for-byte against the committed
//! `tests/golden/sweep_artifact.json`. Any drift — key order, number
//! formatting, added or dropped fields, simulator output, store keys,
//! Pareto ranking — fails here first. After an intentional change:
//!
//! ```text
//! RAMP_BLESS=1 cargo test -p ramp-sweep --test golden_sweep
//! ```
//!
//! and bump [`ramp_sweep::artifact::SCHEMA`] if the layout changed shape.

use std::path::{Path, PathBuf};

use ramp_serve::json::parse_flat;
use ramp_serve::store::RunStore;
use ramp_sweep::engine::run_local_with;
use ramp_sweep::{artifact, SweepSpec};

const GOLDEN_PATH: &str = "tests/golden/sweep_artifact.json";

/// A 6-point pinned spec: 1 workload × 3 policies × 2 FC intervals over
/// the smoke base with a shrunk budget, exercising every artifact
/// section (axes incl. a knob, per-point cfg fields, ranks, frontier).
const SPEC: &str = "\
[sweep]
name = \"golden\"
strategy = \"grid\"
base = \"smoke\"
insts = 20000

[axes]
workload = [\"astar\"]
policy = [\"profile\", \"balanced\", \"wr2-ratio\"]
fc_interval_cycles = [60000, 30000]
";

fn golden_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

fn scratch_store() -> (PathBuf, RunStore) {
    let dir = std::env::temp_dir().join(format!("ramp-sweep-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), RunStore::open(dir).unwrap())
}

#[test]
fn pinned_sweep_matches_golden_artifact() {
    let spec = SweepSpec::parse(SPEC).expect("pinned spec parses");
    assert_eq!(spec.grid_len(), 6);
    let (dir, store) = scratch_store();
    let run = run_local_with(&spec, Some(&store), 1, None).unwrap();
    let rendered = artifact::render(&spec, &run);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    // Whatever the bytes, the artifact must parse as flat JSON with the
    // advertised schema and an internally consistent frontier.
    let fields = parse_flat(rendered.trim()).expect("artifact parses as flat JSON");
    assert_eq!(
        fields.get("schema").map(String::as_str),
        Some(artifact::SCHEMA)
    );
    assert_eq!(fields["sweep.points"], "6");
    let frontier_size: usize = fields["frontier.size"].parse().unwrap();
    let listed = fields["frontier.points"]
        .split(',')
        .filter(|s| !s.is_empty())
        .count();
    assert_eq!(
        frontier_size, listed,
        "frontier.size disagrees with its index list"
    );
    for i in 0..6 {
        for suffix in [
            "workload", "policy", "key", "ipc", "ser_fit", "rank", "frontier",
        ] {
            let key = format!("point.{i}.{suffix}");
            assert!(fields.contains_key(&key), "missing {key}");
        }
        assert!(
            fields.contains_key(&format!("point.{i}.cfg.fc_interval_cycles")),
            "knob-axis value missing from point {i}"
        );
    }

    let path = golden_file();
    if std::env::var("RAMP_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with RAMP_BLESS=1 cargo test -p ramp-sweep --test golden_sweep",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "sweep artifact drifted from {GOLDEN_PATH}; if intentional, re-bless \
         (RAMP_BLESS=1) and bump artifact::SCHEMA on layout changes"
    );
}
