//! Physical address interleaving.
//!
//! RAMP uses a line-interleaved RoBaCoCh mapping: consecutive cache lines
//! rotate across channels (maximizing stream bandwidth), then fill a DRAM
//! row's worth of columns in one bank, then rotate banks, then rows — the
//! same default Ramulator uses for bandwidth-bound studies.

use ramp_sim::units::LineAddr;

use crate::timing::Organization;

/// A decoded DRAM coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramCoord {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel (ranks are folded into banks; Table 1
    /// uses one rank per channel).
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line within the row).
    pub col: u64,
}

/// Interleaving policy: which address bits select the channel and bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Interleave {
    /// Channel from the lowest line bits (maximum stream bandwidth) —
    /// the default used by all experiments.
    #[default]
    ChannelFirst,
    /// Bank from the lowest line bits, channel above the row: consecutive
    /// lines share a channel. Kept as an ablation (`cargo bench`
    /// `dram/mapping_*`) to show why channel-first wins for streams.
    BankFirst,
}

/// Line-interleaved address mapping for one memory organization.
#[derive(Clone, Copy, Debug)]
pub struct AddressMapping {
    org: Organization,
    interleave: Interleave,
    /// `log2(channels, banks*ranks, lines_per_row)` when every dimension
    /// is a power of two (true for all shipped organizations), letting
    /// `decode` — on the per-request hot path, called millions of times a
    /// run — use shifts and masks instead of five hardware divisions.
    shifts: Option<(u32, u32, u32)>,
}

impl AddressMapping {
    /// Creates a channel-first mapping for `org`.
    pub fn new(org: Organization) -> Self {
        Self::with_interleave(org, Interleave::ChannelFirst)
    }

    /// Creates a mapping with an explicit interleaving policy.
    pub fn with_interleave(org: Organization, interleave: Interleave) -> Self {
        let channels = org.channels as u64;
        let banks = (org.banks * org.ranks) as u64;
        let lpr = org.lines_per_row;
        let shifts = (channels.is_power_of_two()
            && banks.is_power_of_two()
            && lpr.is_power_of_two())
        .then(|| {
            (
                channels.trailing_zeros(),
                banks.trailing_zeros(),
                lpr.trailing_zeros(),
            )
        });
        AddressMapping {
            org,
            interleave,
            shifts,
        }
    }

    /// The organization this mapping decodes for.
    pub fn organization(&self) -> &Organization {
        &self.org
    }

    /// Decodes a global line address into a DRAM coordinate.
    ///
    /// The *frame* line address is expected to already be relative to this
    /// memory (the HMA layer remaps pages to per-memory frames).
    pub fn decode(&self, line: LineAddr) -> DramCoord {
        if let Some((ch_s, ba_s, lpr_s)) = self.shifts {
            return match self.interleave {
                Interleave::ChannelFirst => {
                    let channel = (line.0 & ((1 << ch_s) - 1)) as usize;
                    let in_channel = line.0 >> ch_s;
                    let col = in_channel & ((1 << lpr_s) - 1);
                    let bank = ((in_channel >> lpr_s) & ((1 << ba_s) - 1)) as usize;
                    let row = in_channel >> (lpr_s + ba_s);
                    DramCoord {
                        channel,
                        bank,
                        row,
                        col,
                    }
                }
                Interleave::BankFirst => {
                    let col = line.0 & ((1 << lpr_s) - 1);
                    let rest = line.0 >> lpr_s;
                    let bank = (rest & ((1 << ba_s) - 1)) as usize;
                    let rest = rest >> ba_s;
                    let channel = (rest & ((1 << ch_s) - 1)) as usize;
                    let row = rest >> ch_s;
                    DramCoord {
                        channel,
                        bank,
                        row,
                        col,
                    }
                }
            };
        }
        let channels = self.org.channels as u64;
        let banks = (self.org.banks * self.org.ranks) as u64;
        let lpr = self.org.lines_per_row;

        match self.interleave {
            Interleave::ChannelFirst => {
                let channel = (line.0 % channels) as usize;
                let in_channel = line.0 / channels;
                let col = in_channel % lpr;
                let bank = ((in_channel / lpr) % banks) as usize;
                let row = in_channel / (lpr * banks);
                DramCoord {
                    channel,
                    bank,
                    row,
                    col,
                }
            }
            Interleave::BankFirst => {
                let col = line.0 % lpr;
                let rest = line.0 / lpr;
                let bank = (rest % banks) as usize;
                let rest = rest / banks;
                let channel = (rest % channels) as usize;
                let row = rest / channels;
                DramCoord {
                    channel,
                    bank,
                    row,
                    col,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_lines_rotate_channels() {
        let m = AddressMapping::new(Organization::hbm());
        let c0 = m.decode(LineAddr(0));
        let c1 = m.decode(LineAddr(1));
        let c8 = m.decode(LineAddr(8));
        assert_eq!(c0.channel, 0);
        assert_eq!(c1.channel, 1);
        assert_eq!(c8.channel, 0);
        assert_eq!(c8.col, c0.col + 1);
    }

    #[test]
    fn rows_fill_before_bank_rotation() {
        let org = Organization::ddr3();
        let m = AddressMapping::new(org);
        // Within one channel, lines_per_row consecutive in-channel lines
        // share a row; the next one moves to the next bank.
        let lines_per_row_global = org.lines_per_row * org.channels as u64;
        let a = m.decode(LineAddr(0));
        let b = m.decode(LineAddr(lines_per_row_global - org.channels as u64));
        let c = m.decode(LineAddr(lines_per_row_global));
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(c.bank, a.bank + 1);
        assert_eq!(c.row, a.row);
    }

    #[test]
    fn decode_is_injective_over_a_window() {
        let m = AddressMapping::new(Organization::hbm());
        let mut seen = std::collections::HashSet::new();
        for l in 0..100_000u64 {
            let c = m.decode(LineAddr(l));
            assert!(
                seen.insert((c.channel, c.bank, c.row, c.col)),
                "collision at line {l}"
            );
        }
    }

    #[test]
    fn bank_first_is_injective_and_in_bounds() {
        let org = Organization::hbm();
        let m = AddressMapping::with_interleave(org, Interleave::BankFirst);
        let mut seen = std::collections::HashSet::new();
        for l in 0..50_000u64 {
            let c = m.decode(LineAddr(l));
            assert!(c.channel < org.channels && c.bank < org.banks && c.col < org.lines_per_row);
            assert!(seen.insert((c.channel, c.bank, c.row, c.col)));
        }
        // Consecutive lines share a channel under bank-first.
        assert_eq!(m.decode(LineAddr(0)).channel, m.decode(LineAddr(1)).channel);
    }

    #[test]
    fn shift_decode_matches_division_decode() {
        for interleave in [Interleave::ChannelFirst, Interleave::BankFirst] {
            for org in [Organization::hbm(), Organization::ddr3()] {
                let fast = AddressMapping::with_interleave(org, interleave);
                assert!(fast.shifts.is_some(), "shipped orgs are power-of-two");
                let mut slow = fast;
                slow.shifts = None;
                for l in (0..2_000_000u64).step_by(611) {
                    assert_eq!(fast.decode(LineAddr(l)), slow.decode(LineAddr(l)));
                }
            }
        }
    }

    #[test]
    fn coordinates_in_bounds() {
        let org = Organization::hbm();
        let m = AddressMapping::new(org);
        for l in (0..1_000_000u64).step_by(997) {
            let c = m.decode(LineAddr(l));
            assert!(c.channel < org.channels);
            assert!(c.bank < org.banks * org.ranks);
            assert!(c.col < org.lines_per_row);
        }
    }
}
