//! DRAM timing parameters.
//!
//! All parameters are stored in **CPU cycles** (the paper's 3.2 GHz core
//! clock), pre-converted from each standard's bus clock so the controller
//! never does clock-domain math. Conversions round to the nearest CPU cycle;
//! DESIGN.md documents this scaling choice.

/// Timing parameters of one DRAM standard, in CPU cycles.
///
/// Field names follow JEDEC conventions; every command-to-command constraint
/// the controller enforces lives here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingParams {
    /// ACT to RD/WR to the same bank.
    pub t_rcd: u64,
    /// PRE to ACT to the same bank.
    pub t_rp: u64,
    /// RD issue to first data beat.
    pub t_cl: u64,
    /// WR issue to first data beat.
    pub t_cwl: u64,
    /// ACT to PRE to the same bank.
    pub t_ras: u64,
    /// ACT to ACT to the same bank.
    pub t_rc: u64,
    /// Data burst duration for one 64 B line.
    pub t_bl: u64,
    /// RD/WR to RD/WR on the same channel (column-to-column).
    pub t_ccd: u64,
    /// ACT to ACT across banks of the same rank.
    pub t_rrd: u64,
    /// Four-activate window per rank.
    pub t_faw: u64,
    /// End of write data to PRE (write recovery).
    pub t_wr: u64,
    /// End of write data to next RD (turnaround).
    pub t_wtr: u64,
    /// RD to PRE.
    pub t_rtp: u64,
    /// Refresh cycle time (all banks blocked).
    pub t_rfc: u64,
    /// Refresh interval.
    pub t_refi: u64,
}

impl TimingParams {
    /// DDR3-1600 (800 MHz bus, tCK = 1.25 ns = 4 CPU cycles at 3.2 GHz).
    ///
    /// The paper's high-reliability off-package memory (Table 1).
    pub fn ddr3_1600() -> Self {
        let tck = 4;
        TimingParams {
            t_rcd: 11 * tck,
            t_rp: 11 * tck,
            t_cl: 11 * tck,
            t_cwl: 8 * tck,
            t_ras: 28 * tck,
            t_rc: 39 * tck,
            t_bl: 4 * tck, // BL8 on a 64-bit bus = 4 bus cycles per 64 B
            t_ccd: 4 * tck,
            t_rrd: 5 * tck,
            t_faw: 24 * tck,
            t_wr: 12 * tck,
            t_wtr: 6 * tck,
            t_rtp: 6 * tck,
            t_rfc: 208 * tck,
            t_refi: 6240 * tck,
        }
    }

    /// HBM (500 MHz command clock, 1.0 GHz DDR data on a 128-bit bus;
    /// tCK = 2 ns ≈ 6 CPU cycles at 3.2 GHz, rounded).
    ///
    /// The paper's high-bandwidth low-reliability on-package memory
    /// (Table 1). Absolute latencies are comparable to DDR3; bandwidth is
    /// ~5x thanks to the 8 channels and wide bus (4 beats = 2 bus cycles
    /// per 64 B line).
    pub fn hbm_1000() -> Self {
        let tck = 6;
        TimingParams {
            t_rcd: 7 * tck,
            t_rp: 7 * tck,
            t_cl: 7 * tck,
            t_cwl: 5 * tck,
            t_ras: 17 * tck,
            t_rc: 24 * tck,
            t_bl: 2 * tck, // BL4 on a 128-bit bus = 2 bus cycles per 64 B
            t_ccd: 2 * tck,
            t_rrd: 2 * tck,
            t_faw: 15 * tck,
            t_wr: 8 * tck,
            t_wtr: 4 * tck,
            t_rtp: 4 * tck,
            t_rfc: 130 * tck,
            t_refi: 6240 * tck,
        }
    }

    /// LPDDR4-3200 (1600 MHz bus, tCK = 0.625 ns = 2 CPU cycles at
    /// 3.2 GHz). Not used by the paper's Table 1 system, but provided for
    /// completeness with Ramulator's supported standards (Section 3.1) and
    /// for mobile-HMA what-if studies.
    pub fn lpddr4_3200() -> Self {
        let tck = 2;
        TimingParams {
            t_rcd: 29 * tck,
            t_rp: 34 * tck,
            t_cl: 28 * tck,
            t_cwl: 14 * tck,
            t_ras: 68 * tck,
            t_rc: 102 * tck,
            t_bl: 8 * tck, // BL16 on a 16-bit channel pair = 8 bus cycles per 64 B
            t_ccd: 8 * tck,
            t_rrd: 16 * tck,
            t_faw: 64 * tck,
            t_wr: 29 * tck,
            t_wtr: 16 * tck,
            t_rtp: 12 * tck,
            t_rfc: 448 * tck,
            t_refi: 12480 * tck,
        }
    }

    /// GDDR5-6000 (1.5 GHz command clock, tCK ≈ 0.667 ns ≈ 2 CPU cycles).
    /// Provided for completeness with Ramulator's supported standards.
    pub fn gddr5_6000() -> Self {
        let tck = 2;
        TimingParams {
            t_rcd: 18 * tck,
            t_rp: 18 * tck,
            t_cl: 18 * tck,
            t_cwl: 6 * tck,
            t_ras: 42 * tck,
            t_rc: 60 * tck,
            t_bl: 2 * tck, // BL8 on a 32-bit device group = 2 bus cycles per 64 B
            t_ccd: 3 * tck,
            t_rrd: 8 * tck,
            t_faw: 32 * tck,
            t_wr: 18 * tck,
            t_wtr: 8 * tck,
            t_rtp: 3 * tck,
            t_rfc: 160 * tck,
            t_refi: 5700 * tck,
        }
    }

    /// Idle row-hit read latency (issue to last data beat).
    pub fn row_hit_read_latency(&self) -> u64 {
        self.t_cl + self.t_bl
    }

    /// Idle row-miss read latency (PRE + ACT + RD + data).
    pub fn row_miss_read_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl + self.t_bl
    }

    /// Sanity-checks JEDEC-style invariants between parameters.
    ///
    /// # Panics
    ///
    /// Panics when a constraint that the scheduler relies on is violated
    /// (e.g. `t_rc < t_ras + t_rp`).
    pub fn validate(&self) {
        assert!(self.t_rc >= self.t_ras, "tRC must cover tRAS");
        assert!(
            self.t_rc + 8 >= self.t_ras + self.t_rp,
            "tRC must roughly equal tRAS + tRP"
        );
        assert!(self.t_faw >= self.t_rrd, "tFAW covers at least one tRRD");
        assert!(self.t_refi > self.t_rfc, "refresh interval exceeds tRFC");
        assert!(self.t_bl > 0 && self.t_ccd > 0);
    }
}

/// Organization of one memory (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Organization {
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Cache lines per DRAM row (row-buffer size / 64 B).
    pub lines_per_row: u64,
}

impl Organization {
    /// DDR3 organization from Table 1: 2 channels, 1 rank, 8 banks, 8 KB
    /// rows.
    pub fn ddr3() -> Self {
        Organization {
            channels: 2,
            ranks: 1,
            banks: 8,
            lines_per_row: 128,
        }
    }

    /// HBM organization from Table 1: 8 channels, 1 rank, 8 banks, 2 KB
    /// rows.
    pub fn hbm() -> Self {
        Organization {
            channels: 8,
            ranks: 1,
            banks: 8,
            lines_per_row: 32,
        }
    }

    /// Total banks across the whole memory.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standards_validate() {
        TimingParams::ddr3_1600().validate();
        TimingParams::hbm_1000().validate();
        TimingParams::lpddr4_3200().validate();
        TimingParams::gddr5_6000().validate();
    }

    #[test]
    fn gddr5_is_the_bandwidth_leader_per_channel() {
        // Sanity: per-channel bytes/cycle ordering GDDR5 > HBM-chan > DDR3 > LPDDR4.
        let bpc = |t: TimingParams| 64.0 / t.t_bl as f64;
        assert!(bpc(TimingParams::gddr5_6000()) >= bpc(TimingParams::hbm_1000()));
        assert!(bpc(TimingParams::hbm_1000()) > bpc(TimingParams::lpddr4_3200()));
        assert!(bpc(TimingParams::ddr3_1600()) >= bpc(TimingParams::lpddr4_3200()));
    }

    #[test]
    fn hbm_has_more_bandwidth_per_channel() {
        let ddr = TimingParams::ddr3_1600();
        let hbm = TimingParams::hbm_1000();
        // Bytes per CPU cycle per channel = 64 / tBL.
        let bw_ddr = 64.0 / ddr.t_bl as f64 * Organization::ddr3().channels as f64;
        let bw_hbm = 64.0 / hbm.t_bl as f64 * Organization::hbm().channels as f64;
        let ratio = bw_hbm / bw_ddr;
        assert!(
            (4.0..8.5).contains(&ratio),
            "HBM/DDR bandwidth ratio {ratio} outside the paper's 4x-8x"
        );
    }

    #[test]
    fn latencies_are_comparable() {
        let ddr = TimingParams::ddr3_1600();
        let hbm = TimingParams::hbm_1000();
        let r = ddr.row_miss_read_latency() as f64 / hbm.row_miss_read_latency() as f64;
        assert!((0.5..2.0).contains(&r), "latency ratio {r} implausible");
    }

    #[test]
    fn organizations_match_table1() {
        assert_eq!(Organization::ddr3().channels, 2);
        assert_eq!(Organization::hbm().channels, 8);
        assert_eq!(Organization::hbm().total_banks(), 64);
    }
}
