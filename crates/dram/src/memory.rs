//! A complete memory device: channels + address mapping + aggregate stats.

use ramp_sim::units::Cycle;

use crate::controller::{ChannelController, ChannelStats};
use crate::mapping::AddressMapping;
use crate::request::{Completion, MemRequest, QueueFull};
use crate::timing::{Organization, TimingParams};

/// Which of the two HMA memories a request targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// On-package die-stacked high-bandwidth memory (low reliability).
    Hbm,
    /// Off-package DDRx (high reliability).
    Ddr,
}

impl std::fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryKind::Hbm => write!(f, "HBM"),
            MemoryKind::Ddr => write!(f, "DDR"),
        }
    }
}

/// One memory device (all channels of the HBM stack, or of the DDR DIMMs).
///
/// ```
/// use ramp_dram::{MemorySystem, MemoryKind};
/// use ramp_dram::request::MemRequest;
/// use ramp_sim::units::{AccessKind, Cycle, LineAddr};
///
/// let mut mem = MemorySystem::ddr3();
/// let req = MemRequest {
///     id: 1,
///     line: LineAddr(0),
///     kind: AccessKind::Read,
///     core: 0,
///     arrive: Cycle(0),
/// };
/// mem.enqueue(req)?;
/// let mut done = Vec::new();
/// mem.advance(Cycle(1_000), &mut done);
/// assert_eq!(done.len(), 1);
/// # Ok::<(), ramp_dram::request::QueueFull>(())
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    kind: MemoryKind,
    mapping: AddressMapping,
    channels: Vec<ChannelController>,
}

impl MemorySystem {
    /// Builds a memory from explicit timing and organization.
    pub fn new(kind: MemoryKind, timing: TimingParams, org: Organization) -> Self {
        Self::with_mapping(kind, timing, org, crate::mapping::Interleave::ChannelFirst)
    }

    /// Builds a memory with an explicit interleaving policy (ablations).
    pub fn with_mapping(
        kind: MemoryKind,
        timing: TimingParams,
        org: Organization,
        interleave: crate::mapping::Interleave,
    ) -> Self {
        MemorySystem {
            kind,
            mapping: AddressMapping::with_interleave(org, interleave),
            channels: (0..org.channels)
                .map(|_| ChannelController::new(timing, org.banks * org.ranks))
                .collect(),
        }
    }

    /// The Table 1 DDR3 configuration (2 channels, ChipKill class).
    pub fn ddr3() -> Self {
        Self::new(
            MemoryKind::Ddr,
            TimingParams::ddr3_1600(),
            Organization::ddr3(),
        )
    }

    /// The Table 1 HBM configuration (8 channels, SEC-DED class).
    pub fn hbm() -> Self {
        Self::new(
            MemoryKind::Hbm,
            TimingParams::hbm_1000(),
            Organization::hbm(),
        )
    }

    /// Which memory this is.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Whether the target channel for `req` can accept it.
    pub fn can_accept(&self, req: &MemRequest) -> bool {
        let coord = self.mapping.decode(req.line);
        self.channels[coord.channel].can_accept(req.kind)
    }

    /// Routes `req` to its channel.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if the channel queue is at capacity.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let coord = self.mapping.decode(req.line);
        self.channels[coord.channel].enqueue(req, coord)
    }

    /// Advances every channel to `now`, appending completions.
    pub fn advance(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        for ch in &mut self.channels {
            ch.advance(now, out);
        }
    }

    /// `true` when every channel is idle.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<&ChannelStats> {
        self.channels.iter().map(|c| c.stats()).collect()
    }

    /// Total reads + writes served.
    pub fn total_accesses(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.stats().reads + c.stats().writes)
            .sum()
    }

    /// Mean read latency over all channels (0 if no reads).
    pub fn mean_read_latency(&self) -> f64 {
        let (sum, n) = self.channels.iter().fold((0.0, 0u64), |(s, n), c| {
            let st = &c.stats().read_latency;
            (s + st.mean() * st.count() as f64, n + st.count())
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Exports per-channel telemetry under `{prefix}.ch{i}` plus
    /// device-level aggregates under `{prefix}` into `reg`.
    pub fn export_telemetry(&self, reg: &mut ramp_sim::telemetry::StatRegistry, prefix: &str) {
        for (i, ch) in self.channels.iter().enumerate() {
            ch.stats().export_telemetry(reg, &format!("{prefix}.ch{i}"));
        }
        let (hits, misses) = self.channels.iter().fold((0u64, 0u64), |(h, m), c| {
            (h + c.stats().row_hits, m + c.stats().row_misses)
        });
        reg.counter_add(prefix, "accesses", self.total_accesses());
        reg.ratio_add(prefix, "row_hit_ratio", hits, hits + misses);
        reg.gauge_set(prefix, "mean_read_latency", self.mean_read_latency());
    }

    /// Serializes every channel's dynamic state into `w` (timing,
    /// organization and address mapping are static configuration).
    pub fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        w.u32(self.channels.len() as u32);
        for ch in &self.channels {
            ch.save_state(w);
        }
    }

    /// Restores the state captured by [`MemorySystem::save_state`] into a
    /// memory of identical configuration.
    pub fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        let n = r.seq_len(1)?;
        if n != self.channels.len() {
            return Err(ramp_sim::codec::CodecError::Malformed(
                "channel count mismatch",
            ));
        }
        let mapping = self.mapping;
        for ch in &mut self.channels {
            ch.restore_state(r, |req| mapping.decode(req.line))?;
        }
        Ok(())
    }

    /// Row-buffer hit ratio over all column commands.
    pub fn row_hit_ratio(&self) -> f64 {
        let (h, m) = self.channels.iter().fold((0u64, 0u64), |(h, m), c| {
            (h + c.stats().row_hits, m + c.stats().row_misses)
        });
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_sim::units::{AccessKind, LineAddr};

    fn req(id: u64, line: u64, kind: AccessKind, at: u64) -> MemRequest {
        MemRequest {
            id,
            line: LineAddr(line),
            kind,
            core: 0,
            arrive: Cycle(at),
        }
    }

    #[test]
    fn requests_spread_across_channels() {
        let mut mem = MemorySystem::hbm();
        for i in 0..64 {
            mem.enqueue(req(i, i, AccessKind::Read, 0)).unwrap();
        }
        let mut done = Vec::new();
        mem.advance(Cycle(5_000), &mut done);
        assert_eq!(done.len(), 64);
        // All 8 channels served something.
        for st in mem.channel_stats() {
            assert!(st.reads > 0);
        }
    }

    #[test]
    fn hbm_outruns_ddr_on_streams() {
        let run = |mut mem: MemorySystem| {
            let mut issued = 0u64;
            let mut done = Vec::new();
            let mut t = 0u64;
            while t < 200_000 {
                t += 100;
                loop {
                    let r = req(issued, issued, AccessKind::Read, t);
                    if issued < 1_000_000 && mem.can_accept(&r) {
                        mem.enqueue(r).unwrap();
                        issued += 1;
                    } else {
                        break;
                    }
                }
                mem.advance(Cycle(t), &mut done);
            }
            done.len() as f64
        };
        let ddr = run(MemorySystem::ddr3());
        let hbm = run(MemorySystem::hbm());
        let ratio = hbm / ddr;
        assert!(
            (3.0..9.0).contains(&ratio),
            "HBM:DDR stream throughput ratio {ratio} outside 4x-8x ballpark"
        );
    }

    #[test]
    fn idle_after_drain() {
        let mut mem = MemorySystem::ddr3();
        mem.enqueue(req(0, 0, AccessKind::Write, 0)).unwrap();
        assert!(!mem.is_idle());
        let mut done = Vec::new();
        mem.advance(Cycle(1_000_000), &mut done);
        assert!(mem.is_idle());
        assert_eq!(mem.total_accesses(), 1);
    }

    #[test]
    fn sequential_stream_gets_row_hits() {
        let mut mem = MemorySystem::ddr3();
        let mut done = Vec::new();
        let mut t = 0;
        for i in 0..512u64 {
            t += 30;
            while !mem.can_accept(&req(i, i, AccessKind::Read, t)) {
                t += 30;
                mem.advance(Cycle(t), &mut done);
            }
            mem.enqueue(req(i, i, AccessKind::Read, t)).unwrap();
            mem.advance(Cycle(t), &mut done);
        }
        mem.advance(Cycle(t + 100_000), &mut done);
        assert!(
            mem.row_hit_ratio() > 0.8,
            "stream should be row-hit dominated, got {}",
            mem.row_hit_ratio()
        );
    }
}
