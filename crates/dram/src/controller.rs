//! A per-channel DRAM controller: FR-FCFS scheduling, open-page row-buffer
//! policy, posted writes with drain watermarks, and refresh.
//!
//! The controller uses a *reservation* timing model: when a request is
//! selected, its full command sequence (PRE/ACT/RD-or-WR plus data burst)
//! is placed on the bank and bus timelines atomically. Bank-level
//! parallelism emerges because each decision picks the request with the
//! best (row-hit class, earliest-issue, oldest) score across all banks.

use std::collections::VecDeque;

use ramp_sim::codec::{ByteReader, ByteWriter, CodecError};
use ramp_sim::stats::OnlineStats;
use ramp_sim::telemetry::{BinHistogram, StatRegistry};
use ramp_sim::units::{AccessKind, Cycle};

use crate::mapping::DramCoord;
use crate::request::{Completion, MemRequest, QueueFull};
use crate::timing::TimingParams;

/// Capacity of the read queue (per channel).
pub const READ_QUEUE_CAP: usize = 32;
/// Capacity of the write queue (per channel).
pub const WRITE_QUEUE_CAP: usize = 64;
/// Write-drain high watermark: entering drain mode.
const DRAIN_HI: usize = 48;
/// Write-drain low watermark: leaving drain mode.
const DRAIN_LO: usize = 16;
/// Maximum consecutive row hits served from one bank before aging wins
/// (starvation bound).
const ROW_HIT_STREAK_CAP: u32 = 16;

/// Sentinel for a closed bank (real rows are tiny by comparison).
const NO_ROW: u64 = u64::MAX;

/// Per-bank timing state, struct-of-arrays. The scheduler's inner loops
/// (row-hit classification in `pick`, refresh catch-up) each touch one
/// field across many banks, so parallel arrays keep those scans dense
/// instead of striding over padded per-bank structs.
#[derive(Debug)]
struct BankArrays {
    /// Open row per bank; [`NO_ROW`] when the bank is precharged.
    open_row: Vec<u64>,
    next_act: Vec<Cycle>,
    next_pre: Vec<Cycle>,
    next_rdwr: Vec<Cycle>,
    hit_streak: Vec<u32>,
}

impl BankArrays {
    fn new(n: usize) -> Self {
        BankArrays {
            open_row: vec![NO_ROW; n],
            next_act: vec![Cycle::ZERO; n],
            next_pre: vec![Cycle::ZERO; n],
            next_rdwr: vec![Cycle::ZERO; n],
            hit_streak: vec![0; n],
        }
    }

    fn len(&self) -> usize {
        self.open_row.len()
    }
}

/// Aggregate statistics of one channel.
#[derive(Clone, Debug)]
pub struct ChannelStats {
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Column commands that hit an open row.
    pub row_hits: u64,
    /// Column commands that required ACT (and possibly PRE).
    pub row_misses: u64,
    /// Row misses that also had to close another open row first
    /// (row-buffer conflicts; a subset of `row_misses`).
    pub row_conflicts: u64,
    /// ACT commands issued (equals `row_misses` in the reservation model).
    pub activates: u64,
    /// PRE commands issued, both demand precharges (conflicts) and
    /// refresh-induced row closes.
    pub precharges: u64,
    /// Times the controller entered write-drain mode.
    pub drain_events: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Cycles the data bus was transferring.
    pub busy_cycles: u64,
    /// Read latency distribution (arrival to last data beat).
    pub read_latency: OnlineStats,
    /// Read-queue depth observed at each enqueue (after insertion).
    pub read_q_occupancy: BinHistogram,
    /// Write-queue depth observed at each enqueue (after insertion).
    pub write_q_occupancy: BinHistogram,
}

impl Default for ChannelStats {
    fn default() -> Self {
        ChannelStats {
            reads: 0,
            writes: 0,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
            activates: 0,
            precharges: 0,
            drain_events: 0,
            refreshes: 0,
            busy_cycles: 0,
            read_latency: OnlineStats::default(),
            read_q_occupancy: BinHistogram::new(
                0.0,
                (READ_QUEUE_CAP + 1) as f64,
                READ_QUEUE_CAP + 1,
            ),
            write_q_occupancy: BinHistogram::new(
                0.0,
                (WRITE_QUEUE_CAP + 1) as f64,
                WRITE_QUEUE_CAP + 1,
            ),
        }
    }
}

impl ChannelStats {
    /// Exports every counter and histogram into `scope` of `reg`.
    pub fn export_telemetry(&self, reg: &mut StatRegistry, scope: &str) {
        reg.counter_add(scope, "reads", self.reads);
        reg.counter_add(scope, "writes", self.writes);
        reg.counter_add(scope, "row_hits", self.row_hits);
        reg.counter_add(scope, "row_misses", self.row_misses);
        reg.counter_add(scope, "row_conflicts", self.row_conflicts);
        reg.counter_add(scope, "activates", self.activates);
        reg.counter_add(scope, "precharges", self.precharges);
        reg.counter_add(scope, "drain_events", self.drain_events);
        reg.counter_add(scope, "refreshes", self.refreshes);
        reg.counter_add(scope, "busy_cycles", self.busy_cycles);
        reg.ratio_add(
            scope,
            "row_hit_ratio",
            self.row_hits,
            self.row_hits + self.row_misses,
        );
        if self.read_latency.count() > 0 {
            reg.gauge_set(scope, "mean_read_latency", self.read_latency.mean());
        }
        reg.observe_hist(scope, "read_q_occupancy", &self.read_q_occupancy);
        reg.observe_hist(scope, "write_q_occupancy", &self.write_q_occupancy);
    }
}

/// A scheduled command plan for one request (reservation model).
#[derive(Clone, Copy, Debug)]
struct Plan {
    /// `Some(act_at)` for a row miss (the ACT command time); `None` for a
    /// row hit — `commit` branches on this.
    act_at: Option<Cycle>,
    /// When the first command of the sequence (PRE/ACT/RD/WR) needs the
    /// command bus; a plan is only committed once this is due.
    first_cmd: Cycle,
    issue: Cycle,
    finish: Cycle,
}

/// One channel's controller.
#[derive(Debug)]
pub struct ChannelController {
    timing: TimingParams,
    banks: BankArrays,
    read_q: VecDeque<MemRequest>,
    write_q: VecDeque<MemRequest>,
    /// Pre-decoded coordinates parallel to the queues.
    read_coords: VecDeque<DramCoord>,
    write_coords: VecDeque<DramCoord>,
    bus_free: Cycle,
    next_col_cmd: Cycle,
    next_read_ok: Cycle,
    next_act_any: Cycle,
    act_history: VecDeque<Cycle>,
    next_refresh: Cycle,
    decision_time: Cycle,
    draining: bool,
    /// Earliest time the decision loop could act again: the minimum of the
    /// next pending arrival and the blocked winner's first command, set
    /// when the loop exhausts issuable work. Until `now` reaches it (and
    /// as long as no refresh comes due and nothing new is enqueued, both
    /// of which reset the gate), `advance` can skip the decision loop
    /// entirely — a pick in that window provably returns `None` with no
    /// state change. Not serialized: `Cycle::ZERO` (always re-decide) is
    /// always a safe value, so restore just resets it.
    wake: Cycle,
    /// Served requests whose data burst has not finished yet; delivered by
    /// `advance` once `now` reaches their finish time.
    in_flight: ramp_sim::EventQueue<Completion>,
    stats: ChannelStats,
}

impl ChannelController {
    /// Creates a controller for `banks` banks with the given timing.
    pub fn new(timing: TimingParams, banks: usize) -> Self {
        timing.validate();
        assert!(banks > 0);
        ChannelController {
            timing,
            banks: BankArrays::new(banks),
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            read_coords: VecDeque::new(),
            write_coords: VecDeque::new(),
            bus_free: Cycle::ZERO,
            next_col_cmd: Cycle::ZERO,
            next_read_ok: Cycle::ZERO,
            next_act_any: Cycle::ZERO,
            act_history: VecDeque::with_capacity(4),
            next_refresh: Cycle(timing.t_refi),
            decision_time: Cycle::ZERO,
            draining: false,
            wake: Cycle::ZERO,
            in_flight: ramp_sim::EventQueue::new(),
            stats: ChannelStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Whether a request of `kind` can be accepted right now.
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read_q.len() < READ_QUEUE_CAP,
            AccessKind::Write => self.write_q.len() < WRITE_QUEUE_CAP,
        }
    }

    /// Current read-queue depth.
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Current write-queue depth.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// `true` when no requests are pending or in flight.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.in_flight.is_empty()
    }

    /// Enqueues a request decoded to `coord`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the corresponding queue is at capacity;
    /// the caller must stall and retry (bandwidth backpressure).
    pub fn enqueue(&mut self, req: MemRequest, coord: DramCoord) -> Result<(), QueueFull> {
        match req.kind {
            AccessKind::Read => {
                if self.read_q.len() >= READ_QUEUE_CAP {
                    return Err(QueueFull);
                }
                self.read_q.push_back(req);
                self.read_coords.push_back(coord);
                self.wake = Cycle::ZERO;
                self.stats
                    .read_q_occupancy
                    .observe(self.read_q.len() as f64);
            }
            AccessKind::Write => {
                if self.write_q.len() >= WRITE_QUEUE_CAP {
                    return Err(QueueFull);
                }
                self.write_q.push_back(req);
                self.write_coords.push_back(coord);
                self.wake = Cycle::ZERO;
                self.stats
                    .write_q_occupancy
                    .observe(self.write_q.len() as f64);
            }
        }
        Ok(())
    }

    /// Applies every refresh due at or before `t` in one batch.
    ///
    /// Byte-identical to looping a single-refresh step: of `k` due
    /// refreshes only the last one's recovery window survives the
    /// per-bank `max`, every refresh after the first sees all rows
    /// already closed (so precharges count once per initially-open row),
    /// and streaks zero idempotently. Only the refresh *count* needs the
    /// full `k`.
    fn catch_up_refresh(&mut self, t: Cycle) {
        if t < self.next_refresh {
            return;
        }
        let k = (t - self.next_refresh).0 / self.timing.t_refi + 1;
        let last_start = self.next_refresh + Cycle((k - 1) * self.timing.t_refi);
        let end = last_start + self.timing.t_rfc;
        for b in 0..self.banks.len() {
            if self.banks.open_row[b] != NO_ROW {
                self.stats.precharges += 1;
                self.banks.open_row[b] = NO_ROW;
            }
            self.banks.next_act[b] = self.banks.next_act[b].max(end);
            self.banks.next_rdwr[b] = self.banks.next_rdwr[b].max(end);
            self.banks.next_pre[b] = self.banks.next_pre[b].max(end);
            self.banks.hit_streak[b] = 0;
        }
        self.next_refresh = last_start + Cycle(self.timing.t_refi);
        self.stats.refreshes += k;
    }

    /// Computes the command plan for serving `req` at or after `t` without
    /// mutating state.
    fn plan(&self, coord: DramCoord, kind: AccessKind, t: Cycle) -> Plan {
        let tp = &self.timing;
        let b = coord.bank;
        let row_hit = self.banks.open_row[b] == coord.row;
        let (issue_base, act_at, first_cmd) = if row_hit {
            let issue = t.max(self.banks.next_rdwr[b]);
            (issue, None, issue)
        } else {
            let (pre_done, first_cmd) = if self.banks.open_row[b] != NO_ROW {
                let pre_at = t.max(self.banks.next_pre[b]);
                (pre_at + tp.t_rp, pre_at)
            } else {
                (t, t)
            };
            let mut act_at = pre_done.max(self.banks.next_act[b]).max(self.next_act_any);
            // tFAW: at most 4 ACTs in any tFAW window.
            if self.act_history.len() == 4 {
                let oldest = self.act_history[0];
                act_at = act_at.max(oldest + tp.t_faw);
            }
            (act_at + tp.t_rcd, Some(act_at), first_cmd.min(act_at))
        };
        let cas_delay = if kind.is_write() { tp.t_cwl } else { tp.t_cl };
        let mut issue = issue_base.max(self.next_col_cmd);
        if !kind.is_write() {
            issue = issue.max(self.next_read_ok);
        }
        // Align the data burst with bus availability.
        issue = issue.max(self.bus_free.saturating_sub(Cycle(cas_delay)));
        let data_start = issue + cas_delay;
        let finish = data_start + tp.t_bl;
        Plan {
            act_at,
            first_cmd,
            issue,
            finish,
        }
    }

    /// Commits `plan`, updating bank, rank and bus state.
    fn commit(&mut self, coord: DramCoord, kind: AccessKind, plan: Plan) {
        let tp = self.timing;
        let b = coord.bank;
        if let Some(act_at) = plan.act_at {
            if self.act_history.len() == 4 {
                self.act_history.pop_front();
            }
            self.act_history.push_back(act_at);
            self.next_act_any = self.next_act_any.max(act_at + tp.t_rrd);
            self.stats.activates += 1;
            if self.banks.open_row[b] != NO_ROW {
                self.stats.precharges += 1;
                self.stats.row_conflicts += 1;
            }
            self.banks.open_row[b] = coord.row;
            self.banks.next_act[b] = act_at + tp.t_rc;
            self.banks.next_pre[b] = act_at + tp.t_ras;
            self.banks.hit_streak[b] = 0;
            self.stats.row_misses += 1;
        } else {
            self.banks.hit_streak[b] += 1;
            self.stats.row_hits += 1;
        }
        let issue = plan.issue;
        self.next_col_cmd = self.next_col_cmd.max(issue + tp.t_ccd);
        self.banks.next_rdwr[b] = self.banks.next_rdwr[b].max(issue + tp.t_ccd);
        if kind.is_write() {
            let data_end = issue + tp.t_cwl + tp.t_bl;
            self.banks.next_pre[b] = self.banks.next_pre[b].max(data_end + tp.t_wr);
            self.next_read_ok = self.next_read_ok.max(data_end + tp.t_wtr);
        } else {
            self.banks.next_pre[b] = self.banks.next_pre[b].max(issue + tp.t_rtp);
        }
        self.bus_free = plan.finish;
        self.stats.busy_cycles += tp.t_bl;
    }

    /// Chooses the next request (queue flag, index, plan): FR-FCFS with a
    /// starvation cap, writes only in drain mode (or when reads are absent).
    ///
    /// `blocked` reports the first command time of a winner that was found
    /// but is not yet due (`u64::MAX` otherwise) so `advance` can compute
    /// the wake gate.
    fn pick(&mut self, now: Cycle, blocked: &mut Cycle) -> Option<(bool, usize, Plan)> {
        *blocked = Cycle(u64::MAX);
        // Update drain mode.
        if self.write_q.len() >= DRAIN_HI {
            if !self.draining {
                self.stats.drain_events += 1;
            }
            self.draining = true;
        } else if self.write_q.len() <= DRAIN_LO {
            self.draining = false;
        }
        let serve_writes = self.draining
            || (self.read_q.iter().all(|r| r.arrive > self.decision_time)
                && !self.write_q.is_empty());

        let (queue, coords, kind) = if serve_writes && !self.write_q.is_empty() {
            (&self.write_q, &self.write_coords, AccessKind::Write)
        } else if !self.read_q.is_empty() {
            (&self.read_q, &self.read_coords, AccessKind::Read)
        } else {
            return None;
        };

        let t = self.decision_time;
        // Row hits first; once a bank's streak reaches the cap its
        // further hits rank *below* misses, so a pending conflict is
        // served (the ACT resets the streak) and cannot starve.
        //
        // Ranking key is (class, issue, index). One pass computes the
        // issue cycle directly from the bank arrays — the channel-wide
        // terms of `plan` (column command, read turnaround, bus
        // alignment, tFAW bound) do not depend on the candidate, so
        // they are hoisted out of the loop and the per-candidate cost
        // is a handful of loads and maxes. `plan` then runs once, for
        // the winner only; a debug assertion checks the shortcut
        // against it.
        let tp = &self.timing;
        let cas_delay = if kind.is_write() { tp.t_cwl } else { tp.t_cl };
        let mut common = self
            .next_col_cmd
            .max(self.bus_free.saturating_sub(Cycle(cas_delay)));
        if !kind.is_write() {
            common = common.max(self.next_read_ok);
        }
        let faw_bound = if self.act_history.len() == 4 {
            self.act_history[0] + tp.t_faw
        } else {
            Cycle::ZERO
        };
        let mut best_class = u8::MAX;
        let mut best_issue = Cycle::ZERO;
        let mut best_idx = 0usize;
        for (i, (req, coord)) in queue.iter().zip(coords.iter()).enumerate() {
            if req.arrive > t {
                continue;
            }
            let b = coord.bank;
            let open = self.banks.open_row[b];
            let row_hit = open == coord.row;
            let class = match (row_hit, self.banks.hit_streak[b] >= ROW_HIT_STREAK_CAP) {
                (true, false) => 0,
                (false, _) => 1,
                (true, true) => 2,
            };
            if class > best_class {
                continue;
            }
            let issue = if row_hit {
                t.max(self.banks.next_rdwr[b]).max(common)
            } else {
                let pre_done = if open != NO_ROW {
                    t.max(self.banks.next_pre[b]) + tp.t_rp
                } else {
                    t
                };
                let act_at = pre_done
                    .max(self.banks.next_act[b])
                    .max(self.next_act_any)
                    .max(faw_bound);
                (act_at + tp.t_rcd).max(common)
            };
            // Strict `<` keeps the oldest of equal-(class, issue)
            // candidates, matching the tuple order.
            if class < best_class || issue < best_issue {
                best_class = class;
                best_issue = issue;
                best_idx = i;
            }
        }
        if best_class == u8::MAX {
            return None;
        }
        let idx = best_idx;
        let plan = self.plan(coords[idx], kind, t);
        debug_assert_eq!(plan.issue, best_issue);
        // Only commit a plan whose first command is due; later plans wait
        // for the caller to advance time (event-driven commitment).
        if plan.first_cmd > now {
            *blocked = plan.first_cmd;
            return None;
        }
        Some((kind.is_write(), idx, plan))
    }

    /// Earliest pending arrival strictly after `t`.
    fn next_arrival_after(&self, t: Cycle) -> Option<Cycle> {
        self.read_q
            .iter()
            .chain(self.write_q.iter())
            .map(|r| r.arrive)
            .filter(|&a| a > t)
            .min()
    }

    /// Advances the controller to `now`, appending completions to `out`.
    pub fn advance(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        // Idle fast path: with both queues empty the decision loop can
        // only exit drain mode, catch up refreshes and advance time —
        // do exactly that without entering it. (`pick` with an empty
        // write queue always clears `draining`: 0 <= DRAIN_LO.)
        if self.read_q.is_empty() && self.write_q.is_empty() {
            self.draining = false;
            self.decision_time = self.decision_time.max(now);
            self.catch_up_refresh(self.decision_time);
            while let Some((_, c)) = self.in_flight.pop_due(now) {
                out.push(c);
            }
            return;
        }
        // Wake fast path: before the gate, the decision loop is provably a
        // no-op — no pending request has arrived (`wake` bounds the next
        // arrival), the previously blocked winner's plan is unchanged
        // (`wake` bounds its first command, and a plan whose first command
        // exceeds `t` never depends on `t`), and the bank state is frozen
        // because no refresh has come due (`decision_time`, updated below
        // exactly as the loop's give-up branch would, stays short of
        // `next_refresh`). Only the loop's side effects remain: advancing
        // the decision clock and delivering finished bursts.
        if now < self.wake && self.decision_time.max(now) < self.next_refresh {
            self.decision_time = self.decision_time.max(now);
            while let Some((_, c)) = self.in_flight.pop_due(now) {
                out.push(c);
            }
            return;
        }
        let mut blocked = Cycle(u64::MAX);
        loop {
            self.catch_up_refresh(self.decision_time);
            match self.pick(now, &mut blocked) {
                Some((is_write, idx, plan)) => {
                    let (req, coord) = if is_write {
                        (
                            self.write_q.remove(idx).expect("idx valid"),
                            self.write_coords.remove(idx).expect("idx valid"),
                        )
                    } else {
                        (
                            self.read_q.remove(idx).expect("idx valid"),
                            self.read_coords.remove(idx).expect("idx valid"),
                        )
                    };
                    self.commit(coord, req.kind, plan);
                    let latency = (plan.finish - req.arrive).0;
                    if req.kind.is_write() {
                        self.stats.writes += 1;
                    } else {
                        self.stats.reads += 1;
                        self.stats.read_latency.push(latency as f64);
                    }
                    self.in_flight.schedule(
                        plan.finish,
                        Completion {
                            id: req.id,
                            kind: req.kind,
                            finish: plan.finish,
                            latency,
                            core: req.core,
                        },
                    );
                    self.decision_time = self.decision_time.max(plan.first_cmd);
                }
                None => {
                    // Nothing issuable at decision_time; hop to the next
                    // arrival, or give up until the caller advances time.
                    match self.next_arrival_after(self.decision_time) {
                        Some(a) if a <= now => {
                            self.decision_time = a;
                        }
                        next => {
                            self.decision_time = self.decision_time.max(now);
                            self.catch_up_refresh(self.decision_time);
                            self.wake = next.unwrap_or(Cycle(u64::MAX)).min(blocked);
                            break;
                        }
                    }
                }
            }
        }
        while let Some((_, c)) = self.in_flight.pop_due(now) {
            out.push(c);
        }
    }

    /// Serializes the full controller state into `w` (timing parameters are
    /// static and rebuilt from the config on restore).
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.u32(self.banks.len() as u32);
        for b in 0..self.banks.len() {
            match self.banks.open_row[b] {
                NO_ROW => w.u8(0),
                row => {
                    w.u8(1);
                    w.u64(row);
                }
            }
            w.u64(self.banks.next_act[b].0);
            w.u64(self.banks.next_pre[b].0);
            w.u64(self.banks.next_rdwr[b].0);
            w.u32(self.banks.hit_streak[b]);
        }
        write_request_queue(w, &self.read_q);
        write_request_queue(w, &self.write_q);
        w.u64(self.bus_free.0);
        w.u64(self.next_col_cmd.0);
        w.u64(self.next_read_ok.0);
        w.u64(self.next_act_any.0);
        w.u32(self.act_history.len() as u32);
        for &c in &self.act_history {
            w.u64(c.0);
        }
        w.u64(self.next_refresh.0);
        w.u64(self.decision_time.0);
        w.u8(u8::from(self.draining));
        let in_flight = self.in_flight.snapshot();
        w.u32(in_flight.len() as u32);
        for (at, c) in in_flight {
            w.u64(at.0);
            w.u64(c.id);
            w.u8(u8::from(c.kind.is_write()));
            w.u64(c.finish.0);
            w.u64(c.latency);
            w.u64(c.core as u64);
        }
        let st = &self.stats;
        w.u64(st.reads);
        w.u64(st.writes);
        w.u64(st.row_hits);
        w.u64(st.row_misses);
        w.u64(st.row_conflicts);
        w.u64(st.activates);
        w.u64(st.precharges);
        w.u64(st.drain_events);
        w.u64(st.refreshes);
        w.u64(st.busy_cycles);
        let (n, mean, m2, min, max) = st.read_latency.raw_parts();
        w.u64(n);
        w.f64(mean);
        w.f64(m2);
        w.f64(min);
        w.f64(max);
        st.read_q_occupancy.save_state(w);
        st.write_q_occupancy.save_state(w);
    }

    /// Restores the state captured by [`ChannelController::save_state`] into
    /// a controller of identical timing and bank count. Queue coordinates
    /// are re-decoded through `decode` (the address mapping is static).
    pub fn restore_state(
        &mut self,
        r: &mut ByteReader,
        decode: impl Fn(&MemRequest) -> DramCoord,
    ) -> Result<(), CodecError> {
        let n_banks = r.seq_len(29)?;
        if n_banks != self.banks.len() {
            return Err(CodecError::Malformed("bank count mismatch"));
        }
        for b in 0..self.banks.len() {
            self.banks.open_row[b] = match r.u8()? {
                0 => NO_ROW,
                1 => r.u64()?,
                _ => return Err(CodecError::Malformed("bad open-row tag")),
            };
            self.banks.next_act[b] = Cycle(r.u64()?);
            self.banks.next_pre[b] = Cycle(r.u64()?);
            self.banks.next_rdwr[b] = Cycle(r.u64()?);
            self.banks.hit_streak[b] = r.u32()?;
        }
        self.read_q = read_request_queue(r, READ_QUEUE_CAP)?;
        self.read_coords = self.read_q.iter().map(&decode).collect();
        self.write_q = read_request_queue(r, WRITE_QUEUE_CAP)?;
        self.write_coords = self.write_q.iter().map(&decode).collect();
        self.bus_free = Cycle(r.u64()?);
        self.next_col_cmd = Cycle(r.u64()?);
        self.next_read_ok = Cycle(r.u64()?);
        self.next_act_any = Cycle(r.u64()?);
        let n_acts = r.seq_len(8)?;
        if n_acts > 4 {
            return Err(CodecError::Malformed("tFAW history too long"));
        }
        self.act_history.clear();
        for _ in 0..n_acts {
            self.act_history.push_back(Cycle(r.u64()?));
        }
        self.next_refresh = Cycle(r.u64()?);
        self.decision_time = Cycle(r.u64()?);
        self.draining = r.u8()? != 0;
        // Not serialized; "decide immediately" is always safe.
        self.wake = Cycle::ZERO;
        let n_in_flight = r.seq_len(41)?;
        let mut in_flight = Vec::with_capacity(n_in_flight);
        for _ in 0..n_in_flight {
            let at = Cycle(r.u64()?);
            let c = Completion {
                id: r.u64()?,
                kind: read_kind(r)?,
                finish: Cycle(r.u64()?),
                latency: r.u64()?,
                core: r.u64()? as usize,
            };
            in_flight.push((at, c));
        }
        self.in_flight = ramp_sim::EventQueue::rebuild(in_flight);
        let st = &mut self.stats;
        st.reads = r.u64()?;
        st.writes = r.u64()?;
        st.row_hits = r.u64()?;
        st.row_misses = r.u64()?;
        st.row_conflicts = r.u64()?;
        st.activates = r.u64()?;
        st.precharges = r.u64()?;
        st.drain_events = r.u64()?;
        st.refreshes = r.u64()?;
        st.busy_cycles = r.u64()?;
        let (n, mean, m2, min, max) = (r.u64()?, r.f64()?, r.f64()?, r.f64()?, r.f64()?);
        st.read_latency = OnlineStats::from_raw_parts(n, mean, m2, min, max);
        st.read_q_occupancy = BinHistogram::read_state(r)?;
        st.write_q_occupancy = BinHistogram::read_state(r)?;
        Ok(())
    }
}

fn write_request_queue(w: &mut ByteWriter, q: &VecDeque<MemRequest>) {
    w.u32(q.len() as u32);
    for req in q {
        w.u64(req.id);
        w.u64(req.line.0);
        w.u8(u8::from(req.kind.is_write()));
        w.u64(req.core as u64);
        w.u64(req.arrive.0);
    }
}

fn read_request_queue(r: &mut ByteReader, cap: usize) -> Result<VecDeque<MemRequest>, CodecError> {
    let n = r.seq_len(33)?;
    if n > cap {
        return Err(CodecError::Malformed("request queue over capacity"));
    }
    let mut q = VecDeque::with_capacity(n);
    for _ in 0..n {
        q.push_back(MemRequest {
            id: r.u64()?,
            line: ramp_sim::units::LineAddr(r.u64()?),
            kind: read_kind(r)?,
            core: r.u64()? as usize,
            arrive: Cycle(r.u64()?),
        });
    }
    Ok(q)
}

fn read_kind(r: &mut ByteReader) -> Result<AccessKind, CodecError> {
    match r.u8()? {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        _ => Err(CodecError::Malformed("bad access-kind tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapping;
    use crate::timing::Organization;
    use ramp_sim::units::LineAddr;

    fn ddr_controller() -> (ChannelController, AddressMapping) {
        (
            ChannelController::new(TimingParams::ddr3_1600(), 8),
            AddressMapping::new(Organization::ddr3()),
        )
    }

    fn req(id: u64, line: u64, kind: AccessKind, at: u64) -> MemRequest {
        MemRequest {
            id,
            line: LineAddr(line),
            kind,
            core: 0,
            arrive: Cycle(at),
        }
    }

    fn drain_all(c: &mut ChannelController) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut t = 0u64;
        while !c.is_idle() && t < 10_000_000 {
            t += 1000;
            c.advance(Cycle(t), &mut out);
        }
        out
    }

    #[test]
    fn single_read_latency_is_row_miss() {
        let (mut c, m) = ddr_controller();
        let r = req(1, 0, AccessKind::Read, 0);
        c.enqueue(r, m.decode(r.line)).unwrap();
        let done = drain_all(&mut c);
        assert_eq!(done.len(), 1);
        let tp = TimingParams::ddr3_1600();
        assert_eq!(done[0].latency, tp.t_rcd + tp.t_cl + tp.t_bl);
    }

    #[test]
    fn row_hit_is_faster_than_row_conflict() {
        let (mut c, m) = ddr_controller();
        // Two reads in the same row (consecutive columns of channel 0).
        let a = req(1, 0, AccessKind::Read, 0);
        let b = req(2, 2, AccessKind::Read, 0); // same bank/row, next column
        c.enqueue(a, m.decode(a.line)).unwrap();
        c.enqueue(b, m.decode(b.line)).unwrap();
        let done = drain_all(&mut c);
        assert_eq!(c.stats().row_hits, 1);
        assert_eq!(c.stats().row_misses, 1);
        let hit_latency = done[1].latency - done[0].latency.min(done[1].latency);
        // The second read rides the open row: far cheaper than a full miss.
        assert!(hit_latency < TimingParams::ddr3_1600().row_miss_read_latency());
    }

    #[test]
    fn frfcfs_prefers_open_row() {
        let (mut c, m) = ddr_controller();
        let org = Organization::ddr3();
        // a opens row 0 of bank 0; b conflicts (different row, same bank);
        // h hits the open row and should be served before b despite age.
        let lines_per_bank_stripe = org.lines_per_row * org.channels as u64;
        let a = req(1, 0, AccessKind::Read, 0);
        let conflict_line = lines_per_bank_stripe * org.banks as u64; // row 1, bank 0
        let b = req(2, conflict_line, AccessKind::Read, 0);
        let h = req(3, 2, AccessKind::Read, 0);
        for r in [a, b, h] {
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        let done = drain_all(&mut c);
        let order: Vec<u64> = done.iter().map(|d| d.id).collect();
        assert_eq!(order, vec![1, 3, 2], "row hit must bypass older conflict");
    }

    #[test]
    fn writes_are_drained_and_counted() {
        let (mut c, m) = ddr_controller();
        for i in 0..60 {
            let r = req(i, i * 2, AccessKind::Write, 0);
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        let done = drain_all(&mut c);
        assert_eq!(done.len(), 60);
        assert_eq!(c.stats().writes, 60);
    }

    #[test]
    fn queue_capacity_enforced() {
        let (mut c, m) = ddr_controller();
        for i in 0..READ_QUEUE_CAP as u64 {
            let r = req(i, i, AccessKind::Read, 0);
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        let r = req(99, 99, AccessKind::Read, 0);
        assert!(!c.can_accept(AccessKind::Read));
        assert_eq!(c.enqueue(r, m.decode(r.line)), Err(QueueFull));
        assert!(c.can_accept(AccessKind::Write));
    }

    #[test]
    fn completions_monotone_per_bus() {
        let (mut c, m) = ddr_controller();
        for i in 0..20 {
            let r = req(i, i * 64, AccessKind::Read, i * 3);
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        let done = drain_all(&mut c);
        assert_eq!(done.len(), 20);
        // Data bursts never overlap: finishes are separated by >= tBL.
        let mut finishes: Vec<u64> = done.iter().map(|d| d.finish.0).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            assert!(w[1] >= w[0] + TimingParams::ddr3_1600().t_bl);
        }
    }

    #[test]
    fn refresh_happens() {
        let (mut c, _) = ddr_controller();
        let mut out = Vec::new();
        c.advance(Cycle(200_000), &mut out);
        assert!(c.stats().refreshes >= 7, "expected periodic refreshes");
    }

    #[test]
    fn hit_streak_cap_bounds_starvation() {
        let (mut c, m) = ddr_controller();
        let org = Organization::ddr3();
        let lines_per_bank_stripe = org.lines_per_row * org.channels as u64;
        let conflict_line = lines_per_bank_stripe * org.banks as u64; // row 1, bank 0
                                                                      // A long stream of row-0 hits in bank 0, then one conflicting
                                                                      // row-1 read. FR-FCFS would serve it dead last; the streak cap
                                                                      // must squeeze it in after at most ROW_HIT_STREAK_CAP hits.
        for i in 0..28u64 {
            let r = req(i, i * 2, AccessKind::Read, 0);
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        let b = req(1000, conflict_line, AccessKind::Read, 0);
        c.enqueue(b, m.decode(b.line)).unwrap();
        let done = drain_all(&mut c);
        let pos = done.iter().position(|d| d.id == 1000).unwrap();
        // Position: 1 opening miss + up to CAP hits, then the conflict.
        assert!(
            pos <= ROW_HIT_STREAK_CAP as usize + 1,
            "conflict starved: served at position {pos} of {}",
            done.len()
        );
    }

    #[test]
    fn reads_bypass_writes_below_drain_watermark() {
        let (mut c, m) = ddr_controller();
        // Fewer writes than DRAIN_HI: posted writes must not delay reads.
        for i in 0..20u64 {
            let w = req(i, i * 2, AccessKind::Write, 0);
            c.enqueue(w, m.decode(w.line)).unwrap();
        }
        for i in 0..4u64 {
            let r = req(100 + i, 1000 + i * 2, AccessKind::Read, 0);
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        let done = drain_all(&mut c);
        let first_ids: Vec<u64> = done.iter().take(4).map(|d| d.id).collect();
        assert!(
            first_ids.iter().all(|&id| id >= 100),
            "reads must complete before any posted write: {first_ids:?}"
        );
        assert_eq!(done.len(), 24);
    }

    #[test]
    fn write_drain_engages_at_high_watermark_and_exits_at_low() {
        let (mut c, m) = ddr_controller();
        // Enough writes to trip DRAIN_HI, plus pending reads.
        for i in 0..DRAIN_HI as u64 {
            let w = req(i, i * 2, AccessKind::Write, 0);
            c.enqueue(w, m.decode(w.line)).unwrap();
        }
        for i in 0..4u64 {
            let r = req(100 + i, 1000 + i * 2, AccessKind::Read, 0);
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        let done = drain_all(&mut c);
        assert_eq!(done.len(), DRAIN_HI + 4);
        let first_read_pos = done
            .iter()
            .position(|d| d.kind == AccessKind::Read)
            .expect("reads complete");
        let writes_before_read = done[..first_read_pos]
            .iter()
            .filter(|d| d.kind == AccessKind::Write)
            .count();
        // Drain mode holds reads off until the queue falls to DRAIN_LO...
        assert!(
            writes_before_read >= DRAIN_HI - DRAIN_LO,
            "drain released reads early: only {writes_before_read} writes first"
        );
        // ...but exits there instead of emptying the write queue.
        assert!(
            writes_before_read < DRAIN_HI,
            "drain ran past the low watermark: {writes_before_read} writes first"
        );
    }

    #[test]
    fn refresh_closes_open_rows() {
        let (mut c, m) = ddr_controller();
        let tp = TimingParams::ddr3_1600();
        // Open a row well before the first refresh boundary.
        let a = req(1, 0, AccessKind::Read, 0);
        c.enqueue(a, m.decode(a.line)).unwrap();
        let mut out = Vec::new();
        c.advance(Cycle(tp.t_refi / 2), &mut out);
        assert_eq!(c.stats().row_misses, 1);
        // Same row again, but only after a refresh has intervened: the
        // refresh precharges every bank, so this must be a miss too.
        let b = req(2, 2, AccessKind::Read, tp.t_refi + 1);
        c.enqueue(b, m.decode(b.line)).unwrap();
        c.advance(Cycle(2 * tp.t_refi), &mut out);
        assert_eq!(out.len(), 2);
        assert!(c.stats().refreshes >= 1);
        assert_eq!(c.stats().row_misses, 2, "refresh must close the open row");
        assert_eq!(c.stats().row_hits, 0);
    }

    #[test]
    fn command_counters_are_consistent() {
        let (mut c, m) = ddr_controller();
        let org = Organization::ddr3();
        let lines_per_bank_stripe = org.lines_per_row * org.channels as u64;
        let conflict_line = lines_per_bank_stripe * org.banks as u64; // row 1, bank 0
        let a = req(1, 0, AccessKind::Read, 0);
        let h = req(2, 2, AccessKind::Read, 0); // hit on row 0
        let b = req(3, conflict_line, AccessKind::Read, 0); // conflict
        for r in [a, h, b] {
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        drain_all(&mut c);
        let st = c.stats();
        // Every row miss issues exactly one ACT; the conflicting read is
        // the only one that had to close an open row first.
        assert_eq!(st.activates, st.row_misses);
        assert_eq!(st.row_misses, 2);
        assert_eq!(st.row_conflicts, 1);
        assert!(st.precharges >= 1);
        assert!(st.row_conflicts <= st.row_misses);
        // Each enqueue recorded one occupancy sample.
        assert_eq!(st.read_q_occupancy.total(), 3);
        assert_eq!(st.write_q_occupancy.total(), 0);
    }

    #[test]
    fn drain_events_counted_once_per_transition() {
        let (mut c, m) = ddr_controller();
        for i in 0..DRAIN_HI as u64 {
            let w = req(i, i * 2, AccessKind::Write, 0);
            c.enqueue(w, m.decode(w.line)).unwrap();
        }
        drain_all(&mut c);
        assert_eq!(c.stats().drain_events, 1, "one hi-watermark crossing");
    }

    #[test]
    fn stats_export_covers_all_counters() {
        let (mut c, m) = ddr_controller();
        for i in 0..4u64 {
            let r = req(i, i * 2, AccessKind::Read, 0);
            c.enqueue(r, m.decode(r.line)).unwrap();
        }
        drain_all(&mut c);
        let mut reg = StatRegistry::new();
        c.stats().export_telemetry(&mut reg, "dram.test.ch0");
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("dram.test.ch0", "reads").unwrap().as_counter(),
            Some(4)
        );
        let occ = snap
            .get("dram.test.ch0", "read_q_occupancy")
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(occ.total(), 4);
        assert!(snap.get("dram.test.ch0", "row_hit_ratio").is_some());
    }

    #[test]
    fn bandwidth_saturation_orders_hbm_above_ddr() {
        // Stream reads through one DDR channel vs one HBM channel: the HBM
        // channel must sustain clearly higher throughput.
        let serve = |tp: TimingParams, org: Organization| {
            let mut c = ChannelController::new(tp, org.banks);
            let m = AddressMapping::new(org);
            let mut out = Vec::new();
            let mut issued = 0u64;
            let mut t = 0u64;
            while t < 100_000 {
                t += 50;
                while c.can_accept(AccessKind::Read) && issued < 100_000 {
                    let r = req(issued, issued * org.channels as u64, AccessKind::Read, t);
                    let coord = m.decode(r.line);
                    // All mapped to channel 0 by construction.
                    assert_eq!(coord.channel, 0);
                    c.enqueue(r, coord).unwrap();
                    issued += 1;
                }
                c.advance(Cycle(t), &mut out);
            }
            out.len() as f64
        };
        let ddr = serve(TimingParams::ddr3_1600(), Organization::ddr3());
        let hbm = serve(TimingParams::hbm_1000(), Organization::hbm());
        // Per-channel the HBM advantage is the shorter burst (tCCD); the
        // big aggregate win comes from 8 channels vs 2 (memory.rs test).
        assert!(
            hbm > ddr * 1.1,
            "per-channel HBM throughput ({hbm}) should beat DDR ({ddr})"
        );
    }
}
