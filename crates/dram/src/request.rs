//! Memory requests and completions.

use ramp_sim::units::{AccessKind, Cycle, LineAddr};

/// A request presented to a memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id assigned by the issuer; completions echo it.
    pub id: u64,
    /// The *frame* line address within this memory (already remapped by the
    /// HMA layer).
    pub line: LineAddr,
    /// Read (demand fill) or write (posted writeback).
    pub kind: AccessKind,
    /// Issuing core (for per-core statistics); `usize::MAX` for controller-
    /// generated traffic such as migrations.
    pub core: usize,
    /// Cycle the request entered the controller queue.
    pub arrive: Cycle,
}

/// A finished request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Cycle the last data beat transferred.
    pub finish: Cycle,
    /// Queue + service latency in cycles.
    pub latency: u64,
    /// Issuing core copied from the request.
    pub core: usize,
}

/// Error returned when a controller queue is full; the caller must stall
/// and retry (this is the bandwidth backpressure path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory controller queue full")
    }
}

impl std::error::Error for QueueFull {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_is_an_error() {
        let e: Box<dyn std::error::Error> = Box::new(QueueFull);
        assert_eq!(e.to_string(), "memory controller queue full");
    }

    #[test]
    fn request_fields_round_trip() {
        let r = MemRequest {
            id: 7,
            line: LineAddr(3),
            kind: AccessKind::Read,
            core: 4,
            arrive: Cycle(100),
        };
        assert_eq!(r.id, 7);
        assert!(!r.kind.is_write());
    }
}
