//! Cycle-level DRAM timing simulation for RAMP (Ramulator substitute).
//!
//! Models the two memories of the paper's Heterogeneous Memory Architecture
//! (Table 1): off-package DDR3-1600 and on-package HBM, each with
//! bank-state-machine timing, FR-FCFS scheduling, an open-page row-buffer
//! policy, posted writes with drain watermarks, refresh, and line-
//! interleaved address mapping. All timing is expressed in CPU cycles at the
//! paper's 3.2 GHz core clock.
//!
//! The crate is deliberately trace-agnostic: it consumes
//! [`request::MemRequest`]s and produces [`request::Completion`]s; the HMA
//! layer in `ramp-core` decides which memory each page's traffic targets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod mapping;
pub mod memory;
pub mod request;
pub mod timing;

pub use controller::{ChannelController, ChannelStats};
pub use mapping::{AddressMapping, DramCoord, Interleave};
pub use memory::{MemoryKind, MemorySystem};
pub use request::{Completion, MemRequest, QueueFull};
pub use timing::{Organization, TimingParams};
