//! Per-page activity counters for the migration mechanisms (Section 6).
//!
//! The performance-focused HMA baseline keeps one raw access counter per
//! page; the reliability-aware Full-Counter mechanism splits it into
//! separate read and write counters so both hotness (R+W) and risk (Wr/Rd)
//! can be measured at run time. Counters are 8-bit *saturating* (the
//! paper's hardware-cost analysis assumes 8-bit counters that do not wrap;
//! Section 6.3); the Cross-Counter reliability unit uses 16-bit counters
//! for HBM pages only (Section 6.4.2).

use std::collections::HashMap;

use ramp_sim::units::{AccessKind, PageId};

/// Per-interval read/write counters over an arbitrary page population.
#[derive(Clone, Debug)]
pub struct FullCounters {
    counts: HashMap<PageId, (u32, u32)>,
    saturation: u32,
}

impl FullCounters {
    /// Counters saturating at `saturation` (255 for the 8-bit FC design,
    /// 65535 for the 16-bit Cross-Counter reliability unit).
    pub fn new(saturation: u32) -> Self {
        assert!(saturation > 0);
        FullCounters {
            counts: HashMap::new(),
            saturation,
        }
    }

    /// The FC mechanism's 8-bit counters.
    pub fn fc_8bit() -> Self {
        Self::new(255)
    }

    /// The Cross-Counter reliability unit's 16-bit counters.
    pub fn cc_16bit() -> Self {
        Self::new(65_535)
    }

    /// Records one memory access to `page`.
    pub fn record(&mut self, page: PageId, kind: AccessKind) {
        let e = self.counts.entry(page).or_insert((0, 0));
        // saturating_add: `(x + 1).min(sat)` would overflow (and panic in
        // debug builds) if a counter ever sat at u32::MAX, e.g. with
        // `saturation == u32::MAX`.
        match kind {
            AccessKind::Read => e.0 = e.0.saturating_add(1).min(self.saturation),
            AccessKind::Write => e.1 = e.1.saturating_add(1).min(self.saturation),
        }
    }

    /// `(reads, writes)` for `page` this interval.
    pub fn get(&self, page: PageId) -> (u32, u32) {
        self.counts.get(&page).copied().unwrap_or((0, 0))
    }

    /// Total accesses (reads + writes) for `page`.
    pub fn hotness(&self, page: PageId) -> u32 {
        let (r, w) = self.get(page);
        r + w
    }

    /// Run-time Wr ratio of `page` (writes / reads, reads floored at 1).
    pub fn wr_ratio(&self, page: PageId) -> f64 {
        let (r, w) = self.get(page);
        w as f64 / r.max(1) as f64
    }

    /// Mean hotness over pages accessed this interval (the paper's dynamic
    /// threshold, Section 6.1 "Hotness Threshold").
    pub fn mean_hotness(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts
            .values()
            .map(|&(r, w)| (r + w) as f64)
            .sum::<f64>()
            / self.counts.len() as f64
    }

    /// Mean Wr ratio over pages accessed this interval.
    pub fn mean_wr_ratio(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts
            .values()
            .map(|&(r, w)| w as f64 / r.max(1) as f64)
            .sum::<f64>()
            / self.counts.len() as f64
    }

    /// Write share `w / (r + w)` of `page` (0 for untouched pages): the
    /// bounded form of the Wr-ratio risk proxy used for run-time
    /// thresholding, robust against the heavy tail of write-only pages.
    pub fn write_share(&self, page: PageId) -> f64 {
        let (r, w) = self.get(page);
        if r + w == 0 {
            0.0
        } else {
            w as f64 / (r + w) as f64
        }
    }

    /// Mean write share over pages accessed this interval (the run-time
    /// risk threshold of Section 6.2: pages below it are read-dominated,
    /// i.e. high-risk).
    pub fn mean_write_share(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts
            .values()
            .map(|&(r, w)| w as f64 / (r + w).max(1) as f64)
            .sum::<f64>()
            / self.counts.len() as f64
    }

    /// Iterator over `(page, reads, writes)` for pages touched this
    /// interval.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, u32, u32)> + '_ {
        self.counts.iter().map(|(&p, &(r, w))| (p, r, w))
    }

    /// Number of pages with activity this interval.
    pub fn touched(&self) -> usize {
        self.counts.len()
    }

    /// Clears all counters for the next interval.
    pub fn reset(&mut self) {
        self.counts.clear();
    }

    /// Serializes the counters (sorted by page id so the byte stream is
    /// independent of `HashMap` iteration order). The saturation limit is
    /// static per scheme and rebuilt on restore.
    pub(crate) fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        let mut entries: Vec<(PageId, (u32, u32))> =
            self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_by_key(|(p, _)| *p);
        w.u32(entries.len() as u32);
        for (page, (r, wr)) in entries {
            w.u64(page.0);
            w.u32(r);
            w.u32(wr);
        }
    }

    /// Restores the state captured by [`FullCounters::save_state`].
    pub(crate) fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        let n = r.seq_len(16)?;
        let mut counts = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = PageId(r.u64()?);
            counts.insert(page, (r.u32()?, r.u32()?));
        }
        self.counts = counts;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let mut c = FullCounters::fc_8bit();
        c.record(PageId(1), AccessKind::Read);
        c.record(PageId(1), AccessKind::Read);
        c.record(PageId(1), AccessKind::Write);
        assert_eq!(c.get(PageId(1)), (2, 1));
        assert_eq!(c.hotness(PageId(1)), 3);
        assert_eq!(c.get(PageId(2)), (0, 0));
    }

    #[test]
    fn saturates_without_wrapping() {
        let mut c = FullCounters::new(3);
        for _ in 0..100 {
            c.record(PageId(1), AccessKind::Write);
        }
        assert_eq!(c.get(PageId(1)), (0, 3));
    }

    #[test]
    fn saturation_pinned_at_8bit_limit() {
        let mut c = FullCounters::fc_8bit();
        for _ in 0..300 {
            c.record(PageId(1), AccessKind::Read);
            c.record(PageId(1), AccessKind::Write);
        }
        assert_eq!(c.get(PageId(1)), (255, 255));
    }

    #[test]
    fn saturation_pinned_at_16bit_limit() {
        let mut c = FullCounters::cc_16bit();
        for _ in 0..66_000 {
            c.record(PageId(1), AccessKind::Read);
        }
        assert_eq!(c.get(PageId(1)), (65_535, 0));
    }

    #[test]
    fn record_never_overflows_at_u32_max_saturation() {
        // With the counter parked at u32::MAX, another record must stay
        // put instead of wrapping (or panicking in debug builds).
        let mut c = FullCounters::new(u32::MAX);
        c.counts.insert(PageId(1), (u32::MAX, u32::MAX - 1));
        c.record(PageId(1), AccessKind::Read);
        c.record(PageId(1), AccessKind::Write);
        assert_eq!(c.get(PageId(1)), (u32::MAX, u32::MAX));
    }

    #[test]
    fn thresholds_are_means() {
        let mut c = FullCounters::fc_8bit();
        for _ in 0..10 {
            c.record(PageId(1), AccessKind::Read);
        }
        for _ in 0..2 {
            c.record(PageId(2), AccessKind::Write);
        }
        assert!((c.mean_hotness() - 6.0).abs() < 1e-12);
        // Page 1 ratio 0/10 -> 0; page 2 ratio 2/1 -> 2. Mean = 1.
        assert!((c.mean_wr_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_interval() {
        let mut c = FullCounters::fc_8bit();
        c.record(PageId(9), AccessKind::Read);
        assert_eq!(c.touched(), 1);
        c.reset();
        assert_eq!(c.touched(), 0);
        assert_eq!(c.hotness(PageId(9)), 0);
    }

    #[test]
    fn wr_ratio_handles_zero_reads() {
        let mut c = FullCounters::fc_8bit();
        c.record(PageId(1), AccessKind::Write);
        c.record(PageId(1), AccessKind::Write);
        assert_eq!(c.wr_ratio(PageId(1)), 2.0);
    }
}
