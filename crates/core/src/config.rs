//! System configuration (Table 1) and its scaled simulation counterpart.
//!
//! The paper simulates 16 GB DDR + 1 GB HBM with multi-GB workloads; RAMP
//! runs the same architecture at 1/64 capacity scale so the full experiment
//! suite completes in minutes (all reported results are *ratios*, which
//! survive uniform scaling — DESIGN.md §2). Hardware-cost arithmetic
//! (Sections 6.3/6.4) always uses the full-scale constants.

use ramp_avf::SerModel;
use ramp_cache::HierarchyConfig;

/// Full-scale Table 1 capacities, used by the hardware-cost model.
pub mod full_scale {
    /// HBM capacity in bytes (1 GiB).
    pub const HBM_BYTES: u64 = 1 << 30;
    /// DDR capacity in bytes (16 GiB).
    pub const DDR_BYTES: u64 = 16 << 30;
    /// HBM pages (262,144).
    pub const HBM_PAGES: u64 = HBM_BYTES / 4096;
    /// Total pages across the 17 GiB HMA (4.25 M).
    pub const TOTAL_PAGES: u64 = (HBM_BYTES + DDR_BYTES) / 4096;
}

/// Complete configuration of one simulated system.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of cores (Table 1: 16).
    pub cores: usize,
    /// Issue width per core (Table 1: 4-wide).
    pub issue_width: u32,
    /// Maximum outstanding demand misses per core (ROB-limited MLP).
    pub mshrs_per_core: usize,
    /// HBM capacity in pages (scaled: 4096 pages = 16 MiB).
    pub hbm_capacity_pages: u64,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Per-core instruction budget of one run.
    pub insts_per_core: u64,
    /// Root seed for trace generation.
    pub seed: u64,
    /// Full-Counter migration interval in cycles (the scaled "100 ms";
    /// sized so a default run spans ~10-20 intervals, as the paper's
    /// simpoints span many 100 ms intervals).
    pub fc_interval_cycles: u64,
    /// MEA migration interval in cycles (the scaled "50 us": much shorter
    /// than the FC interval, migrating at most 32 pages at a time).
    pub mea_interval_cycles: u64,
    /// Maximum page swaps per FC interval. Scaled from the paper's ~47k
    /// migrations per 100 ms interval on 262k HBM pages to keep the
    /// migration-traffic share of memory bandwidth comparable.
    pub max_swaps_per_interval: usize,
    /// Maximum pages the MEA performance unit migrates into HBM per MEA
    /// interval (MemPod moves at most 32 per 50 us at full scale; scaled
    /// to keep the same migration-bandwidth share).
    pub mea_max_pages_per_interval: usize,
    /// Soft-error-rate model (uncorrected FIT per GiB per memory).
    pub ser_model: SerModel,
}

impl SystemConfig {
    /// The scaled Table 1 system used by every experiment.
    pub fn table1_scaled() -> Self {
        SystemConfig {
            cores: 16,
            issue_width: 4,
            mshrs_per_core: 16,
            hbm_capacity_pages: 4096,
            hierarchy: HierarchyConfig::table1_scaled(),
            insts_per_core: 5_000_000,
            seed: 0x52414d50, // "RAMP"
            fc_interval_cycles: 400_000,
            mea_interval_cycles: 50_000,
            max_swaps_per_interval: 32,
            mea_max_pages_per_interval: 4,
            ser_model: SerModel::calibrated(),
        }
    }

    /// A fast variant for unit tests: fewer cores and instructions.
    pub fn smoke_test() -> Self {
        SystemConfig {
            cores: 4,
            insts_per_core: 150_000,
            hbm_capacity_pages: 512,
            fc_interval_cycles: 60_000,
            mea_interval_cycles: 6_000,
            ..Self::table1_scaled()
        }
    }

    /// Lower-bound estimate of the FC-interval epochs a run spans, used
    /// for coarse progress reporting (`epochs_done / epochs_total`).
    ///
    /// Derived from the zero-stall cycle count (`insts_per_core` at full
    /// issue width), so real runs — which stall on memory — overshoot it;
    /// progress consumers must treat `done > total` as "still running",
    /// not an error.
    pub fn epochs_estimate(&self) -> u64 {
        (self.insts_per_core / self.issue_width as u64)
            .div_ceil(self.fc_interval_cycles)
            .max(1)
    }

    /// A canonical byte encoding of every simulation-relevant parameter.
    ///
    /// Two configs produce identical bytes iff they run identical
    /// simulations, so the `ramp-serve` persistent run store hashes this
    /// into its content-addressed keys: any config change — capacities,
    /// intervals, seed, SER model, cache geometry — lands in a different
    /// store slot instead of serving stale results.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = ramp_sim::codec::ByteWriter::new();
        w.u64(self.cores as u64);
        w.u32(self.issue_width);
        w.u64(self.mshrs_per_core as u64);
        w.u64(self.hbm_capacity_pages);
        w.u64(self.hierarchy.cores as u64);
        for cache in [self.hierarchy.l1, self.hierarchy.l2] {
            w.u64(cache.size_bytes as u64);
            w.u64(cache.assoc as u64);
            w.u64(cache.line_bytes as u64);
        }
        w.u64(self.insts_per_core);
        w.u64(self.seed);
        w.u64(self.fc_interval_cycles);
        w.u64(self.mea_interval_cycles);
        w.u64(self.max_swaps_per_interval as u64);
        w.u64(self.mea_max_pages_per_interval as u64);
        w.f64(self.ser_model.fit_hbm_per_gb);
        w.f64(self.ser_model.fit_ddr_per_gb);
        w.into_bytes()
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is degenerate (zero cores, zero capacity,
    /// MEA interval not shorter than the FC interval, ...).
    pub fn validate(&self) {
        assert!(self.cores > 0 && self.cores <= 64);
        assert!(self.issue_width > 0);
        assert!(self.mshrs_per_core > 0);
        assert!(self.hbm_capacity_pages > 0);
        assert!(self.insts_per_core > 0);
        assert!(
            self.mea_interval_cycles < self.fc_interval_cycles,
            "MEA interval must be much shorter than the FC interval (\u{a7}6.4.3)"
        );
        assert!(self.max_swaps_per_interval > 0);
        assert!(self.mea_max_pages_per_interval > 0);
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table1_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_validates() {
        SystemConfig::table1_scaled().validate();
        SystemConfig::smoke_test().validate();
    }

    #[test]
    fn full_scale_constants_match_paper() {
        assert_eq!(full_scale::HBM_PAGES, 262_144);
        assert_eq!(full_scale::TOTAL_PAGES, 4_456_448); // "4.25M pages"
    }

    #[test]
    fn canonical_bytes_track_every_parameter() {
        let base = SystemConfig::table1_scaled();
        assert_eq!(base.canonical_bytes(), base.canonical_bytes());
        assert_ne!(
            base.canonical_bytes(),
            SystemConfig::smoke_test().canonical_bytes()
        );
        for mutate in [
            |c: &mut SystemConfig| c.insts_per_core += 1,
            |c: &mut SystemConfig| c.seed ^= 1,
            |c: &mut SystemConfig| c.hbm_capacity_pages += 1,
            |c: &mut SystemConfig| c.ser_model.fit_hbm_per_gb += 1.0,
            |c: &mut SystemConfig| c.hierarchy.l2.assoc *= 2,
        ] {
            let mut changed = SystemConfig::table1_scaled();
            mutate(&mut changed);
            assert_ne!(base.canonical_bytes(), changed.canonical_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "MEA interval")]
    fn mea_interval_must_be_shorter() {
        let cfg = SystemConfig {
            mea_interval_cycles: 5_000_000,
            ..SystemConfig::table1_scaled()
        };
        cfg.validate();
    }
}
