//! Dynamic migration mechanisms (Section 6).
//!
//! Three engines, all interval-based:
//!
//! * **Performance-focused Full Counters** ([`MigrationScheme::PerfFc`],
//!   Section 6.1, modeled on Meswani et al. HPCA'15): raw access counters
//!   per page; every FC interval, DDR pages hotter than the interval's mean
//!   hotness swap with the coldest HBM pages.
//! * **Reliability-aware Full Counters** ([`MigrationScheme::RelFc`],
//!   Section 6.2): the counters split into reads and writes; hot *and*
//!   low-risk (high Wr ratio) DDR pages swap in, cold *or* high-risk HBM
//!   pages swap out.
//! * **Cross Counters** ([`MigrationScheme::CrossCounter`], Section 6.4):
//!   a 32-entry MEA performance unit migrates globally hot pages into HBM
//!   every MEA interval; a 16-bit Full-Counter reliability unit tracks only
//!   HBM pages and flags high-risk residents for eviction every FC
//!   interval.

use std::collections::{HashMap, HashSet};

use ramp_dram::MemoryKind;
use ramp_sim::telemetry::{BinHistogram, StatRegistry};
use ramp_sim::units::{AccessKind, PageId, PAGE_SIZE};

use crate::counters::FullCounters;
use crate::mea::MeaTracker;

/// Which dynamic mechanism a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MigrationScheme {
    /// Raw-access-count migration (the state-of-the-art baseline).
    PerfFc,
    /// Reliability-aware Full-Counter migration.
    RelFc,
    /// MEA + HBM-only risk counters (the low-cost mechanism).
    CrossCounter,
}

impl MigrationScheme {
    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationScheme::PerfFc => "perf-fc",
            MigrationScheme::RelFc => "rel-fc",
            MigrationScheme::CrossCounter => "cross-counter",
        }
    }

    /// Parses a [`MigrationScheme::name`] back into the scheme (the
    /// inverse used by `ramp-serve` run requests and store keys).
    pub fn from_name(name: &str) -> Option<MigrationScheme> {
        match name {
            "perf-fc" => Some(MigrationScheme::PerfFc),
            "rel-fc" => Some(MigrationScheme::RelFc),
            "cross-counter" => Some(MigrationScheme::CrossCounter),
            _ => None,
        }
    }
}

impl std::fmt::Display for MigrationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A single page-move directive produced at an interval boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// The page to move.
    pub page: PageId,
    /// Destination memory.
    pub to: MemoryKind,
}

/// Interval-driven migration state machine.
#[derive(Debug)]
pub struct MigrationEngine {
    scheme: MigrationScheme,
    /// FC activity counters: all pages for the FC schemes, HBM pages only
    /// for Cross Counters (the reliability unit).
    counters: FullCounters,
    mea: MeaTracker,
    /// HBM pages flagged high-risk, awaiting eviction (Cross Counters).
    pending_high_risk: Vec<PageId>,
    /// Total page moves directed so far.
    pub migrations: u64,
    /// FC interval boundaries processed.
    fc_intervals: u64,
    /// MEA interval boundaries processed (Cross Counters only).
    mea_intervals: u64,
    /// Moves that reversed a page's previous migration direction
    /// (HBM→DDR→HBM or vice versa): the ping-pong thrash metric.
    pingpongs: u64,
    /// Bytes of migration traffic (each move copies one page; a swap is
    /// two moves, so this is moves × PAGE_SIZE).
    bytes_copied: u64,
    /// Last migration destination per page, for ping-pong detection.
    last_dest: HashMap<PageId, MemoryKind>,
    /// Moves directed per FC interval.
    moves_per_fc_interval: BinHistogram,
}

/// Bin count of the per-interval move histogram: intervals directing
/// `MOVES_HIST_BINS - 1` or more moves land in the last bin.
const MOVES_HIST_BINS: usize = 65;

impl MigrationEngine {
    /// Creates an engine for `scheme`.
    pub fn new(scheme: MigrationScheme) -> Self {
        let counters = match scheme {
            MigrationScheme::CrossCounter => FullCounters::cc_16bit(),
            _ => FullCounters::fc_8bit(),
        };
        MigrationEngine {
            scheme,
            counters,
            mea: MeaTracker::mempod(),
            pending_high_risk: Vec::new(),
            migrations: 0,
            fc_intervals: 0,
            mea_intervals: 0,
            pingpongs: 0,
            bytes_copied: 0,
            last_dest: HashMap::new(),
            moves_per_fc_interval: BinHistogram::new(0.0, MOVES_HIST_BINS as f64, MOVES_HIST_BINS),
        }
    }

    /// Accounts a directive batch: totals, migration bandwidth and
    /// ping-pong detection (a page moving opposite to its last move).
    fn note_moves(&mut self, moves: &[Move]) {
        self.migrations += moves.len() as u64;
        self.bytes_copied += moves.len() as u64 * PAGE_SIZE as u64;
        for m in moves {
            if let Some(prev) = self.last_dest.insert(m.page, m.to) {
                if prev != m.to {
                    self.pingpongs += 1;
                }
            }
        }
    }

    /// Exports migration telemetry into `scope` of `reg`.
    pub fn export_telemetry(&self, reg: &mut StatRegistry, scope: &str) {
        reg.counter_add(scope, "migrations", self.migrations);
        reg.counter_add(scope, "fc_intervals", self.fc_intervals);
        reg.counter_add(scope, "mea_intervals", self.mea_intervals);
        reg.counter_add(scope, "pingpongs", self.pingpongs);
        reg.counter_add(scope, "bytes_copied", self.bytes_copied);
        reg.ratio_add(
            scope,
            "moves_per_fc_interval_mean",
            self.migrations,
            self.fc_intervals + self.mea_intervals,
        );
        reg.observe_hist(scope, "moves_per_fc_interval", &self.moves_per_fc_interval);
    }

    /// The engine's scheme.
    pub fn scheme(&self) -> MigrationScheme {
        self.scheme
    }

    /// Records one demand memory access (migration traffic is excluded).
    pub fn on_mem_access(&mut self, page: PageId, kind: AccessKind, resident: MemoryKind) {
        match self.scheme {
            MigrationScheme::PerfFc | MigrationScheme::RelFc => {
                self.counters.record(page, kind);
            }
            MigrationScheme::CrossCounter => match resident {
                MemoryKind::Ddr => self.mea.record(page),
                MemoryKind::Hbm => self.counters.record(page, kind),
            },
        }
    }

    /// Runs the MEA-interval logic (Cross Counters only; a no-op for the
    /// FC schemes). `hbm_pages` is the current HBM residency, `pinned`
    /// pages are immune to eviction.
    pub fn on_mea_interval(
        &mut self,
        hbm_pages: &[PageId],
        hbm_free: u64,
        pinned: &HashSet<PageId>,
        max_in: usize,
    ) -> Vec<Move> {
        if self.scheme != MigrationScheme::CrossCounter {
            return Vec::new();
        }
        self.mea_intervals += 1;
        let hot = self.mea.drain();
        if hot.is_empty() {
            return Vec::new();
        }
        let hbm_set: HashSet<PageId> = hbm_pages.iter().copied().collect();
        let incoming: Vec<PageId> = hot
            .into_iter()
            .filter(|p| !hbm_set.contains(p))
            .take(max_in)
            .collect();
        // Victims: pending high-risk pages first, then the coldest HBM
        // pages by the reliability unit's counters.
        let mut victims: Vec<PageId> = Vec::new();
        self.pending_high_risk.retain(|p| hbm_set.contains(p));
        victims.extend(self.pending_high_risk.iter().copied());
        let mut cold: Vec<PageId> = hbm_pages
            .iter()
            .copied()
            .filter(|p| !pinned.contains(p) && !self.pending_high_risk.contains(p))
            .collect();
        cold.sort_by_key(|&p| (self.counters.hotness(p), p));
        victims.extend(cold);

        let mut moves = Vec::new();
        let mut victims = victims.into_iter();
        let mut free = hbm_free;
        for page in incoming {
            if free > 0 {
                free -= 1;
            } else {
                match victims.next() {
                    Some(v) => {
                        self.pending_high_risk.retain(|&p| p != v);
                        moves.push(Move {
                            page: v,
                            to: MemoryKind::Ddr,
                        });
                    }
                    None => break,
                }
            }
            moves.push(Move {
                page,
                to: MemoryKind::Hbm,
            });
        }
        self.note_moves(&moves);
        moves
    }

    /// Runs the FC-interval logic. `hbm_pages` is the current HBM
    /// residency; `hbm_free` the free frame count; `pinned` pages are
    /// immune; `max_moves` bounds the directive list.
    pub fn on_fc_interval(
        &mut self,
        hbm_pages: &[PageId],
        hbm_free: u64,
        pinned: &HashSet<PageId>,
        max_moves: usize,
    ) -> Vec<Move> {
        let moves = match self.scheme {
            MigrationScheme::PerfFc => self.fc_swaps(hbm_pages, hbm_free, pinned, max_moves, false),
            MigrationScheme::RelFc => self.fc_swaps(hbm_pages, hbm_free, pinned, max_moves, true),
            MigrationScheme::CrossCounter => {
                // Reliability unit: flag high-risk HBM pages; evict them now
                // (both units cooperate at FC boundaries, Section 6.4.3).
                let mean_share = self.counters.mean_write_share();
                let mut flagged: Vec<PageId> = hbm_pages
                    .iter()
                    .copied()
                    .filter(|&p| {
                        !pinned.contains(&p)
                            && self.counters.hotness(p) > 0
                            && self.counters.write_share(p) < mean_share
                    })
                    .collect();
                flagged.sort_by_key(|&p| {
                    // Most read-dominated (riskiest) first.
                    (
                        self.counters.get(p).1,
                        std::cmp::Reverse(self.counters.get(p).0),
                        p,
                    )
                });
                flagged.truncate(max_moves);
                let moves: Vec<Move> = flagged
                    .iter()
                    .map(|&page| Move {
                        page,
                        to: MemoryKind::Ddr,
                    })
                    .collect();
                self.pending_high_risk.clear();
                self.counters.reset();
                moves
            }
        };
        self.fc_intervals += 1;
        self.moves_per_fc_interval.observe(moves.len() as f64);
        self.note_moves(&moves);
        moves
    }

    /// Serializes the engine's dynamic state (the scheme itself is static
    /// and rebuilt on restore). Map-backed state is written sorted by page
    /// id; the MEA entry list and pending-eviction list keep their order,
    /// which their algorithms depend on.
    pub(crate) fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        self.counters.save_state(w);
        self.mea.save_state(w);
        w.u32(self.pending_high_risk.len() as u32);
        for &p in &self.pending_high_risk {
            w.u64(p.0);
        }
        w.u64(self.migrations);
        w.u64(self.fc_intervals);
        w.u64(self.mea_intervals);
        w.u64(self.pingpongs);
        w.u64(self.bytes_copied);
        let mut dests: Vec<(PageId, MemoryKind)> =
            self.last_dest.iter().map(|(&p, &k)| (p, k)).collect();
        dests.sort_by_key(|(p, _)| *p);
        w.u32(dests.len() as u32);
        for (page, kind) in dests {
            w.u64(page.0);
            w.u8(match kind {
                MemoryKind::Hbm => 0,
                MemoryKind::Ddr => 1,
            });
        }
        self.moves_per_fc_interval.save_state(w);
    }

    /// Restores the state captured by [`MigrationEngine::save_state`] into
    /// an engine of the same scheme.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        use ramp_sim::codec::CodecError;
        self.counters.restore_state(r)?;
        self.mea.restore_state(r)?;
        let n_pending = r.seq_len(8)?;
        self.pending_high_risk.clear();
        for _ in 0..n_pending {
            self.pending_high_risk.push(PageId(r.u64()?));
        }
        self.migrations = r.u64()?;
        self.fc_intervals = r.u64()?;
        self.mea_intervals = r.u64()?;
        self.pingpongs = r.u64()?;
        self.bytes_copied = r.u64()?;
        let n_dests = r.seq_len(9)?;
        let mut last_dest = HashMap::with_capacity(n_dests);
        for _ in 0..n_dests {
            let page = PageId(r.u64()?);
            let kind = match r.u8()? {
                0 => MemoryKind::Hbm,
                1 => MemoryKind::Ddr,
                _ => return Err(CodecError::Malformed("bad memory-kind tag")),
            };
            last_dest.insert(page, kind);
        }
        self.last_dest = last_dest;
        self.moves_per_fc_interval = BinHistogram::read_state(r)?;
        Ok(())
    }

    /// Shared FC swap generation: candidates in from DDR, victims out of
    /// HBM, paired.
    fn fc_swaps(
        &mut self,
        hbm_pages: &[PageId],
        hbm_free: u64,
        pinned: &HashSet<PageId>,
        max_moves: usize,
        reliability_aware: bool,
    ) -> Vec<Move> {
        let hbm_set: HashSet<PageId> = hbm_pages.iter().copied().collect();
        // The paper's thresholds: "all pages in slow memory above mean page
        // hotness" become candidates, so the candidate threshold is the
        // mean over slow-memory activity; the victim threshold is the mean
        // over HBM-resident activity.
        let (mut ddr_sum, mut ddr_n, mut hbm_sum, mut hbm_n) = (0u64, 0u64, 0u64, 0u64);
        for (p, r, w) in self.counters.iter() {
            if hbm_set.contains(&p) {
                hbm_sum += (r + w) as u64;
                hbm_n += 1;
            } else {
                ddr_sum += (r + w) as u64;
                ddr_n += 1;
            }
        }
        let mean_hot_ddr = ddr_sum as f64 / ddr_n.max(1) as f64;
        let mean_hot_hbm = hbm_sum as f64 / hbm_n.max(1) as f64;
        let mean_share = if reliability_aware {
            self.counters.mean_write_share()
        } else {
            0.0
        };

        // Incoming candidates: hot (and, if reliability-aware, low-risk)
        // pages currently in DDR.
        let mut incoming: Vec<(PageId, u32)> = self
            .counters
            .iter()
            .filter(|&(p, r, w)| {
                !hbm_set.contains(&p)
                    && (r + w) as f64 > mean_hot_ddr
                    && (!reliability_aware || (w as f64 / (r + w) as f64) >= mean_share)
            })
            .map(|(p, r, w)| (p, r + w))
            .collect();
        incoming.sort_by_key(|&(p, h)| (std::cmp::Reverse(h), p));

        // Victims: every non-pinned HBM page, riskiest first (reliability-
        // aware mode), then coldest. A swap is only performed when it is
        // strictly beneficial (the incoming page is hotter than the victim)
        // or the victim is high-risk — reliability wins ties.
        let mut victims: Vec<(bool, u32, PageId)> = hbm_pages
            .iter()
            .copied()
            .filter(|p| !pinned.contains(p))
            .map(|p| {
                let (r, w) = self.counters.get(p);
                let high_risk =
                    reliability_aware && (r + w) > 0 && (w as f64 / (r + w) as f64) < mean_share;
                (high_risk, r + w, p)
            })
            .collect();
        victims.sort_by_key(|&(high_risk, h, p)| (!high_risk, h, p));
        let _ = mean_hot_hbm; // victim eligibility is pairwise, not mean-based

        let mut moves = Vec::new();
        let mut victims = victims.into_iter();
        let mut free = hbm_free;
        for (page, cand_hot) in incoming {
            if moves.len() + 2 > max_moves * 2 {
                break;
            }
            if free > 0 {
                free -= 1;
            } else {
                match victims.next() {
                    Some((high_risk, victim_hot, v)) => {
                        if !high_risk && victim_hot >= cand_hot {
                            // Remaining victims are hotter still: stop.
                            break;
                        }
                        moves.push(Move {
                            page: v,
                            to: MemoryKind::Ddr,
                        });
                    }
                    None => break,
                }
            }
            moves.push(Move {
                page,
                to: MemoryKind::Hbm,
            });
        }
        self.counters.reset();
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: AccessKind = AccessKind::Read;
    const W: AccessKind = AccessKind::Write;

    fn record_n(e: &mut MigrationEngine, page: u64, kind: AccessKind, n: u32, res: MemoryKind) {
        for _ in 0..n {
            e.on_mem_access(PageId(page), kind, res);
        }
    }

    #[test]
    fn perf_fc_swaps_hot_for_cold() {
        let mut e = MigrationEngine::new(MigrationScheme::PerfFc);
        // Page 1 in HBM, cold. Page 2 in DDR, hot; page 3 in DDR, cold
        // (so the slow-memory mean threshold is meaningful).
        record_n(&mut e, 1, R, 1, MemoryKind::Hbm);
        record_n(&mut e, 2, R, 50, MemoryKind::Ddr);
        record_n(&mut e, 3, R, 2, MemoryKind::Ddr);
        let moves = e.on_fc_interval(&[PageId(1)], 0, &HashSet::new(), 100);
        assert_eq!(
            moves,
            vec![
                Move {
                    page: PageId(1),
                    to: MemoryKind::Ddr
                },
                Move {
                    page: PageId(2),
                    to: MemoryKind::Hbm
                },
            ]
        );
        assert_eq!(e.migrations, 2);
    }

    #[test]
    fn perf_fc_ignores_risk() {
        let mut e = MigrationEngine::new(MigrationScheme::PerfFc);
        // Hot read-dominated (high-risk) DDR page still swaps in.
        record_n(&mut e, 2, R, 60, MemoryKind::Ddr);
        record_n(&mut e, 3, R, 2, MemoryKind::Ddr);
        record_n(&mut e, 1, W, 1, MemoryKind::Hbm);
        let moves = e.on_fc_interval(&[PageId(1)], 0, &HashSet::new(), 10);
        assert!(moves
            .iter()
            .any(|m| m.page == PageId(2) && m.to == MemoryKind::Hbm));
    }

    #[test]
    fn rel_fc_rejects_hot_high_risk_candidates() {
        let mut e = MigrationEngine::new(MigrationScheme::RelFc);
        // DDR page 2: hot but read-only (high risk) -> must NOT swap in.
        record_n(&mut e, 2, R, 60, MemoryKind::Ddr);
        // DDR page 3: hot and write-dominated (low risk) -> swaps in.
        record_n(&mut e, 3, W, 50, MemoryKind::Ddr);
        record_n(&mut e, 3, R, 5, MemoryKind::Ddr);
        // DDR page 4: cold filler so the mean threshold is meaningful.
        record_n(&mut e, 4, R, 2, MemoryKind::Ddr);
        // HBM page 1: cold.
        record_n(&mut e, 1, R, 1, MemoryKind::Hbm);
        let moves = e.on_fc_interval(&[PageId(1)], 0, &HashSet::new(), 10);
        assert!(moves
            .iter()
            .any(|m| m.page == PageId(3) && m.to == MemoryKind::Hbm));
        assert!(!moves.iter().any(|m| m.page == PageId(2)));
    }

    #[test]
    fn rel_fc_evicts_high_risk_residents() {
        let mut e = MigrationEngine::new(MigrationScheme::RelFc);
        // HBM page 1: hot but read-dominated -> high risk, evictable.
        record_n(&mut e, 1, R, 40, MemoryKind::Hbm);
        // DDR page 2: hot and write-heavy; page 5: cold filler.
        record_n(&mut e, 2, W, 45, MemoryKind::Ddr);
        record_n(&mut e, 5, W, 2, MemoryKind::Ddr);
        let moves = e.on_fc_interval(&[PageId(1)], 0, &HashSet::new(), 10);
        assert!(moves.contains(&Move {
            page: PageId(1),
            to: MemoryKind::Ddr
        }));
    }

    #[test]
    fn pinned_pages_never_evicted() {
        let mut e = MigrationEngine::new(MigrationScheme::PerfFc);
        record_n(&mut e, 2, R, 50, MemoryKind::Ddr);
        let pinned = HashSet::from([PageId(1)]);
        let moves = e.on_fc_interval(&[PageId(1)], 0, &pinned, 10);
        assert!(!moves.iter().any(|m| m.page == PageId(1)));
    }

    #[test]
    fn cross_counter_mea_brings_hot_pages_in() {
        let mut e = MigrationEngine::new(MigrationScheme::CrossCounter);
        record_n(&mut e, 7, R, 40, MemoryKind::Ddr); // MEA-tracked
        let moves = e.on_mea_interval(&[], 8, &HashSet::new(), 32);
        assert_eq!(
            moves,
            vec![Move {
                page: PageId(7),
                to: MemoryKind::Hbm
            }]
        );
    }

    #[test]
    fn cross_counter_fc_flags_high_risk_hbm_pages() {
        let mut e = MigrationEngine::new(MigrationScheme::CrossCounter);
        // HBM page 1 read-dominated (risky), page 2 write-dominated (safe).
        record_n(&mut e, 1, R, 30, MemoryKind::Hbm);
        record_n(&mut e, 2, W, 30, MemoryKind::Hbm);
        let moves = e.on_fc_interval(&[PageId(1), PageId(2)], 0, &HashSet::new(), 10);
        assert_eq!(
            moves,
            vec![Move {
                page: PageId(1),
                to: MemoryKind::Ddr
            }]
        );
    }

    #[test]
    fn cross_counter_evicts_pending_first() {
        let mut e = MigrationEngine::new(MigrationScheme::CrossCounter);
        // Make page 9 pending-high-risk via direct state (white-box).
        e.pending_high_risk.push(PageId(9));
        record_n(&mut e, 5, R, 20, MemoryKind::Ddr);
        let moves = e.on_mea_interval(&[PageId(9)], 0, &HashSet::new(), 32);
        assert_eq!(moves[0].page, PageId(9));
        assert_eq!(moves[0].to, MemoryKind::Ddr);
        assert_eq!(moves[1].page, PageId(5));
    }

    #[test]
    fn fc_schemes_skip_mea_interval() {
        let mut e = MigrationEngine::new(MigrationScheme::PerfFc);
        record_n(&mut e, 2, R, 50, MemoryKind::Ddr);
        assert!(e.on_mea_interval(&[], 8, &HashSet::new(), 32).is_empty());
    }

    #[test]
    fn telemetry_counts_intervals_pingpongs_and_bandwidth() {
        let mut e = MigrationEngine::new(MigrationScheme::PerfFc);
        // Interval 1: page 2 swaps into HBM (page 1 out).
        record_n(&mut e, 1, R, 1, MemoryKind::Hbm);
        record_n(&mut e, 2, R, 50, MemoryKind::Ddr);
        record_n(&mut e, 3, R, 2, MemoryKind::Ddr);
        let m1 = e.on_fc_interval(&[PageId(1)], 0, &HashSet::new(), 100);
        assert_eq!(m1.len(), 2);
        // Interval 2: page 2 goes cold in HBM while page 3 heats up, so
        // page 2 swaps back out — a ping-pong.
        record_n(&mut e, 2, R, 1, MemoryKind::Hbm);
        record_n(&mut e, 3, R, 50, MemoryKind::Ddr);
        record_n(&mut e, 4, R, 2, MemoryKind::Ddr);
        let m2 = e.on_fc_interval(&[PageId(2)], 0, &HashSet::new(), 100);
        assert!(m2.contains(&Move {
            page: PageId(2),
            to: MemoryKind::Ddr
        }));

        let mut reg = StatRegistry::new();
        e.export_telemetry(&mut reg, "migration");
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("migration", "fc_intervals").unwrap().as_counter(),
            Some(2)
        );
        assert_eq!(
            snap.get("migration", "migrations").unwrap().as_counter(),
            Some(4)
        );
        assert_eq!(
            snap.get("migration", "pingpongs").unwrap().as_counter(),
            Some(1),
            "page 2 went DDR<-HBM after HBM<-DDR"
        );
        assert_eq!(
            snap.get("migration", "bytes_copied").unwrap().as_counter(),
            Some(4 * PAGE_SIZE as u64)
        );
        let h = snap
            .get("migration", "moves_per_fc_interval")
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[2], 2, "both intervals directed 2 moves");
    }

    #[test]
    fn max_moves_bounds_directives() {
        let mut e = MigrationEngine::new(MigrationScheme::PerfFc);
        for p in 0..100u64 {
            record_n(&mut e, 100 + p, R, 50, MemoryKind::Ddr);
        }
        let hbm: Vec<PageId> = (0..100).map(PageId).collect();
        let moves = e.on_fc_interval(&hbm, 0, &HashSet::new(), 5);
        assert!(moves.len() <= 10, "got {} moves", moves.len());
    }
}
