//! Program-annotation-based data placement (Section 7).
//!
//! The paper pins a handful of *hot and low-risk* program structures in
//! HBM via annotations honored by the ELF loader; annotated pages are
//! immune to migration. We reproduce the profile-guided selection: rank
//! each benchmark's structures by the hot-and-low-risk page mass they
//! contribute (using the Wr² heuristic as the risk-aware hotness score)
//! and annotate greedily until HBM capacity is covered. Figure 17 counts
//! the structures annotated per workload (1-6 for most, ~39 for cactusADM,
//! ~45 for mix1).

use std::collections::HashSet;

use ramp_avf::StatsTable;
use ramp_sim::units::PageId;
use ramp_trace::{Benchmark, Workload};

/// One annotatable structure: a named region with its pages across every
/// core running its benchmark.
#[derive(Clone, Debug)]
pub struct StructureInfo {
    /// The benchmark the structure belongs to.
    pub benchmark: Benchmark,
    /// The structure (region) name.
    pub name: String,
    /// All pages of the structure, across all instances.
    pub pages: Vec<PageId>,
}

/// The chosen annotation set for a workload.
#[derive(Clone, Debug)]
pub struct AnnotationSet {
    /// `(benchmark, structure-name)` pairs, in selection order.
    pub structures: Vec<(Benchmark, String)>,
    /// Every page pinned by the annotations.
    pub pinned: HashSet<PageId>,
}

impl AnnotationSet {
    /// Number of annotated program structures (the Figure 17 metric).
    pub fn count(&self) -> usize {
        self.structures.len()
    }
}

/// Enumerates a workload's structures with their global page sets.
///
/// Structures are per-*benchmark*: annotating `lbm.lattice_a` pins that
/// region in every core running lbm (all copies execute the same annotated
/// binary).
pub fn workload_structures(workload: &Workload, seed: u64) -> Vec<StructureInfo> {
    // Build the generators only to learn the address layout.
    let cores = workload.build_cores(seed, 1);
    let assignments = workload.assignments();
    let mut out: Vec<StructureInfo> = Vec::new();
    for bench in workload.distinct_benchmarks() {
        let profile = bench.profile();
        for (ri, region) in profile.regions.iter().enumerate() {
            let mut pages = Vec::new();
            for (core, gen) in cores.iter().enumerate() {
                if assignments[core] != bench {
                    continue;
                }
                let (lo, hi) = gen.region_page_range(ri);
                pages.extend((lo.index()..hi.index()).map(PageId));
            }
            out.push(StructureInfo {
                benchmark: bench,
                name: region.name.clone(),
                pages,
            });
        }
    }
    out
}

/// Profile-guided annotation selection.
///
/// Section 7 annotates structures that are "frequently accessed and yet do
/// not remain live for a substantial duration": a structure is *eligible*
/// when its aggregate write share marks it low-risk (above the footprint's
/// mean write share), and eligible structures are ranked by per-page
/// hotness so the annotations cover the performance-critical data first.
/// Selection stops when `capacity_pages` are pinned or eligible structures
/// run out.
pub fn select_annotations(
    workload: &Workload,
    table: &StatsTable,
    capacity_pages: usize,
    seed: u64,
) -> AnnotationSet {
    let structures = workload_structures(workload, seed);
    // Footprint-wide mean write share (the low-risk bar).
    let (mut wtot, mut atot) = (0u64, 0u64);
    for st in table.pages() {
        wtot += st.writes;
        atot += st.hotness();
    }
    let mean_share = wtot as f64 / atot.max(1) as f64;
    // The hotness bar: half the marginal (capacity-th hottest) page of a
    // performance-focused placement. Structures below it would waste HBM
    // capacity that hotter non-pinned pages could use.
    let mut hotness: Vec<u64> = table.pages().iter().map(|s| s.hotness()).collect();
    hotness.sort_unstable_by(|a, b| b.cmp(a));
    let marginal = hotness
        .get(capacity_pages.saturating_sub(1))
        .copied()
        .unwrap_or(0);
    let hotness_bar = marginal as f64 * 0.5;
    let mut scored: Vec<(f64, StructureInfo)> = structures
        .into_iter()
        .map(|s| {
            let (mut hot, mut writes, mut acc) = (0u64, 0u64, 0u64);
            for &p in &s.pages {
                if let Some(st) = table.get(p) {
                    hot += st.hotness();
                    writes += st.writes;
                    acc += st.hotness();
                }
            }
            let share = writes as f64 / acc.max(1) as f64;
            // Clearly write-dominated relative to the footprint: balanced
            // RMW data (fill:writeback ~ 1:1) does not qualify.
            let low_risk = share >= mean_share * 1.25;
            let density = hot as f64 / s.pages.len().max(1) as f64;
            // Annotations target *hot and low-risk* structures only: a
            // structure must beat the footprint's mean page hotness and be
            // write-dominated relative to the footprint.
            let score = if low_risk && density > hotness_bar.max(1.0) {
                density
            } else {
                0.0
            };
            (score, s)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.name.cmp(&b.1.name))
    });

    let mut set = AnnotationSet {
        structures: Vec::new(),
        pinned: HashSet::new(),
    };
    for (density, s) in scored {
        if density <= 0.0 || set.pinned.len() >= capacity_pages {
            break;
        }
        // Pin as much of the structure as fits.
        let before = set.pinned.len();
        for &p in &s.pages {
            if set.pinned.len() >= capacity_pages {
                break;
            }
            set.pinned.insert(p);
        }
        if set.pinned.len() > before {
            set.structures.push((s.benchmark, s.name));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_avf::PageStats;
    use ramp_trace::MixId;

    #[test]
    fn structures_cover_footprint() {
        let w = Workload::Homogeneous(Benchmark::Astar);
        let s = workload_structures(&w, 1);
        let total_pages: usize = s.iter().map(|x| x.pages.len()).sum();
        assert_eq!(total_pages as u64, w.footprint_pages());
        assert_eq!(s.len(), Benchmark::Astar.profile().regions.len());
    }

    #[test]
    fn mix_structures_span_benchmarks() {
        let w = Workload::Mix(MixId::Mix1);
        let s = workload_structures(&w, 1);
        let benches: HashSet<_> = s.iter().map(|x| x.benchmark).collect();
        assert_eq!(benches.len(), 9);
    }

    #[test]
    fn selection_prefers_write_dominated_structures() {
        let w = Workload::Homogeneous(Benchmark::Astar);
        let structures = workload_structures(&w, 1);
        // Synthesize stats: make "path_scratch" pages write-hot, all else
        // read-only.
        let mut stats = Vec::new();
        for s in &structures {
            for &p in &s.pages {
                let (reads, writes) = if s.name == "path_scratch" {
                    (10, 300)
                } else {
                    (50, 0)
                };
                stats.push(PageStats {
                    page: p,
                    reads,
                    writes,
                    ace_hbm: 0,
                    ace_ddr: 0,
                    avf: 0.1,
                });
            }
        }
        let table = StatsTable::from_stats(stats, 1000);
        let sel = select_annotations(&w, &table, 500, 1);
        assert!(!sel.structures.is_empty());
        assert_eq!(sel.structures[0].1, "path_scratch");
        assert!(
            sel.count() < structures.len(),
            "should not annotate everything"
        );
    }

    #[test]
    fn capacity_bounds_pinning() {
        let w = Workload::Homogeneous(Benchmark::Astar);
        let structures = workload_structures(&w, 1);
        let stats: Vec<PageStats> = structures
            .iter()
            .flat_map(|s| s.pages.iter())
            .map(|&p| PageStats {
                page: p,
                reads: 1,
                writes: 10,
                ace_hbm: 0,
                ace_ddr: 0,
                avf: 0.0,
            })
            .collect();
        let table = StatsTable::from_stats(stats, 1000);
        let sel = select_annotations(&w, &table, 100, 1);
        assert!(sel.pinned.len() <= 100);
    }
}
