//! The Majority Element Algorithm (MEA) hotness tracker of MemPod.
//!
//! A Misra-Gries frequent-elements summary with a fixed number of entries
//! (32 in the paper, Section 6.4.1): an access to a tracked page increments
//! its counter; an access to an untracked page either claims a free slot or
//! decrements every counter (evicting zeros). At the end of each
//! MEA-interval the surviving entries are the globally hot pages, and the
//! map is cleared.
//!
//! Guarantee exercised by the property tests: any page with more than
//! `accesses / (entries + 1)` occurrences in an interval is present at the
//! end of that interval.

use ramp_sim::units::PageId;

/// Number of MEA map entries used by the paper.
pub const MEA_ENTRIES: usize = 32;

/// A fixed-capacity Misra-Gries tracker.
#[derive(Clone, Debug)]
pub struct MeaTracker {
    entries: Vec<(PageId, u32)>,
    capacity: usize,
    accesses: u64,
}

impl MeaTracker {
    /// Creates a tracker with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MEA needs at least one entry");
        MeaTracker {
            entries: Vec::with_capacity(capacity),
            capacity,
            accesses: 0,
        }
    }

    /// The paper's 32-entry configuration.
    pub fn mempod() -> Self {
        Self::new(MEA_ENTRIES)
    }

    /// Records one access to `page`.
    pub fn record(&mut self, page: PageId) {
        self.accesses += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((page, 1));
            return;
        }
        // Decrement-all; drop entries that reach zero.
        for e in &mut self.entries {
            e.1 -= 1;
        }
        self.entries.retain(|e| e.1 > 0);
    }

    /// Accesses recorded since the last [`MeaTracker::drain`].
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Pages currently tracked, hottest (highest surviving count) first.
    pub fn hot_pages(&self) -> Vec<PageId> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().map(|(p, _)| p).collect()
    }

    /// Returns the hot pages and resets the tracker for the next interval.
    pub fn drain(&mut self) -> Vec<PageId> {
        let hot = self.hot_pages();
        self.entries.clear();
        self.accesses = 0;
        hot
    }

    /// Serializes the tracker; entry order is preserved verbatim because
    /// the Misra-Gries update sequence depends on it.
    pub(crate) fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        w.u64(self.accesses);
        w.u32(self.entries.len() as u32);
        for &(page, count) in &self.entries {
            w.u64(page.0);
            w.u32(count);
        }
    }

    /// Restores the state captured by [`MeaTracker::save_state`] into a
    /// tracker of identical capacity.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        self.accesses = r.u64()?;
        let n = r.seq_len(12)?;
        if n > self.capacity {
            return Err(ramp_sim::codec::CodecError::Malformed(
                "MEA entries over capacity",
            ));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push((PageId(r.u64()?), r.u32()?));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_simple_majorities() {
        let mut m = MeaTracker::new(2);
        for _ in 0..10 {
            m.record(PageId(1));
        }
        m.record(PageId(2));
        m.record(PageId(3)); // decrements everyone
        let hot = m.hot_pages();
        assert_eq!(hot[0], PageId(1));
    }

    #[test]
    fn frequent_element_guarantee() {
        // A page with > n/(k+1) occurrences must survive.
        let mut m = MeaTracker::new(4);
        let mut stream = Vec::new();
        // 40 accesses: page 7 appears 12 times (> 40/5 = 8), noise unique.
        for i in 0..28u64 {
            stream.push(PageId(1000 + i));
        }
        for _ in 0..12 {
            stream.push(PageId(7));
        }
        // Interleave deterministically.
        stream.sort_by_key(|p| p.0 % 13);
        for p in stream {
            m.record(p);
        }
        assert!(m.hot_pages().contains(&PageId(7)));
    }

    #[test]
    fn drain_resets() {
        let mut m = MeaTracker::mempod();
        m.record(PageId(5));
        assert_eq!(m.accesses(), 1);
        let hot = m.drain();
        assert_eq!(hot, vec![PageId(5)]);
        assert_eq!(m.accesses(), 0);
        assert!(m.hot_pages().is_empty());
    }

    #[test]
    fn capacity_bounds_entries() {
        let mut m = MeaTracker::new(8);
        for i in 0..1000u64 {
            m.record(PageId(i));
        }
        assert!(m.hot_pages().len() <= 8);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        MeaTracker::new(0);
    }
}
