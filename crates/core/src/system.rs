//! The full-system HMA simulator: 16 trace-driven cores, the cache
//! hierarchy, two DRAM timing models, the page map, the AVF tracker, and
//! an optional migration engine, advanced in lock-step.
//!
//! The core model is Ramulator-style: non-memory instructions retire at
//! full issue width; demand fills occupy MSHRs (bounding per-core
//! memory-level parallelism, the ROB-limited behaviour of Table 1's
//! 128-entry window); writes are posted. Cores stall when their MSHRs are
//! exhausted or a controller queue refuses a request — that backpressure
//! is where HBM's bandwidth advantage becomes IPC.

use std::collections::{HashSet, VecDeque};

use ramp_avf::{AvfTracker, SerModel, StatsTable};
use ramp_cache::Hierarchy;
use ramp_dram::{Completion, MemRequest, MemoryKind, MemorySystem};
use ramp_sim::codec::{self, ByteReader, ByteWriter, CodecError};
use ramp_sim::telemetry::{BinHistogram, Snapshot, StatRegistry};
use ramp_sim::units::{AccessKind, Cycle, LineAddr, PageId, LINES_PER_PAGE};
use ramp_trace::{InstanceGen, MemEvent, Workload};

use crate::config::SystemConfig;
use crate::migration::{MigrationEngine, Move};
use crate::pagemap::PageMap;

/// Extra latency charged to a core for an L1 miss that hits on-chip (L2).
const L2_HIT_LATENCY: u64 = 12;
/// Simulation time step in cycles.
const CHUNK: u64 = 128;
/// Core id used for migration traffic (excluded from IPC/AVF accounting).
const MIGRATION_CORE: usize = usize::MAX;

#[derive(Debug)]
struct CoreState {
    gen: InstanceGen,
    cycle: u64,
    retired: u64,
    budget: u64,
    outstanding: u32,
    pending: VecDeque<MemEvent>,
    done: bool,
    finish: u64,
}

/// Outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Policy/scheme label.
    pub policy: String,
    /// Aggregate IPC: total instructions / makespan cycles.
    pub ipc: f64,
    /// Per-core IPC (instructions / per-core finish cycle).
    pub per_core_ipc: Vec<f64>,
    /// System soft error rate in FIT (Equation 2 over all pages).
    pub ser_fit: f64,
    /// SER of the same run had every page lived in DDR (the baseline
    /// denominator of Figures 5 and 12).
    pub ser_ddr_only_fit: f64,
    /// Makespan in cycles.
    pub cycles: u64,
    /// Total instructions retired.
    pub instructions: u64,
    /// Main-memory accesses per kilo-instruction.
    pub mpki: f64,
    /// Demand accesses served by HBM / DDR.
    pub hbm_accesses: u64,
    /// Demand accesses served by DDR.
    pub ddr_accesses: u64,
    /// Page migrations performed.
    pub migrations: u64,
    /// Mean demand-read latency in cycles (HBM, DDR).
    pub mean_read_latency: (f64, f64),
    /// Final per-page statistics (hotness, write ratio, AVF).
    pub table: StatsTable,
    /// Full telemetry snapshot of the run: DRAM, cache, migration, core
    /// and system scopes (deterministic; see `ramp_sim::telemetry`).
    pub telemetry: Snapshot,
}

impl RunResult {
    /// SER relative to the DDR-only baseline (e.g. the paper's "287x").
    pub fn ser_vs_ddr_only(&self) -> f64 {
        if self.ser_ddr_only_fit == 0.0 {
            1.0
        } else {
            self.ser_fit / self.ser_ddr_only_fit
        }
    }
}

/// Frame kind tag of checkpoint blobs written by
/// [`SystemSim::save_state`] (shares the `ramp_sim::codec` framing used by
/// the persistent run store, under a distinct kind).
pub const CHECKPOINT_KIND: u8 = 3;
/// Version of the checkpoint payload layout. Bump on any layout change so
/// stale checkpoints are rejected instead of misread.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Epoch-granular observation hooks for [`SystemSim::run_with_hooks`].
///
/// An epoch is one FC interval; the hooks fire at the first chunk boundary
/// past each epoch tick, after every subsystem has settled for the chunk,
/// which is exactly the cut [`SystemSim::save_state`] serializes.
#[derive(Default)]
pub struct RunHooks<'a> {
    /// Serialize a checkpoint every this many epochs (0 = never).
    pub checkpoint_every: u64,
    /// Called at every epoch boundary with the epochs completed so far.
    pub on_epoch: Option<&'a mut dyn FnMut(u64)>,
    /// Called with `(epoch, serialized state)` at checkpoint boundaries
    /// (only when `checkpoint_every > 0`).
    pub on_checkpoint: Option<&'a mut dyn FnMut(u64, Vec<u8>)>,
}

impl std::fmt::Debug for RunHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHooks")
            .field("checkpoint_every", &self.checkpoint_every)
            .field("on_epoch", &self.on_epoch.is_some())
            .field("on_checkpoint", &self.on_checkpoint.is_some())
            .finish()
    }
}

/// The simulator.
#[derive(Debug)]
pub struct SystemSim {
    cfg: SystemConfig,
    workload_name: String,
    policy_name: String,
    cores: Vec<CoreState>,
    hierarchy: Hierarchy,
    hbm: MemorySystem,
    ddr: MemorySystem,
    pagemap: PageMap,
    avf: AvfTracker,
    engine: Option<MigrationEngine>,
    pinned: HashSet<PageId>,
    backlog: VecDeque<(MemoryKind, LineAddr, AccessKind)>,
    completions: Vec<Completion>,
    next_id: u64,
    now: u64,
    demand_hbm: u64,
    demand_ddr: u64,
    footprint: Vec<PageId>,
    /// Per-core MSHR occupancy sampled once per chunk.
    outstanding_hist: Vec<BinHistogram>,
    /// Aggregate IPC per FC-interval epoch (instruction delta / interval).
    epoch_ipc: BinHistogram,
    epochs: u64,
    last_epoch_insts: u64,
    /// Next FC-interval boundary (migration engine).
    next_fc: u64,
    /// Next MEA-interval boundary (migration engine).
    next_mea: u64,
    /// Next epoch boundary (always FC-interval spaced, engine or not).
    next_epoch: u64,
    /// Demand-read latency accumulator for HBM: `(cycle sum, count)`.
    hbm_lat: (f64, u64),
    /// Demand-read latency accumulator for DDR: `(cycle sum, count)`.
    ddr_lat: (f64, u64),
}

/// Bins of the epoch-IPC histogram, spanning `[0, cores × issue width)`.
const EPOCH_IPC_BINS: usize = 64;

impl SystemSim {
    /// Builds a simulator for `workload` with an initial HBM placement and
    /// optional migration engine.
    ///
    /// `initial_hbm` pages are bound into HBM before execution (truncated
    /// at capacity, deterministically by page id); `pinned` pages are
    /// additionally immune to migration.
    pub fn new(
        cfg: SystemConfig,
        workload: &Workload,
        policy_name: impl Into<String>,
        initial_hbm: &HashSet<PageId>,
        pinned: HashSet<PageId>,
        engine: Option<MigrationEngine>,
    ) -> Self {
        cfg.validate();
        let built = workload.build_cores(cfg.seed, cfg.insts_per_core);
        let mut footprint: Vec<PageId> = Vec::new();
        for gen in &built {
            for ri in 0..gen.profile().regions.len() {
                let (lo, hi) = gen.region_page_range(ri);
                footprint.extend((lo.index()..hi.index()).map(PageId));
            }
        }
        let cores: Vec<CoreState> = built
            .into_iter()
            .map(|gen| CoreState {
                gen,
                cycle: 0,
                retired: 0,
                budget: cfg.insts_per_core,
                outstanding: 0,
                pending: VecDeque::new(),
                done: false,
                finish: 0,
            })
            .collect();
        let mut pagemap = PageMap::new(cfg.hbm_capacity_pages);
        let mut initial: Vec<PageId> = initial_hbm.iter().copied().collect();
        initial.sort();
        for p in initial {
            if pagemap.place_in_hbm(p).is_err() {
                break;
            }
        }
        let mshr_bins = cfg.mshrs_per_core + 1;
        let peak_ipc = (cfg.hierarchy.cores * cfg.issue_width as usize) as f64;
        SystemSim {
            outstanding_hist: (0..cfg.hierarchy.cores)
                .map(|_| BinHistogram::new(0.0, mshr_bins as f64, mshr_bins))
                .collect(),
            epoch_ipc: BinHistogram::new(0.0, peak_ipc, EPOCH_IPC_BINS),
            epochs: 0,
            last_epoch_insts: 0,
            next_fc: cfg.fc_interval_cycles,
            next_mea: cfg.mea_interval_cycles,
            // Epoch boundaries follow the FC interval whether or not a
            // migration engine is attached, so static runs get the same
            // interval-level IPC series.
            next_epoch: cfg.fc_interval_cycles,
            hbm_lat: (0.0, 0),
            ddr_lat: (0.0, 0),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            hbm: MemorySystem::hbm(),
            ddr: MemorySystem::ddr3(),
            pagemap,
            avf: AvfTracker::new(Cycle::ZERO),
            engine,
            pinned,
            backlog: VecDeque::new(),
            completions: Vec::new(),
            next_id: 0,
            now: 0,
            demand_hbm: 0,
            demand_ddr: 0,
            footprint,
            workload_name: workload.name().to_string(),
            policy_name: policy_name.into(),
            cores,
            cfg,
        }
    }

    fn mem_of(&mut self, kind: MemoryKind) -> &mut MemorySystem {
        match kind {
            MemoryKind::Hbm => &mut self.hbm,
            MemoryKind::Ddr => &mut self.ddr,
        }
    }

    /// Drains queued migration copy traffic into the controllers.
    fn pump_backlog(&mut self) {
        while let Some(&(mk, line, kind)) = self.backlog.front() {
            let req = MemRequest {
                id: self.next_id,
                line,
                kind,
                core: MIGRATION_CORE,
                arrive: Cycle(self.now),
            };
            // A full queue rejects without mutating; retry next chunk.
            if self.mem_of(mk).enqueue(req).is_err() {
                break;
            }
            self.next_id += 1;
            self.backlog.pop_front();
        }
    }

    /// Applies migration directives: rebinds pages and queues the copy
    /// traffic (64 line reads from the old frame + 64 line writes to the
    /// new frame per page).
    fn apply_moves(&mut self, moves: Vec<Move>) {
        for m in moves {
            let Some((from, old_frame)) = self.pagemap.lookup(m.page) else {
                continue;
            };
            if from == m.to || self.pagemap.migrate(m.page, m.to).is_err() {
                continue;
            }
            let (to, new_frame) = self.pagemap.lookup(m.page).expect("just migrated");
            for l in 0..LINES_PER_PAGE as u64 {
                self.backlog.push_back((
                    from,
                    LineAddr(old_frame * LINES_PER_PAGE as u64 + l),
                    AccessKind::Read,
                ));
                self.backlog.push_back((
                    to,
                    LineAddr(new_frame * LINES_PER_PAGE as u64 + l),
                    AccessKind::Write,
                ));
            }
        }
    }

    /// Issues one demand event into the memory system: page-map translate,
    /// enqueue, AVF/engine bookkeeping, MSHR accounting. Returns `false`
    /// on controller backpressure (nothing was mutated; the caller stalls
    /// the core for the chunk and retries the event next chunk).
    #[inline]
    fn issue_event(&mut self, i: usize, ev: MemEvent, chunk_end: u64) -> bool {
        let page = ev.line.page();
        let lip = ev.line.line_in_page();
        let (mk, fline) = self.pagemap.frame_line(page, lip);
        let at = Cycle(self.cores[i].cycle.max(self.now));
        let req = MemRequest {
            id: self.next_id,
            line: fline,
            kind: ev.kind,
            core: i,
            arrive: at,
        };
        // A full queue rejects without mutating: controller backpressure.
        if self.mem_of(mk).enqueue(req).is_err() {
            self.cores[i].cycle = chunk_end;
            return false;
        }
        self.next_id += 1;
        match mk {
            MemoryKind::Hbm => self.demand_hbm += 1,
            MemoryKind::Ddr => self.demand_ddr += 1,
        }
        self.avf.on_access(page, lip, ev.kind, at, mk);
        if let Some(e) = &mut self.engine {
            e.on_mem_access(page, ev.kind, mk);
        }
        if !ev.kind.is_write() {
            self.cores[i].outstanding += 1;
        }
        true
    }

    /// Runs core `i` until the end of the chunk or a stall.
    fn run_core(&mut self, i: usize, chunk_end: u64, tmp: &mut Vec<MemEvent>) {
        // Per-record retire cost divides by the issue width; shipped
        // widths are powers of two, so hoist the shift out of the loop.
        let iw = self.cfg.issue_width as u64;
        let iw_shift = iw.is_power_of_two().then(|| iw.trailing_zeros());
        loop {
            // Drain events left over from a stalled chunk first.
            while let Some(ev) = self.cores[i].pending.front().copied() {
                if !self.issue_event(i, ev, chunk_end) {
                    return;
                }
                self.cores[i].pending.pop_front();
            }
            {
                let c = &mut self.cores[i];
                if c.done || c.cycle >= chunk_end {
                    return;
                }
                if c.outstanding >= self.cfg.mshrs_per_core as u32 {
                    // MSHRs exhausted: wait for completions.
                    c.cycle = chunk_end;
                    return;
                }
                if c.retired >= c.budget {
                    c.done = true;
                    c.finish = c.cycle;
                    return;
                }
            }
            let rec = self.cores[i]
                .gen
                .next()
                .expect("trace streams are infinite");
            {
                let c = &mut self.cores[i];
                let insts = rec.instructions();
                c.retired += insts;
                c.cycle += match iw_shift {
                    Some(s) => (insts + iw - 1) >> s,
                    None => insts.div_ceil(iw),
                };
            }
            tmp.clear();
            let hit = self.hierarchy.access(i, rec.addr.line(), rec.kind, tmp);
            if !hit && !rec.kind.is_write() {
                self.cores[i].cycle += L2_HIT_LATENCY;
            }
            // Issue the miss events directly; only a stalled remainder
            // takes the pending-queue detour (drained above next chunk).
            for (k, &ev) in tmp.iter().enumerate() {
                if !self.issue_event(i, ev, chunk_end) {
                    let c = &mut self.cores[i];
                    c.pending.extend(tmp[k..].iter().copied());
                    return;
                }
            }
        }
    }

    /// Hash binding a checkpoint to the run that wrote it: config,
    /// workload and policy. Static state (trace profiles, footprint,
    /// pinned set, DRAM geometry) is a pure function of these, so it is
    /// rebuilt through [`SystemSim::new`] rather than serialized.
    fn identity_hash(&self) -> u64 {
        let h = codec::fnv1a64(&self.cfg.canonical_bytes());
        let h = codec::fnv1a64_seeded(h, self.workload_name.as_bytes());
        codec::fnv1a64_seeded(h, self.policy_name.as_bytes())
    }

    /// Serializes the complete dynamic simulation state as a framed,
    /// checksummed blob. Restoring it into a freshly built simulator of
    /// identical arguments (via [`SystemSim::restore_state`]) and running
    /// on yields results byte-identical to the uninterrupted run.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.identity_hash());
        w.u64(self.now);
        w.u64(self.next_id);
        w.u64(self.epochs);
        w.u64(self.last_epoch_insts);
        w.u64(self.next_fc);
        w.u64(self.next_mea);
        w.u64(self.next_epoch);
        w.u64(self.demand_hbm);
        w.u64(self.demand_ddr);
        w.f64(self.hbm_lat.0);
        w.u64(self.hbm_lat.1);
        w.f64(self.ddr_lat.0);
        w.u64(self.ddr_lat.1);
        w.u32(self.cores.len() as u32);
        for c in &self.cores {
            c.gen.save_state(&mut w);
            w.u64(c.cycle);
            w.u64(c.retired);
            w.u64(c.budget);
            w.u32(c.outstanding);
            w.u32(c.pending.len() as u32);
            for ev in &c.pending {
                w.u64(ev.line.0);
                w.u8(u8::from(ev.kind.is_write()));
                w.u64(ev.core as u64);
            }
            w.u8(u8::from(c.done));
            w.u64(c.finish);
        }
        self.hierarchy.save_state(&mut w);
        self.hbm.save_state(&mut w);
        self.ddr.save_state(&mut w);
        self.pagemap.save_state(&mut w);
        self.avf.save_state(&mut w);
        match &self.engine {
            None => w.u8(0),
            Some(e) => {
                w.u8(1);
                e.save_state(&mut w);
            }
        }
        w.u32(self.backlog.len() as u32);
        for &(mk, line, kind) in &self.backlog {
            w.u8(match mk {
                MemoryKind::Hbm => 0,
                MemoryKind::Ddr => 1,
            });
            w.u64(line.0);
            w.u8(u8::from(kind.is_write()));
        }
        w.u32(self.outstanding_hist.len() as u32);
        for h in &self.outstanding_hist {
            h.save_state(&mut w);
        }
        self.epoch_ipc.save_state(&mut w);
        codec::encode_framed(CHECKPOINT_KIND, CHECKPOINT_VERSION, w.bytes())
    }

    /// Restores a checkpoint written by [`SystemSim::save_state`] into a
    /// freshly built simulator with identical constructor arguments.
    ///
    /// # Errors
    ///
    /// Any corruption — bad framing, wrong kind/version, checksum failure,
    /// truncation, or a checkpoint from a different run — returns a
    /// [`CodecError`] and never panics. The simulator may be partially
    /// mutated on failure; callers must discard it and rebuild.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let payload = codec::decode_framed(bytes, CHECKPOINT_KIND, CHECKPOINT_VERSION)?;
        let mut r = ByteReader::new(payload);
        if r.u64()? != self.identity_hash() {
            return Err(CodecError::Malformed("checkpoint is for a different run"));
        }
        self.now = r.u64()?;
        self.next_id = r.u64()?;
        self.epochs = r.u64()?;
        self.last_epoch_insts = r.u64()?;
        self.next_fc = r.u64()?;
        self.next_mea = r.u64()?;
        self.next_epoch = r.u64()?;
        self.demand_hbm = r.u64()?;
        self.demand_ddr = r.u64()?;
        self.hbm_lat = (r.f64()?, r.u64()?);
        self.ddr_lat = (r.f64()?, r.u64()?);
        let n_cores = r.seq_len(64)?;
        if n_cores != self.cores.len() {
            return Err(CodecError::Malformed("core count mismatch"));
        }
        for c in &mut self.cores {
            c.gen.restore_state(&mut r)?;
            c.cycle = r.u64()?;
            c.retired = r.u64()?;
            c.budget = r.u64()?;
            c.outstanding = r.u32()?;
            let n_pending = r.seq_len(17)?;
            c.pending.clear();
            for _ in 0..n_pending {
                let line = LineAddr(r.u64()?);
                let write = r.u8()? != 0;
                let core = r.u64()? as usize;
                c.pending.push_back(if write {
                    MemEvent::write(line, core)
                } else {
                    MemEvent::read(line, core)
                });
            }
            c.done = r.u8()? != 0;
            c.finish = r.u64()?;
        }
        self.hierarchy.restore_state(&mut r)?;
        self.hbm.restore_state(&mut r)?;
        self.ddr.restore_state(&mut r)?;
        self.pagemap.restore_state(&mut r)?;
        self.avf.restore_state(&mut r)?;
        match (r.u8()?, &mut self.engine) {
            (0, None) => {}
            (1, Some(e)) => e.restore_state(&mut r)?,
            _ => return Err(CodecError::Malformed("migration-engine presence mismatch")),
        }
        let n_backlog = r.seq_len(10)?;
        self.backlog.clear();
        for _ in 0..n_backlog {
            let mk = match r.u8()? {
                0 => MemoryKind::Hbm,
                1 => MemoryKind::Ddr,
                _ => return Err(CodecError::Malformed("bad memory-kind tag")),
            };
            let line = LineAddr(r.u64()?);
            let kind = if r.u8()? != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            self.backlog.push_back((mk, line, kind));
        }
        let n_hist = r.seq_len(1)?;
        if n_hist != self.outstanding_hist.len() {
            return Err(CodecError::Malformed("core histogram count mismatch"));
        }
        for h in &mut self.outstanding_hist {
            *h = BinHistogram::read_state(&mut r)?;
        }
        self.epoch_ipc = BinHistogram::read_state(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::Malformed("trailing bytes in checkpoint"));
        }
        Ok(())
    }

    /// Runs the workload to completion and produces the result.
    pub fn run(self) -> RunResult {
        self.run_with_hooks(RunHooks::default())
    }

    /// Runs the workload to completion, invoking `hooks` at every epoch
    /// boundary (an epoch is one FC interval). A run resumed from a
    /// checkpoint via [`SystemSim::restore_state`] continues here and
    /// produces a byte-identical [`RunResult`].
    pub fn run_with_hooks(mut self, mut hooks: RunHooks<'_>) -> RunResult {
        let mut tmp = Vec::new();

        loop {
            let chunk_end = self.now + CHUNK;
            self.pump_backlog();
            for i in 0..self.cores.len() {
                self.run_core(i, chunk_end, &mut tmp);
            }
            let mut completions = std::mem::take(&mut self.completions);
            completions.clear();
            self.hbm.advance(Cycle(chunk_end), &mut completions);
            let hbm_split = completions.len();
            self.ddr.advance(Cycle(chunk_end), &mut completions);
            for (idx, comp) in completions.iter().enumerate() {
                if comp.core != MIGRATION_CORE && !comp.kind.is_write() {
                    let c = &mut self.cores[comp.core];
                    c.outstanding = c.outstanding.saturating_sub(1);
                    let lat = if idx < hbm_split {
                        &mut self.hbm_lat
                    } else {
                        &mut self.ddr_lat
                    };
                    lat.0 += comp.latency as f64;
                    lat.1 += 1;
                }
            }
            self.completions = completions;

            for (i, c) in self.cores.iter().enumerate() {
                self.outstanding_hist[i].observe(c.outstanding as f64);
            }
            let epoch_fired = chunk_end >= self.next_epoch;
            if epoch_fired {
                self.next_epoch += self.cfg.fc_interval_cycles;
                self.epochs += 1;
                let insts: u64 = self.cores.iter().map(|c| c.retired).sum();
                let delta = insts - self.last_epoch_insts;
                self.last_epoch_insts = insts;
                self.epoch_ipc
                    .observe(delta as f64 / self.cfg.fc_interval_cycles as f64);
            }

            let all_done = self.cores.iter().all(|c| c.done);
            if !all_done && self.engine.is_some() {
                if chunk_end >= self.next_mea {
                    self.next_mea += self.cfg.mea_interval_cycles;
                    let hbm_pages = self.pagemap.hbm_pages();
                    let free = self.pagemap.hbm_free();
                    let moves = self
                        .engine
                        .as_mut()
                        .expect("engine present")
                        .on_mea_interval(
                            &hbm_pages,
                            free,
                            &self.pinned,
                            self.cfg.mea_max_pages_per_interval,
                        );
                    self.apply_moves(moves);
                }
                if chunk_end >= self.next_fc {
                    self.next_fc += self.cfg.fc_interval_cycles;
                    let hbm_pages = self.pagemap.hbm_pages();
                    let free = self.pagemap.hbm_free();
                    let max = self.cfg.max_swaps_per_interval;
                    let moves = self
                        .engine
                        .as_mut()
                        .expect("engine present")
                        .on_fc_interval(&hbm_pages, free, &self.pinned, max);
                    self.apply_moves(moves);
                }
            }

            self.now = chunk_end;
            if epoch_fired {
                // The chunk boundary after an epoch tick is the checkpoint
                // cut: every subsystem is between chunks, so the serialized
                // state resumes at the top of the loop deterministically.
                if let Some(on_epoch) = hooks.on_epoch.as_mut() {
                    on_epoch(self.epochs);
                }
                if hooks.checkpoint_every > 0 && self.epochs % hooks.checkpoint_every == 0 {
                    if let Some(on_checkpoint) = hooks.on_checkpoint.as_mut() {
                        on_checkpoint(self.epochs, self.save_state());
                        if let Some(chaos) = ramp_sim::chaos::global() {
                            chaos.maybe_panic("sim.checkpoint");
                        }
                    }
                }
            }
            if all_done && self.backlog.is_empty() && self.hbm.is_idle() && self.ddr.is_idle() {
                break;
            }
            // Safety valve: a run must terminate even if something wedges.
            assert!(
                self.now < 50_000_000_000,
                "simulation did not converge (cycle {})",
                self.now
            );
        }

        let makespan = self
            .cores
            .iter()
            .map(|c| c.finish)
            .max()
            .unwrap_or(self.now)
            .max(1);
        let instructions: u64 = self.cores.iter().map(|c| c.retired).sum();
        let per_core_ipc: Vec<f64> = self
            .cores
            .iter()
            .map(|c| c.retired as f64 / c.finish.max(1) as f64)
            .collect();
        let table = self
            .avf
            .finish(Cycle(makespan))
            .include_untouched(self.footprint.iter().copied());
        let ser_model: &SerModel = &self.cfg.ser_model;
        let ser_fit = ser_model.system_ser(&table);
        let ser_ddr_only_fit = ser_model.ddr_only_ser(&table);
        let demand_total = self.demand_hbm + self.demand_ddr;
        let mpki = demand_total as f64 / instructions.max(1) as f64 * 1000.0;

        let mut reg = StatRegistry::new();
        self.hbm.export_telemetry(&mut reg, "dram.hbm");
        self.ddr.export_telemetry(&mut reg, "dram.ddr");
        self.hierarchy.export_telemetry(&mut reg, "cache");
        reg.gauge_set(
            "cache.l2",
            "mpki",
            self.hierarchy.l2_stats().misses as f64 / instructions.max(1) as f64 * 1000.0,
        );
        if let Some(e) = &self.engine {
            e.export_telemetry(&mut reg, "migration");
        }
        for (i, c) in self.cores.iter().enumerate() {
            let scope = format!("core.c{i:02}");
            reg.counter_add(&scope, "instructions", c.retired);
            reg.counter_add(&scope, "finish_cycle", c.finish);
            reg.gauge_set(&scope, "ipc", c.retired as f64 / c.finish.max(1) as f64);
            reg.observe_hist(&scope, "outstanding_misses", &self.outstanding_hist[i]);
        }
        reg.counter_add("system", "instructions", instructions);
        reg.counter_add("system", "cycles", makespan);
        reg.counter_add("system", "hbm_accesses", self.demand_hbm);
        reg.counter_add("system", "ddr_accesses", self.demand_ddr);
        reg.counter_add("system", "epochs", self.epochs);
        reg.gauge_set("system", "ipc", instructions as f64 / makespan as f64);
        reg.gauge_set("system", "mpki", mpki);
        reg.observe_hist("system", "epoch_ipc", &self.epoch_ipc);
        reg.gauge_set("avf", "ser_fit", ser_fit);
        reg.gauge_set("avf", "ser_ddr_only_fit", ser_ddr_only_fit);

        RunResult {
            workload: self.workload_name,
            policy: self.policy_name,
            ipc: instructions as f64 / makespan as f64,
            per_core_ipc,
            ser_fit,
            ser_ddr_only_fit,
            cycles: makespan,
            instructions,
            mpki,
            hbm_accesses: self.demand_hbm,
            ddr_accesses: self.demand_ddr,
            migrations: self.engine.as_ref().map_or(0, |e| e.migrations),
            mean_read_latency: (
                if self.hbm_lat.1 > 0 {
                    self.hbm_lat.0 / self.hbm_lat.1 as f64
                } else {
                    0.0
                },
                if self.ddr_lat.1 > 0 {
                    self.ddr_lat.0 / self.ddr_lat.1 as f64
                } else {
                    0.0
                },
            ),
            table,
            telemetry: reg.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_trace::Benchmark;

    fn smoke_run(policy: &str, initial: HashSet<PageId>) -> RunResult {
        let cfg = SystemConfig::smoke_test();
        let wl = Workload::Homogeneous(Benchmark::Astar);
        SystemSim::new(cfg, &wl, policy, &initial, HashSet::new(), None).run()
    }

    #[test]
    fn ddr_only_smoke_run_completes() {
        let r = smoke_run("ddr-only", HashSet::new());
        assert!(r.ipc > 0.1, "ipc {}", r.ipc);
        assert!(r.instructions >= 4 * 150_000);
        assert_eq!(r.hbm_accesses, 0);
        assert!(r.ddr_accesses > 0);
        assert!(r.mpki > 0.0);
        // DDR-only: SER equals the DDR-only baseline.
        assert!((r.ser_vs_ddr_only() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_runs() {
        let a = smoke_run("x", HashSet::new());
        let b = smoke_run("x", HashSet::new());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.ser_fit, b.ser_fit);
        assert_eq!(a.hbm_accesses, b.hbm_accesses);
    }

    #[test]
    fn hbm_placement_attracts_traffic_and_raises_ser() {
        // Place the first pages of every core's footprint in HBM.
        let cfg = SystemConfig::smoke_test();
        let wl = Workload::Homogeneous(Benchmark::Astar);
        let mut initial = HashSet::new();
        for gen in wl.build_cores(cfg.seed, 1) {
            let base = gen.base_page().index();
            for p in 0..128 {
                initial.insert(PageId(base + p));
            }
        }
        let r = SystemSim::new(cfg, &wl, "some-hbm", &initial, HashSet::new(), None).run();
        assert!(r.hbm_accesses > 0, "HBM must see traffic");
        assert!(r.ser_vs_ddr_only() >= 1.0, "HBM residency cannot lower SER");
    }

    #[test]
    fn telemetry_snapshot_covers_all_scopes() {
        use crate::migration::{MigrationEngine, MigrationScheme};
        let cfg = SystemConfig::smoke_test();
        let wl = Workload::Homogeneous(Benchmark::Libquantum);
        let engine = MigrationEngine::new(MigrationScheme::PerfFc);
        let r = SystemSim::new(
            cfg,
            &wl,
            "perf-fc",
            &HashSet::new(),
            HashSet::new(),
            Some(engine),
        )
        .run();
        let t = &r.telemetry;
        // Every top-level scope the acceptance criteria name is present.
        assert_eq!(
            t.get("system", "instructions").unwrap().as_counter(),
            Some(r.instructions)
        );
        assert_eq!(
            t.get("migration", "migrations").unwrap().as_counter(),
            Some(r.migrations)
        );
        assert_eq!(
            t.get("dram.ddr", "accesses")
                .unwrap()
                .as_counter()
                .map(|v| v > 0),
            Some(true)
        );
        assert!(t.get("dram.hbm.ch0", "row_hits").is_some());
        assert!(t.get("cache.l2", "misses").is_some());
        assert!(t.get("cache.l1.core00", "hits").is_some());
        assert!(t.get("core.c00", "ipc").is_some());
        assert!(t.get("avf", "ser_fit").is_some());
        // The MSHR occupancy histogram sampled every chunk on every core.
        let occ = t
            .get("core.c00", "outstanding_misses")
            .unwrap()
            .as_histogram()
            .unwrap();
        assert!(occ.total() > 0);
        // Epoch IPC series recorded at FC-interval boundaries.
        assert!(t.get("system", "epochs").unwrap().as_counter().unwrap() > 0);
        let eipc = t
            .get("system", "epoch_ipc")
            .unwrap()
            .as_histogram()
            .unwrap();
        assert_eq!(
            Some(eipc.total()),
            t.get("system", "epochs").unwrap().as_counter()
        );
        // Deterministic: an identical run yields a byte-identical snapshot.
        let engine2 = MigrationEngine::new(MigrationScheme::PerfFc);
        let r2 = SystemSim::new(
            SystemConfig::smoke_test(),
            &wl,
            "perf-fc",
            &HashSet::new(),
            HashSet::new(),
            Some(engine2),
        )
        .run();
        assert_eq!(r.telemetry.to_json(), r2.telemetry.to_json());
    }

    fn migration_sim() -> SystemSim {
        use crate::migration::{MigrationEngine, MigrationScheme};
        let cfg = SystemConfig::smoke_test();
        let wl = Workload::Homogeneous(Benchmark::Libquantum);
        SystemSim::new(
            cfg,
            &wl,
            "perf-fc",
            &HashSet::new(),
            HashSet::new(),
            Some(MigrationEngine::new(MigrationScheme::PerfFc)),
        )
    }

    #[test]
    fn checkpoint_restore_then_save_is_byte_identical() {
        // Capture a mid-run checkpoint...
        let mut blobs: Vec<Vec<u8>> = Vec::new();
        let mut save = |_epoch: u64, blob: Vec<u8>| blobs.push(blob);
        migration_sim().run_with_hooks(RunHooks {
            checkpoint_every: 2,
            on_checkpoint: Some(&mut save),
            ..RunHooks::default()
        });
        assert!(blobs.len() >= 2, "expected several checkpoints");
        // ...restore it into a fresh sim and re-serialize: the blob must
        // round-trip exactly (nothing was lost or reordered).
        let blob = &blobs[blobs.len() / 2];
        let mut sim = migration_sim();
        sim.restore_state(blob).unwrap();
        assert_eq!(&sim.save_state(), blob);
    }

    #[test]
    fn resume_from_checkpoint_matches_uninterrupted_run() {
        let reference = migration_sim().run();

        let mut blobs: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut save = |epoch: u64, blob: Vec<u8>| blobs.push((epoch, blob));
        let interrupted = migration_sim().run_with_hooks(RunHooks {
            checkpoint_every: 1,
            on_checkpoint: Some(&mut save),
            ..RunHooks::default()
        });
        assert_eq!(
            reference.telemetry.to_json(),
            interrupted.telemetry.to_json()
        );

        // Resume from a mid-run checkpoint as if the first process died.
        let (epoch, blob) = &blobs[blobs.len() / 2];
        assert!(*epoch > 0);
        let mut sim = migration_sim();
        sim.restore_state(blob).unwrap();
        let resumed = sim.run();
        assert_eq!(reference.cycles, resumed.cycles);
        assert_eq!(reference.instructions, resumed.instructions);
        assert_eq!(reference.ser_fit.to_bits(), resumed.ser_fit.to_bits());
        assert_eq!(reference.ipc.to_bits(), resumed.ipc.to_bits());
        assert_eq!(reference.migrations, resumed.migrations);
        assert_eq!(
            reference.mean_read_latency.0.to_bits(),
            resumed.mean_read_latency.0.to_bits()
        );
        assert_eq!(reference.telemetry.to_json(), resumed.telemetry.to_json());
    }

    #[test]
    fn checkpoint_rejects_corruption_and_foreign_runs() {
        let mut blobs: Vec<Vec<u8>> = Vec::new();
        let mut save = |_epoch: u64, blob: Vec<u8>| blobs.push(blob);
        migration_sim().run_with_hooks(RunHooks {
            checkpoint_every: 2,
            on_checkpoint: Some(&mut save),
            ..RunHooks::default()
        });
        let blob = blobs.remove(0);
        // Truncated tail.
        assert!(migration_sim()
            .restore_state(&blob[..blob.len() - 3])
            .is_err());
        // Flipped byte mid-payload breaks the frame checksum.
        let mut flipped = blob.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(migration_sim().restore_state(&flipped).is_err());
        // A different run (other policy label) must be rejected.
        let wl = Workload::Homogeneous(Benchmark::Libquantum);
        let mut other = SystemSim::new(
            SystemConfig::smoke_test(),
            &wl,
            "ddr-only",
            &HashSet::new(),
            HashSet::new(),
            None,
        );
        assert!(other.restore_state(&blob).is_err());
    }

    #[test]
    fn migration_engine_moves_pages() {
        use crate::migration::{MigrationEngine, MigrationScheme};
        let cfg = SystemConfig::smoke_test();
        let wl = Workload::Homogeneous(Benchmark::Libquantum);
        let engine = MigrationEngine::new(MigrationScheme::PerfFc);
        let r = SystemSim::new(
            cfg,
            &wl,
            "perf-fc",
            &HashSet::new(),
            HashSet::new(),
            Some(engine),
        )
        .run();
        assert!(r.migrations > 0, "expected migrations");
        assert!(r.hbm_accesses > 0, "migrated pages must serve traffic");
    }
}
