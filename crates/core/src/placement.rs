//! Static (profile-guided / oracular) data-placement policies (Sections
//! 4.2 and 5).
//!
//! Every policy consumes the page statistics of a profiling run on a
//! DDR-only system and selects the set of pages to place in HBM, bounded
//! by HBM capacity. The measured run then executes with that placement
//! fixed.

use std::collections::HashSet;

use ramp_avf::{Quadrant, QuadrantAnalysis, StatsTable};
use ramp_sim::stats::rank_descending;
use ramp_sim::units::PageId;

/// The static placement policies evaluated by the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlacementPolicy {
    /// Everything in DDR (the Figures 5/12 baseline).
    DdrOnly,
    /// Performance-focused: the hottest pages fill HBM (Section 4.2).
    PerfFocused,
    /// Fill only a fraction of HBM with the hottest pages — the sweep that
    /// traces the Figure 1 frontier.
    FracHottest(f64),
    /// Naive reliability-focused: lowest-AVF pages fill HBM, ignoring
    /// hotness (Section 5.1).
    RelFocused,
    /// Balanced: only pages in the hot & low-risk quadrant, hottest first
    /// (Section 5.2).
    Balanced,
    /// Heuristic: top Wr-ratio pages fill HBM (Section 5.4.1).
    WrRatio,
    /// Heuristic: top Wr²-ratio pages fill HBM (Section 5.4.2).
    Wr2Ratio,
}

impl PlacementPolicy {
    /// Display name matching the paper's terminology.
    pub fn name(&self) -> String {
        match self {
            PlacementPolicy::DdrOnly => "ddr-only".into(),
            PlacementPolicy::PerfFocused => "perf-focused".into(),
            PlacementPolicy::FracHottest(f) => format!("frac-hottest-{f:.2}"),
            PlacementPolicy::RelFocused => "rel-focused".into(),
            PlacementPolicy::Balanced => "balanced".into(),
            PlacementPolicy::WrRatio => "wr-ratio".into(),
            PlacementPolicy::Wr2Ratio => "wr2-ratio".into(),
        }
    }

    /// Parses a [`PlacementPolicy::name`] back into the policy (the
    /// inverse used by `ramp-serve` run requests and store keys).
    pub fn from_name(name: &str) -> Option<PlacementPolicy> {
        match name {
            "ddr-only" => Some(PlacementPolicy::DdrOnly),
            "perf-focused" => Some(PlacementPolicy::PerfFocused),
            "rel-focused" => Some(PlacementPolicy::RelFocused),
            "balanced" => Some(PlacementPolicy::Balanced),
            "wr-ratio" => Some(PlacementPolicy::WrRatio),
            "wr2-ratio" => Some(PlacementPolicy::Wr2Ratio),
            other => {
                let frac = other.strip_prefix("frac-hottest-")?.parse::<f64>().ok()?;
                if (0.0..=1.0).contains(&frac) {
                    Some(PlacementPolicy::FracHottest(frac))
                } else {
                    None
                }
            }
        }
    }

    /// Selects the HBM-resident page set from profiling statistics.
    ///
    /// The result never exceeds `capacity_pages`; policies that have fewer
    /// qualifying pages than capacity (e.g. [`PlacementPolicy::Balanced`])
    /// leave the remainder of HBM empty, exactly like the paper's
    /// conservative single-quadrant policy.
    pub fn select(&self, table: &StatsTable, capacity_pages: usize) -> HashSet<PageId> {
        // Profile-guided placement only ever considers pages the profiling
        // run observed: placing never-touched pages in HBM is both
        // unprofilable and useless.
        let touched: Vec<ramp_avf::PageStats> = table
            .pages()
            .iter()
            .filter(|s| s.hotness() > 0)
            .copied()
            .collect();
        let pages: &[ramp_avf::PageStats] = &touched;
        match self {
            PlacementPolicy::DdrOnly => HashSet::new(),
            PlacementPolicy::PerfFocused => top_by(pages, capacity_pages, |s| s.hotness() as f64),
            PlacementPolicy::FracHottest(f) => {
                let n = ((capacity_pages as f64) * f.clamp(0.0, 1.0)).round() as usize;
                top_by(pages, n, |s| s.hotness() as f64)
            }
            PlacementPolicy::RelFocused => {
                // Lowest AVF first; ties broken by page id (hotness is
                // deliberately ignored — that is the policy's flaw).
                top_by(pages, capacity_pages, |s| -s.avf)
            }
            PlacementPolicy::Balanced => {
                let q = QuadrantAnalysis::new(table);
                let mut eligible: Vec<&ramp_avf::PageStats> = pages
                    .iter()
                    .filter(|s| q.classify(s) == Quadrant::HotLowRisk)
                    .collect();
                eligible.sort_by(|a, b| b.hotness().cmp(&a.hotness()).then(a.page.cmp(&b.page)));
                eligible
                    .into_iter()
                    .take(capacity_pages)
                    .map(|s| s.page)
                    .collect()
            }
            PlacementPolicy::WrRatio => top_by(pages, capacity_pages, |s| s.wr_ratio()),
            PlacementPolicy::Wr2Ratio => top_by(pages, capacity_pages, |s| s.wr2_ratio()),
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

fn top_by(
    pages: &[ramp_avf::PageStats],
    n: usize,
    key: impl Fn(&ramp_avf::PageStats) -> f64,
) -> HashSet<PageId> {
    let scores: Vec<f64> = pages.iter().map(key).collect();
    rank_descending(&scores)
        .into_iter()
        .take(n)
        .map(|i| pages[i].page)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_avf::PageStats;

    fn page(id: u64, reads: u64, writes: u64, avf: f64) -> PageStats {
        PageStats {
            page: PageId(id),
            reads,
            writes,
            ace_hbm: 0,
            ace_ddr: 0,
            avf,
        }
    }

    fn table() -> StatsTable {
        StatsTable::from_stats(
            vec![
                page(0, 1000, 0, 0.9), // hottest, high risk
                page(1, 0, 500, 0.02), // hot, low risk, write-only
                page(2, 400, 100, 0.5),
                page(3, 1, 0, 0.7),  // cold, high risk
                page(4, 2, 2, 0.01), // cold, low risk
            ],
            1_000_000,
        )
    }

    #[test]
    fn perf_focused_takes_hottest() {
        let sel = PlacementPolicy::PerfFocused.select(&table(), 2);
        assert_eq!(
            sel,
            HashSet::from([PageId(0), PageId(1)]),
            "hottest two pages"
        );
    }

    #[test]
    fn ddr_only_selects_nothing() {
        assert!(PlacementPolicy::DdrOnly.select(&table(), 10).is_empty());
    }

    #[test]
    fn rel_focused_takes_lowest_avf_regardless_of_heat() {
        let sel = PlacementPolicy::RelFocused.select(&table(), 2);
        assert!(sel.contains(&PageId(4)), "coldest lowest-AVF page included");
        assert!(sel.contains(&PageId(1)));
    }

    #[test]
    fn balanced_restricted_to_quadrant() {
        let t = table();
        let sel = PlacementPolicy::Balanced.select(&t, 5);
        // Mean hotness = (1000+500+500+1+4)/5 = 401; mean AVF = 0.426.
        // Hot & low-risk: pages 1 (hot, 0.02) and 2 (hot, 0.5? no: 0.5 >
        // mean 0.426 -> high risk). So only page 1 qualifies.
        assert_eq!(sel, HashSet::from([PageId(1)]));
        // Capacity may be underused: that's the conservative policy.
        assert!(sel.len() < 5);
    }

    #[test]
    fn wr_ratio_prefers_write_dominated() {
        let sel = PlacementPolicy::WrRatio.select(&table(), 1);
        assert_eq!(sel, HashSet::from([PageId(1)])); // 500/1 ratio
    }

    #[test]
    fn wr2_ratio_weighs_absolute_writes() {
        // Page A: 4 writes / 1 read -> Wr 4, Wr2 16.
        // Page B: 400 writes / 200 reads -> Wr 2, Wr2 800.
        let t = StatsTable::from_stats(vec![page(0, 1, 4, 0.1), page(1, 200, 400, 0.1)], 1000);
        assert_eq!(
            PlacementPolicy::WrRatio.select(&t, 1),
            HashSet::from([PageId(0)])
        );
        assert_eq!(
            PlacementPolicy::Wr2Ratio.select(&t, 1),
            HashSet::from([PageId(1)])
        );
    }

    #[test]
    fn frac_hottest_scales_selection() {
        let t = table();
        assert_eq!(PlacementPolicy::FracHottest(0.0).select(&t, 4).len(), 0);
        assert_eq!(PlacementPolicy::FracHottest(0.5).select(&t, 4).len(), 2);
        assert_eq!(PlacementPolicy::FracHottest(1.0).select(&t, 4).len(), 4);
    }

    #[test]
    fn capacity_respected() {
        for p in [
            PlacementPolicy::PerfFocused,
            PlacementPolicy::RelFocused,
            PlacementPolicy::WrRatio,
            PlacementPolicy::Wr2Ratio,
            PlacementPolicy::Balanced,
        ] {
            assert!(p.select(&table(), 3).len() <= 3, "{p}");
        }
    }
}
