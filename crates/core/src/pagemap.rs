//! The page map: which memory each page lives in, and its frame there.
//!
//! This is the HMA layer's remap table: virtual pages (the trace address
//! space) are bound to frames in either HBM or DDR. Frames are what the
//! DRAM address mappings decode, so migrating a page genuinely changes its
//! channel/bank/row placement. Freed frames are recycled LIFO.

use std::collections::HashMap;

use ramp_dram::MemoryKind;
use ramp_sim::units::{LineAddr, PageId, LINES_PER_PAGE};

/// Page-to-frame binding for the two memories.
#[derive(Debug)]
pub struct PageMap {
    map: HashMap<PageId, (MemoryKind, u64)>,
    free_hbm: Vec<u64>,
    next_hbm: u64,
    hbm_capacity: u64,
    free_ddr: Vec<u64>,
    next_ddr: u64,
}

/// Error returned when HBM has no free frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HbmFull;

impl std::fmt::Display for HbmFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no free HBM frames")
    }
}

impl std::error::Error for HbmFull {}

impl PageMap {
    /// Creates an empty map with the given HBM capacity in pages (DDR is
    /// effectively unbounded at our scale).
    pub fn new(hbm_capacity_pages: u64) -> Self {
        PageMap {
            map: HashMap::new(),
            free_hbm: Vec::new(),
            next_hbm: 0,
            hbm_capacity: hbm_capacity_pages,
            free_ddr: Vec::new(),
            next_ddr: 0,
        }
    }

    /// Where `page` currently lives (binding it to DDR on first touch).
    pub fn resolve(&mut self, page: PageId) -> (MemoryKind, u64) {
        if let Some(&entry) = self.map.get(&page) {
            return entry;
        }
        let frame = self.alloc_ddr();
        let entry = (MemoryKind::Ddr, frame);
        self.map.insert(page, entry);
        entry
    }

    /// Current binding without allocating.
    pub fn lookup(&self, page: PageId) -> Option<(MemoryKind, u64)> {
        self.map.get(&page).copied()
    }

    /// Frame-level line address for an access to `line_in_page` of `page`.
    pub fn frame_line(&mut self, page: PageId, line_in_page: usize) -> (MemoryKind, LineAddr) {
        let (kind, frame) = self.resolve(page);
        (
            kind,
            LineAddr(frame * LINES_PER_PAGE as u64 + line_in_page as u64),
        )
    }

    /// Binds `page` into HBM (used for initial placements and pinning).
    ///
    /// # Errors
    ///
    /// Returns [`HbmFull`] when HBM has no free frames. The page keeps (or
    /// gets) a DDR binding in that case.
    pub fn place_in_hbm(&mut self, page: PageId) -> Result<(), HbmFull> {
        if let Some(&(MemoryKind::Hbm, _)) = self.map.get(&page) {
            return Ok(());
        }
        let frame = self.alloc_hbm().ok_or(HbmFull)?;
        if let Some((MemoryKind::Ddr, old)) = self.map.insert(page, (MemoryKind::Hbm, frame)) {
            self.free_ddr.push(old);
        }
        Ok(())
    }

    /// Moves `page` to `to`, recycling its old frame.
    ///
    /// # Errors
    ///
    /// Returns [`HbmFull`] when moving to HBM without free frames.
    pub fn migrate(&mut self, page: PageId, to: MemoryKind) -> Result<(), HbmFull> {
        let current = self.resolve(page);
        if current.0 == to {
            return Ok(());
        }
        match to {
            MemoryKind::Hbm => {
                let frame = self.alloc_hbm().ok_or(HbmFull)?;
                self.map.insert(page, (MemoryKind::Hbm, frame));
                self.free_ddr.push(current.1);
            }
            MemoryKind::Ddr => {
                let frame = self.alloc_ddr();
                self.map.insert(page, (MemoryKind::Ddr, frame));
                self.free_hbm.push(current.1);
            }
        }
        Ok(())
    }

    /// Pages currently resident in HBM.
    pub fn hbm_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .map
            .iter()
            .filter(|(_, &(k, _))| k == MemoryKind::Hbm)
            .map(|(&p, _)| p)
            .collect();
        v.sort();
        v
    }

    /// Number of pages in HBM.
    pub fn hbm_used(&self) -> u64 {
        self.map
            .values()
            .filter(|&&(k, _)| k == MemoryKind::Hbm)
            .count() as u64
    }

    /// Free HBM frames remaining.
    pub fn hbm_free(&self) -> u64 {
        self.hbm_capacity - self.hbm_used()
    }

    /// Total pages bound.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no pages are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Serializes the map (sorted by page id) and both free lists. The
    /// free lists keep their order verbatim: frames recycle LIFO, so list
    /// order determines future allocations.
    pub(crate) fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        let mut entries: Vec<(PageId, (MemoryKind, u64))> =
            self.map.iter().map(|(&p, &e)| (p, e)).collect();
        entries.sort_by_key(|(p, _)| *p);
        w.u32(entries.len() as u32);
        for (page, (kind, frame)) in entries {
            w.u64(page.0);
            w.u8(match kind {
                MemoryKind::Hbm => 0,
                MemoryKind::Ddr => 1,
            });
            w.u64(frame);
        }
        w.u32(self.free_hbm.len() as u32);
        for &f in &self.free_hbm {
            w.u64(f);
        }
        w.u64(self.next_hbm);
        w.u32(self.free_ddr.len() as u32);
        for &f in &self.free_ddr {
            w.u64(f);
        }
        w.u64(self.next_ddr);
    }

    /// Restores the state captured by [`PageMap::save_state`] into a map
    /// of identical HBM capacity.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        use ramp_sim::codec::CodecError;
        let n = r.seq_len(17)?;
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = PageId(r.u64()?);
            let kind = match r.u8()? {
                0 => MemoryKind::Hbm,
                1 => MemoryKind::Ddr,
                _ => return Err(CodecError::Malformed("bad memory-kind tag")),
            };
            map.insert(page, (kind, r.u64()?));
        }
        let n_hbm = r.seq_len(8)?;
        let mut free_hbm = Vec::with_capacity(n_hbm);
        for _ in 0..n_hbm {
            free_hbm.push(r.u64()?);
        }
        let next_hbm = r.u64()?;
        if next_hbm > self.hbm_capacity {
            return Err(CodecError::Malformed("HBM watermark over capacity"));
        }
        let n_ddr = r.seq_len(8)?;
        let mut free_ddr = Vec::with_capacity(n_ddr);
        for _ in 0..n_ddr {
            free_ddr.push(r.u64()?);
        }
        self.next_ddr = r.u64()?;
        self.map = map;
        self.free_hbm = free_hbm;
        self.next_hbm = next_hbm;
        self.free_ddr = free_ddr;
        Ok(())
    }

    fn alloc_hbm(&mut self) -> Option<u64> {
        if let Some(f) = self.free_hbm.pop() {
            return Some(f);
        }
        if self.next_hbm < self.hbm_capacity {
            let f = self.next_hbm;
            self.next_hbm += 1;
            Some(f)
        } else {
            None
        }
    }

    fn alloc_ddr(&mut self) -> u64 {
        if let Some(f) = self.free_ddr.pop() {
            f
        } else {
            let f = self.next_ddr;
            self.next_ddr += 1;
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_binds_to_ddr() {
        let mut pm = PageMap::new(4);
        let (k, _) = pm.resolve(PageId(10));
        assert_eq!(k, MemoryKind::Ddr);
        assert_eq!(pm.hbm_used(), 0);
    }

    #[test]
    fn hbm_capacity_enforced() {
        let mut pm = PageMap::new(2);
        assert!(pm.place_in_hbm(PageId(1)).is_ok());
        assert!(pm.place_in_hbm(PageId(2)).is_ok());
        assert_eq!(pm.place_in_hbm(PageId(3)), Err(HbmFull));
        assert_eq!(pm.hbm_used(), 2);
        assert_eq!(pm.hbm_free(), 0);
    }

    #[test]
    fn migrate_swaps_memories_and_recycles_frames() {
        let mut pm = PageMap::new(1);
        pm.place_in_hbm(PageId(1)).unwrap();
        let (_, hbm_frame) = pm.lookup(PageId(1)).unwrap();
        pm.migrate(PageId(1), MemoryKind::Ddr).unwrap();
        assert_eq!(pm.lookup(PageId(1)).unwrap().0, MemoryKind::Ddr);
        // The freed HBM frame is reused by the next page.
        pm.migrate(PageId(2), MemoryKind::Hbm).unwrap();
        assert_eq!(pm.lookup(PageId(2)).unwrap(), (MemoryKind::Hbm, hbm_frame));
    }

    #[test]
    fn migrate_to_same_memory_is_noop() {
        let mut pm = PageMap::new(1);
        pm.resolve(PageId(5));
        let before = pm.lookup(PageId(5)).unwrap();
        pm.migrate(PageId(5), MemoryKind::Ddr).unwrap();
        assert_eq!(pm.lookup(PageId(5)).unwrap(), before);
    }

    #[test]
    fn frame_lines_distinct_across_pages() {
        let mut pm = PageMap::new(16);
        pm.place_in_hbm(PageId(100)).unwrap();
        pm.place_in_hbm(PageId(200)).unwrap();
        let (k1, l1) = pm.frame_line(PageId(100), 0);
        let (k2, l2) = pm.frame_line(PageId(200), 0);
        assert_eq!(k1, MemoryKind::Hbm);
        assert_eq!(k2, MemoryKind::Hbm);
        assert_ne!(l1, l2);
        let (_, l3) = pm.frame_line(PageId(100), 63);
        assert_eq!(l3.0 - l1.0, 63);
    }

    #[test]
    fn hbm_pages_listing() {
        let mut pm = PageMap::new(8);
        pm.place_in_hbm(PageId(3)).unwrap();
        pm.place_in_hbm(PageId(1)).unwrap();
        pm.resolve(PageId(2));
        assert_eq!(pm.hbm_pages(), vec![PageId(1), PageId(3)]);
        assert_eq!(pm.len(), 3);
    }

    #[test]
    fn ddr_page_promoted_to_hbm_frees_ddr_frame() {
        let mut pm = PageMap::new(4);
        pm.resolve(PageId(1)); // DDR frame 0
        pm.place_in_hbm(PageId(1)).unwrap();
        // New DDR page should reuse the freed frame 0.
        let (_, frame) = pm.resolve(PageId(2));
        assert_eq!(frame, 0);
    }
}
