//! The page map: which memory each page lives in, and its frame there.
//!
//! This is the HMA layer's remap table: virtual pages (the trace address
//! space) are bound to frames in either HBM or DDR. Frames are what the
//! DRAM address mappings decode, so migrating a page genuinely changes its
//! channel/bank/row placement. Freed frames are recycled LIFO.
//!
//! Storage is a flat two-level table instead of a `HashMap`: the trace
//! layer bases each core's pages at `(core as u64) << 22`, so page ids
//! cluster into a handful of dense runs. The outer level indexes
//! `page >> 22` directly; each inner chunk is a plain `Vec<u64>` of
//! packed entries indexed by the low 22 bits — the per-access `resolve`
//! is two bounds-checked loads, no hashing. Pages outside the outer
//! range (arbitrary ids from tests or tools) fall back to a spill map,
//! which never triggers on the simulator's own traffic.

use std::collections::HashMap;

use ramp_dram::MemoryKind;
use ramp_sim::units::{LineAddr, PageId, LINES_PER_PAGE};

/// Bits of page id covered by one inner chunk (matches the trace
/// layer's per-core base-page stride).
const CHUNK_BITS: u32 = 22;
/// Outer-table capacity in chunks: covers every page id below
/// `OUTER_CHUNKS << CHUNK_BITS` (cores are 16 today; 4096 leaves room).
const OUTER_CHUNKS: usize = 4096;
/// Packed-entry sentinel: page not bound.
const EMPTY: u64 = u64::MAX;
/// Packed-entry kind bit (set = DDR, clear = HBM).
const KIND_DDR: u64 = 1 << 63;

#[inline]
fn pack(kind: MemoryKind, frame: u64) -> u64 {
    debug_assert!(frame < KIND_DDR);
    match kind {
        MemoryKind::Hbm => frame,
        MemoryKind::Ddr => frame | KIND_DDR,
    }
}

#[inline]
fn unpack(entry: u64) -> (MemoryKind, u64) {
    if entry & KIND_DDR == 0 {
        (MemoryKind::Hbm, entry)
    } else {
        (MemoryKind::Ddr, entry & !KIND_DDR)
    }
}

/// Page-to-frame binding for the two memories.
#[derive(Debug)]
pub struct PageMap {
    /// Outer level: chunk index -> packed inner table (lazily grown).
    chunks: Vec<Vec<u64>>,
    /// Bindings for pages past the outer range (rare; tests/tools only).
    spill: HashMap<PageId, u64>,
    /// Total bound pages (maintained, not recounted).
    bound: usize,
    /// Pages currently in HBM (maintained, not recounted).
    hbm_resident: u64,
    free_hbm: Vec<u64>,
    next_hbm: u64,
    hbm_capacity: u64,
    free_ddr: Vec<u64>,
    next_ddr: u64,
}

/// Error returned when HBM has no free frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HbmFull;

impl std::fmt::Display for HbmFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no free HBM frames")
    }
}

impl std::error::Error for HbmFull {}

impl PageMap {
    /// Creates an empty map with the given HBM capacity in pages (DDR is
    /// effectively unbounded at our scale).
    pub fn new(hbm_capacity_pages: u64) -> Self {
        PageMap {
            chunks: Vec::new(),
            spill: HashMap::new(),
            bound: 0,
            hbm_resident: 0,
            free_hbm: Vec::new(),
            next_hbm: 0,
            hbm_capacity: hbm_capacity_pages,
            free_ddr: Vec::new(),
            next_ddr: 0,
        }
    }

    /// Splits a page id into (chunk index, offset) when it falls inside
    /// the outer range.
    #[inline]
    fn split(page: PageId) -> Option<(usize, usize)> {
        let chunk = (page.0 >> CHUNK_BITS) as usize;
        if page.0 >> CHUNK_BITS < OUTER_CHUNKS as u64 {
            Some((chunk, (page.0 & ((1 << CHUNK_BITS) - 1)) as usize))
        } else {
            None
        }
    }

    /// The packed entry for `page`, or `EMPTY`.
    #[inline]
    fn entry(&self, page: PageId) -> u64 {
        match Self::split(page) {
            Some((c, off)) => self
                .chunks
                .get(c)
                .and_then(|inner| inner.get(off))
                .copied()
                .unwrap_or(EMPTY),
            None => self.spill.get(&page).copied().unwrap_or(EMPTY),
        }
    }

    /// Writes `entry` for `page`, growing tables as needed. Callers
    /// maintain `bound` / `hbm_resident` themselves.
    fn set_entry(&mut self, page: PageId, entry: u64) {
        match Self::split(page) {
            Some((c, off)) => {
                if c >= self.chunks.len() {
                    self.chunks.resize_with(c + 1, Vec::new);
                }
                let inner = &mut self.chunks[c];
                if off >= inner.len() {
                    let new_len = (off + 1).next_power_of_two().max(64);
                    inner.resize(new_len, EMPTY);
                }
                inner[off] = entry;
            }
            None => {
                if entry == EMPTY {
                    self.spill.remove(&page);
                } else {
                    self.spill.insert(page, entry);
                }
            }
        }
    }

    /// Rebinds `page` (which must already be bound) and keeps the
    /// HBM-residency counter in step.
    fn rebind(&mut self, page: PageId, old: u64, new: u64) {
        debug_assert_ne!(old, EMPTY);
        let was_hbm = old & KIND_DDR == 0;
        let is_hbm = new & KIND_DDR == 0;
        match (was_hbm, is_hbm) {
            (false, true) => self.hbm_resident += 1,
            (true, false) => self.hbm_resident -= 1,
            _ => {}
        }
        self.set_entry(page, new);
    }

    /// Where `page` currently lives (binding it to DDR on first touch).
    #[inline]
    pub fn resolve(&mut self, page: PageId) -> (MemoryKind, u64) {
        let entry = self.entry(page);
        if entry != EMPTY {
            return unpack(entry);
        }
        let frame = self.alloc_ddr();
        self.set_entry(page, pack(MemoryKind::Ddr, frame));
        self.bound += 1;
        (MemoryKind::Ddr, frame)
    }

    /// Current binding without allocating.
    pub fn lookup(&self, page: PageId) -> Option<(MemoryKind, u64)> {
        match self.entry(page) {
            EMPTY => None,
            e => Some(unpack(e)),
        }
    }

    /// Frame-level line address for an access to `line_in_page` of `page`.
    #[inline]
    pub fn frame_line(&mut self, page: PageId, line_in_page: usize) -> (MemoryKind, LineAddr) {
        let (kind, frame) = self.resolve(page);
        (
            kind,
            LineAddr(frame * LINES_PER_PAGE as u64 + line_in_page as u64),
        )
    }

    /// Binds `page` into HBM (used for initial placements and pinning).
    ///
    /// # Errors
    ///
    /// Returns [`HbmFull`] when HBM has no free frames. The page keeps (or
    /// gets) a DDR binding in that case.
    pub fn place_in_hbm(&mut self, page: PageId) -> Result<(), HbmFull> {
        let old = self.entry(page);
        if old != EMPTY && old & KIND_DDR == 0 {
            return Ok(());
        }
        let frame = self.alloc_hbm().ok_or(HbmFull)?;
        if old == EMPTY {
            self.set_entry(page, pack(MemoryKind::Hbm, frame));
            self.bound += 1;
            self.hbm_resident += 1;
        } else {
            let (_, ddr_frame) = unpack(old);
            self.rebind(page, old, pack(MemoryKind::Hbm, frame));
            self.free_ddr.push(ddr_frame);
        }
        Ok(())
    }

    /// Moves `page` to `to`, recycling its old frame.
    ///
    /// # Errors
    ///
    /// Returns [`HbmFull`] when moving to HBM without free frames.
    pub fn migrate(&mut self, page: PageId, to: MemoryKind) -> Result<(), HbmFull> {
        let (kind, frame) = self.resolve(page);
        if kind == to {
            return Ok(());
        }
        let old = pack(kind, frame);
        match to {
            MemoryKind::Hbm => {
                let new = self.alloc_hbm().ok_or(HbmFull)?;
                self.rebind(page, old, pack(MemoryKind::Hbm, new));
                self.free_ddr.push(frame);
            }
            MemoryKind::Ddr => {
                let new = self.alloc_ddr();
                self.rebind(page, old, pack(MemoryKind::Ddr, new));
                self.free_hbm.push(frame);
            }
        }
        Ok(())
    }

    /// Iterates every bound `(page, packed entry)` in ascending page-id
    /// order. Chunked pages come out sorted by construction (ascending
    /// chunk index, ascending offset); spill pages all sort after them
    /// (their ids exceed the outer range), so appending the sorted spill
    /// keeps the whole stream ordered.
    fn iter_sorted(&self) -> impl Iterator<Item = (PageId, u64)> + '_ {
        let chunked = self.chunks.iter().enumerate().flat_map(|(c, inner)| {
            inner.iter().enumerate().filter_map(move |(off, &e)| {
                (e != EMPTY).then(|| (PageId(((c as u64) << CHUNK_BITS) | off as u64), e))
            })
        });
        let mut spill: Vec<(PageId, u64)> = self.spill.iter().map(|(&p, &e)| (p, e)).collect();
        spill.sort_by_key(|(p, _)| *p);
        chunked.chain(spill)
    }

    /// Pages currently resident in HBM, ascending.
    pub fn hbm_pages(&self) -> Vec<PageId> {
        self.iter_sorted()
            .filter(|&(_, e)| e & KIND_DDR == 0)
            .map(|(p, _)| p)
            .collect()
    }

    /// Number of pages in HBM.
    pub fn hbm_used(&self) -> u64 {
        self.hbm_resident
    }

    /// Free HBM frames remaining.
    pub fn hbm_free(&self) -> u64 {
        self.hbm_capacity - self.hbm_resident
    }

    /// Total pages bound.
    pub fn len(&self) -> usize {
        self.bound
    }

    /// `true` when no pages are bound.
    pub fn is_empty(&self) -> bool {
        self.bound == 0
    }

    /// Serializes the map (sorted by page id) and both free lists. The
    /// free lists keep their order verbatim: frames recycle LIFO, so list
    /// order determines future allocations.
    pub(crate) fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        w.u32(self.bound as u32);
        for (page, entry) in self.iter_sorted() {
            let (kind, frame) = unpack(entry);
            w.u64(page.0);
            w.u8(match kind {
                MemoryKind::Hbm => 0,
                MemoryKind::Ddr => 1,
            });
            w.u64(frame);
        }
        w.u32(self.free_hbm.len() as u32);
        for &f in &self.free_hbm {
            w.u64(f);
        }
        w.u64(self.next_hbm);
        w.u32(self.free_ddr.len() as u32);
        for &f in &self.free_ddr {
            w.u64(f);
        }
        w.u64(self.next_ddr);
    }

    /// Restores the state captured by [`PageMap::save_state`] into a map
    /// of identical HBM capacity.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        use ramp_sim::codec::CodecError;
        let n = r.seq_len(17)?;
        self.chunks.clear();
        self.spill.clear();
        self.bound = 0;
        self.hbm_resident = 0;
        for _ in 0..n {
            let page = PageId(r.u64()?);
            let kind = match r.u8()? {
                0 => MemoryKind::Hbm,
                1 => MemoryKind::Ddr,
                _ => return Err(CodecError::Malformed("bad memory-kind tag")),
            };
            self.set_entry(page, pack(kind, r.u64()?));
            self.bound += 1;
            if kind == MemoryKind::Hbm {
                self.hbm_resident += 1;
            }
        }
        let n_hbm = r.seq_len(8)?;
        let mut free_hbm = Vec::with_capacity(n_hbm);
        for _ in 0..n_hbm {
            free_hbm.push(r.u64()?);
        }
        let next_hbm = r.u64()?;
        if next_hbm > self.hbm_capacity {
            return Err(CodecError::Malformed("HBM watermark over capacity"));
        }
        let n_ddr = r.seq_len(8)?;
        let mut free_ddr = Vec::with_capacity(n_ddr);
        for _ in 0..n_ddr {
            free_ddr.push(r.u64()?);
        }
        self.next_ddr = r.u64()?;
        self.free_hbm = free_hbm;
        self.next_hbm = next_hbm;
        self.free_ddr = free_ddr;
        Ok(())
    }

    fn alloc_hbm(&mut self) -> Option<u64> {
        if let Some(f) = self.free_hbm.pop() {
            return Some(f);
        }
        if self.next_hbm < self.hbm_capacity {
            let f = self.next_hbm;
            self.next_hbm += 1;
            Some(f)
        } else {
            None
        }
    }

    fn alloc_ddr(&mut self) -> u64 {
        if let Some(f) = self.free_ddr.pop() {
            f
        } else {
            let f = self.next_ddr;
            self.next_ddr += 1;
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_binds_to_ddr() {
        let mut pm = PageMap::new(4);
        let (k, _) = pm.resolve(PageId(10));
        assert_eq!(k, MemoryKind::Ddr);
        assert_eq!(pm.hbm_used(), 0);
    }

    #[test]
    fn hbm_capacity_enforced() {
        let mut pm = PageMap::new(2);
        assert!(pm.place_in_hbm(PageId(1)).is_ok());
        assert!(pm.place_in_hbm(PageId(2)).is_ok());
        assert_eq!(pm.place_in_hbm(PageId(3)), Err(HbmFull));
        assert_eq!(pm.hbm_used(), 2);
        assert_eq!(pm.hbm_free(), 0);
    }

    #[test]
    fn migrate_swaps_memories_and_recycles_frames() {
        let mut pm = PageMap::new(1);
        pm.place_in_hbm(PageId(1)).unwrap();
        let (_, hbm_frame) = pm.lookup(PageId(1)).unwrap();
        pm.migrate(PageId(1), MemoryKind::Ddr).unwrap();
        assert_eq!(pm.lookup(PageId(1)).unwrap().0, MemoryKind::Ddr);
        // The freed HBM frame is reused by the next page.
        pm.migrate(PageId(2), MemoryKind::Hbm).unwrap();
        assert_eq!(pm.lookup(PageId(2)).unwrap(), (MemoryKind::Hbm, hbm_frame));
    }

    #[test]
    fn migrate_to_same_memory_is_noop() {
        let mut pm = PageMap::new(1);
        pm.resolve(PageId(5));
        let before = pm.lookup(PageId(5)).unwrap();
        pm.migrate(PageId(5), MemoryKind::Ddr).unwrap();
        assert_eq!(pm.lookup(PageId(5)).unwrap(), before);
    }

    #[test]
    fn frame_lines_distinct_across_pages() {
        let mut pm = PageMap::new(16);
        pm.place_in_hbm(PageId(100)).unwrap();
        pm.place_in_hbm(PageId(200)).unwrap();
        let (k1, l1) = pm.frame_line(PageId(100), 0);
        let (k2, l2) = pm.frame_line(PageId(200), 0);
        assert_eq!(k1, MemoryKind::Hbm);
        assert_eq!(k2, MemoryKind::Hbm);
        assert_ne!(l1, l2);
        let (_, l3) = pm.frame_line(PageId(100), 63);
        assert_eq!(l3.0 - l1.0, 63);
    }

    #[test]
    fn hbm_pages_listing() {
        let mut pm = PageMap::new(8);
        pm.place_in_hbm(PageId(3)).unwrap();
        pm.place_in_hbm(PageId(1)).unwrap();
        pm.resolve(PageId(2));
        assert_eq!(pm.hbm_pages(), vec![PageId(1), PageId(3)]);
        assert_eq!(pm.len(), 3);
    }

    #[test]
    fn ddr_page_promoted_to_hbm_frees_ddr_frame() {
        let mut pm = PageMap::new(4);
        pm.resolve(PageId(1)); // DDR frame 0
        pm.place_in_hbm(PageId(1)).unwrap();
        // New DDR page should reuse the freed frame 0.
        let (_, frame) = pm.resolve(PageId(2));
        assert_eq!(frame, 0);
    }

    #[test]
    fn spill_pages_outside_outer_range() {
        let mut pm = PageMap::new(4);
        let far = PageId((OUTER_CHUNKS as u64) << CHUNK_BITS);
        let near = PageId(7);
        pm.place_in_hbm(far).unwrap();
        pm.resolve(near);
        assert_eq!(pm.lookup(far).unwrap().0, MemoryKind::Hbm);
        assert_eq!(pm.len(), 2);
        assert_eq!(pm.hbm_pages(), vec![far]);
        pm.migrate(far, MemoryKind::Ddr).unwrap();
        assert_eq!(pm.lookup(far).unwrap().0, MemoryKind::Ddr);
        assert_eq!(pm.hbm_used(), 0);
    }

    #[test]
    fn sorted_iteration_interleaves_cores() {
        // Pages from different per-core bases must serialize in global
        // page-id order, exactly like the HashMap + sort reference did.
        let mut pm = PageMap::new(64);
        let pages = [
            PageId(5),
            PageId((3 << CHUNK_BITS) | 2),
            PageId(1 << CHUNK_BITS),
            PageId((OUTER_CHUNKS as u64 + 1) << CHUNK_BITS),
            PageId(0),
        ];
        for p in pages {
            pm.place_in_hbm(p).unwrap();
        }
        let mut expect: Vec<PageId> = pages.to_vec();
        expect.sort();
        assert_eq!(pm.hbm_pages(), expect);
    }
}
