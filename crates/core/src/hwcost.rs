//! Hardware-cost accounting for the migration mechanisms (Sections 6.3 and
//! 6.4.2), computed at the paper's **full, unscaled** capacities.
//!
//! | mechanism | storage |
//! |---|---|
//! | performance-focused FC (8-bit counter / page, 17 GiB) | 4.25 MB |
//! | reliability-aware FC (2 x 8-bit counters / page)      | 8.5 MB (+4.25 MB) |
//! | Cross-Counters: 16-bit risk counters for HBM pages    | 512 KB |
//! | MEA tracking structures                               | 100 KB |
//! | remap table cache                                     | 64 KB |
//! | Cross-Counters total                                  | 676 KB |

use crate::config::full_scale;

/// Bytes of counter storage for one 8-bit counter per page over the whole
/// 17 GiB HMA (the performance-focused migration baseline).
pub fn perf_fc_bytes() -> u64 {
    full_scale::TOTAL_PAGES
}

/// Bytes for the reliability-aware Full-Counter mechanism: two 8-bit
/// counters (reads and writes) per page (Section 6.3: "16 bits per 4K
/// page ... 8.5 MB").
pub fn reliability_fc_bytes() -> u64 {
    full_scale::TOTAL_PAGES * 2
}

/// Extra storage of reliability-aware FC over the performance baseline
/// (Section 6.3: "additional storage of 4.25 MB").
pub fn reliability_fc_extra_bytes() -> u64 {
    reliability_fc_bytes() - perf_fc_bytes()
}

/// Bytes for the Cross-Counter reliability unit: 16-bit counters for every
/// HBM page only (Section 6.4.2: "512 KB").
pub fn cc_risk_counter_bytes() -> u64 {
    full_scale::HBM_PAGES * 2
}

/// MEA tracking storage modeled from MemPod (Section 6.4.2: "no more than
/// 100 KB").
pub fn mea_bytes() -> u64 {
    100 * 1024
}

/// Remap-table cache (Section 6.4.2: "64 KB").
pub fn remap_cache_bytes() -> u64 {
    64 * 1024
}

/// Total Cross-Counter mechanism storage (Section 6.4.2: "676 KB").
pub fn cross_counter_total_bytes() -> u64 {
    cc_risk_counter_bytes() + mea_bytes() + remap_cache_bytes()
}

/// Formats a byte count the way the paper quotes it (KB/MB, base 1024).
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.0} KB", bytes as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_costs_match_section_6_3() {
        // 4.25M pages x 16 bits = 8.5 MB total, 4.25 MB extra.
        assert_eq!(reliability_fc_bytes(), 8_912_896);
        assert_eq!(human_bytes(reliability_fc_bytes()), "8.50 MB");
        assert_eq!(human_bytes(reliability_fc_extra_bytes()), "4.25 MB");
    }

    #[test]
    fn cc_costs_match_section_6_4() {
        assert_eq!(human_bytes(cc_risk_counter_bytes()), "512 KB");
        assert_eq!(human_bytes(cross_counter_total_bytes()), "676 KB");
    }

    #[test]
    fn cc_is_dramatically_cheaper_than_fc() {
        assert!(cross_counter_total_bytes() * 6 < reliability_fc_bytes());
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(64 * 1024), "64 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
    }
}
